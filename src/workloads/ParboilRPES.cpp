//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parboil-RPES, Rys Polynomial Equation Solver (Table 3 row 5). The
/// original evaluates Rys quadrature polynomials for electron
/// repulsion integrals over shell pairs, reading interpolation tables
/// with high spatial locality. We reproduce that access pattern with
/// a surrogate: each work item evaluates a 48-term polynomial window
/// into a large read-only coefficient table at an element-dependent
/// base offset — neighbouring work items read neighbouring windows.
///
/// That locality is the whole story of RPES in Figure 8(a): the table
/// reads are *not* uniform (so constant memory does not apply) and
/// not sweepable (so local tiling does not apply), but they hit the
/// texture cache beautifully — "Parboil-RPES benefits significantly
/// from the use of texture memory on the GTX8800 because it is
/// equipped with a hardware cache, and this benchmark exhibits good
/// spatial locality" (§5.2). It is also exp-heavy, feeding the large
/// end-to-end speedups of Figure 7.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Random.h"

using namespace lime;
using namespace lime::wl;

namespace {

const char *LimeSource = R"(
  class RPES {
    static float[[][4]] pairs;
    static float[[]] table;
    static float[[]] lastOut;
    static final int REPS = 2;
    static final int ORDER = 48;
    int steps;

    float[[][4]] src() {
      if (steps >= REPS) throw Underflow;
      steps += 1;
      return pairs;
    }

    static local float rys(float[[4]] q, float[[]] table) {
      float acc = 0f;
      int base = (int) q[3];
      float t = q[0];
      float w = 1f;
      for (int j = 0; j < ORDER; j++) {
        float c = table[base + j];
        acc += c * w + q[1] * Math.exp(0f - t * (j + 1));
        w *= t;
      }
      return acc * q[2];
    }

    static local float[[]] solve(float[[][4]] pairs, float[[]] table) {
      return rys(table) @ pairs;
    }

    void sink(float[[]] integrals) { RPES.lastOut = integrals; }

    static void run() {
      finish task new RPES().src
          => task RPES.solve(RPES.table)
          => task new RPES().sink;
    }
  }
)";

/// Hand-tuned comparator (converted from the CUDA original, tuned for
/// the GTX 8800 [17]): the coefficient table through a texture, one
/// thread per shell pair.
const char *HandTunedSource = R"(
float fetch_tab(__read_only image2d_t tab, sampler_t smp, int i) {
  int t = i >> 2;
  float4 v = read_imagef(tab, smp, (int2)(t % 2048, t / 2048));
  int c = i & 3;
  return c == 0 ? v.x : (c == 1 ? v.y : (c == 2 ? v.z : v.w));
}

__kernel void rpes_hand(__global float* out, __global const float* pairs,
                        __read_only image2d_t tab, sampler_t smp,
                        int nPairs) {
  int gid = get_global_id(0);
  if (gid >= nPairs) return;
  float4 q = vload4(gid, pairs);
  float acc = 0.0f;
  int base = (int)(q.w);
  float t = q.x;
  float w = 1.0f;
  for (int j = 0; j < 48; j++) {
    float c = fetch_tab(tab, smp, base + j);
    acc += c * w + q.y * exp(0.0f - t * (j + 1));
    w *= t;
  }
  out[gid] = acc * q.z;
}
)";

HandTunedResult runHandTuned(ocl::ClContext &Ctx, Interp &I,
                             unsigned LocalSize) {
  HandTunedResult R;
  RtValue Pairs = getStatic(I, "RPES", "pairs");
  RtValue Table = getStatic(I, "RPES", "table");
  std::vector<uint8_t> PBytes = flattenValue(Pairs);
  std::vector<uint8_t> TBytes = flattenValue(Table);
  uint32_t NP = static_cast<uint32_t>(Pairs.array()->Elems.size());

  std::string Err = Ctx.buildProgram(HandTunedSource);
  if (!Err.empty()) {
    R.Error = Err;
    return R;
  }

  // Table into a 2048-texel-wide image, 4 floats per texel.
  ocl::SimImage Img;
  size_t Floats = TBytes.size() / 4;
  size_t Texels = (Floats + 3) / 4;
  Img.Width = 2048;
  Img.Height = static_cast<unsigned>((Texels + 2047) / 2048);
  if (Img.Height == 0)
    Img.Height = 1;
  Img.Texels.assign(static_cast<size_t>(Img.Width) * Img.Height * 4, 0.0f);
  std::memcpy(Img.Texels.data(), TBytes.data(), Floats * 4);
  int ImgIdx = Ctx.createImage(std::move(Img));
  Ctx.chargeHostToDevice(TBytes.size());

  ocl::ClBuffer BP = Ctx.createBuffer(PBytes.size());
  ocl::ClBuffer BOut = Ctx.createBuffer(static_cast<uint64_t>(NP) * 4);
  Ctx.enqueueWrite(BP, PBytes.data(), PBytes.size());

  double Kern0 = Ctx.profile().KernelNs;
  uint32_t Global = (NP + LocalSize - 1) / LocalSize * LocalSize;
  Err = Ctx.enqueueKernel("rpes_hand",
                          {ocl::LaunchArg::buffer(BOut.Offset, BOut.Space),
                           ocl::LaunchArg::buffer(BP.Offset, BP.Space),
                           ocl::LaunchArg::image(ImgIdx),
                           ocl::LaunchArg::i32(0),
                           ocl::LaunchArg::i32(static_cast<int32_t>(NP))},
                          {Global, 1}, {LocalSize, 1});
  if (!Err.empty()) {
    R.Error = Err;
    return R;
  }
  R.KernelNs = Ctx.profile().KernelNs - Kern0;

  std::vector<float> Out(NP);
  Ctx.enqueueRead(BOut, Out.data(), Out.size() * 4);
  R.Result = makeFloatArray(I.types(), Out);
  return R;
}

} // namespace

Workload lime::wl::makeParboilRPES() {
  Workload W;
  W.Id = "rpes";
  W.Name = "Parboil-RPES";
  W.Description = "Rys Polynomial Equation Solver";
  W.DataType = "Float";
  W.PaperInputBytes = 13 * 1024 * 1024;
  W.PaperOutputBytes = 4 * 1024 * 1024;
  W.LimeSource = LimeSource;
  W.ClassName = "RPES";
  W.FilterMethod = "solve";
  // pairs[3] is the table base offset; Prepare below keeps it in
  // [0, len(table) - 64] and the kernel reads a 48-entry window, so
  // these facts turn the data-dependent bounds warning into a proof.
  W.DefaultAssumes = {"pairs[3] >= 0", "pairs[3] <= len(table) - 48"};
  W.Prepare = [](Interp &I, double Scale) {
    // Table 3: 13MB in (pairs + tables), 4MB out (1M integrals).
    unsigned NPairs = std::max(256u, static_cast<unsigned>(1048576 * Scale));
    unsigned TableLen =
        std::max(4096u, static_cast<unsigned>(786432 * Scale));
    SplitMix64 Rng(0x49E5);
    std::vector<float> Pairs(static_cast<size_t>(NPairs) * 4);
    for (unsigned P = 0; P != NPairs; ++P) {
      Pairs[P * 4 + 0] = Rng.nextFloat(0.05f, 0.9f); // t parameter
      Pairs[P * 4 + 1] = Rng.nextFloat(0.0f, 1.0f);  // weight
      Pairs[P * 4 + 2] = Rng.nextFloat(0.5f, 2.0f);  // normalization
      // Base offset: correlated with the pair index so neighbouring
      // threads read neighbouring table windows (spatial locality).
      unsigned Base =
          static_cast<unsigned>((static_cast<uint64_t>(P) *
                                 (TableLen - 64)) /
                                std::max(1u, NPairs));
      Pairs[P * 4 + 3] = static_cast<float>(Base);
    }
    std::vector<float> Table(TableLen);
    for (float &C : Table)
      C = Rng.nextFloat(-1.0f, 1.0f);
    setStatic(I, "RPES", "pairs", makeFloatMatrix(I.types(), Pairs, 4));
    setStatic(I, "RPES", "table", makeFloatArray(I.types(), Table));
  };
  W.RunHandTuned = runHandTuned;
  return W;
}
