//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Casting.h"

using namespace lime;
using namespace lime::wl;

const std::vector<Workload> &lime::wl::workloadRegistry() {
  static const std::vector<Workload> Registry = [] {
    std::vector<Workload> R;
    R.push_back(makeNBody(/*Double=*/false));
    R.push_back(makeNBody(/*Double=*/true));
    R.push_back(makeMosaic());
    R.push_back(makeParboilCP());
    R.push_back(makeParboilMRIQ());
    R.push_back(makeParboilRPES());
    R.push_back(makeJGCrypt());
    R.push_back(makeJGSeries(/*Double=*/false));
    R.push_back(makeJGSeries(/*Double=*/true));
    return R;
  }();
  return Registry;
}

const Workload &lime::wl::workloadById(const std::string &Id) {
  for (const Workload &W : workloadRegistry())
    if (W.Id == Id)
      return W;
  lime_unreachable("unknown workload id");
}
