//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JG-Crypt (Table 3 row 6): IDEA encryption from the JavaGrande
/// suite. Byte blocks stream through eight rounds of 16-bit modular
/// arithmetic against a 52-entry key schedule. Two properties matter
/// for the reproduction:
///
///  - the data is *bytes*, whose Lime-runtime accesses are expensive
///    on the bytecode baseline — this benchmark is the paper's worst
///    Lime-vs-Java case (~50%, §5.1) — and whose computation-per-byte
///    is low, making it communication-bound on the GPU (Fig. 9);
///  - the key schedule is read uniformly (constant memory idiom).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Random.h"

using namespace lime;
using namespace lime::wl;

namespace {

const char *LimeSource = R"(
  class Crypt {
    static byte[[][8]] data;
    static int[[52]] key;
    static byte[[][8]] lastOut;
    static final int REPS = 2;
    int steps;

    byte[[][8]] src() {
      if (steps >= REPS) throw Underflow;
      steps += 1;
      return data;
    }

    // IDEA multiplication modulo 2^16 + 1 (0 stands for 2^16).
    static local int mulI(int a, int b) {
      long r = 0L;
      if (a == 0) {
        r = (1 - b) & 65535;
      } else if (b == 0) {
        r = (1 - a) & 65535;
      } else {
        long p = (long) a * b;
        long lo = p & 65535L;
        long hi = (p >> 16) & 65535L;
        r = lo - hi;
        if (lo < hi) r = r + 1L;
      }
      return (int) (r & 65535L);
    }

    static local byte[[8]] encrypt(byte[[8]] block, int[[52]] key) {
      int x1 = ((block[0] & 255) << 8) | (block[1] & 255);
      int x2 = ((block[2] & 255) << 8) | (block[3] & 255);
      int x3 = ((block[4] & 255) << 8) | (block[5] & 255);
      int x4 = ((block[6] & 255) << 8) | (block[7] & 255);
      for (int r = 0; r < 8; r++) {
        int p1 = mulI(x1, key[r * 6 + 0]);
        int p2 = (x2 + key[r * 6 + 1]) & 65535;
        int p3 = (x3 + key[r * 6 + 2]) & 65535;
        int p4 = mulI(x4, key[r * 6 + 3]);
        int q1 = p1 ^ p3;
        int q2 = p2 ^ p4;
        int r1 = mulI(q1, key[r * 6 + 4]);
        int r2 = mulI((q2 + r1) & 65535, key[r * 6 + 5]);
        int r3 = (r1 + r2) & 65535;
        x1 = p1 ^ r2;
        x2 = p3 ^ r2;
        x3 = p2 ^ r3;
        x4 = p4 ^ r3;
      }
      int y1 = mulI(x1, key[48]);
      int y2 = (x2 + key[49]) & 65535;
      int y3 = (x3 + key[50]) & 65535;
      int y4 = mulI(x4, key[51]);
      return new byte[[8]]{
        (byte)(y1 >> 8), (byte) y1,
        (byte)(y2 >> 8), (byte) y2,
        (byte)(y3 >> 8), (byte) y3,
        (byte)(y4 >> 8), (byte) y4
      };
    }

    static local byte[[][8]] run_idea(byte[[][8]] data, int[[52]] key) {
      return encrypt(key) @ data;
    }

    void sink(byte[[][8]] ct) { Crypt.lastOut = ct; }

    static void run() {
      finish task new Crypt().src
          => task Crypt.run_idea(Crypt.key)
          => task new Crypt().sink;
    }
  }
)";

} // namespace

Workload lime::wl::makeJGCrypt() {
  Workload W;
  W.Id = "crypt";
  W.Name = "JG-Crypt";
  W.Description = "IDEA encryption";
  W.DataType = "Byte";
  W.PaperInputBytes = 3 * 1024 * 1024;
  W.PaperOutputBytes = 3 * 1024 * 1024;
  W.LimeSource = LimeSource;
  W.ClassName = "Crypt";
  W.FilterMethod = "run_idea";
  // The IDEA key schedule always expands to 52 subkeys (Prepare below
  // builds exactly 52); the kernel reads key[6r+c] for r<8 plus the
  // final four, so this discharges the data-length bounds warning.
  W.DefaultAssumes = {"len(key) >= 52"};
  W.Prepare = [](Interp &I, double Scale) {
    // Table 3: 3MB of data = 384K 8-byte blocks.
    unsigned NBlocks = std::max(256u, static_cast<unsigned>(393216 * Scale));
    SplitMix64 Rng(0x1DEA);
    std::vector<int8_t> Data(static_cast<size_t>(NBlocks) * 8);
    for (int8_t &B : Data)
      B = static_cast<int8_t>(Rng.nextBelow(256));
    std::vector<int32_t> Key(52);
    for (int32_t &K : Key)
      K = static_cast<int32_t>(Rng.nextBelow(65536));
    setStatic(I, "Crypt", "data", makeByteMatrix(I.types(), Data, 8));
    // The key is a bounded value array int[[52]].
    auto KeyArr = std::make_shared<RtArray>();
    KeyArr->ElementType = I.types().intType();
    KeyArr->Immutable = true;
    for (int32_t K : Key)
      KeyArr->Elems.push_back(RtValue::makeInt(K));
    setStatic(I, "Crypt", "key", RtValue::makeArray(std::move(KeyArr)));
  };
  return W;
}
