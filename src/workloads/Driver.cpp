//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::rt;

namespace {

/// One compiled workload session.
struct Session {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Interp> I;
  Program *Prog = nullptr;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

Session openSession(const Workload &W, double Scale) {
  Session S;
  S.Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  Parser P(W.LimeSource, *S.Ctx, Diags);
  S.Prog = P.parseProgram();
  if (!Diags.hasErrors()) {
    Sema Sm(*S.Ctx, Diags);
    Sm.check(S.Prog);
  }
  if (Diags.hasErrors()) {
    S.Error = "workload '" + W.Id + "' failed to compile:\n" + Diags.dump();
    return S;
  }
  S.I = std::make_unique<Interp>(S.Prog, S.Ctx->types());
  W.Prepare(*S.I, Scale);
  return S;
}

} // namespace

RunOutcome wl::runWorkload(const Workload &W, RunMode Mode, double Scale,
                           const OffloadConfig &Offload,
                           const ServiceHookFactory &ServiceFactory) {
  RunOutcome Out;
  Session S = openSession(W, Scale);
  if (!S.ok()) {
    Out.Error = S.Error;
    return Out;
  }
  Interp &I = *S.I;

  JavaCostModel Cost;
  Cost.LimeBytecodeMode = Mode != RunMode::PureJava;
  I.setCostModel(Cost);
  I.costs().reset();

  PipelineConfig PC;
  PC.OffloadFilters = Mode == RunMode::Offloaded;
  PC.Offload = Offload;
  // The workload's standing facts ride along so every offloaded launch
  // spot-checks them against the actual inputs (stale facts fail loudly
  // instead of silently licensing unsound bounds proofs).
  PC.Offload.Assumes.insert(PC.Offload.Assumes.end(),
                            W.DefaultAssumes.begin(), W.DefaultAssumes.end());
  if (PC.OffloadFilters && ServiceFactory)
    PC.ServiceInvoke = ServiceFactory(S.Prog, S.Ctx->types());
  TaskGraphRuntime RT(I, PC);

  ExecResult R = I.callStatic(W.ClassName, W.RunMethod, {});
  if (!R.ok()) {
    Out.Error = "workload '" + W.Id + "' failed: " + R.TrapMessage;
    return Out;
  }

  Out.HostNs = I.simTimeNs();
  Out.Nodes = RT.nodeStats();
  double DeviceNs = 0.0;
  for (const NodeStats &N : Out.Nodes) {
    if (!N.Offloaded)
      continue;
    Out.Device.Marshal += N.Device.Marshal;
    Out.Device.ApiNs += N.Device.ApiNs;
    Out.Device.PcieNs += N.Device.PcieNs;
    Out.Device.KernelNs += N.Device.KernelNs;
    Out.Device.Invocations += N.Device.Invocations;
    Out.Device.LastCounters = N.Device.LastCounters;
    if (Offload.OverlapPipelining && N.Device.Invocations > 1) {
      // §5.3: double-buffered transfers overlap communication with
      // kernel execution; steady state runs at the slower of the two,
      // plus one pipeline-fill of the faster.
      double K = N.Device.KernelNs;
      double C = N.Device.commNs();
      DeviceNs += std::max(K, C) +
                  std::min(K, C) / static_cast<double>(N.Device.Invocations);
    } else {
      DeviceNs += N.Device.totalNs();
    }
  }
  Out.EndToEndNs = Out.HostNs + DeviceNs;
  Out.Result = getStatic(I, W.ClassName, W.ResultField);

  if (Mode == RunMode::Offloaded) {
    // Keep the generated kernel source for reports.
    GpuCompiler GC(S.Prog, S.Ctx->types());
    MethodDecl *Filter =
        S.Prog->findClass(W.ClassName)->findMethod(W.FilterMethod);
    if (Filter) {
      CompiledKernel K = GC.compile(Filter, Offload.Mem);
      if (K.Ok)
        Out.KernelSource = K.Source;
    }
  }
  return Out;
}

HandTunedResult wl::runHandTunedKernel(const Workload &W,
                                       const std::string &Device,
                                       double Scale, unsigned LocalSize) {
  HandTunedResult R;
  if (!W.hasHandTuned()) {
    R.Error = "workload '" + W.Id + "' has no hand-tuned comparator";
    return R;
  }
  Session S = openSession(W, Scale);
  if (!S.ok()) {
    R.Error = S.Error;
    return R;
  }
  ocl::ClContext Ctx(Device);
  HandTunedResult HR = W.RunHandTuned(Ctx, *S.I, LocalSize);
  HR.Counters = Ctx.profile().LastKernelCounters;
  return HR;
}

GeneratedKernelRun wl::runGeneratedKernel(const Workload &W,
                                          const std::string &Device,
                                          const MemoryConfig &Config,
                                          double Scale, unsigned LocalSize) {
  GeneratedKernelRun Out;
  Session S = openSession(W, Scale);
  if (!S.ok()) {
    Out.Error = S.Error;
    return Out;
  }
  Interp &I = *S.I;

  MethodDecl *Filter =
      S.Prog->findClass(W.ClassName)->findMethod(W.FilterMethod);
  if (!Filter) {
    Out.Error = "no filter method " + W.FilterMethod;
    return Out;
  }

  OffloadConfig OC;
  OC.DeviceName = Device;
  OC.Mem = Config;
  OC.LocalSize = LocalSize;
  OC.Assumes = W.DefaultAssumes;
  OffloadedFilter OF(S.Prog, S.Ctx->types(), Filter, OC);
  if (!OF.ok()) {
    Out.Error = OF.error();
    return Out;
  }

  // Assemble the worker arguments: the streamed input is whatever the
  // source task would emit — by convention the workload's first
  // static input field — followed by the filter's bound extras. We
  // reconstruct them from the worker's parameter names matched to
  // same-named statics.
  std::vector<RtValue> Args;
  ClassDecl *C = S.Prog->findClass(W.ClassName);
  for (ParamDecl *P : Filter->params()) {
    FieldDecl *F = C->findField(P->name());
    if (!F) {
      // Fall back: the first parameter streams the first static
      // array field.
      Out.Error = "cannot bind filter parameter '" + P->name() +
                  "' to a workload input field";
      return Out;
    }
    Args.push_back(I.getStaticField(F));
  }

  ExecResult R = OF.invoke(Args);
  if (!R.ok()) {
    Out.Error = R.TrapMessage;
    return Out;
  }
  Out.KernelNs = OF.stats().KernelNs;
  Out.WallDispatchMs = OF.context().profile().WallDispatchMs;
  Out.Result = R.Value;
  Out.Source = OF.kernel().Source;
  Out.Counters = OF.stats().LastCounters;
  return Out;
}
