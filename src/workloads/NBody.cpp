//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N-Body (paper §2, §3, Fig. 1/2; Table 3 row 1): the n^2 force
/// calculation. Particles are float[[][4]] (x, y, z, mass) — "four
/// floating-point values even though each force value has only three
/// components. This decision allows the device to vectorize the
/// memory accesses" (§2) — and forces are float[[][3]].
///
/// The hand-tuned comparator is the classic OpenCL N-Body: float4
/// tiles staged in local memory, vector loads, one thread per body.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Random.h"
#include "support/StringUtils.h"

using namespace lime;
using namespace lime::wl;

namespace {

std::string limeSource(bool Double) {
  const char *F = Double ? "double" : "float";
  const char *Suffix = Double ? "" : "f";
  return formatString(R"(
    class NBody {
      static %1$s[[][4]] positions;
      static %1$s[[][3]] lastOut;
      static final int REPS = 2;
      int steps;

      %1$s[[][4]] src() {
        if (steps >= REPS) throw Underflow;
        steps += 1;
        return positions;
      }

      static local %1$s[[3]] force(%1$s[[4]] p, %1$s[[][4]] all) {
        %1$s fx = 0%2$s; %1$s fy = 0%2$s; %1$s fz = 0%2$s;
        for (int j = 0; j < all.length; j++) {
          %1$s[[4]] q = all[j];
          %1$s dx = q[0] - p[0];
          %1$s dy = q[1] - p[1];
          %1$s dz = q[2] - p[2];
          %1$s r2 = dx*dx + dy*dy + dz*dz + 0.01%2$s;
          %1$s inv = q[3] / (r2 * Math.sqrt(r2));
          fx += dx * inv; fy += dy * inv; fz += dz * inv;
        }
        return new %1$s[[3]]{fx, fy, fz};
      }

      static local %1$s[[][3]] computeForces(%1$s[[][4]] positions) {
        return force(positions) @ positions;
      }

      // The force accumulator of Fig. 2: consumes the forces and
      // computes new positions for the next simulation step (thaw ->
      // integrate -> freeze, the Java-interop array conversion).
      void accumulate(%1$s[[][3]] forces) {
        NBody.lastOut = forces;
        %1$s[][] p = (%1$s[][]) NBody.positions;
        for (int i = 0; i < p.length; i++) {
          %1$s m = p[i][3];
          p[i][0] += 0.0001%2$s * forces[i][0] / m;
          p[i][1] += 0.0001%2$s * forces[i][1] / m;
          p[i][2] += 0.0001%2$s * forces[i][2] / m;
        }
        NBody.positions = (%1$s[[][4]]) p;
      }

      static void run() {
        finish task new NBody().src
            => task NBody.computeForces
            => task new NBody().accumulate;
      }
    }
  )",
                      F, Suffix);
}

template <typename T>
std::vector<T> generateParticles(unsigned N) {
  SplitMix64 Rng(0x4B0D1);
  std::vector<T> Out(static_cast<size_t>(N) * 4);
  for (unsigned I = 0; I != N; ++I) {
    Out[I * 4 + 0] = static_cast<T>(Rng.nextFloat(-1.0f, 1.0f));
    Out[I * 4 + 1] = static_cast<T>(Rng.nextFloat(-1.0f, 1.0f));
    Out[I * 4 + 2] = static_cast<T>(Rng.nextFloat(-1.0f, 1.0f));
    Out[I * 4 + 3] = static_cast<T>(Rng.nextFloat(0.1f, 1.0f)); // mass
  }
  return Out;
}

/// Hand-tuned single-precision kernel (§5.2 comparator).
const char *HandTunedSource = R"(
__kernel void nbody_hand(__global float* out, __global const float* pos,
                         int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  int lsize = get_local_size(0);
  __local float4 tile[64];
  float4 p = (float4)(0.0f);
  if (gid < n) p = vload4(gid, pos);
  float fx = 0.0f; float fy = 0.0f; float fz = 0.0f;
  for (int jt = 0; jt < n; jt += 64) {
    int cnt = min(64, n - jt);
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int t = lid; t < cnt; t += lsize) tile[t] = vload4(jt + t, pos);
    barrier(CLK_LOCAL_MEM_FENCE);
    if (gid < n) {
      for (int j = 0; j < cnt; j++) {
        float4 q = tile[j];
        float dx = q.x - p.x;
        float dy = q.y - p.y;
        float dz = q.z - p.z;
        float r2 = dx*dx + dy*dy + dz*dz + 0.01f;
        float inv = q.w / (r2 * sqrt(r2));
        fx += dx * inv; fy += dy * inv; fz += dz * inv;
      }
    }
  }
  if (gid < n) {
    out[gid * 3 + 0] = fx;
    out[gid * 3 + 1] = fy;
    out[gid * 3 + 2] = fz;
  }
}
)";

HandTunedResult runHandTuned(ocl::ClContext &Ctx, Interp &I,
                             unsigned LocalSize) {
  HandTunedResult R;
  RtValue Input = getStatic(I, "NBody", "positions");
  std::vector<uint8_t> Pos = flattenValue(Input);
  uint32_t N = static_cast<uint32_t>(Input.array()->Elems.size());

  std::string Err = Ctx.buildProgram(HandTunedSource);
  if (!Err.empty()) {
    R.Error = Err;
    return R;
  }
  ocl::ClBuffer BPos = Ctx.createBuffer(Pos.size());
  ocl::ClBuffer BOut = Ctx.createBuffer(static_cast<uint64_t>(N) * 3 * 4);
  Ctx.enqueueWrite(BPos, Pos.data(), Pos.size());

  double Kern0 = Ctx.profile().KernelNs;
  uint32_t Global = (N + LocalSize - 1) / LocalSize * LocalSize;
  Err = Ctx.enqueueKernel("nbody_hand",
                          {ocl::LaunchArg::buffer(BOut.Offset, BOut.Space),
                           ocl::LaunchArg::buffer(BPos.Offset, BPos.Space),
                           ocl::LaunchArg::i32(static_cast<int32_t>(N))},
                          {Global, 1}, {LocalSize, 1});
  if (!Err.empty()) {
    R.Error = Err;
    return R;
  }
  R.KernelNs = Ctx.profile().KernelNs - Kern0;

  std::vector<float> Out(static_cast<size_t>(N) * 3);
  Ctx.enqueueRead(BOut, Out.data(), Out.size() * 4);
  R.Result = makeFloatMatrix(I.types(), Out, 3);
  return R;
}

} // namespace

Workload lime::wl::makeNBody(bool Double) {
  Workload W;
  W.Id = Double ? "nbody_dp" : "nbody_sp";
  W.Name = Double ? "N-Body (Double)" : "N-Body (Single)";
  W.Description = "N-Body simulation";
  W.DataType = Double ? "Double" : "Float";
  W.PaperInputBytes = Double ? 128 * 1024 : 64 * 1024;
  W.PaperOutputBytes = Double ? 128 * 1024 : 48 * 1024;
  W.LimeSource = limeSource(Double);
  W.ClassName = "NBody";
  W.FilterMethod = "computeForces";
  W.Prepare = [Double](Interp &I, double Scale) {
    // Table 3: 64KB single input = 4096 particles.
    unsigned N = std::max(64u, static_cast<unsigned>(4096 * Scale));
    if (Double) {
      auto Data = generateParticles<double>(N);
      setStatic(I, "NBody", "positions", makeDoubleMatrix(I.types(), Data, 4));
    } else {
      auto Data = generateParticles<float>(N);
      setStatic(I, "NBody", "positions", makeFloatMatrix(I.types(), Data, 4));
    }
  };
  if (!Double)
    W.RunHandTuned = runHandTuned;
  return W;
}
