//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cstring>

using namespace lime;
using namespace lime::wl;

namespace {

template <typename T, typename MakeFn>
RtValue makeScalarArray(TypeContext &Types, const Type *ElemTy,
                        const std::vector<T> &Data, MakeFn Make) {
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = ElemTy;
  Arr->Immutable = true;
  Arr->Elems.reserve(Data.size());
  for (T V : Data)
    Arr->Elems.push_back(Make(V));
  return RtValue::makeArray(std::move(Arr));
}

template <typename T, typename MakeFn>
RtValue makeScalarMatrix(TypeContext &Types, const Type *ElemTy,
                         const std::vector<T> &Data, unsigned K,
                         MakeFn Make) {
  const ArrayType *RowTy =
      Types.getArrayType(ElemTy, /*IsValueArray=*/true, K);
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = RowTy;
  Arr->Immutable = true;
  Arr->Elems.reserve(Data.size() / K);
  for (size_t I = 0; I + K <= Data.size(); I += K) {
    auto Row = std::make_shared<RtArray>();
    Row->ElementType = ElemTy;
    Row->Immutable = true;
    Row->Elems.reserve(K);
    for (unsigned C = 0; C != K; ++C)
      Row->Elems.push_back(Make(Data[I + C]));
    Arr->Elems.push_back(RtValue::makeArray(std::move(Row)));
  }
  return RtValue::makeArray(std::move(Arr));
}

} // namespace

RtValue wl::makeFloatArray(TypeContext &T, const std::vector<float> &Data) {
  return makeScalarArray(T, T.floatType(), Data, RtValue::makeFloat);
}

RtValue wl::makeDoubleArray(TypeContext &T, const std::vector<double> &Data) {
  return makeScalarArray(T, T.doubleType(), Data, RtValue::makeDouble);
}

RtValue wl::makeIntArray(TypeContext &T, const std::vector<int32_t> &Data) {
  return makeScalarArray(T, T.intType(), Data, RtValue::makeInt);
}

RtValue wl::makeByteArray(TypeContext &T, const std::vector<int8_t> &Data) {
  return makeScalarArray(T, T.byteType(), Data, RtValue::makeByte);
}

RtValue wl::makeFloatMatrix(TypeContext &T, const std::vector<float> &Data,
                            unsigned K) {
  return makeScalarMatrix(T, T.floatType(), Data, K, RtValue::makeFloat);
}

RtValue wl::makeDoubleMatrix(TypeContext &T, const std::vector<double> &Data,
                             unsigned K) {
  return makeScalarMatrix(T, T.doubleType(), Data, K, RtValue::makeDouble);
}

RtValue wl::makeIntMatrix(TypeContext &T, const std::vector<int32_t> &Data,
                          unsigned K) {
  return makeScalarMatrix(T, T.intType(), Data, K, RtValue::makeInt);
}

RtValue wl::makeByteMatrix(TypeContext &T, const std::vector<int8_t> &Data,
                           unsigned K) {
  return makeScalarMatrix(T, T.byteType(), Data, K, RtValue::makeByte);
}

namespace {

void flattenInto(const RtValue &V, std::vector<uint8_t> &Out) {
  if (V.isArray()) {
    for (const RtValue &E : V.array()->Elems)
      flattenInto(E, Out);
    return;
  }
  auto Push = [&Out](const void *P, size_t N) {
    const auto *B = static_cast<const uint8_t *>(P);
    Out.insert(Out.end(), B, B + N);
  };
  switch (V.kind()) {
  case RtValue::Kind::Bool: {
    uint8_t B = V.asBool();
    Push(&B, 1);
    return;
  }
  case RtValue::Kind::Byte: {
    int8_t B = static_cast<int8_t>(V.asIntegral());
    Push(&B, 1);
    return;
  }
  case RtValue::Kind::Int: {
    int32_t I = static_cast<int32_t>(V.asIntegral());
    Push(&I, 4);
    return;
  }
  case RtValue::Kind::Long: {
    int64_t I = V.asIntegral();
    Push(&I, 8);
    return;
  }
  case RtValue::Kind::Float: {
    float F = static_cast<float>(V.asNumber());
    Push(&F, 4);
    return;
  }
  case RtValue::Kind::Double: {
    double D = V.asNumber();
    Push(&D, 8);
    return;
  }
  default:
    return;
  }
}

} // namespace

std::vector<uint8_t> wl::flattenValue(const RtValue &V) {
  std::vector<uint8_t> Out;
  flattenInto(V, Out);
  return Out;
}

void wl::setStatic(Interp &I, const std::string &Cls,
                   const std::string &Field, RtValue V) {
  ClassDecl *C = I.program()->findClass(Cls);
  assert(C && "unknown workload class");
  FieldDecl *F = C->findField(Field);
  assert(F && "unknown workload field");
  I.setStaticField(F, std::move(V));
}

RtValue wl::getStatic(Interp &I, const std::string &Cls,
                      const std::string &Field) {
  ClassDecl *C = I.program()->findClass(Cls);
  assert(C && "unknown workload class");
  FieldDecl *F = C->findField(Field);
  assert(F && "unknown workload field");
  return I.getStaticField(F);
}
