//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel JIT entry point: bytecode -> IR -> native x86-64 in a
/// W^X CodeBuffer. Depends only on ocl headers (Bytecode, DeviceModel,
/// JitABI); all VM access goes through the caller-supplied
/// HelperTable, so the jit library links standalone.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_JITCOMPILER_H
#define LIMECC_JIT_JITCOMPILER_H

#include "ocl/Bytecode.h"
#include "ocl/JitABI.h"

#include <string>

namespace lime::jit {

/// Compiles \p K for warps of \p WarpWidth lanes. On success the
/// artifact's Entry is callable (Owner pins the code buffer); on
/// deopt Entry is null and DeoptReason says why the kernel stays on
/// the interpreter. When \p DumpOut is non-null, the IR and code
/// stats are appended (the --jit-dump flag).
ocl::jitabi::JitArtifact compileKernel(const ocl::BcKernel &K,
                                       unsigned WarpWidth,
                                       const ocl::jitabi::HelperTable &Helpers,
                                       std::string *DumpOut = nullptr);

} // namespace lime::jit

#endif // LIMECC_JIT_JITCOMPILER_H
