//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"

#if defined(__unix__) || defined(__APPLE__)
#define LIMECC_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace lime::jit;

CodeBuffer::~CodeBuffer() {
#if LIMECC_JIT_HAVE_MMAP
  if (Base)
    ::munmap(Base, Capacity);
#endif
}

bool CodeBuffer::allocate(size_t Bytes) {
#if LIMECC_JIT_HAVE_MMAP
  if (Base || Bytes == 0)
    return false;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  size_t Rounded =
      (Bytes + static_cast<size_t>(Page) - 1) & ~(static_cast<size_t>(Page) - 1);
  void *P = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = static_cast<uint8_t *>(P);
  Capacity = Rounded;
  Finalized = false;
  return true;
#else
  (void)Bytes;
  return false;
#endif
}

bool CodeBuffer::finalize() {
#if LIMECC_JIT_HAVE_MMAP
  if (!Base || Finalized)
    return false;
  if (::mprotect(Base, Capacity, PROT_READ | PROT_EXEC) != 0)
    return false;
  Finalized = true;
  return true;
#else
  return false;
#endif
}
