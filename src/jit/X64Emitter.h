//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal x86-64 assembler covering exactly the instruction
/// repertoire the kernel JIT emits: 64-bit GPR moves/ALU, SSE2 scalar
/// float ops, compare/setcc/cmov, bsf-driven lane iteration, rel32
/// branches with label fixups, and indirect calls/jumps. Bytes
/// accumulate in a host vector; the caller copies them into a W^X
/// CodeBuffer once emission is complete (rel32 branches are
/// position-independent inside the buffer).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_X64EMITTER_H
#define LIMECC_JIT_X64EMITTER_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lime::jit {

enum Gpr : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15
};

enum Xmm : uint8_t { XMM0 = 0, XMM1 = 1, XMM2 = 2, XMM3 = 3 };

/// Condition codes (the low nibble of the 0F 8x / 0F 9x / 0F 4x
/// opcode families).
enum Cond : uint8_t {
  CC_B = 0x2,  // below (CF)
  CC_AE = 0x3, // above or equal
  CC_E = 0x4,  // equal / zero
  CC_NE = 0x5, // not equal
  CC_BE = 0x6,
  CC_A = 0x7, // above
  CC_S = 0x8,
  CC_NS = 0x9,
  CC_P = 0xA,  // parity (unordered)
  CC_NP = 0xB, // no parity
  CC_L = 0xC,  // less (signed)
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF
};

/// [Base + Index*Scale + Disp]; Index = RSP means "no index".
struct Mem {
  Gpr Base;
  int32_t Disp = 0;
  Gpr Index = RSP; // RSP encodes "none" in SIB
  uint8_t Scale = 1;

  static Mem base(Gpr B, int32_t D = 0) { return Mem{B, D, RSP, 1}; }
  static Mem idx(Gpr B, Gpr I, uint8_t S, int32_t D = 0) {
    return Mem{B, D, I, S};
  }
};

class X64Emitter {
public:
  using Label = int32_t;

  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }

  Label newLabel() {
    Bound.push_back(-1);
    return static_cast<Label>(Bound.size()) - 1;
  }
  void bind(Label L) {
    assert(Bound[static_cast<size_t>(L)] < 0 && "label bound twice");
    Bound[static_cast<size_t>(L)] = static_cast<int64_t>(Code.size());
  }
  int64_t labelOffset(Label L) const { return Bound[static_cast<size_t>(L)]; }

  /// Resolves every rel32 fixup; all labels must be bound.
  void patch() {
    for (const Fixup &F : Fixups) {
      int64_t Target = Bound[static_cast<size_t>(F.L)];
      assert(Target >= 0 && "unbound label");
      int32_t Rel = static_cast<int32_t>(Target - static_cast<int64_t>(F.Pos) - 4);
      std::memcpy(Code.data() + F.Pos, &Rel, 4);
    }
  }

  //===--------------------------------------------------------------------===//
  // GPR moves
  //===--------------------------------------------------------------------===//

  void movRI64(Gpr R, uint64_t Imm) { // movabs r, imm64
    rex(1, 0, 0, R >> 3);
    u8(0xB8 | (R & 7));
    u64(Imm);
  }
  void movRI32(Gpr R, uint32_t Imm) { // mov r32, imm32 (zero-extends)
    rexOpt(0, 0, 0, R >> 3);
    u8(0xB8 | (R & 7));
    u32(Imm);
  }
  void movRR(Gpr Dst, Gpr Src) { // mov dst, src
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x8B);
    modrmRR(Dst, Src);
  }
  void movRM(Gpr Dst, const Mem &M) { op_rm(0x8B, Dst, M, 1); }
  void movMR(const Mem &M, Gpr Src) { op_rm(0x89, Src, M, 1); }
  void movRR32(Gpr Dst, Gpr Src) { // mov dst32, src32 (zero-extends)
    rexOpt(0, Dst >> 3, 0, Src >> 3);
    u8(0x8B);
    modrmRR(Dst, Src);
  }

  // Narrow memory forms for the proven-access fast path: typed
  // loads/stores that match the interpreter's memcpy-based moves.
  void movzxR32M8(Gpr Dst, const Mem &M) { // movzx dst32, byte [M]
    emitRexMem(0, Dst, M);
    u8(0x0F);
    u8(0xB6);
    modrmMem(Dst, M);
  }
  void movsxR64M8(Gpr Dst, const Mem &M) { // movsx dst, byte [M]
    emitRexMem(1, Dst, M);
    u8(0x0F);
    u8(0xBE);
    modrmMem(Dst, M);
  }
  void movsxdR64M32(Gpr Dst, const Mem &M) { // movsxd dst, dword [M]
    emitRexMem(1, Dst, M);
    u8(0x63);
    modrmMem(Dst, M);
  }
  void movR32M(Gpr Dst, const Mem &M) { op_rm(0x8B, Dst, M, 0); }
  void movM32R(const Mem &M, Gpr Src) { op_rm(0x89, Src, M, 0); }
  void movM8R(const Mem &M, Gpr Src) { // mov byte [M], src8
    // SPL..DIL need a bare REX so the encoding doesn't name AH..BH.
    int R = Src >> 3, X = hasIndex(M) ? (M.Index >> 3) : 0, B = M.Base >> 3;
    if (R || X || B || (Src >= 4 && Src < 8))
      rex(0, R, X, B);
    u8(0x88);
    modrmMem(Src, M);
  }
  void cmpM8I(const Mem &M, uint8_t Imm) { // cmp byte [M], imm8
    emitRexMem(0, static_cast<Gpr>(7), M);
    u8(0x80);
    modrmMem(static_cast<Gpr>(7), M);
    u8(Imm);
  }
  void imulRRI(Gpr Dst, Gpr Src, int32_t Imm) { // imul dst, src, imm32
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x69);
    modrmRR(Dst, Src);
    u32(static_cast<uint32_t>(Imm));
  }

  //===--------------------------------------------------------------------===//
  // ALU
  //===--------------------------------------------------------------------===//

  void addRR(Gpr D, Gpr S) { alu_rr(0x03, D, S); }
  void subRR(Gpr D, Gpr S) { alu_rr(0x2B, D, S); }
  void andRR(Gpr D, Gpr S) { alu_rr(0x23, D, S); }
  void orRR(Gpr D, Gpr S) { alu_rr(0x0B, D, S); }
  void xorRR(Gpr D, Gpr S) { alu_rr(0x33, D, S); }
  void cmpRR(Gpr D, Gpr S) { alu_rr(0x3B, D, S); }
  void testRR(Gpr D, Gpr S) { // test d, s
    rex(1, S >> 3, 0, D >> 3);
    u8(0x85);
    modrmRR(S, D);
  }
  void imulRR(Gpr D, Gpr S) {
    rex(1, D >> 3, 0, S >> 3);
    u8(0x0F);
    u8(0xAF);
    modrmRR(D, S);
  }
  void aluRI(uint8_t SlashOp, Gpr R, int32_t Imm) { // 81 /n id
    rex(1, 0, 0, R >> 3);
    u8(0x81);
    modrmRR(static_cast<Gpr>(SlashOp), R);
    u32(static_cast<uint32_t>(Imm));
  }
  void addRI(Gpr R, int32_t I) { aluRI(0, R, I); }
  void andRI(Gpr R, int32_t I) { aluRI(4, R, I); }
  void subRI(Gpr R, int32_t I) { aluRI(5, R, I); }
  void xorRI(Gpr R, int32_t I) { aluRI(6, R, I); }
  void cmpRI(Gpr R, int32_t I) { aluRI(7, R, I); }
  void xorRI32(Gpr R, int32_t Imm) { // xor r32, imm32 (for float bits)
    rexOpt(0, 0, 0, R >> 3);
    u8(0x81);
    modrmRR(static_cast<Gpr>(6), R);
    u32(static_cast<uint32_t>(Imm));
  }
  /// add/sub qword [M], imm32 — counter and budget accumulators.
  void addMI(const Mem &M, int32_t Imm) { alu_mi(0, M, Imm); }
  void subMI(const Mem &M, int32_t Imm) { alu_mi(5, M, Imm); }

  void negR(Gpr R) { grp3(3, R); }
  void notR(Gpr R) { grp3(2, R); }
  void idivR(Gpr R) { grp3(7, R); }
  void divR(Gpr R) { grp3(6, R); }
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  void xorR32R32(Gpr D, Gpr S) { // xor d32, s32 (zeroing)
    rexOpt(0, D >> 3, 0, S >> 3);
    u8(0x33);
    modrmRR(D, S);
  }
  void shlCl(Gpr R) { grpD3(4, R); }
  void shrCl(Gpr R) { grpD3(5, R); }
  void sarCl(Gpr R) { grpD3(7, R); }
  void sarRI(Gpr R, uint8_t Imm) { // sar r, imm8
    rex(1, 0, 0, R >> 3);
    u8(0xC1);
    modrmRR(static_cast<Gpr>(7), R);
    u8(Imm);
  }
  void shrRI(Gpr R, uint8_t Imm) { // shr r, imm8
    rex(1, 0, 0, R >> 3);
    u8(0xC1);
    modrmRR(static_cast<Gpr>(5), R);
    u8(Imm);
  }

  void bsfRR(Gpr Dst, Gpr Src) {
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0xBC);
    modrmRR(Dst, Src);
  }
  void leaRM(Gpr Dst, const Mem &M) { op_rm(0x8D, Dst, M, 1); }

  void movzxR32R8(Gpr Dst, Gpr Src) { // movzx dst32, src8 (al/cl only)
    assert(Src < 4 && "only low byte regs without REX handling");
    rexOpt(0, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0xB6);
    modrmRR(Dst, Src);
  }
  void movsxR64R8(Gpr Dst, Gpr Src) {
    assert(Src < 4 && "only low byte regs");
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0xBE);
    modrmRR(Dst, Src);
  }
  void movsxdR64R32(Gpr Dst, Gpr Src) {
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x63);
    modrmRR(Dst, Src);
  }

  void setcc(Cond CC, Gpr R8) { // setcc r8 (al/cl only)
    assert(R8 < 4 && "only low byte regs");
    u8(0x0F);
    u8(0x90 | CC);
    modrmRR(static_cast<Gpr>(0), R8);
  }
  void cmovccRR(Cond CC, Gpr Dst, Gpr Src) {
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0x40 | CC);
    modrmRR(Dst, Src);
  }
  void cmovccRM(Cond CC, Gpr Dst, const Mem &M) {
    emitRexMem(1, Dst, M);
    u8(0x0F);
    u8(0x40 | CC);
    modrmMem(Dst, M);
  }
  void andR8R8(Gpr D, Gpr S) { // and d8, s8 (al/cl only)
    assert(D < 4 && S < 4);
    u8(0x22);
    modrmRR(D, S);
  }
  void orR8R8(Gpr D, Gpr S) {
    assert(D < 4 && S < 4);
    u8(0x0A);
    modrmRR(D, S);
  }

  //===--------------------------------------------------------------------===//
  // SSE2 scalar
  //===--------------------------------------------------------------------===//

  void movsdXM(Xmm Dst, const Mem &M) { sse_rm(0xF2, 0x10, Dst, M); }
  void movsdMX(const Mem &M, Xmm Src) { sse_rm(0xF2, 0x11, Src, M); }
  void movssXM(Xmm Dst, const Mem &M) { sse_rm(0xF3, 0x10, Dst, M); }
  void movssMX(const Mem &M, Xmm Src) { sse_rm(0xF3, 0x11, Src, M); }
  void movqXR(Xmm Dst, Gpr Src) { // movq xmm, r64
    u8(0x66);
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0x6E);
    modrmRR(static_cast<Gpr>(Dst), Src);
  }
  void movqRX(Gpr Dst, Xmm Src) { // movq r64, xmm
    u8(0x66);
    rex(1, Src >> 3, 0, Dst >> 3);
    u8(0x0F);
    u8(0x7E);
    modrmRR(static_cast<Gpr>(Src), Dst);
  }
  void movdXR32(Xmm Dst, Gpr Src) { // movd xmm, r32
    u8(0x66);
    rexOpt(0, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0x6E);
    modrmRR(static_cast<Gpr>(Dst), Src);
  }
  void movdR32X(Gpr Dst, Xmm Src) { // movd r32, xmm
    u8(0x66);
    rexOpt(0, Src >> 3, 0, Dst >> 3);
    u8(0x0F);
    u8(0x7E);
    modrmRR(static_cast<Gpr>(Src), Dst);
  }

  void addsd(Xmm D, Xmm S) { sse_rr(0xF2, 0x58, D, S); }
  void subsd(Xmm D, Xmm S) { sse_rr(0xF2, 0x5C, D, S); }
  void mulsd(Xmm D, Xmm S) { sse_rr(0xF2, 0x59, D, S); }
  void divsd(Xmm D, Xmm S) { sse_rr(0xF2, 0x5E, D, S); }
  void sqrtsd(Xmm D, Xmm S) { sse_rr(0xF2, 0x51, D, S); }
  void addss(Xmm D, Xmm S) { sse_rr(0xF3, 0x58, D, S); }
  void subss(Xmm D, Xmm S) { sse_rr(0xF3, 0x5C, D, S); }
  void mulss(Xmm D, Xmm S) { sse_rr(0xF3, 0x59, D, S); }
  void divss(Xmm D, Xmm S) { sse_rr(0xF3, 0x5E, D, S); }
  void cvtsd2ss(Xmm D, Xmm S) { sse_rr(0xF2, 0x5A, D, S); }
  void cvtss2sd(Xmm D, Xmm S) { sse_rr(0xF3, 0x5A, D, S); }
  void ucomisd(Xmm A, Xmm B) {
    u8(0x66);
    rexOpt(0, A >> 3, 0, B >> 3);
    u8(0x0F);
    u8(0x2E);
    modrmRR(static_cast<Gpr>(A), static_cast<Gpr>(B));
  }
  void pxor(Xmm D, Xmm S) {
    u8(0x66);
    rexOpt(0, D >> 3, 0, S >> 3);
    u8(0x0F);
    u8(0xEF);
    modrmRR(static_cast<Gpr>(D), static_cast<Gpr>(S));
  }
  void cvtsi2sdRX(Xmm Dst, Gpr Src) { // cvtsi2sd xmm, r64
    u8(0xF2);
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0x2A);
    modrmRR(static_cast<Gpr>(Dst), Src);
  }
  void cvttsd2siXR(Gpr Dst, Xmm Src) { // cvttsd2si r64, xmm
    u8(0xF2);
    rex(1, Dst >> 3, 0, Src >> 3);
    u8(0x0F);
    u8(0x2C);
    modrmRR(Dst, static_cast<Gpr>(Src));
  }

  //===--------------------------------------------------------------------===//
  // Control
  //===--------------------------------------------------------------------===//

  void push(Gpr R) {
    if (R >> 3)
      u8(0x41);
    u8(0x50 | (R & 7));
  }
  void pop(Gpr R) {
    if (R >> 3)
      u8(0x41);
    u8(0x58 | (R & 7));
  }
  void ret() { u8(0xC3); }
  void callR(Gpr R) {
    if (R >> 3)
      u8(0x41);
    u8(0xFF);
    modrmRR(static_cast<Gpr>(2), R);
  }
  void jmpR(Gpr R) {
    if (R >> 3)
      u8(0x41);
    u8(0xFF);
    modrmRR(static_cast<Gpr>(4), R);
  }
  void jmpM(const Mem &M) { // jmp qword [M]
    emitRexMem(0, static_cast<Gpr>(4), M);
    u8(0xFF);
    modrmMem(static_cast<Gpr>(4), M);
  }
  void jmp(Label L) {
    u8(0xE9);
    fixup(L);
  }
  void jcc(Cond CC, Label L) {
    u8(0x0F);
    u8(0x80 | CC);
    fixup(L);
  }

private:
  struct Fixup {
    size_t Pos;
    Label L;
  };

  void u8(uint8_t B) { Code.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void rex(int W, int R, int X, int B) {
    u8(static_cast<uint8_t>(0x40 | (W << 3) | (R << 2) | (X << 1) | B));
  }
  /// REX only when a bit is set (ops where REX.W is not wanted).
  void rexOpt(int W, int R, int X, int B) {
    if (W || R || X || B)
      rex(W, R, X, B);
  }
  void modrmRR(Gpr Reg, Gpr Rm) {
    u8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  bool hasIndex(const Mem &M) const { return M.Index != RSP; }

  void emitRexMem(int W, Gpr Reg, const Mem &M) {
    rexOpt(W, Reg >> 3, hasIndex(M) ? (M.Index >> 3) : 0, M.Base >> 3);
  }

  void modrmMem(Gpr Reg, const Mem &M) {
    // Uniform mod=10 (disp32) keeps the encoder trivial; code size is
    // not a goal here.
    uint8_t ScaleBits =
        M.Scale == 8 ? 3 : M.Scale == 4 ? 2 : M.Scale == 2 ? 1 : 0;
    if (hasIndex(M)) {
      u8(static_cast<uint8_t>(0x80 | ((Reg & 7) << 3) | 4));
      u8(static_cast<uint8_t>((ScaleBits << 6) | ((M.Index & 7) << 3) |
                              (M.Base & 7)));
    } else if ((M.Base & 7) == 4) { // RSP/R12 need a SIB byte
      u8(static_cast<uint8_t>(0x80 | ((Reg & 7) << 3) | 4));
      u8(0x24);
    } else {
      u8(static_cast<uint8_t>(0x80 | ((Reg & 7) << 3) | (M.Base & 7)));
    }
    u32(static_cast<uint32_t>(M.Disp));
  }

  void op_rm(uint8_t Op, Gpr Reg, const Mem &M, int W) {
    emitRexMem(W, Reg, M);
    u8(Op);
    modrmMem(Reg, M);
  }
  void alu_rr(uint8_t Op, Gpr D, Gpr S) {
    rex(1, D >> 3, 0, S >> 3);
    u8(Op);
    modrmRR(D, S);
  }
  void alu_mi(uint8_t SlashOp, const Mem &M, int32_t Imm) {
    emitRexMem(1, static_cast<Gpr>(SlashOp), M);
    u8(0x81);
    modrmMem(static_cast<Gpr>(SlashOp), M);
    u32(static_cast<uint32_t>(Imm));
  }
  void grp3(uint8_t SlashOp, Gpr R) {
    rex(1, 0, 0, R >> 3);
    u8(0xF7);
    modrmRR(static_cast<Gpr>(SlashOp), R);
  }
  void grpD3(uint8_t SlashOp, Gpr R) {
    rex(1, 0, 0, R >> 3);
    u8(0xD3);
    modrmRR(static_cast<Gpr>(SlashOp), R);
  }
  void sse_rm(uint8_t Pfx, uint8_t Op, Xmm Reg, const Mem &M) {
    u8(Pfx);
    emitRexMem(0, static_cast<Gpr>(Reg), M);
    u8(0x0F);
    u8(Op);
    modrmMem(static_cast<Gpr>(Reg), M);
  }
  void sse_rr(uint8_t Pfx, uint8_t Op, Xmm D, Xmm S) {
    u8(Pfx);
    rexOpt(0, D >> 3, 0, S >> 3);
    u8(0x0F);
    u8(Op);
    modrmRR(static_cast<Gpr>(D), static_cast<Gpr>(S));
  }
  void fixup(Label L) {
    Fixups.push_back(Fixup{Code.size(), L});
    u32(0);
  }

  std::vector<uint8_t> Code;
  std::vector<int64_t> Bound;
  std::vector<Fixup> Fixups;
};

} // namespace lime::jit

#endif // LIMECC_JIT_X64EMITTER_H
