//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode -> JIT IR: block discovery at control ops and branch
/// targets, segment formation, issue-cost pre-summing, and the
/// compile-time supportability checks behind the deopt contract.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_LOWERING_H
#define LIMECC_JIT_LOWERING_H

#include "jit/Arena.h"
#include "jit/JitIR.h"

#include <string>

namespace lime::jit {

/// Lowers \p K for a warp of \p WarpWidth lanes. Returns null and
/// fills \p DeoptReason when the kernel cannot be JITted (it then
/// runs on the interpreter).
IRFunction *lowerKernel(Arena &A, const ocl::BcKernel &K, unsigned WarpWidth,
                        std::string &DeoptReason);

/// Human-readable IR dump for --jit-dump.
std::string dumpIR(const IRFunction &F);

} // namespace lime::jit

#endif // LIMECC_JIT_LOWERING_H
