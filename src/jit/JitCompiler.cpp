//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR -> x86-64. The emitted function has signature
/// `uint32_t entry(JitExecContext *)` and runs one warp until it
/// retires, parks at a barrier, or faults — mirroring
/// SimDevice::runWarp instruction for instruction.
///
/// Register plan (all callee-saved, live across helper calls):
///   rbx = JitExecContext*        rbp = JitWarp*
///   r13 = register-file base     r15 = block active mask
///   r14 = remaining-lanes mask   r12 = current lane index
/// rax/rcx/rdx and xmm0/xmm1 are per-operation scratch.
///
/// A lane's register slot lives at [r13 + r12*8 + Reg*WarpWidth*8],
/// i.e. warp lanes are contiguous per-lane slots walked by bsf over
/// the active mask — divergence costs nothing when a lane is off.
/// Float slots hold doubles (the VM's Slot union); F32 ops narrow to
/// single precision exactly where the interpreter does, so results
/// are bit-identical.
///
//===----------------------------------------------------------------------===//

#include "jit/JitCompiler.h"

#include "jit/CodeBuffer.h"
#include "jit/Lowering.h"
#include "jit/X64Emitter.h"
#include "ocl/DeviceModel.h"

#include <chrono>
#include <cmath>
#include <cstring>

using namespace lime;
using namespace lime::jit;
using namespace lime::ocl;
using namespace lime::ocl::jitabi;

namespace {

//===----------------------------------------------------------------------===//
// libm trampolines
//===----------------------------------------------------------------------===//
// The interpreter evaluates transcendentals through std::sin & co;
// calling the very same functions keeps results bit-identical. The
// float overloads matter: F32 fmod/min/max round through fmodf etc.

double jitSin(double X) { return std::sin(X); }
double jitCos(double X) { return std::cos(X); }
double jitTan(double X) { return std::tan(X); }
double jitExp(double X) { return std::exp(X); }
double jitLog(double X) { return std::log(X); }
double jitFloor(double X) { return std::floor(X); }
double jitPow(double X, double Y) { return std::pow(X, Y); }
double jitFmod(double X, double Y) { return std::fmod(X, Y); }
double jitFmin(double X, double Y) { return std::fmin(X, Y); }
double jitFmax(double X, double Y) { return std::fmax(X, Y); }
float jitFmodF(float X, float Y) { return std::fmod(X, Y); }
float jitFminF(float X, float Y) { return std::fmin(X, Y); }
float jitFmaxF(float X, float Y) { return std::fmax(X, Y); }

bool isFloatTy(ValType T) { return T == ValType::F32 || T == ValType::F64; }

/// Memory ops the emitter can open-code when the dispatch-time proof
/// table marks them Proven: scalar width, in a space whose arena base
/// is warp-invariant and pre-resolved into the exec context. Private
/// and Local stay on the helper (per-lane bases / bank pricing), as
/// do Param/Constant stores (rare, and Constant is logically
/// read-only).
bool provenFastPathEligible(const BcInstr &In) {
  if (In.Width != 1)
    return false;
  if (In.Op == BcOp::Load)
    return In.Space == AddrSpace::Global || In.Space == AddrSpace::Constant ||
           In.Space == AddrSpace::Param;
  if (In.Op == BcOp::Store)
    return In.Space == AddrSpace::Global;
  return false;
}

bool isUnsignedTy(ValType T) {
  return T == ValType::U8 || T == ValType::U32 || T == ValType::U64;
}

uint64_t bitsOf(double D) {
  uint64_t B;
  std::memcpy(&B, &D, 8);
  return B;
}

template <typename Fn> uint64_t fnAddr(Fn *F) {
  return reinterpret_cast<uint64_t>(F);
}

//===----------------------------------------------------------------------===//
// Kernel emitter
//===----------------------------------------------------------------------===//

class KernelEmitter {
public:
  KernelEmitter(const IRFunction &F, unsigned WarpWidth,
                const HelperTable &Helpers)
      : F(F), K(*F.Kernel), W(WarpWidth), H(Helpers) {}

  /// Emits the whole function; returns false only on internal
  /// inconsistencies (reported as a deopt).
  bool emit();

  const X64Emitter &emitter() const { return E; }

  /// Builds the pc -> absolute-address table once the code lives at
  /// \p Base.
  std::vector<uint64_t> buildPcTable(const uint8_t *Base) const;

private:
  // JitWarp field offsets.
  static constexpr int32_t offMask = offsetof(JitWarp, Mask);
  static constexpr int32_t offExited = offsetof(JitWarp, Exited);
  static constexpr int32_t offPc = offsetof(JitWarp, Pc);
  static constexpr int32_t offDepth = offsetof(JitWarp, Depth);
  static constexpr int32_t offRegs = offsetof(JitWarp, Regs);
  static constexpr int32_t offGlobalId0 = offsetof(JitWarp, GlobalId0);
  static constexpr int32_t offGlobalId1 = offsetof(JitWarp, GlobalId1);
  static constexpr int32_t offLocalId0 = offsetof(JitWarp, LocalId0);
  static constexpr int32_t offLocalId1 = offsetof(JitWarp, LocalId1);
  static constexpr int32_t offFrames = offsetof(JitWarp, Frames);
  // JitExecContext field offsets.
  static constexpr int32_t offWarp = offsetof(JitExecContext, Warp);
  static constexpr int32_t offBudget = offsetof(JitExecContext, Budget);
  static constexpr int32_t offCounters = offsetof(JitExecContext, Counters);
  static constexpr int32_t offPcTable = offsetof(JitExecContext, PcTable);
  static constexpr int32_t offScalars = offsetof(JitExecContext, Scalars);
  static constexpr int32_t offGlobalBase = offsetof(JitExecContext, GlobalBase);
  static constexpr int32_t offConstBase = offsetof(JitExecContext, ConstBase);
  static constexpr int32_t offParamBase = offsetof(JitExecContext, ParamBase);
  static constexpr int32_t offBcProven = offsetof(JitExecContext, BcProven);

  Mem slot(int32_t Reg) const {
    return Mem::idx(R13, R12, 8,
                    static_cast<int32_t>(Reg) * static_cast<int32_t>(W) * 8);
  }

  void callFn(uint64_t Addr) {
    E.movRI64(R10, Addr);
    E.callR(R10);
  }
  void callHelper(uint64_t Addr, uint32_t InstrIdx) {
    E.movRR(RDI, RBX);
    E.movRI32(RSI, InstrIdx);
    callFn(Addr);
  }

  /// Canonicalizes rax per wrapInt(V, Ty).
  void emitWrap(ValType Ty) {
    switch (Ty) {
    case ValType::I8:
      E.movsxR64R8(RAX, RAX);
      break;
    case ValType::U8:
      E.movzxR32R8(RAX, RAX);
      break;
    case ValType::I32:
      E.movsxdR64R32(RAX, RAX);
      break;
    case ValType::U32:
      E.movRR32(RAX, RAX);
      break;
    default:
      break;
    }
  }

  /// xmm0 = (double)(float)xmm0 — the F32 result rounding.
  void emitF32Round(Xmm X) {
    E.cvtsd2ss(X, X);
    E.cvtss2sd(X, X);
  }

  /// xmm0 = (double)rax via the compiler's u64->double sequence.
  void emitU64ToDouble() {
    X64Emitter::Label LNeg = E.newLabel(), LEnd = E.newLabel();
    E.testRR(RAX, RAX);
    E.jcc(CC_S, LNeg);
    E.cvtsi2sdRX(XMM0, RAX);
    E.jmp(LEnd);
    E.bind(LNeg);
    E.movRR(RCX, RAX);
    E.shrRI(RCX, 1);
    E.andRI(RAX, 1);
    E.orRR(RCX, RAX);
    E.cvtsi2sdRX(XMM0, RCX);
    E.addsd(XMM0, XMM0);
    E.bind(LEnd);
  }

  void emitSegmentOp(const BcInstr &In);
  void emitProvenMemGuard(const BcInstr &In, uint32_t Idx);
  void emitBinaryFloat(const BcInstr &In);
  void emitBinaryInt(const BcInstr &In);
  void emitCompare(const BcInstr &In);
  void emitUnary(const BcInstr &In);
  void emitCvt(const BcInstr &In);
  void emitTranscendental(const BcInstr &In);
  void emitGeometry(const BcInstr &In);
  void emitControlDispatch(uint32_t NextPc);
  void emitLaneCondScan(int32_t Reg);
  bool emitStructuredControl(const BcInstr &In);
  X64Emitter::Label labelFor(uint32_t Pc);

  const IRFunction &F;
  const BcKernel &K;
  const unsigned W;
  const HelperTable &H;
  X64Emitter E;
  std::vector<X64Emitter::Label> PcLabels; // leader pc -> label (else -1)
  X64Emitter::Label LDone = -1, LBarrier = -1, LFault = -1, LEpi = -1;
  X64Emitter::Label LDivTrap = -1, LRemTrap = -1, LBudgetTrap = -1,
                    LBadPc = -1;
};

X64Emitter::Label KernelEmitter::labelFor(uint32_t Pc) {
  if (Pc >= K.Code.size())
    return LDone;
  X64Emitter::Label &L = PcLabels[Pc];
  if (L < 0)
    L = E.newLabel();
  return L;
}

/// Load/Store fast path licensed by the bytecode proof tier. When the
/// dispatch-time verdict for this pc is Proven, the Mem helper's
/// bounds check and fault plumbing are unreachable, so the data move
/// is open-coded as a native lane loop over the active mask; the
/// MemPrice helper still runs first so issue charges and the §5
/// memory-model pricing are byte-identical to the interpreter. The
/// guard re-reads the verdict table at run time, so one artifact
/// serves proofs-on and proofs-off dispatches alike.
void KernelEmitter::emitProvenMemGuard(const BcInstr &In, uint32_t Idx) {
  X64Emitter::Label LSlow = E.newLabel(), LJoin = E.newLabel();
  E.movRM(RAX, Mem::base(RBX, offBcProven));
  E.testRR(RAX, RAX);
  E.jcc(CC_E, LSlow);
  E.cmpM8I(Mem::base(RAX, static_cast<int32_t>(Idx)), BcVerdictProven);
  E.jcc(CC_NE, LSlow);

  // Pricing first: it reads only the masks and the address-register
  // row, neither of which the data move below changes. It cannot
  // fault (the proof says no lane's bounds check can fire).
  callHelper(reinterpret_cast<uint64_t>(H.MemPrice), Idx);

  E.testRR(R15, R15);
  E.jcc(CC_E, LJoin); // no active lanes: charges done, nothing to move
  const int32_t offBase = In.Space == AddrSpace::Global ? offGlobalBase
                          : In.Space == AddrSpace::Constant ? offConstBase
                                                            : offParamBase;
  E.movRM(RDX, Mem::base(RBX, offBase));
  X64Emitter::Label LLoop = E.newLabel();
  E.movRR(R14, R15);
  E.bind(LLoop);
  E.bsfRR(R12, R14);
  E.movRM(RCX, slot(In.B)); // byte offset within the arena
  const Mem P = Mem::idx(RDX, RCX, 1, 0);
  if (In.Op == BcOp::Store) {
    // Mirrors execMemory's store path: slots hold int64/double; the
    // store truncates (ints) or rounds to single (F32).
    switch (In.Ty) {
    case ValType::F32:
      E.movsdXM(XMM0, slot(In.A));
      E.cvtsd2ss(XMM0, XMM0);
      E.movssMX(P, XMM0);
      break;
    case ValType::F64:
      E.movsdXM(XMM0, slot(In.A));
      E.movsdMX(P, XMM0);
      break;
    case ValType::I8:
    case ValType::U8:
      E.movRM(RAX, slot(In.A));
      E.movM8R(P, RAX);
      break;
    case ValType::I32:
    case ValType::U32:
      E.movRM(RAX, slot(In.A));
      E.movM32R(P, RAX);
      break;
    default: // I64 / U64
      E.movRM(RAX, slot(In.A));
      E.movMR(P, RAX);
      break;
    }
  } else {
    // Loads widen into the 8-byte slot: sign/zero-extend per type,
    // F32 promotes to the double the Slot union stores.
    switch (In.Ty) {
    case ValType::F32:
      E.movssXM(XMM0, P);
      E.cvtss2sd(XMM0, XMM0);
      E.movsdMX(slot(In.Dst), XMM0);
      break;
    case ValType::F64:
      E.movsdXM(XMM0, P);
      E.movsdMX(slot(In.Dst), XMM0);
      break;
    case ValType::I8:
      E.movsxR64M8(RAX, P);
      E.movMR(slot(In.Dst), RAX);
      break;
    case ValType::U8:
      E.movzxR32M8(RAX, P);
      E.movMR(slot(In.Dst), RAX);
      break;
    case ValType::I32:
      E.movsxdR64M32(RAX, P);
      E.movMR(slot(In.Dst), RAX);
      break;
    case ValType::U32:
      E.movR32M(RAX, P);
      E.movMR(slot(In.Dst), RAX);
      break;
    default: // I64 / U64
      E.movRM(RAX, P);
      E.movMR(slot(In.Dst), RAX);
      break;
    }
  }
  E.leaRM(RAX, Mem::base(R14, -1));
  E.andRR(R14, RAX); // clear lowest set bit; ZF when drained
  E.jcc(CC_NE, LLoop);
  E.jmp(LJoin);

  E.bind(LSlow);
  callHelper(reinterpret_cast<uint64_t>(H.Mem), Idx);
  E.cmpRI(RAX, static_cast<int32_t>(HelperFault));
  E.jcc(CC_E, LFault);
  E.bind(LJoin);
}

void KernelEmitter::emitBinaryFloat(const BcInstr &In) {
  const bool F32 = In.Ty == ValType::F32;
  E.movsdXM(XMM0, slot(In.A));
  E.movsdXM(XMM1, slot(In.B));
  switch (In.Op) {
  case BcOp::Add:
  case BcOp::Sub:
  case BcOp::Mul:
  case BcOp::Div:
    if (F32) {
      E.cvtsd2ss(XMM0, XMM0);
      E.cvtsd2ss(XMM1, XMM1);
      if (In.Op == BcOp::Add)
        E.addss(XMM0, XMM1);
      else if (In.Op == BcOp::Sub)
        E.subss(XMM0, XMM1);
      else if (In.Op == BcOp::Mul)
        E.mulss(XMM0, XMM1);
      else
        E.divss(XMM0, XMM1);
      E.cvtss2sd(XMM0, XMM0);
    } else {
      if (In.Op == BcOp::Add)
        E.addsd(XMM0, XMM1);
      else if (In.Op == BcOp::Sub)
        E.subsd(XMM0, XMM1);
      else if (In.Op == BcOp::Mul)
        E.mulsd(XMM0, XMM1);
      else
        E.divsd(XMM0, XMM1);
    }
    break;
  case BcOp::Rem:
  case BcOp::MinOp:
  case BcOp::MaxOp: {
    // fmod/fmin/fmax have NaN/zero semantics SSE min/max get wrong;
    // call the libm overload the interpreter uses.
    uint64_t Fn;
    if (F32) {
      E.cvtsd2ss(XMM0, XMM0);
      E.cvtsd2ss(XMM1, XMM1);
      Fn = In.Op == BcOp::Rem    ? fnAddr(&jitFmodF)
           : In.Op == BcOp::MinOp ? fnAddr(&jitFminF)
                                  : fnAddr(&jitFmaxF);
    } else {
      Fn = In.Op == BcOp::Rem    ? fnAddr(&jitFmod)
           : In.Op == BcOp::MinOp ? fnAddr(&jitFmin)
                                  : fnAddr(&jitFmax);
    }
    callFn(Fn);
    if (F32)
      E.cvtss2sd(XMM0, XMM0);
    break;
  }
  default:
    E.pxor(XMM0, XMM0); // unreachable (interpreter stores 0 here)
    break;
  }
  E.movsdMX(slot(In.Dst), XMM0);
}

void KernelEmitter::emitBinaryInt(const BcInstr &In) {
  const bool Unsigned = isUnsignedTy(In.Ty);
  switch (In.Op) {
  case BcOp::Add:
  case BcOp::Sub:
  case BcOp::Mul:
  case BcOp::And:
  case BcOp::Or:
  case BcOp::Xor:
    E.movRM(RAX, slot(In.A));
    E.movRM(RCX, slot(In.B));
    if (In.Op == BcOp::Add)
      E.addRR(RAX, RCX);
    else if (In.Op == BcOp::Sub)
      E.subRR(RAX, RCX);
    else if (In.Op == BcOp::Mul)
      E.imulRR(RAX, RCX);
    else if (In.Op == BcOp::And)
      E.andRR(RAX, RCX);
    else if (In.Op == BcOp::Or)
      E.orRR(RAX, RCX);
    else
      E.xorRR(RAX, RCX);
    emitWrap(In.Ty);
    break;
  case BcOp::Div:
  case BcOp::Rem:
    E.movRM(RAX, slot(In.A));
    E.movRM(RCX, slot(In.B));
    E.testRR(RCX, RCX);
    E.jcc(CC_E, In.Op == BcOp::Div ? LDivTrap : LRemTrap);
    if (Unsigned) {
      E.xorR32R32(RDX, RDX);
      E.divR(RCX);
    } else {
      E.cqo();
      E.idivR(RCX);
    }
    if (In.Op == BcOp::Rem)
      E.movRR(RAX, RDX);
    emitWrap(In.Ty);
    break;
  case BcOp::Shl:
  case BcOp::Shr:
    E.movRM(RAX, slot(In.A));
    E.movRM(RCX, slot(In.B));
    if (In.Op == BcOp::Shl)
      E.shlCl(RAX); // hardware masks the count to 63, like (Y & 63)
    else if (Unsigned)
      E.shrCl(RAX);
    else
      E.sarCl(RAX);
    emitWrap(In.Ty);
    break;
  case BcOp::MinOp:
  case BcOp::MaxOp:
    // The interpreter compares as signed int64 regardless of Ty.
    E.movRM(RAX, slot(In.A));
    E.movRM(RCX, slot(In.B));
    E.cmpRR(RCX, RAX);
    E.cmovccRR(In.Op == BcOp::MinOp ? CC_L : CC_G, RAX, RCX);
    emitWrap(In.Ty);
    break;
  default:
    E.xorR32R32(RAX, RAX);
    break;
  }
  E.movMR(slot(In.Dst), RAX);
}

void KernelEmitter::emitCompare(const BcInstr &In) {
  if (isFloatTy(In.Ty)) {
    E.movsdXM(XMM0, slot(In.A));
    E.movsdXM(XMM1, slot(In.B));
    switch (In.Op) {
    case BcOp::CmpLt: // X < Y  ==  Y above X (unordered -> false)
      E.ucomisd(XMM1, XMM0);
      E.setcc(CC_A, RAX);
      break;
    case BcOp::CmpLe:
      E.ucomisd(XMM1, XMM0);
      E.setcc(CC_AE, RAX);
      break;
    case BcOp::CmpGt:
      E.ucomisd(XMM0, XMM1);
      E.setcc(CC_A, RAX);
      break;
    case BcOp::CmpGe:
      E.ucomisd(XMM0, XMM1);
      E.setcc(CC_AE, RAX);
      break;
    case BcOp::CmpEq: // equal and ordered
      E.ucomisd(XMM0, XMM1);
      E.setcc(CC_E, RAX);
      E.setcc(CC_NP, RCX);
      E.andR8R8(RAX, RCX);
      break;
    default: // CmpNe: not-equal or unordered
      E.ucomisd(XMM0, XMM1);
      E.setcc(CC_NE, RAX);
      E.setcc(CC_P, RCX);
      E.orR8R8(RAX, RCX);
      break;
    }
  } else {
    const bool U = isUnsignedTy(In.Ty);
    E.movRM(RAX, slot(In.A));
    E.movRM(RCX, slot(In.B));
    E.cmpRR(RAX, RCX);
    Cond CC;
    switch (In.Op) {
    case BcOp::CmpLt:
      CC = U ? CC_B : CC_L;
      break;
    case BcOp::CmpLe:
      CC = U ? CC_BE : CC_LE;
      break;
    case BcOp::CmpGt:
      CC = U ? CC_A : CC_G;
      break;
    case BcOp::CmpGe:
      CC = U ? CC_AE : CC_GE;
      break;
    case BcOp::CmpEq:
      CC = CC_E;
      break;
    default:
      CC = CC_NE;
      break;
    }
    E.setcc(CC, RAX);
  }
  E.movzxR32R8(RAX, RAX);
  E.movMR(slot(In.Dst), RAX);
}

void KernelEmitter::emitUnary(const BcInstr &In) {
  if (isFloatTy(In.Ty)) {
    switch (In.Op) {
    case BcOp::Neg:
      if (In.Ty == ValType::F32) {
        // -(float)A.D, widened back: flip the single's sign bit.
        E.movsdXM(XMM0, slot(In.A));
        E.cvtsd2ss(XMM0, XMM0);
        E.movdR32X(RAX, XMM0);
        E.xorRI32(RAX, static_cast<int32_t>(0x80000000u));
        E.movdXR32(XMM0, RAX);
        E.cvtss2sd(XMM0, XMM0);
        E.movsdMX(slot(In.Dst), XMM0);
      } else {
        E.movRM(RAX, slot(In.A));
        E.movRI64(RCX, 0x8000000000000000ULL);
        E.xorRR(RAX, RCX);
        E.movMR(slot(In.Dst), RAX);
      }
      break;
    case BcOp::AbsOp: // std::fabs on the double, no F32 re-round
      E.movRM(RAX, slot(In.A));
      E.movRI64(RCX, 0x7FFFFFFFFFFFFFFFULL);
      E.andRR(RAX, RCX);
      E.movMR(slot(In.Dst), RAX);
      break;
    case BcOp::LNot: // Dst.I = (A.D == 0.0)
      E.movsdXM(XMM0, slot(In.A));
      E.pxor(XMM1, XMM1);
      E.ucomisd(XMM0, XMM1);
      E.setcc(CC_E, RAX);
      E.setcc(CC_NP, RCX);
      E.andR8R8(RAX, RCX);
      E.movzxR32R8(RAX, RAX);
      E.movMR(slot(In.Dst), RAX);
      break;
    default: // Not on floats copies the value
      E.movRM(RAX, slot(In.A));
      E.movMR(slot(In.Dst), RAX);
      break;
    }
    return;
  }
  E.movRM(RAX, slot(In.A));
  switch (In.Op) {
  case BcOp::Neg:
    E.negR(RAX);
    emitWrap(In.Ty);
    break;
  case BcOp::Not:
    E.notR(RAX);
    emitWrap(In.Ty);
    break;
  case BcOp::LNot:
    E.testRR(RAX, RAX);
    E.setcc(CC_E, RAX);
    E.movzxR32R8(RAX, RAX);
    break;
  case BcOp::AbsOp:
    E.movRR(RCX, RAX);
    E.sarRI(RCX, 63);
    E.xorRR(RAX, RCX);
    E.subRR(RAX, RCX);
    emitWrap(In.Ty);
    break;
  default:
    break;
  }
  E.movMR(slot(In.Dst), RAX);
}

void KernelEmitter::emitCvt(const BcInstr &In) {
  const bool SrcF = isFloatTy(In.SrcTy);
  const bool DstF = isFloatTy(In.Ty);
  if (SrcF && DstF) {
    E.movsdXM(XMM0, slot(In.A));
    if (In.Ty == ValType::F32)
      emitF32Round(XMM0);
    E.movsdMX(slot(In.Dst), XMM0);
  } else if (SrcF) { // float -> int: C++ truncation == cvttsd2si
    E.movsdXM(XMM0, slot(In.A));
    E.cvttsd2siXR(RAX, XMM0);
    emitWrap(In.Ty);
    E.movMR(slot(In.Dst), RAX);
  } else if (DstF) { // int -> float (via double, like the interpreter)
    E.movRM(RAX, slot(In.A));
    if (In.SrcTy == ValType::U64)
      emitU64ToDouble();
    else
      E.cvtsi2sdRX(XMM0, RAX);
    if (In.Ty == ValType::F32)
      emitF32Round(XMM0);
    E.movsdMX(slot(In.Dst), XMM0);
  } else {
    E.movRM(RAX, slot(In.A));
    emitWrap(In.Ty);
    E.movMR(slot(In.Dst), RAX);
  }
}

void KernelEmitter::emitTranscendental(const BcInstr &In) {
  switch (In.Op) {
  case BcOp::Sqrt: // sqrtsd == std::sqrt exactly (IEEE)
    E.movsdXM(XMM0, slot(In.A));
    E.sqrtsd(XMM0, XMM0);
    break;
  case BcOp::RSqrt:
    E.movsdXM(XMM1, slot(In.A));
    E.sqrtsd(XMM1, XMM1);
    E.movRI64(RAX, bitsOf(1.0));
    E.movqXR(XMM0, RAX);
    E.divsd(XMM0, XMM1);
    break;
  case BcOp::Pow:
    E.movsdXM(XMM0, slot(In.A));
    if (In.B >= 0)
      E.movsdXM(XMM1, slot(In.B));
    else
      E.pxor(XMM1, XMM1);
    callFn(fnAddr(&jitPow));
    break;
  default: {
    uint64_t Fn = 0;
    switch (In.Op) {
    case BcOp::Sin:
      Fn = fnAddr(&jitSin);
      break;
    case BcOp::Cos:
      Fn = fnAddr(&jitCos);
      break;
    case BcOp::Tan:
      Fn = fnAddr(&jitTan);
      break;
    case BcOp::Exp:
      Fn = fnAddr(&jitExp);
      break;
    case BcOp::Log:
      Fn = fnAddr(&jitLog);
      break;
    default:
      Fn = fnAddr(&jitFloor);
      break;
    }
    E.movsdXM(XMM0, slot(In.A));
    callFn(Fn);
    break;
  }
  }
  if (In.Ty == ValType::F32)
    emitF32Round(XMM0);
  E.movsdMX(slot(In.Dst), XMM0);
}

void KernelEmitter::emitGeometry(const BcInstr &In) {
  switch (In.Op) {
  // The interpreter treats any non-zero dim as Y for the per-lane
  // ops but masks with &1 for the uniform ones; mirror both.
  case BcOp::GlobalId:
    E.movRM(RAX, Mem::base(RBP, In.Dim == 0 ? offGlobalId0 : offGlobalId1));
    E.movRM(RAX, Mem::idx(RAX, R12, 8, 0));
    break;
  case BcOp::LocalId:
    E.movRM(RAX, Mem::base(RBP, In.Dim == 0 ? offLocalId0 : offLocalId1));
    E.movRM(RAX, Mem::idx(RAX, R12, 8, 0));
    break;
  default: {
    const unsigned Dim = In.Dim & 1;
    uint32_t Idx = 0;
    if (In.Op == BcOp::GroupId)
      Idx = GeoGroupId0 + Dim;
    else if (In.Op == BcOp::GlobalSize)
      Idx = GeoGlobalSize0 + Dim;
    else if (In.Op == BcOp::LocalSize)
      Idx = GeoLocalSize0 + Dim;
    else // NumGroups
      Idx = GeoNumGroups0 + Dim;
    E.movRM(RAX, Mem::base(RBX, offScalars + static_cast<int32_t>(Idx) * 8));
    break;
  }
  }
  E.movMR(slot(In.Dst), RAX);
}

void KernelEmitter::emitSegmentOp(const BcInstr &In) {
  switch (In.Op) {
  case BcOp::ConstI:
    E.movRI64(RAX, static_cast<uint64_t>(In.ImmI));
    E.movMR(slot(In.Dst), RAX);
    break;
  case BcOp::ConstF:
    E.movRI64(RAX, bitsOf(In.ImmF));
    E.movMR(slot(In.Dst), RAX);
    break;
  case BcOp::Mov:
    E.movRM(RAX, slot(In.A));
    E.movMR(slot(In.Dst), RAX);
    break;
  case BcOp::Cvt:
    emitCvt(In);
    break;
  case BcOp::Add:
  case BcOp::Sub:
  case BcOp::Mul:
  case BcOp::Div:
  case BcOp::Rem:
  case BcOp::Shl:
  case BcOp::Shr:
  case BcOp::And:
  case BcOp::Or:
  case BcOp::Xor:
  case BcOp::MinOp:
  case BcOp::MaxOp:
    if (isFloatTy(In.Ty))
      emitBinaryFloat(In);
    else
      emitBinaryInt(In);
    break;
  case BcOp::Neg:
  case BcOp::Not:
  case BcOp::LNot:
  case BcOp::AbsOp:
    emitUnary(In);
    break;
  case BcOp::CmpLt:
  case BcOp::CmpLe:
  case BcOp::CmpGt:
  case BcOp::CmpGe:
  case BcOp::CmpEq:
  case BcOp::CmpNe:
    emitCompare(In);
    break;
  case BcOp::Select:
    E.movRM(RCX, slot(In.A));
    E.movRM(RAX, slot(In.B));
    E.testRR(RCX, RCX);
    E.cmovccRM(CC_E, RAX, slot(In.C));
    E.movMR(slot(In.Dst), RAX);
    break;
  case BcOp::Sqrt:
  case BcOp::RSqrt:
  case BcOp::Sin:
  case BcOp::Cos:
  case BcOp::Tan:
  case BcOp::Exp:
  case BcOp::Log:
  case BcOp::Pow:
  case BcOp::Floor:
    emitTranscendental(In);
    break;
  case BcOp::GlobalId:
  case BcOp::LocalId:
  case BcOp::GroupId:
  case BcOp::GlobalSize:
  case BcOp::LocalSize:
  case BcOp::NumGroups:
    emitGeometry(In);
    break;
  default:
    break; // mem/image/control never reach a segment
  }
}

void KernelEmitter::emitControlDispatch(uint32_t NextPc) {
  X64Emitter::Label LSlow = E.newLabel();
  E.cmpRI(RAX, static_cast<int32_t>(HelperFallthrough));
  E.jcc(CC_NE, LSlow);
  E.jmp(labelFor(NextPc));
  E.bind(LSlow);
  E.cmpRI(RAX, static_cast<int32_t>(HelperBarrier));
  E.jcc(CC_E, LBarrier);
  E.cmpRI(RAX, static_cast<int32_t>(HelperDone));
  E.jcc(CC_E, LDone);
  E.cmpRI(RAX, static_cast<int32_t>(HelperFault));
  E.jcc(CC_E, LFault);
  // Branch to the bytecode pc in rax through the table.
  E.movRM(RCX, Mem::base(RBX, offPcTable));
  E.jmpM(Mem::idx(RCX, RAX, 8, 0));
}

void KernelEmitter::emitLaneCondScan(int32_t Reg) {
  // r14 = bitmask of lanes whose register \p Reg is non-zero, not yet
  // intersected with the active mask. Branchless so the lane loop
  // pipelines; clobbers rax/rcx/rdx (rcx doubles as lane index and
  // shift count).
  const int32_t RowDisp =
      static_cast<int32_t>(Reg) * static_cast<int32_t>(W) * 8;
  X64Emitter::Label LLane = E.newLabel();
  E.xorR32R32(R14, R14);
  E.movRI32(RCX, W);
  E.bind(LLane);
  E.subRI(RCX, 1);
  E.xorR32R32(RAX, RAX);
  E.movRM(RDX, Mem::idx(R13, RCX, 8, RowDisp));
  E.testRR(RDX, RDX);
  E.setcc(CC_NE, RAX);
  E.shlCl(RAX);
  E.orRR(R14, RAX);
  E.testRR(RCX, RCX);
  E.jcc(CC_NE, LLane);
}

bool KernelEmitter::emitStructuredControl(const BcInstr &In) {
  // Native transcriptions of the control helper's hot arms: loop
  // back-edge tests and if-mask maintenance run every divergence
  // edge, and the helper's call/dispatch overhead dominated
  // loop-bound kernels. Rare arms (LoopBegin, Barrier, Ret) stay on
  // the helper. Lowering rejects kernels whose static nesting
  // exceeds MaxFrames, so the helper's runtime overflow check is
  // unreachable for compiled code and elided here.
  static_assert(offsetof(JitFrame, SavedMask) == 0 &&
                    offsetof(JitFrame, ThenMask) == 8 &&
                    offsetof(JitFrame, Kind) == 16 && sizeof(JitFrame) == 24,
                "JitFrame layout is baked into the emitted code");
  switch (In.Op) {
  case BcOp::LoopTest: {
    // Mask &= cond among active lanes; when none remain, pop the
    // frame, restore the entry mask, and leave the loop.
    emitLaneCondScan(In.A);
    E.movRM(RAX, Mem::base(RBP, offMask));
    E.movRM(RDX, Mem::base(RBP, offExited));
    E.notR(RDX);
    E.andRR(RAX, RDX);
    E.andRR(R14, RAX);
    E.movMR(Mem::base(RBP, offMask), R14);
    E.testRR(R14, R14);
    X64Emitter::Label LFall = E.newLabel();
    E.jcc(CC_NE, LFall);
    E.movRM(RAX, Mem::base(RBP, offDepth));
    E.subRI(RAX, 1);
    E.movMR(Mem::base(RBP, offDepth), RAX);
    E.leaRM(RDX, Mem::idx(RAX, RAX, 2, 0));
    E.movRM(RAX, Mem::idx(RBP, RDX, 8, offFrames)); // SavedMask
    E.movMR(Mem::base(RBP, offMask), RAX);
    E.jmp(labelFor(static_cast<uint32_t>(In.Target)));
    E.bind(LFall);
    return true;
  }
  case BcOp::IfBegin: {
    // Push {SavedMask, ThenMask, FrameIf}; Mask = cond among active
    // lanes; branch to the else/end when the then-side is empty.
    emitLaneCondScan(In.A);
    E.movRM(RAX, Mem::base(RBP, offMask));
    E.movRM(RDX, Mem::base(RBP, offExited));
    E.notR(RDX);
    E.andRR(RAX, RDX);
    E.andRR(R14, RAX);
    E.movRM(RAX, Mem::base(RBP, offDepth));
    E.leaRM(RDX, Mem::idx(RAX, RAX, 2, 0));
    E.addRI(RAX, 1);
    E.movMR(Mem::base(RBP, offDepth), RAX);
    E.movRM(RAX, Mem::base(RBP, offMask));
    E.movMR(Mem::idx(RBP, RDX, 8, offFrames), RAX);     // SavedMask
    E.movMR(Mem::idx(RBP, RDX, 8, offFrames + 8), R14); // ThenMask
    E.xorR32R32(RAX, RAX); // FrameIf, plus zeroed padding
    E.movMR(Mem::idx(RBP, RDX, 8, offFrames + 16), RAX);
    E.movMR(Mem::base(RBP, offMask), R14);
    E.testRR(R14, R14);
    X64Emitter::Label LFall = E.newLabel();
    E.jcc(CC_NE, LFall);
    E.jmp(labelFor(static_cast<uint32_t>(In.Target)));
    E.bind(LFall);
    return true;
  }
  case BcOp::IfElse: {
    // Mask = SavedMask & ~ThenMask; branch to the end when no
    // else-lane is live (mask itself keeps exited bits, exactly like
    // the helper).
    E.movRM(RAX, Mem::base(RBP, offDepth));
    E.subRI(RAX, 1);
    E.leaRM(RDX, Mem::idx(RAX, RAX, 2, 0));
    E.movRM(RAX, Mem::idx(RBP, RDX, 8, offFrames));     // SavedMask
    E.movRM(RCX, Mem::idx(RBP, RDX, 8, offFrames + 8)); // ThenMask
    E.notR(RCX);
    E.andRR(RAX, RCX);
    E.movMR(Mem::base(RBP, offMask), RAX);
    E.movRM(RDX, Mem::base(RBP, offExited));
    E.notR(RDX);
    E.andRR(RAX, RDX);
    E.testRR(RAX, RAX);
    X64Emitter::Label LFall = E.newLabel();
    E.jcc(CC_NE, LFall);
    E.jmp(labelFor(static_cast<uint32_t>(In.Target)));
    E.bind(LFall);
    return true;
  }
  case BcOp::IfEnd: {
    // Pop the frame and restore its entry mask; always falls through.
    E.movRM(RAX, Mem::base(RBP, offDepth));
    E.subRI(RAX, 1);
    E.movMR(Mem::base(RBP, offDepth), RAX);
    E.leaRM(RDX, Mem::idx(RAX, RAX, 2, 0));
    E.movRM(RAX, Mem::idx(RBP, RDX, 8, offFrames)); // SavedMask
    E.movMR(Mem::base(RBP, offMask), RAX);
    return true;
  }
  default:
    return false;
  }
}

bool KernelEmitter::emit() {
  const uint32_t N = static_cast<uint32_t>(K.Code.size());
  PcLabels.assign(N, -1);
  LDone = E.newLabel();
  LBarrier = E.newLabel();
  LFault = E.newLabel();
  LEpi = E.newLabel();
  LDivTrap = E.newLabel();
  LRemTrap = E.newLabel();
  LBudgetTrap = E.newLabel();
  LBadPc = E.newLabel();

  // Prologue: save callee-saved state, load the pinned registers,
  // then dispatch to the warp's resume pc through the table.
  E.push(RBX);
  E.push(RBP);
  E.push(R12);
  E.push(R13);
  E.push(R14);
  E.push(R15);
  E.subRI(RSP, 8); // 16-byte call alignment
  E.movRR(RBX, RDI);
  E.movRM(RBP, Mem::base(RBX, offWarp));
  E.movRM(R13, Mem::base(RBP, offRegs));
  E.movRM(RAX, Mem::base(RBP, offPc));
  E.movRM(RCX, Mem::base(RBX, offPcTable));
  E.jmpM(Mem::idx(RCX, RAX, 8, 0));

  for (const IRBlock *B = F.Blocks; B; B = B->Next) {
    E.bind(labelFor(B->LeaderPc));

    // Budget: the interpreter spends one unit per executed
    // instruction; a block executes all of its instructions, so one
    // batched decrement is equivalent (CF = exhausted mid-block).
    const int32_t BlockLen =
        static_cast<int32_t>(B->EndPc) - static_cast<int32_t>(B->LeaderPc);
    E.movRM(RAX, Mem::base(RBX, offBudget));
    E.subMI(Mem::base(RAX, 0), BlockLen);
    E.jcc(CC_B, LBudgetTrap);

    bool HasSegment = false;
    for (const IRItem *It = B->Items; It; It = It->Next)
      if (It->TheKind == IRItem::Kind::Segment ||
          (It->TheKind == IRItem::Kind::Mem && H.MemPrice &&
           provenFastPathEligible(K.Code[It->First])))
        HasSegment = true;
    if (HasSegment) {
      // r15 = Mask & ~Exited, constant for the whole block (only
      // control ops change masks, and they terminate blocks).
      E.movRM(R15, Mem::base(RBP, offMask));
      E.movRM(RAX, Mem::base(RBP, offExited));
      E.notR(RAX);
      E.andRR(R15, RAX);
    }

    bool Terminated = false;
    for (const IRItem *It = B->Items; It; It = It->Next) {
      switch (It->TheKind) {
      case IRItem::Kind::Segment: {
        X64Emitter::Label LSkip = E.newLabel();
        E.testRR(R15, R15);
        E.jcc(CC_E, LSkip); // inactive: skip work and issue charges
        if (It->Cost.Alu || It->Cost.Dp || It->Cost.Sfu) {
          E.movRM(RAX, Mem::base(RBX, offCounters));
          if (It->Cost.Alu)
            E.addMI(Mem::base(RAX, offsetof(KernelCounters, AluWarpOps)),
                    static_cast<int32_t>(It->Cost.Alu));
          if (It->Cost.Dp)
            E.addMI(Mem::base(RAX, offsetof(KernelCounters, DpWarpOps)),
                    static_cast<int32_t>(It->Cost.Dp));
          if (It->Cost.Sfu)
            E.addMI(Mem::base(RAX, offsetof(KernelCounters, SfuWarpOps)),
                    static_cast<int32_t>(It->Cost.Sfu));
        }
        X64Emitter::Label LLoop = E.newLabel();
        E.movRR(R14, R15);
        E.bind(LLoop);
        E.bsfRR(R12, R14);
        for (uint32_t I = It->First; I != It->First + It->Count; ++I)
          emitSegmentOp(K.Code[I]);
        E.leaRM(RAX, Mem::base(R14, -1));
        E.andRR(R14, RAX); // clear lowest set bit; ZF when drained
        E.jcc(CC_NE, LLoop);
        E.bind(LSkip);
        break;
      }
      case IRItem::Kind::Mem: {
        const BcInstr &In = K.Code[It->First];
        if (H.MemPrice && provenFastPathEligible(In)) {
          emitProvenMemGuard(In, It->First);
          break;
        }
        callHelper(reinterpret_cast<uint64_t>(H.Mem), It->First);
        E.cmpRI(RAX, static_cast<int32_t>(HelperFault));
        E.jcc(CC_E, LFault);
        break;
      }
      case IRItem::Kind::Image: {
        callHelper(reinterpret_cast<uint64_t>(H.Image), It->First);
        E.cmpRI(RAX, static_cast<int32_t>(HelperFault));
        E.jcc(CC_E, LFault);
        break;
      }
      case IRItem::Kind::Control: {
        const BcInstr &In = K.Code[It->First];
        // Side-effect-free jumps lower to static branches; everything
        // that touches masks or scheduling goes through the helper.
        if (In.Op == BcOp::Jump || In.Op == BcOp::LoopEnd) {
          E.jmp(labelFor(static_cast<uint32_t>(In.Target)));
        } else if (In.Op == BcOp::Halt) {
          E.jmp(LDone);
        } else if (emitStructuredControl(In)) {
          E.jmp(labelFor(It->First + 1));
        } else {
          callHelper(reinterpret_cast<uint64_t>(H.Control), It->First);
          emitControlDispatch(It->First + 1);
        }
        Terminated = true;
        break;
      }
      }
    }
    if (!Terminated)
      E.jmp(labelFor(B->EndPc)); // leader boundary or end-of-code
  }

  // Shared stubs and epilogues.
  E.bind(LDivTrap);
  callHelper(reinterpret_cast<uint64_t>(H.Trap), TrapDivZero);
  E.jmp(LFault);
  E.bind(LRemTrap);
  callHelper(reinterpret_cast<uint64_t>(H.Trap), TrapRemZero);
  E.jmp(LFault);
  E.bind(LBudgetTrap);
  callHelper(reinterpret_cast<uint64_t>(H.Trap), TrapBudget);
  E.jmp(LFault);
  E.bind(LBadPc);
  callHelper(reinterpret_cast<uint64_t>(H.Trap), TrapBadPc);
  E.jmp(LFault);

  E.bind(LFault);
  E.movRI32(RAX, StatusFault);
  E.jmp(LEpi);
  E.bind(LBarrier);
  E.movRI32(RAX, StatusBarrier);
  E.jmp(LEpi);
  E.bind(LDone);
  E.xorR32R32(RAX, RAX); // StatusDone
  E.bind(LEpi);
  E.addRI(RSP, 8);
  E.pop(R15);
  E.pop(R14);
  E.pop(R13);
  E.pop(R12);
  E.pop(RBP);
  E.pop(RBX);
  E.ret();

  E.patch();
  return true;
}

std::vector<uint64_t> KernelEmitter::buildPcTable(const uint8_t *Base) const {
  const uint64_t BaseAddr = reinterpret_cast<uint64_t>(Base);
  const uint64_t BadPc = BaseAddr + static_cast<uint64_t>(E.labelOffset(LBadPc));
  std::vector<uint64_t> Table(K.Code.size() + 1, BadPc);
  for (size_t Pc = 0; Pc != K.Code.size(); ++Pc) {
    X64Emitter::Label L = PcLabels[Pc];
    if (L >= 0 && E.labelOffset(L) >= 0)
      Table[Pc] = BaseAddr + static_cast<uint64_t>(E.labelOffset(L));
  }
  Table[K.Code.size()] = BaseAddr + static_cast<uint64_t>(E.labelOffset(LDone));
  return Table;
}

} // namespace

JitArtifact jit::compileKernel(const BcKernel &K, unsigned WarpWidth,
                               const HelperTable &Helpers,
                               std::string *DumpOut) {
  JitArtifact Art;
  auto Start = std::chrono::steady_clock::now();
  auto Finish = [&]() {
    Art.CompileMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  };

  if (!Helpers.Mem || !Helpers.Image || !Helpers.Control || !Helpers.Trap) {
    Art.DeoptReason = "no helper table";
    Finish();
    return Art;
  }

  Arena A;
  std::string Reason;
  IRFunction *F = lowerKernel(A, K, WarpWidth, Reason);
  if (!F) {
    Art.DeoptReason = Reason;
    Finish();
    return Art;
  }
  if (DumpOut)
    *DumpOut += dumpIR(*F);

  KernelEmitter KE(*F, WarpWidth, Helpers);
  if (!KE.emit()) {
    Art.DeoptReason = "emission failed";
    Finish();
    return Art;
  }

  auto Buf = std::make_shared<CodeBuffer>();
  if (!Buf->allocate(KE.emitter().size())) {
    Art.DeoptReason = "executable buffer allocation failed";
    Finish();
    return Art;
  }
  std::memcpy(Buf->data(), KE.emitter().code().data(), KE.emitter().size());
  auto Table =
      std::make_shared<std::vector<uint64_t>>(KE.buildPcTable(Buf->data()));
  if (!Buf->finalize()) {
    Art.DeoptReason = "W^X finalize failed";
    Finish();
    return Art;
  }

  Art.Entry = reinterpret_cast<JitEntryFn>(Buf->data());
  Art.Owner = Buf;
  Art.PcTable = Table;
  Art.WarpWidth = WarpWidth;
  Art.CodeBytes = KE.emitter().size();
  Finish();
  if (DumpOut)
    *DumpOut += "jit-code kernel '" + K.Name + "': " +
                std::to_string(Art.CodeBytes) + " bytes, " +
                std::to_string(Art.CompileMs) + " ms\n";
  return Art;
}
