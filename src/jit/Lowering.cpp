//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "jit/Lowering.h"

#include "ocl/JitABI.h"

#include <algorithm>

using namespace lime;
using namespace lime::jit;
using namespace lime::ocl;

namespace {

bool isControl(BcOp Op) {
  switch (Op) {
  case BcOp::Jump:
  case BcOp::IfBegin:
  case BcOp::IfElse:
  case BcOp::IfEnd:
  case BcOp::LoopBegin:
  case BcOp::LoopTest:
  case BcOp::LoopEnd:
  case BcOp::Barrier:
  case BcOp::Ret:
  case BcOp::Halt:
    return true;
  default:
    return false;
  }
}

/// The interpreter's issue-charge switch, evaluated statically. The
/// emitted code applies a segment's summed cost only when the active
/// mask is non-zero, matching the `if (Active)` guards.
IRCost issueCost(const BcInstr &In) {
  IRCost C;
  switch (In.Op) {
  case BcOp::Sqrt:
  case BcOp::RSqrt: {
    uint32_t Cost = In.Native ? 1 : 2;
    if (In.Ty == ValType::F64)
      Cost *= 4;
    C.Sfu += Cost;
    break;
  }
  case BcOp::Sin:
  case BcOp::Cos:
  case BcOp::Tan:
  case BcOp::Exp:
  case BcOp::Log:
  case BcOp::Pow: {
    uint32_t Cost = In.Native ? 1 : 4;
    if (In.Ty == ValType::F64)
      Cost *= 4;
    C.Sfu += Cost;
    break;
  }
  case BcOp::ConstI:
  case BcOp::ConstF:
  case BcOp::Mov:
  case BcOp::Cvt:
    break; // free, like the interpreter
  case BcOp::Div:
  case BcOp::Rem:
    if (In.Ty == ValType::F64)
      C.Dp += 8;
    else
      C.Alu += 8;
    break;
  default:
    // Load/Store/ReadImage charge inside their helpers; everything
    // else is one slot on the matching pipe.
    if (In.Ty == ValType::F64)
      ++C.Dp;
    else
      ++C.Alu;
    break;
  }
  return C;
}

const char *itemKindName(IRItem::Kind K) {
  switch (K) {
  case IRItem::Kind::Segment:
    return "segment";
  case IRItem::Kind::Mem:
    return "mem";
  case IRItem::Kind::Image:
    return "image";
  case IRItem::Kind::Control:
    return "control";
  }
  return "?";
}

} // namespace

IRFunction *jit::lowerKernel(Arena &A, const BcKernel &K, unsigned WarpWidth,
                             std::string &DeoptReason) {
#if !defined(__x86_64__)
  (void)A;
  (void)K;
  (void)WarpWidth;
  DeoptReason = "unsupported host architecture (x86-64 only)";
  return nullptr;
#else
  const size_t N = K.Code.size();
  if (N == 0) {
    DeoptReason = "empty kernel body";
    return nullptr;
  }
  // Register-slot displacements are baked as disp32.
  if (static_cast<uint64_t>(K.NumRegs + 4) * WarpWidth * 8 > (1ULL << 30)) {
    DeoptReason = "register file too large for disp32 addressing";
    return nullptr;
  }

  // Static divergence-stack bound: the JIT's frame array is fixed
  // size. Structured control nests, so a linear walk bounds depth.
  {
    uint32_t Depth = 0, MaxDepth = 0;
    for (const BcInstr &In : K.Code) {
      if (In.Op == BcOp::IfBegin || In.Op == BcOp::LoopBegin) {
        ++Depth;
        MaxDepth = std::max(MaxDepth, Depth);
      } else if (In.Op == BcOp::IfEnd || In.Op == BcOp::LoopEnd) {
        if (Depth)
          --Depth;
      }
    }
    if (MaxDepth > jitabi::MaxFrames) {
      DeoptReason = "control nesting depth " + std::to_string(MaxDepth) +
                    " exceeds the JIT frame capacity (" +
                    std::to_string(jitabi::MaxFrames) + ")";
      return nullptr;
    }
  }

  // Leaders: entry, every branch target, and every pc after a control
  // op (fallthroughs, barrier resume points).
  std::vector<uint8_t> Leader(N + 1, 0);
  Leader[0] = 1;
  Leader[N] = 1;
  for (size_t I = 0; I != N; ++I) {
    const BcInstr &In = K.Code[I];
    if (isControl(In.Op)) {
      Leader[I + 1] = 1;
      if (In.Target >= 0 && static_cast<size_t>(In.Target) <= N)
        Leader[static_cast<size_t>(In.Target)] = 1;
      else if (In.Target < -1) {
        DeoptReason = "malformed branch target";
        return nullptr;
      }
    }
  }

  IRFunction *F = A.make<IRFunction>();
  F->Kernel = &K;
  {
    uint32_t Depth = 0;
    for (const BcInstr &In : K.Code) {
      if (In.Op == BcOp::IfBegin || In.Op == BcOp::LoopBegin)
        F->MaxControlDepth = std::max(F->MaxControlDepth, ++Depth);
      else if ((In.Op == BcOp::IfEnd || In.Op == BcOp::LoopEnd) && Depth)
        --Depth;
    }
  }

  IRBlock **NextBlock = &F->Blocks;
  size_t Pc = 0;
  while (Pc < N) {
    IRBlock *B = A.make<IRBlock>();
    B->LeaderPc = static_cast<uint32_t>(Pc);
    size_t End = Pc;
    while (End < N) {
      bool Ctl = isControl(K.Code[End].Op);
      ++End;
      if (Ctl || Leader[End])
        break;
    }
    B->EndPc = static_cast<uint32_t>(End);

    IRItem **NextItem = &B->Items;
    size_t I = Pc;
    while (I < End) {
      const BcInstr &In = K.Code[I];
      IRItem *Item = A.make<IRItem>();
      if (isControl(In.Op)) {
        Item->TheKind = IRItem::Kind::Control;
        Item->First = static_cast<uint32_t>(I);
        Item->Count = 1;
        ++I;
      } else if (In.Op == BcOp::Load || In.Op == BcOp::Store) {
        Item->TheKind = IRItem::Kind::Mem;
        Item->First = static_cast<uint32_t>(I);
        Item->Count = 1;
        ++I;
      } else if (In.Op == BcOp::ReadImage) {
        Item->TheKind = IRItem::Kind::Image;
        Item->First = static_cast<uint32_t>(I);
        Item->Count = 1;
        ++I;
      } else {
        Item->TheKind = IRItem::Kind::Segment;
        Item->First = static_cast<uint32_t>(I);
        while (I < End) {
          const BcInstr &SI = K.Code[I];
          if (isControl(SI.Op) || SI.Op == BcOp::Load ||
              SI.Op == BcOp::Store || SI.Op == BcOp::ReadImage)
            break;
          IRCost C = issueCost(SI);
          Item->Cost.Alu += C.Alu;
          Item->Cost.Dp += C.Dp;
          Item->Cost.Sfu += C.Sfu;
          ++I;
        }
        Item->Count = static_cast<uint32_t>(I) - Item->First;
      }
      *NextItem = Item;
      NextItem = &Item->Next;
    }

    *NextBlock = B;
    NextBlock = &B->Next;
    ++F->NumBlocks;
    Pc = End;
  }

  return F;
#endif
}

std::string jit::dumpIR(const IRFunction &F) {
  std::string Out;
  Out += "jit-ir kernel '" + F.Kernel->Name + "': " +
         std::to_string(F.NumBlocks) + " blocks, max control depth " +
         std::to_string(F.MaxControlDepth) + "\n";
  for (const IRBlock *B = F.Blocks; B; B = B->Next) {
    Out += "  block @" + std::to_string(B->LeaderPc) + ".." +
           std::to_string(B->EndPc) + ":\n";
    for (const IRItem *It = B->Items; It; It = It->Next) {
      Out += "    " + std::string(itemKindName(It->TheKind)) + " [" +
             std::to_string(It->First) + ".." +
             std::to_string(It->First + It->Count) + ")";
      if (It->TheKind == IRItem::Kind::Segment)
        Out += " cost{alu=" + std::to_string(It->Cost.Alu) +
               " dp=" + std::to_string(It->Cost.Dp) +
               " sfu=" + std::to_string(It->Cost.Sfu) + "}";
      Out += "\n";
    }
  }
  return Out;
}
