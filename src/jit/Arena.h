//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator for the JIT IR. Nodes are allocated in large
/// chunks and freed wholesale when the arena dies — IR objects are
/// PODs linked by raw pointers, so no destructors run (the Liric
/// pattern: IR lifetime == compilation lifetime).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_ARENA_H
#define LIMECC_JIT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace lime::jit {

class Arena {
public:
  explicit Arena(size_t ChunkBytes = 64 * 1024) : ChunkBytes(ChunkBytes) {}

  /// Allocates uninitialized storage for one T (trivially destructible
  /// by construction of the IR).
  template <typename T, typename... Args> T *make(Args &&...A) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena nodes must not need destructors");
    void *P = allocate(sizeof(T), alignof(T));
    return new (P) T(std::forward<Args>(A)...);
  }

  /// Allocates an array of N Ts, value-initialized.
  template <typename T> T *makeArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena nodes must not need destructors");
    if (N == 0)
      return nullptr;
    void *P = allocate(sizeof(T) * N, alignof(T));
    return new (P) T[N]();
  }

  void *allocate(size_t Bytes, size_t Align) {
    size_t Cur = reinterpret_cast<uintptr_t>(Next);
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (!Next || Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      size_t Want = Bytes + Align > ChunkBytes ? Bytes + Align : ChunkBytes;
      Chunks.push_back(std::make_unique<uint8_t[]>(Want));
      Next = Chunks.back().get();
      End = Next + Want;
      Cur = reinterpret_cast<uintptr_t>(Next);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Next = reinterpret_cast<uint8_t *>(Aligned + Bytes);
    return reinterpret_cast<void *>(Aligned);
  }

  size_t bytesAllocated() const { return Chunks.size() * ChunkBytes; }

private:
  size_t ChunkBytes;
  std::vector<std::unique_ptr<uint8_t[]>> Chunks;
  uint8_t *Next = nullptr;
  uint8_t *End = nullptr;
};

} // namespace lime::jit

#endif // LIMECC_JIT_ARENA_H
