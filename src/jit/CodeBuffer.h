//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An mmap'd executable code buffer with W^X discipline: bytes are
/// emitted while the mapping is read-write, then finalize() flips it
/// to read-execute in place. The mapping is released on destruction,
/// so a shared_ptr<CodeBuffer> is the lifetime anchor for every
/// function pointer into it.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_CODEBUFFER_H
#define LIMECC_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>

namespace lime::jit {

class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Maps \p Bytes (rounded up to whole pages) read-write. Returns
  /// false when the platform has no mmap or the mapping fails.
  bool allocate(size_t Bytes);

  /// Flips the mapping to read-execute. No writes are legal after
  /// this. Returns false if mprotect fails.
  bool finalize();

  bool writable() const { return Base && !Finalized; }
  bool executable() const { return Base && Finalized; }

  uint8_t *data() { return Base; }
  const uint8_t *data() const { return Base; }
  size_t capacity() const { return Capacity; }

private:
  uint8_t *Base = nullptr;
  size_t Capacity = 0;
  bool Finalized = false;
};

} // namespace lime::jit

#endif // LIMECC_JIT_CODEBUFFER_H
