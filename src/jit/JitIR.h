//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT's mid-level IR (the VOLT-style thin layer between bytecode
/// and machine code). Lowering slices a kernel's linear bytecode into
/// basic blocks at every control op and branch target, then groups
/// each block's instructions into items:
///
///  - Segment: a run of pure compute ops executed natively in a lane
///    loop over the active mask, with the §5 issue costs pre-summed
///    into one counter update per segment;
///  - Mem / Image: one Load/Store/ReadImage executed via a VM helper
///    call (bounds checks, fault text and memory-model pricing stay
///    in one place);
///  - Control: one structured-control op via the control helper
///    (Jump/LoopEnd lower to static jumps instead).
///
/// Everything lives in an Arena and is linked with raw pointers; the
/// IR dies with the compilation.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_JIT_JITIR_H
#define LIMECC_JIT_JITIR_H

#include "ocl/Bytecode.h"

#include <cstdint>

namespace lime::jit {

/// Issue-slot costs of one segment, mirroring the interpreter's
/// per-instruction charge switch, summed so the native code does one
/// add per pipe per segment (only when the active mask is non-zero,
/// exactly like the interpreter's `if (Active)` guard).
struct IRCost {
  uint32_t Alu = 0;
  uint32_t Dp = 0;
  uint32_t Sfu = 0;
};

struct IRItem {
  enum class Kind : uint8_t { Segment, Mem, Image, Control };
  Kind TheKind = Kind::Segment;
  /// Segment: [First, First + Count) instruction indices.
  /// Mem/Image/Control: First is the instruction index, Count == 1.
  uint32_t First = 0;
  uint32_t Count = 0;
  IRCost Cost; // Segment only
  IRItem *Next = nullptr;
};

struct IRBlock {
  uint32_t LeaderPc = 0;
  uint32_t EndPc = 0; // one past the last instruction
  IRItem *Items = nullptr;
  IRBlock *Next = nullptr;
};

struct IRFunction {
  const ocl::BcKernel *Kernel = nullptr;
  IRBlock *Blocks = nullptr;
  uint32_t NumBlocks = 0;
  uint32_t MaxControlDepth = 0; // static If/Loop nesting bound
};

} // namespace lime::jit

#endif // LIMECC_JIT_JITIR_H
