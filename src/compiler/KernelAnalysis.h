//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel identification (§4.1) and the memory optimizer (§4.2.1).
///
/// Identification relies only on the type-system invariants sema has
/// already verified — the mapped function is static local (pure), its
/// arguments are deeply-immutable values — so no alias or dependence
/// analysis appears anywhere in this file; that absence is the
/// paper's thesis.
///
/// The optimizer is the pattern matcher of Figure 5:
///  (a) arrays allocated inside the mapped function with small static
///      size -> private memory;
///  (c) a sequential loop sweeping a whole shared array -> local
///      tiling (plus bank-conflict padding when enabled);
///  (e) read-only arrays with a 4-element innermost dimension or flat
///      scalar layout -> image (texture) memory;
///  (g) arrays indexed uniformly across work-items -> constant
///      memory;
///  and §4.2.2's vectorizer marks bounded innermost dimensions of
///  width 2/4/8/16 accessed at constant offsets.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_COMPILER_KERNELANALYSIS_H
#define LIMECC_COMPILER_KERNELANALYSIS_H

#include "compiler/KernelPlan.h"
#include "support/Diagnostics.h"

#include <string>

namespace lime {

/// Outcome of identification: a plan, or the human-readable reason
/// the filter stays on the host (the runtime then runs it in the
/// evaluator, exactly like the paper's system keeps non-offloadable
/// tasks in the JVM).
struct IdentifyResult {
  bool Offloadable = false;
  std::string Reason;
  KernelPlan Plan;
};

class KernelAnalysis {
public:
  KernelAnalysis(Program *P, TypeContext &Types);

  /// Identifies the data-parallel kernel inside filter \p Worker.
  IdentifyResult identify(MethodDecl *Worker);

  /// Applies \p Config to the identified plan: assigns memory spaces,
  /// padding and vectorization flags.
  void optimize(KernelPlan &Plan, const MemoryConfig &Config);

private:
  // Identification pieces.
  bool analyzeMapFunction(KernelPlan &Plan, std::string &Reason);
  bool classifyMapOperands(KernelPlan &Plan, const MapExpr *Map,
                           std::string &Reason);
  bool collectHelpers(KernelPlan &Plan, MethodDecl *M, std::string &Reason);
  bool collectPrivateArrays(KernelPlan &Plan, std::string &Reason);
  void findTilingCandidate(KernelPlan &Plan);

  /// True when every index applied to \p Param's array inside the
  /// mapped function is independent of the map element (the Fig. 5(g)
  /// uniform-access test for constant memory).
  bool isUniformlyIndexed(const KernelPlan &Plan, const ParamDecl *Param);

  /// True when the inner dimension of \p Param is always indexed by
  /// integer literals (vectorization legality, §4.2.2).
  bool innerIndicesConstant(const KernelPlan &Plan, const ParamDecl *Param);

  Program *TheProgram;
  TypeContext &Types;
};

} // namespace lime

#endif // LIMECC_COMPILER_KERNELANALYSIS_H
