//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "compiler/KernelAnalysis.h"

#include "support/StringUtils.h"

#include <functional>
#include <set>

using namespace lime;

const char *lime::memSpaceName(MemSpace S) {
  switch (S) {
  case MemSpace::Global:
    return "global";
  case MemSpace::Constant:
    return "constant";
  case MemSpace::Image:
    return "image";
  case MemSpace::LocalTiled:
    return "local";
  }
  lime_unreachable("bad memory space");
}

const char *lime::placementReasonName(PlacementReason R) {
  switch (R) {
  case PlacementReason::NotApplicable:
    return "not-applicable";
  case PlacementReason::ConfigDisabled:
    return "config-disabled";
  case PlacementReason::SyntacticIdiom:
    return "syntactic-idiom";
  case PlacementReason::ProvenUniform:
    return "proven-uniform";
  case PlacementReason::OracleRefused:
    return "oracle-refused";
  case PlacementReason::NotUniform:
    return "not-uniform";
  case PlacementReason::NoUniformAccess:
    return "no-uniform-access";
  case PlacementReason::TiledInstead:
    return "tiled-instead";
  case PlacementReason::ImageInstead:
    return "image-instead";
  }
  lime_unreachable("bad placement reason");
}

std::string MemoryConfig::str() const {
  std::vector<std::string> Parts;
  if (AllowLocal)
    Parts.push_back(RemoveBankConflicts ? "local+noconflict" : "local");
  if (AllowConstant)
    Parts.push_back("constant");
  if (AllowImage)
    Parts.push_back("texture");
  if (Parts.empty())
    Parts.push_back("global");
  if (Vectorize)
    Parts.push_back("vector");
  return joinStrings(Parts, "+");
}

unsigned KernelArray::rowBytes() const {
  return rowScalars() * Scalar->sizeInBytes();
}

//===----------------------------------------------------------------------===//
// AST walking helpers
//===----------------------------------------------------------------------===//

namespace {

void walkExpr(Expr *E, const std::function<void(Expr *)> &F);

void walkChildren(Expr *E, const std::function<void(Expr *)> &F) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::NameRef:
  case Expr::Kind::NewObject:
  case Expr::Kind::Task:
    return;
  case Expr::Kind::FieldAccess:
    walkExpr(cast<FieldAccessExpr>(E)->base(), F);
    return;
  case Expr::Kind::ArrayIndex:
    walkExpr(cast<ArrayIndexExpr>(E)->base(), F);
    walkExpr(cast<ArrayIndexExpr>(E)->index(), F);
    return;
  case Expr::Kind::ArrayLength:
    walkExpr(cast<ArrayLengthExpr>(E)->base(), F);
    return;
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    if (C->base())
      walkExpr(C->base(), F);
    for (Expr *A : C->args())
      walkExpr(A, F);
    return;
  }
  case Expr::Kind::NewArray: {
    auto *N = cast<NewArrayExpr>(E);
    for (Expr *S : N->sizes())
      walkExpr(S, F);
    for (Expr *I : N->inits())
      walkExpr(I, F);
    return;
  }
  case Expr::Kind::Unary:
    walkExpr(cast<UnaryExpr>(E)->sub(), F);
    return;
  case Expr::Kind::Binary:
    walkExpr(cast<BinaryExpr>(E)->lhs(), F);
    walkExpr(cast<BinaryExpr>(E)->rhs(), F);
    return;
  case Expr::Kind::Assign:
    walkExpr(cast<AssignExpr>(E)->target(), F);
    walkExpr(cast<AssignExpr>(E)->value(), F);
    return;
  case Expr::Kind::Cast:
    walkExpr(cast<CastExpr>(E)->sub(), F);
    return;
  case Expr::Kind::Conditional:
    walkExpr(cast<ConditionalExpr>(E)->cond(), F);
    walkExpr(cast<ConditionalExpr>(E)->thenExpr(), F);
    walkExpr(cast<ConditionalExpr>(E)->elseExpr(), F);
    return;
  case Expr::Kind::Map: {
    auto *M = cast<MapExpr>(E);
    for (Expr *A : M->extraArgs())
      walkExpr(A, F);
    walkExpr(M->source(), F);
    return;
  }
  case Expr::Kind::Reduce:
    walkExpr(cast<ReduceExpr>(E)->source(), F);
    return;
  case Expr::Kind::Connect:
    walkExpr(cast<ConnectExpr>(E)->upstream(), F);
    walkExpr(cast<ConnectExpr>(E)->downstream(), F);
    return;
  }
}

void walkExpr(Expr *E, const std::function<void(Expr *)> &F) {
  if (!E)
    return;
  F(E);
  walkChildren(E, F);
}

void walkStmt(Stmt *S, const std::function<void(Stmt *)> &SF,
              const std::function<void(Expr *)> &EF) {
  if (!S)
    return;
  if (SF)
    SF(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->stmts())
      walkStmt(Sub, SF, EF);
    return;
  case Stmt::Kind::VarDecl:
    if (EF)
      walkExpr(cast<VarDeclStmt>(S)->init(), EF);
    return;
  case Stmt::Kind::Expr:
    if (EF)
      walkExpr(cast<ExprStmt>(S)->expr(), EF);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    if (EF)
      walkExpr(If->cond(), EF);
    walkStmt(If->thenStmt(), SF, EF);
    walkStmt(If->elseStmt(), SF, EF);
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    if (EF)
      walkExpr(W->cond(), EF);
    walkStmt(W->body(), SF, EF);
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    walkStmt(F->init(), SF, EF);
    if (EF) {
      walkExpr(F->cond(), EF);
      walkExpr(F->update(), EF);
    }
    walkStmt(F->body(), SF, EF);
    return;
  }
  case Stmt::Kind::Return:
    if (EF)
      walkExpr(cast<ReturnStmt>(S)->value(), EF);
    return;
  case Stmt::Kind::ThrowUnderflow:
    return;
  case Stmt::Kind::Finish:
    if (EF)
      walkExpr(cast<FinishStmt>(S)->graph(), EF);
    return;
  }
}

/// Is \p E a NameRef resolved to \p P?
bool refersToParam(const Expr *E, const ParamDecl *P) {
  const auto *N = dyn_cast<NameRefExpr>(E);
  return N && N->resolution() == NameRefExpr::Resolution::Param &&
         N->param() == P;
}

/// Decomposes an array parameter's Lime type into (scalar, inner
/// bound); returns false for shapes outside the kernel subset
/// (only the outermost dimension may be unbounded).
bool decomposeArrayType(const Type *T, const PrimitiveType *&Scalar,
                        unsigned &InnerBound) {
  const auto *AT = dyn_cast<ArrayType>(T);
  if (!AT)
    return false;
  if (const auto *Inner = dyn_cast<ArrayType>(AT->element())) {
    if (Inner->rank() != 1 || Inner->bound() == 0)
      return false;
    Scalar = dyn_cast<PrimitiveType>(Inner->element());
    InnerBound = Inner->bound();
    return Scalar != nullptr;
  }
  Scalar = dyn_cast<PrimitiveType>(AT->element());
  InnerBound = 0;
  return Scalar != nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Identification (§4.1)
//===----------------------------------------------------------------------===//

KernelAnalysis::KernelAnalysis(Program *P, TypeContext &Types)
    : TheProgram(P), Types(Types) {}

IdentifyResult KernelAnalysis::identify(MethodDecl *Worker) {
  IdentifyResult R;
  KernelPlan &Plan = R.Plan;
  Plan.Worker = Worker;
  Plan.KernelName = Worker->parent()->name() + "_" + Worker->name();

  auto Reject = [&](std::string Why) {
    R.Offloadable = false;
    R.Reason = std::move(Why);
    return R;
  };

  // The filter contract (§3.1/§4.1): static local worker, one value
  // input. Sema enforced this at task creation; re-verify since the
  // compiler can be driven directly.
  if (!Worker->isStatic() || !Worker->isLocal())
    return Reject("worker is not an isolated filter (static local)");
  if (Worker->params().empty())
    return Reject("sources produce data on the host; nothing to offload");

  // The body must be a single `return <map or reduce>;`.
  const auto &Stmts = Worker->body()->stmts();
  if (Stmts.size() != 1 || !isa<ReturnStmt>(Stmts[0]))
    return Reject("worker body is not a single return of a map/reduce "
                  "expression");
  Expr *Ret = cast<ReturnStmt>(Stmts[0])->value();
  if (!Ret)
    return Reject("worker returns nothing");

  const MapExpr *Map = nullptr;
  if (auto *M = dyn_cast<MapExpr>(Ret)) {
    Plan.Kind = KernelKind::Map;
    Map = M;
  } else if (auto *Red = dyn_cast<ReduceExpr>(Ret)) {
    Plan.Kind = KernelKind::Reduce;
    if (Red->combiner() == ReduceExpr::Combiner::Method)
      return Reject("method combiners are not offloaded (operator "
                    "reductions only)");
    Plan.Combiner = Red->combiner();
    if (auto *M = dyn_cast<MapExpr>(Red->source()))
      Map = M; // fused map-reduce
    else if (!refersToParam(Red->source(), Worker->params()[0]))
      return Reject("reduce source must be the worker input or a map "
                    "over it");
  } else {
    return Reject("worker result is not a map or reduce expression");
  }

  if (Map) {
    Plan.MapFn = Map->method();
    if (!Plan.MapFn->isStatic() || !Plan.MapFn->isLocal())
      return Reject("map function must be static and local (§4.1 "
                    "invariant a)");
    std::string Reason;
    if (!classifyMapOperands(Plan, Map, Reason))
      return Reject(Reason);
    if (!analyzeMapFunction(Plan, Reason))
      return Reject(Reason);
  } else {
    // Pure operator reduction over the input array.
    const ParamDecl *In = Worker->params()[0];
    const PrimitiveType *Scalar;
    unsigned InnerBound;
    if (!decomposeArrayType(In->type(), Scalar, InnerBound) ||
        InnerBound != 0)
      return Reject("operator reduction needs a flat array of scalars");
    KernelArray A;
    A.WorkerParam = In;
    A.CName = "in0";
    A.Scalar = Scalar;
    A.IsMapSource = true;
    Plan.Arrays.push_back(A);
    Plan.OutScalars = 1;
    Plan.OutScalarType = Scalar;
  }

  if (Plan.Kind == KernelKind::Reduce) {
    const auto *PT = dyn_cast<PrimitiveType>(
        Plan.MapFn ? Plan.MapFn->returnType()
                   : static_cast<const Type *>(Plan.OutScalarType));
    if (!PT || !PT->isNumeric())
      return Reject("parallel reduction needs a scalar numeric element");
    if (Plan.MapFn) {
      // The fused map runs as an OpenCL helper function inside the
      // reduction loop, so all of its parameters must be scalars
      // (OpenCL 1.0 has no address-space-generic pointers).
      for (ParamDecl *P : Plan.MapFn->params())
        if (!isa<PrimitiveType>(P->type()))
          return Reject("fused map-reduce supports scalar map functions "
                        "only; stage the map as its own filter instead");
    }
    Plan.OutScalars = 1;
    Plan.OutScalarType = PT;
  }

  // Output array entry.
  {
    KernelArray Out;
    Out.CName = "out";
    Out.Scalar = Plan.OutScalarType;
    Out.InnerBound = Plan.OutScalars > 1 ? Plan.OutScalars : 0;
    Out.IsOutput = true;
    Plan.Arrays.push_back(Out);
  }

  R.Offloadable = true;
  return R;
}

bool KernelAnalysis::classifyMapOperands(KernelPlan &Plan, const MapExpr *Map,
                                         std::string &Reason) {
  MethodDecl *Fn = Plan.MapFn;
  const ParamDecl *WorkerIn = Plan.Worker->params()[0];

  if (!refersToParam(Map->source(), WorkerIn)) {
    Reason = "map source must be the worker's input parameter";
    return false;
  }

  // The map source array.
  const PrimitiveType *SrcScalar;
  unsigned SrcInner;
  if (!decomposeArrayType(WorkerIn->type(), SrcScalar, SrcInner)) {
    Reason = "map source shape outside the kernel subset (outer dim "
             "unbounded, inner dims bounded)";
    return false;
  }
  {
    KernelArray Src;
    Src.WorkerParam = WorkerIn;
    Src.MapParam = Fn->params()[0];
    Src.CName = "in0";
    Src.Scalar = SrcScalar;
    Src.InnerBound = SrcInner;
    Src.IsMapSource = true;
    Plan.Arrays.push_back(Src);
  }
  Plan.ElemParam = Fn->params()[0];

  // Extra arguments: worker-parameter references become buffers or
  // forwarded scalars.
  for (size_t I = 0, N = Map->extraArgs().size(); I != N; ++I) {
    Expr *Arg = Map->extraArgs()[I];
    const ParamDecl *FnParam = Fn->params()[I + 1];
    const auto *ArgName = dyn_cast<NameRefExpr>(Arg);
    if (!ArgName ||
        ArgName->resolution() != NameRefExpr::Resolution::Param) {
      Reason = "map extra arguments must be worker parameters";
      return false;
    }
    const ParamDecl *WP = ArgName->param();
    if (isa<ArrayType>(FnParam->type())) {
      // Same worker array bound to several mapped params shares one
      // buffer.
      int Existing = -1;
      for (size_t AI = 0; AI != Plan.Arrays.size(); ++AI)
        if (Plan.Arrays[AI].WorkerParam == WP)
          Existing = static_cast<int>(AI);
      if (Existing < 0) {
        const PrimitiveType *Scalar;
        unsigned Inner;
        if (!decomposeArrayType(FnParam->type(), Scalar, Inner)) {
          Reason = "array argument shape outside the kernel subset";
          return false;
        }
        KernelArray A;
        A.WorkerParam = WP;
        A.MapParam = FnParam;
        A.CName = formatString("arr%zu", Plan.Arrays.size());
        A.Scalar = Scalar;
        A.InnerBound = Inner;
        Plan.Arrays.push_back(A);
        Existing = static_cast<int>(Plan.Arrays.size()) - 1;
      }
      Plan.ParamToArray[FnParam] = Existing;
    } else if (const auto *PT =
                   dyn_cast<PrimitiveType>(FnParam->type())) {
      KernelScalar S;
      S.MapParam = FnParam;
      S.WorkerParam = WP;
      S.CName = "s_" + FnParam->name();
      S.Scalar = PT;
      Plan.Scalars.push_back(S);
      Plan.ParamToScalar[FnParam] =
          static_cast<int>(Plan.Scalars.size()) - 1;
    } else {
      Reason = "unsupported map argument type " + FnParam->type()->str();
      return false;
    }
  }

  // The element parameter also resolves to the source array.
  Plan.ParamToArray[Plan.ElemParam] = 0;

  // Result shape.
  const Type *Ret = Fn->returnType();
  if (const auto *PT = dyn_cast<PrimitiveType>(Ret)) {
    Plan.OutScalars = 1;
    Plan.OutScalarType = PT;
  } else if (const auto *AT = dyn_cast<ArrayType>(Ret);
             AT && AT->rank() == 1 && AT->bound() != 0 &&
             isa<PrimitiveType>(AT->element())) {
    Plan.OutScalars = AT->bound();
    Plan.OutScalarType = cast<PrimitiveType>(AT->element());
  } else {
    Reason = "map function must return a scalar or a bounded 1-D value "
             "array";
    return false;
  }
  return true;
}

bool KernelAnalysis::collectHelpers(KernelPlan &Plan, MethodDecl *M,
                                    std::string &Reason) {
  bool OK = true;
  std::string LocalReason;
  walkStmt(
      M->body(), nullptr,
      [&](Expr *E) {
        if (!OK)
          return;
        if (isa<MapExpr, ReduceExpr, TaskExpr, ConnectExpr, NewObjectExpr>(
                E)) {
          OK = false;
          LocalReason = "nested map/reduce/task expressions are not "
                        "offloadable";
          return;
        }
        auto *C = dyn_cast<CallExpr>(E);
        if (!C || C->builtin() != BuiltinFn::None)
          return;
        MethodDecl *Callee = C->method();
        if (!Callee) {
          OK = false;
          LocalReason = "unresolved call in kernel code";
          return;
        }
        if (!Callee->isStatic() || !Callee->isLocal()) {
          OK = false;
          LocalReason = "kernel code may only call static local methods";
          return;
        }
        for (ParamDecl *P : Callee->params())
          if (!isa<PrimitiveType>(P->type())) {
            OK = false;
            LocalReason = "helper methods must take scalar parameters "
                          "(no address-space-generic pointers in "
                          "OpenCL 1.0)";
            return;
          }
        // Helper bodies need exactly one return, at the end (the
        // OpenCL inliner's restriction).
        unsigned Returns = 0;
        walkStmt(Callee->body(), [&](Stmt *S) {
          if (isa<ReturnStmt>(S))
            ++Returns;
        }, nullptr);
        const auto &Body = Callee->body()->stmts();
        bool TrailingReturn =
            !Body.empty() && isa<ReturnStmt>(Body.back());
        if (Returns != 1 || !TrailingReturn) {
          OK = false;
          LocalReason = "helper '" + Callee->name() +
                        "' must have exactly one trailing return";
          return;
        }
        bool Known = false;
        for (MethodDecl *H : Plan.Helpers)
          if (H == Callee)
            Known = true;
        if (Callee == Plan.MapFn) {
          OK = false;
          LocalReason = "recursive kernel code is not legal OpenCL";
          return;
        }
        if (!Known) {
          Plan.Helpers.push_back(Callee);
          if (Plan.Helpers.size() > 64) {
            OK = false;
            LocalReason = "helper call graph too large (recursion?)";
            return;
          }
          if (!collectHelpers(Plan, Callee, LocalReason))
            OK = false;
        }
      });
  if (!OK)
    Reason = LocalReason;
  return OK;
}

bool KernelAnalysis::collectPrivateArrays(KernelPlan &Plan,
                                          std::string &Reason) {
  bool OK = true;
  std::string LocalReason;
  auto ScanMethod = [&](MethodDecl *M) {
    walkStmt(M->body(),
             [&](Stmt *S) {
               if (!OK)
                 return;
               auto *D = dyn_cast<VarDeclStmt>(S);
               if (!D || !D->init())
                 return;
               auto *NA = dyn_cast<NewArrayExpr>(D->init());
               if (!NA)
                 return;
               const auto *AT = dyn_cast<ArrayType>(D->type());
               if (!AT || AT->rank() != 1) {
                 OK = false;
                 LocalReason = "only 1-D in-kernel scratch arrays are "
                               "supported";
                 return;
               }
               unsigned Count = 0;
               if (!NA->inits().empty()) {
                 Count = static_cast<unsigned>(NA->inits().size());
               } else if (NA->sizes().size() == 1) {
                 if (auto *L = dyn_cast<IntLitExpr>(NA->sizes()[0])) {
                   Count = static_cast<unsigned>(L->value());
                 } else {
                   OK = false;
                   LocalReason = "in-kernel array sizes must be "
                                 "compile-time constants (private "
                                 "memory, §4.2.1)";
                   return;
                 }
               }
               Plan.PrivateArrays.push_back({D, Count});
             },
             nullptr);
  };
  ScanMethod(Plan.MapFn);
  for (MethodDecl *H : Plan.Helpers)
    ScanMethod(H);
  if (!OK)
    Reason = LocalReason;
  return OK;
}

void KernelAnalysis::findTilingCandidate(KernelPlan &Plan) {
  // Fig. 5(c): a top-level sequential loop `for (j = 0; j <
  // X.length; j++)` sweeping a whole shared array X that is only
  // accessed as X[j].
  for (Stmt *S : Plan.MapFn->body()->stmts()) {
    auto *For = dyn_cast<ForStmt>(S);
    if (!For || !For->init() || !For->cond())
      continue;
    auto *Init = dyn_cast<VarDeclStmt>(For->init());
    if (!Init)
      continue;
    auto *Cond = dyn_cast<BinaryExpr>(For->cond());
    if (!Cond || Cond->op() != BinaryOp::Lt)
      continue;
    auto *CondVar = dyn_cast<NameRefExpr>(Cond->lhs());
    if (!CondVar || CondVar->local() != Init)
      continue;
    auto *Len = dyn_cast<ArrayLengthExpr>(Cond->rhs());
    if (!Len)
      continue;
    auto *ArrRef = dyn_cast<NameRefExpr>(Len->base());
    if (!ArrRef || ArrRef->resolution() != NameRefExpr::Resolution::Param)
      continue;
    auto It = Plan.ParamToArray.find(ArrRef->param());
    if (It == Plan.ParamToArray.end())
      continue;
    int ArrayIdx = It->second;
    if (Plan.Arrays[static_cast<size_t>(ArrayIdx)].IsMapSource &&
        ArrRef->param() == Plan.ElemParam)
      continue;

    // Every access to X must be X[<loop var>].
    bool AllByLoopVar = true;
    const ParamDecl *XParam = ArrRef->param();
    walkStmt(For->body(), nullptr, [&](Expr *E) {
      auto *Idx = dyn_cast<ArrayIndexExpr>(E);
      if (!Idx)
        return;
      if (!refersToParam(Idx->base(), XParam))
        return;
      auto *IV = dyn_cast<NameRefExpr>(Idx->index());
      if (!IV || IV->local() != Init)
        AllByLoopVar = false;
    });
    // X must not be touched outside the loop: compare use counts in
    // the whole body against uses inside the loop (body + bound).
    unsigned Total = 0;
    unsigned Inside = 0;
    walkStmt(Plan.MapFn->body(), nullptr, [&](Expr *E) {
      if (refersToParam(E, XParam))
        ++Total;
    });
    walkStmt(For->body(), nullptr, [&](Expr *E) {
      if (refersToParam(E, XParam))
        ++Inside;
    });
    walkExpr(For->cond(), [&](Expr *E) {
      if (refersToParam(E, XParam))
        ++Inside;
    });
    bool UsedOutside = Total != Inside;

    if (AllByLoopVar && !UsedOutside) {
      Plan.TiledLoop = For;
      Plan.TiledArrayIndex = ArrayIdx;
      return;
    }
  }
}

bool KernelAnalysis::isUniformlyIndexed(const KernelPlan &Plan,
                                        const ParamDecl *Param) {
  // Taint: values derived from the map element differ per work-item;
  // an array indexed only by untainted expressions is read uniformly
  // (broadcast) — the Fig. 5(g) constant-memory idiom.
  std::set<const void *> Tainted;
  Tainted.insert(Plan.ElemParam);

  // Propagate to fixpoint through declarations and assignments.
  bool Changed = true;
  auto ExprTainted = [&](Expr *E) {
    bool T = false;
    walkExpr(E, [&](Expr *Sub) {
      if (auto *N = dyn_cast<NameRefExpr>(Sub)) {
        const void *Key = nullptr;
        if (N->resolution() == NameRefExpr::Resolution::Param)
          Key = N->param();
        else if (N->resolution() == NameRefExpr::Resolution::Local)
          Key = N->local();
        if (Key && Tainted.count(Key))
          T = true;
      }
    });
    return T;
  };
  while (Changed) {
    Changed = false;
    walkStmt(Plan.MapFn->body(),
             [&](Stmt *S) {
               auto *D = dyn_cast<VarDeclStmt>(S);
               if (!D || !D->init())
                 return;
               if (!Tainted.count(D) && ExprTainted(D->init())) {
                 Tainted.insert(D);
                 Changed = true;
               }
             },
             [&](Expr *E) {
               auto *A = dyn_cast<AssignExpr>(E);
               if (!A)
                 return;
               auto *N = dyn_cast<NameRefExpr>(A->target());
               if (!N || N->resolution() != NameRefExpr::Resolution::Local)
                 return;
               if (!Tainted.count(N->local()) && ExprTainted(A->value())) {
                 Tainted.insert(N->local());
                 Changed = true;
               }
             });
  }

  bool Uniform = true;
  walkStmt(Plan.MapFn->body(), nullptr, [&](Expr *E) {
    auto *Idx = dyn_cast<ArrayIndexExpr>(E);
    if (!Idx)
      return;
    // Outer access X[...] or inner access X[..][...].
    Expr *Base = Idx->base();
    bool OnParam = refersToParam(Base, Param);
    if (auto *InnerBase = dyn_cast<ArrayIndexExpr>(Base))
      OnParam = OnParam || refersToParam(InnerBase->base(), Param);
    if (!OnParam)
      return;
    if (ExprTainted(Idx->index()))
      Uniform = false;
  });
  return Uniform;
}

bool KernelAnalysis::innerIndicesConstant(const KernelPlan &Plan,
                                          const ParamDecl *Param) {
  bool AllConstant = true;
  auto Check = [&](MethodDecl *M) {
    walkStmt(M->body(), nullptr, [&](Expr *E) {
      auto *Idx = dyn_cast<ArrayIndexExpr>(E);
      if (!Idx)
        return;
      // Inner access pattern X[outer][inner] — the inner index must
      // be a literal for the vectorizer to know the component
      // statically (§4.2.2). The element parameter's row accesses
      // elem[inner] count too.
      if (auto *BaseIdx = dyn_cast<ArrayIndexExpr>(Idx->base())) {
        if (refersToParam(BaseIdx->base(), Param) &&
            !isa<IntLitExpr>(Idx->index()))
          AllConstant = false;
        return;
      }
      if (Param == Plan.ElemParam && refersToParam(Idx->base(), Param) &&
          isa<ArrayType>(Param->type()) &&
          cast<ArrayType>(Param->type())->rank() == 1 &&
          !isa<IntLitExpr>(Idx->index()))
        AllConstant = false;
    });
  };
  Check(Plan.MapFn);
  return AllConstant;
}

bool KernelAnalysis::analyzeMapFunction(KernelPlan &Plan,
                                        std::string &Reason) {
  if (!collectHelpers(Plan, Plan.MapFn, Reason))
    return false;
  if (!collectPrivateArrays(Plan, Reason))
    return false;
  findTilingCandidate(Plan);

  // Eligibility facts per array.
  for (KernelArray &A : Plan.Arrays) {
    if (A.IsOutput)
      continue;
    const ParamDecl *MP = A.MapParam;
    if (!MP)
      continue;
    A.UniformlyIndexed = !A.IsMapSource && isUniformlyIndexed(Plan, MP);
    A.InnerIndexConstant = innerIndicesConstant(Plan, MP);
    // Fig. 5(e): read-only float/int arrays whose rows fill whole
    // texels (inner bound 4) or flat scalar arrays.
    bool ScalarOK = A.Scalar->prim() == PrimitiveType::Prim::Float ||
                    A.Scalar->prim() == PrimitiveType::Prim::Int;
    A.ImageEligible =
        ScalarOK && (A.InnerBound == 4 ||
                     (A.InnerBound == 0 && !A.IsMapSource));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Memory optimization (§4.2.1) and vectorization (§4.2.2)
//===----------------------------------------------------------------------===//

void KernelAnalysis::optimize(KernelPlan &Plan, const MemoryConfig &Config) {
  Plan.Config = Config;
  for (size_t I = 0; I != Plan.Arrays.size(); ++I) {
    KernelArray &A = Plan.Arrays[I];
    if (A.IsOutput) {
      A.Space = MemSpace::Global;
      A.ConstReason = PlacementReason::NotApplicable;
      A.Vectorized = Config.Vectorize &&
                     (A.InnerBound == 2 || A.InnerBound == 4 ||
                      A.InnerBound == 8 || A.InnerBound == 16);
      continue;
    }

    bool Tiled = Config.AllowLocal &&
                 static_cast<int>(I) == Plan.TiledArrayIndex;
    bool Img = Config.AllowImage && A.ImageEligible;

    // The constant-memory decision (Fig. 5(g)): an oracle proof beats
    // the syntactic idiom in both directions — Proven blesses arrays
    // the pattern refuses (map sources read mostly at uniform
    // indices), Refuted vetoes placements the pattern would have
    // taken on faith. A read-only refutation also vetoes: __constant
    // data cannot be written.
    bool SynConst = A.UniformlyIndexed;
    bool Const;
    PlacementReason Why;
    if (!Config.AllowConstant) {
      Const = false;
      Why = PlacementReason::ConfigDisabled;
    } else if (A.OracleUniform == FactState::Proven &&
               A.OracleReadOnly != FactState::Refuted) {
      Const = true;
      Why = PlacementReason::ProvenUniform;
    } else if (A.OracleUniform == FactState::Refuted ||
               A.OracleReadOnly == FactState::Refuted) {
      Const = false;
      Why = SynConst ? PlacementReason::OracleRefused
                     : A.OracleOnlyElementAccesses
                           ? PlacementReason::NoUniformAccess
                           : PlacementReason::NotUniform;
    } else {
      Const = SynConst;
      Why = SynConst ? PlacementReason::SyntacticIdiom
                     : PlacementReason::NotUniform;
    }

    if (Tiled)
      A.Space = MemSpace::LocalTiled;
    else if (Img)
      A.Space = MemSpace::Image;
    else if (Const)
      A.Space = MemSpace::Constant;
    else
      A.Space = MemSpace::Global;

    // Record why the array is not in __constant when a higher-
    // precedence placement displaced an eligible candidate.
    if (Const && A.Space != MemSpace::Constant)
      Why = A.Space == MemSpace::LocalTiled ? PlacementReason::TiledInstead
                                            : PlacementReason::ImageInstead;
    A.ConstReason = Why;

    // OpenCL 1.0 allows widths 2/4/8/16 (§4.2.2); the emitter
    // implements the 2 and 4 forms the benchmarks use.
    bool VecWidthOK = A.InnerBound == 2 || A.InnerBound == 4;
    A.Vectorized = Config.Vectorize && VecWidthOK && A.InnerIndexConstant &&
                   A.Space != MemSpace::Image;

    if (A.Space == MemSpace::LocalTiled) {
      A.RowStride = A.rowScalars();
      if (Config.RemoveBankConflicts && A.rowScalars() > 1)
        A.RowStride += 1; // pad one word per row (§4.2.1)
      unsigned RowBytes = A.RowStride * A.Scalar->sizeInBytes();
      unsigned Budget = Config.LocalTileBudgetBytes;
      A.TileRows = std::min(512u, std::max(16u, Budget / RowBytes));
      // Padded rows defeat contiguous vector loads of the tile
      // itself; the global->local fill may still vectorize.
    }
  }
}
