//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Facade over the GPU compilation pipeline (paper §4): kernel
/// identification -> memory optimization -> OpenCL code generation.
/// The runtime's offload manager calls compile() per filter and
/// memory configuration; benchmarks call it once per Figure 8 bar.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_COMPILER_GPUCOMPILER_H
#define LIMECC_COMPILER_GPUCOMPILER_H

#include "compiler/KernelAnalysis.h"
#include "compiler/KernelPlan.h"

#include <functional>
#include <string>

namespace lime {

/// A fully compiled kernel: the plan (host-side orchestration data)
/// plus the OpenCL source text.
struct CompiledKernel {
  bool Ok = false;
  std::string Error;
  KernelPlan Plan;
  std::string Source;
};

/// Runs between identification and the memory optimizer: the one
/// seam where an upstream analysis (the analysis library's oracle)
/// may stamp proof facts into the plan's arrays. The compiler cannot
/// link the analysis library (it sits above this one), so the hook
/// inverts the dependency: whoever owns a proof injects it here.
using PlanHook = std::function<void(KernelPlan &)>;

class GpuCompiler {
public:
  GpuCompiler(Program *P, TypeContext &Types);

  /// Identification only (for tests and diagnostics).
  IdentifyResult identify(MethodDecl *Worker);

  /// Full pipeline for one filter and configuration.
  CompiledKernel compile(MethodDecl *Worker, const MemoryConfig &Config);

  /// Full pipeline with \p Hook applied to the identified plan before
  /// the memory optimizer runs (analysis::oracleCompile uses this).
  CompiledKernel compile(MethodDecl *Worker, const MemoryConfig &Config,
                         const PlanHook &Hook);

private:
  Program *TheProgram;
  TypeContext &Types;
};

} // namespace lime

#endif // LIMECC_COMPILER_GPUCOMPILER_H
