//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Facade over the GPU compilation pipeline (paper §4): kernel
/// identification -> memory optimization -> OpenCL code generation.
/// The runtime's offload manager calls compile() per filter and
/// memory configuration; benchmarks call it once per Figure 8 bar.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_COMPILER_GPUCOMPILER_H
#define LIMECC_COMPILER_GPUCOMPILER_H

#include "compiler/KernelAnalysis.h"
#include "compiler/KernelPlan.h"

#include <string>

namespace lime {

/// A fully compiled kernel: the plan (host-side orchestration data)
/// plus the OpenCL source text.
struct CompiledKernel {
  bool Ok = false;
  std::string Error;
  KernelPlan Plan;
  std::string Source;
};

class GpuCompiler {
public:
  GpuCompiler(Program *P, TypeContext &Types);

  /// Identification only (for tests and diagnostics).
  IdentifyResult identify(MethodDecl *Worker);

  /// Full pipeline for one filter and configuration.
  CompiledKernel compile(MethodDecl *Worker, const MemoryConfig &Config);

private:
  Program *TheProgram;
  TypeContext &Types;
};

} // namespace lime

#endif // LIMECC_COMPILER_GPUCOMPILER_H
