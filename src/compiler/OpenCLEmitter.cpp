//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "compiler/OpenCLEmitter.h"

#include "support/StringUtils.h"

using namespace lime;

OpenCLEmitter::OpenCLEmitter(const KernelPlan &Plan, DiagnosticEngine &Diags)
    : Plan(Plan), Diags(Diags) {}

void OpenCLEmitter::errorAt(SourceLocation Loc, const std::string &Msg) {
  Diags.error(Loc, "[emit] " + Msg);
}

void OpenCLEmitter::line(const std::string &Text) {
  Out.append(Indent * 2, ' ');
  Out += Text;
  Out += '\n';
}

void OpenCLEmitter::open(const std::string &Text) {
  line(Text);
  ++Indent;
}

void OpenCLEmitter::close(const std::string &Text) {
  --Indent;
  line(Text);
}

std::string OpenCLEmitter::freshName(const std::string &Hint) {
  return formatString("v%u_%s", NameCounter++, Hint.c_str());
}

std::string OpenCLEmitter::cTypeFor(const Type *T) {
  const auto *PT = dyn_cast<PrimitiveType>(T);
  if (!PT) {
    errorAt(SourceLocation(), "non-scalar type in kernel code: " + T->str());
    return "int";
  }
  switch (PT->prim()) {
  case PrimitiveType::Prim::Void:
    return "void";
  case PrimitiveType::Prim::Boolean:
    return "int";
  case PrimitiveType::Prim::Byte:
    return "char";
  case PrimitiveType::Prim::Int:
    return "int";
  case PrimitiveType::Prim::Long:
    return "long";
  case PrimitiveType::Prim::Float:
    return "float";
  case PrimitiveType::Prim::Double:
    return "double";
  }
  lime_unreachable("bad prim");
}

/// Renders a floating literal so it parses as the intended type.
static std::string floatLiteral(double V, bool Single) {
  std::string S = formatString("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos)
    S += ".0";
  if (Single)
    S += "f";
  return S;
}

//===----------------------------------------------------------------------===//
// Access paths
//===----------------------------------------------------------------------===//

int OpenCLEmitter::arrayIndexOfBase(Expr *Base) {
  auto *N = dyn_cast<NameRefExpr>(Base);
  if (!N || N->resolution() != NameRefExpr::Resolution::Param)
    return -1;
  auto It = Plan.ParamToArray.find(N->param());
  return It == Plan.ParamToArray.end() ? -1 : It->second;
}

std::string OpenCLEmitter::emitScalarArrayAccess(int ArrayIndex,
                                                 const std::string &Outer) {
  const KernelArray &A = Plan.Arrays[static_cast<size_t>(ArrayIndex)];
  if (A.Space == MemSpace::Image)
    return formatString("__fetch1_%s(img_%s, smp_%s, (%s))", A.CName.c_str(),
                        A.CName.c_str(), A.CName.c_str(), Outer.c_str());
  return formatString("%s[%s]", A.CName.c_str(), Outer.c_str());
}

std::string OpenCLEmitter::emitElementAccess(int ArrayIndex,
                                             const std::string &Outer,
                                             Expr *InnerIdx, bool OnTile) {
  const KernelArray &A = Plan.Arrays[static_cast<size_t>(ArrayIndex)];
  std::string Inner = emitExpr(InnerIdx);

  if (OnTile)
    return formatString("tile_%s[(%s) * %u + (%s)]", A.CName.c_str(),
                        Outer.c_str(), A.RowStride, Inner.c_str());

  if (A.Space == MemSpace::Image) {
    // Whole-texel rows: fetch then select the component. Constant
    // inner indices use the component accessor directly.
    std::string Fetch = formatString(
        "read_imagef(img_%s, smp_%s, (int2)((%s) %% %u, (%s) / %u))",
        A.CName.c_str(), A.CName.c_str(), Outer.c_str(), ImageRowTexels,
        Outer.c_str(), ImageRowTexels);
    if (auto *Lit = dyn_cast<IntLitExpr>(InnerIdx)) {
      static const char *Comp[4] = {"x", "y", "z", "w"};
      long long C = Lit->value();
      if (C >= 0 && C < 4)
        return Fetch + "." + Comp[C];
    }
    errorAt(InnerIdx->loc(), "image rows need constant component indices");
    return Fetch + ".x";
  }

  return formatString("%s[(%s) * %u + (%s)]", A.CName.c_str(), Outer.c_str(),
                      A.InnerBound, Inner.c_str());
}

std::string OpenCLEmitter::rowAccess(const RowView &V, Expr *InnerIdx) {
  if (!V.CompVars.empty()) {
    if (auto *Lit = dyn_cast<IntLitExpr>(InnerIdx);
        Lit && Lit->value() >= 0 &&
        Lit->value() < static_cast<long long>(V.CompVars.size()))
      return V.CompVars[static_cast<size_t>(Lit->value())];
    // Dynamic index against a promoted row: fall through to memory.
    return emitElementAccess(V.ArrayIndex, V.OuterIndex, InnerIdx, V.OnTile);
  }
  if (!V.CacheVar.empty()) {
    if (auto *Lit = dyn_cast<IntLitExpr>(InnerIdx)) {
      static const char *Comp[4] = {"x", "y", "z", "w"};
      if (Lit->value() >= 0 && Lit->value() < 4)
        return V.CacheVar + "." + Comp[Lit->value()];
    }
    errorAt(InnerIdx->loc(),
            "vectorized rows need constant component indices");
    return V.CacheVar + ".x";
  }
  return emitElementAccess(V.ArrayIndex, V.OuterIndex, InnerIdx, V.OnTile);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::string OpenCLEmitter::emitExpr(Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->value());
  case Expr::Kind::FloatLit: {
    auto *L = cast<FloatLitExpr>(E);
    return floatLiteral(L->value(), L->isSingle());
  }
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(E)->value() ? "1" : "0";

  case Expr::Kind::NameRef: {
    auto *N = cast<NameRefExpr>(E);
    switch (N->resolution()) {
    case NameRefExpr::Resolution::Local: {
      auto It = Names.find(N->local());
      if (It != Names.end())
        return It->second;
      errorAt(N->loc(), "unbound local '" + N->name() + "' in kernel code");
      return "0";
    }
    case NameRefExpr::Resolution::Param: {
      auto It = Names.find(N->param());
      if (It != Names.end())
        return It->second;
      errorAt(N->loc(), "array parameter '" + N->name() +
                            "' used as a value in kernel code");
      return "0";
    }
    case NameRefExpr::Resolution::Field: {
      FieldDecl *F = N->field();
      if (F->isStatic() && F->isFinal() && F->init()) {
        if (auto *IL = dyn_cast<IntLitExpr>(F->init()))
          return std::to_string(IL->value());
        if (auto *FL = dyn_cast<FloatLitExpr>(F->init()))
          return floatLiteral(FL->value(), FL->isSingle());
      }
      errorAt(N->loc(), "only literal-initialized final statics are "
                        "available in kernel code");
      return "0";
    }
    default:
      errorAt(N->loc(), "unsupported name in kernel code");
      return "0";
    }
  }

  case Expr::Kind::FieldAccess: {
    auto *FA = cast<FieldAccessExpr>(E);
    FieldDecl *F = FA->field();
    if (F && F->isStatic() && F->isFinal() && F->init()) {
      if (auto *IL = dyn_cast<IntLitExpr>(F->init()))
        return std::to_string(IL->value());
      if (auto *FL = dyn_cast<FloatLitExpr>(F->init()))
        return floatLiteral(FL->value(), FL->isSingle());
    }
    errorAt(E->loc(), "field access in kernel code");
    return "0";
  }

  case Expr::Kind::ArrayLength: {
    auto *AL = cast<ArrayLengthExpr>(E);
    if (auto *N = dyn_cast<NameRefExpr>(AL->base())) {
      if (N->resolution() == NameRefExpr::Resolution::Param) {
        if (N->param() == Plan.ElemParam &&
            isa<ArrayType>(Plan.ElemParam->type()))
          return std::to_string(
              cast<ArrayType>(Plan.ElemParam->type())->bound());
        auto It = Plan.ParamToArray.find(N->param());
        if (It != Plan.ParamToArray.end())
          return "args.len_" +
                 Plan.Arrays[static_cast<size_t>(It->second)].CName;
      }
      if (N->resolution() == NameRefExpr::Resolution::Local) {
        auto PIt = PrivateSizes.find(N->local());
        if (PIt != PrivateSizes.end())
          return std::to_string(PIt->second);
        auto RIt = RowViews.find(N->local());
        if (RIt != RowViews.end())
          return std::to_string(
              Plan.Arrays[static_cast<size_t>(RIt->second.ArrayIndex)]
                  .rowScalars());
      }
    }
    errorAt(E->loc(), "unsupported .length in kernel code");
    return "0";
  }

  case Expr::Kind::ArrayIndex: {
    auto *AI = cast<ArrayIndexExpr>(E);
    Expr *Base = AI->base();

    // X[o][c] — inner access on a mapped array.
    if (auto *Outer = dyn_cast<ArrayIndexExpr>(Base)) {
      int Arr = arrayIndexOfBase(Outer->base());
      if (Arr >= 0) {
        bool OnTile = false;
        std::string OuterIdx;
        if (Arr == Plan.TiledArrayIndex && TileLoopVar &&
            Plan.Arrays[static_cast<size_t>(Arr)].Space ==
                MemSpace::LocalTiled) {
          OnTile = true;
          OuterIdx = TileLocalIdxName;
        } else {
          OuterIdx = emitExpr(Outer->index());
        }
        return emitElementAccess(Arr, OuterIdx, AI->index(), OnTile);
      }
    }

    if (auto *N = dyn_cast<NameRefExpr>(Base)) {
      // Element-parameter row: p[c].
      if (N->resolution() == NameRefExpr::Resolution::Param &&
          N->param() == Plan.ElemParam &&
          isa<ArrayType>(Plan.ElemParam->type())) {
        auto It = RowViews.find(nullptr); // elem view keyed by null
        if (It != RowViews.end())
          return rowAccess(It->second, AI->index());
      }
      // Whole mapped array with scalar elements: X[o].
      int Arr = arrayIndexOfBase(N);
      if (Arr >= 0) {
        const KernelArray &A = Plan.Arrays[static_cast<size_t>(Arr)];
        if (A.InnerBound == 0) {
          if (Arr == Plan.TiledArrayIndex && TileLoopVar &&
              A.Space == MemSpace::LocalTiled)
            return formatString("tile_%s[%s]", A.CName.c_str(),
                                TileLocalIdxName.c_str());
          return emitScalarArrayAccess(Arr, emitExpr(AI->index()));
        }
        errorAt(AI->loc(), "row value used outside a row binding "
                           "(bind it: 'float[[4]] q = X[j];')");
        return "0";
      }
      // Row view local: q[c].
      if (N->resolution() == NameRefExpr::Resolution::Local) {
        auto RIt = RowViews.find(N->local());
        if (RIt != RowViews.end())
          return rowAccess(RIt->second, AI->index());
        // Private array access.
        auto It = Names.find(N->local());
        if (It != Names.end())
          return formatString("%s[%s]", It->second.c_str(),
                              emitExpr(AI->index()).c_str());
      }
    }
    errorAt(E->loc(), "unsupported array access shape in kernel code");
    return "0";
  }

  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    std::vector<std::string> Args;
    for (Expr *A : C->args())
      Args.push_back(emitExpr(A));
    if (C->builtin() != BuiltinFn::None) {
      bool FloatArgs = true;
      for (Expr *A : C->args()) {
        const auto *PT = dyn_cast<PrimitiveType>(A->type());
        if (!PT || !PT->isFloating())
          FloatArgs = false;
      }
      const char *Fn = nullptr;
      switch (C->builtin()) {
      case BuiltinFn::Sqrt:
        Fn = "sqrt";
        break;
      case BuiltinFn::Sin:
        Fn = "sin";
        break;
      case BuiltinFn::Cos:
        Fn = "cos";
        break;
      case BuiltinFn::Tan:
        Fn = "tan";
        break;
      case BuiltinFn::Exp:
        Fn = "exp";
        break;
      case BuiltinFn::Log:
        Fn = "log";
        break;
      case BuiltinFn::Pow:
        Fn = "pow";
        break;
      case BuiltinFn::Abs:
        Fn = FloatArgs ? "fabs" : "abs";
        break;
      case BuiltinFn::Min:
        Fn = FloatArgs ? "fmin" : "min";
        break;
      case BuiltinFn::Max:
        Fn = FloatArgs ? "fmax" : "max";
        break;
      case BuiltinFn::Floor:
        Fn = "floor";
        break;
      case BuiltinFn::None:
        break;
      }
      return std::string(Fn) + "(" + joinStrings(Args, ", ") + ")";
    }
    MethodDecl *M = C->method();
    return M->parent()->name() + "_" + M->name() + "(" +
           joinStrings(Args, ", ") + ")";
  }

  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    const char *Op = U->op() == UnaryOp::Neg   ? "-"
                     : U->op() == UnaryOp::Not ? "!"
                                               : "~";
    return std::string(Op) + "(" + emitExpr(U->sub()) + ")";
  }

  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    const char *Op = "+";
    switch (B->op()) {
    case BinaryOp::Add:
      Op = "+";
      break;
    case BinaryOp::Sub:
      Op = "-";
      break;
    case BinaryOp::Mul:
      Op = "*";
      break;
    case BinaryOp::Div:
      Op = "/";
      break;
    case BinaryOp::Rem:
      Op = "%";
      break;
    case BinaryOp::Shl:
      Op = "<<";
      break;
    case BinaryOp::Shr:
      Op = ">>";
      break;
    case BinaryOp::BitAnd:
      Op = "&";
      break;
    case BinaryOp::BitOr:
      Op = "|";
      break;
    case BinaryOp::BitXor:
      Op = "^";
      break;
    case BinaryOp::Lt:
      Op = "<";
      break;
    case BinaryOp::Le:
      Op = "<=";
      break;
    case BinaryOp::Gt:
      Op = ">";
      break;
    case BinaryOp::Ge:
      Op = ">=";
      break;
    case BinaryOp::Eq:
      Op = "==";
      break;
    case BinaryOp::Ne:
      Op = "!=";
      break;
    case BinaryOp::LogicalAnd:
      Op = "&&";
      break;
    case BinaryOp::LogicalOr:
      Op = "||";
      break;
    }
    return "(" + emitExpr(B->lhs()) + " " + Op + " " + emitExpr(B->rhs()) +
           ")";
  }

  case Expr::Kind::Assign: {
    auto *A = cast<AssignExpr>(E);
    std::string Target = emitExpr(A->target());
    std::string Value = emitExpr(A->value());
    const char *Op;
    switch (A->op()) {
    case AssignExpr::Op::None:
      Op = "=";
      break;
    case AssignExpr::Op::Add:
      Op = "+=";
      break;
    case AssignExpr::Op::Sub:
      Op = "-=";
      break;
    case AssignExpr::Op::Mul:
      Op = "*=";
      break;
    case AssignExpr::Op::Div:
      Op = "/=";
      break;
    case AssignExpr::Op::Rem:
      Op = "%=";
      break;
    case AssignExpr::Op::BitAnd:
      Op = "&=";
      break;
    case AssignExpr::Op::BitOr:
      Op = "|=";
      break;
    case AssignExpr::Op::BitXor:
      Op = "^=";
      break;
    default:
      Op = "=";
      break;
    }
    return Target + " " + Op + " " + Value;
  }

  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(E);
    if (C->isFreezeOrThaw()) {
      errorAt(E->loc(), "array freeze casts are only supported in return "
                        "position");
      return "0";
    }
    return "(" + cTypeFor(C->type()) + ")(" + emitExpr(C->sub()) + ")";
  }

  case Expr::Kind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    return "((" + emitExpr(C->cond()) + ") ? (" + emitExpr(C->thenExpr()) +
           ") : (" + emitExpr(C->elseExpr()) + "))";
  }

  default:
    errorAt(E->loc(), "expression kind not available in kernel code");
    return "0";
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void OpenCLEmitter::emitVarDecl(VarDeclStmt *D) {
  // Private scratch array (Fig. 5(a-b)).
  if (auto *NA = dyn_cast_if_present<NewArrayExpr>(D->init())) {
    const auto *AT = cast<ArrayType>(D->type());
    std::string Name = freshName(D->name());
    Names[D] = Name;
    unsigned Size = 0;
    if (!NA->inits().empty())
      Size = static_cast<unsigned>(NA->inits().size());
    else if (auto *L = dyn_cast<IntLitExpr>(NA->sizes()[0]))
      Size = static_cast<unsigned>(L->value());
    PrivateSizes[D] = Size;
    line(formatString("%s %s[%u];", cTypeFor(AT->element()).c_str(),
                      Name.c_str(), Size));
    if (!NA->inits().empty()) {
      for (size_t I = 0; I != NA->inits().size(); ++I)
        line(formatString("%s[%zu] = %s;", Name.c_str(), I,
                          emitExpr(NA->inits()[I]).c_str()));
    } else {
      // Lime zero-initializes.
      line(formatString("for (int zi_ = 0; zi_ < %u; zi_++) %s[zi_] = 0;",
                        Size, Name.c_str()));
    }
    return;
  }

  // Row binding: `float[[4]] q = X[j];` (also via assignable-compatible
  // bounded types).
  if (D->init() && isa<ArrayType>(D->type())) {
    auto *AI = dyn_cast<ArrayIndexExpr>(D->init());
    int Arr = AI ? arrayIndexOfBase(AI->base()) : -1;
    if (Arr < 0) {
      errorAt(D->loc(), "array-typed locals must bind a row of a mapped "
                        "array");
      return;
    }
    const KernelArray &A = Plan.Arrays[static_cast<size_t>(Arr)];
    RowView V;
    V.ArrayIndex = Arr;
    bool Tiled = Arr == Plan.TiledArrayIndex && TileLoopVar &&
                 A.Space == MemSpace::LocalTiled;
    if (Tiled) {
      V.OnTile = true;
      V.OuterIndex = TileLocalIdxName;
      // Promote the components out of the tile when the indices are
      // constant — one local read per component.
      if (A.InnerIndexConstant && A.InnerBound <= 16) {
        std::string CT = cTypeFor(A.Scalar);
        for (unsigned C2 = 0; C2 != A.InnerBound; ++C2) {
          std::string CompName = freshName(D->name() + std::to_string(C2));
          line(formatString("%s %s = tile_%s[(%s) * %u + %u];", CT.c_str(),
                            CompName.c_str(), A.CName.c_str(),
                            TileLocalIdxName.c_str(), A.RowStride, C2));
          V.CompVars.push_back(CompName);
        }
      }
      RowViews[D] = V;
      return;
    }
    std::string Outer = emitExpr(AI->index());
    if (A.Space == MemSpace::Image && A.InnerBound == 4) {
      std::string Name = freshName(D->name());
      line(formatString(
          "float4 %s = read_imagef(img_%s, smp_%s, (int2)((%s) %% %u, "
          "(%s) / %u));",
          Name.c_str(), A.CName.c_str(), A.CName.c_str(), Outer.c_str(),
          ImageRowTexels, Outer.c_str(), ImageRowTexels));
      V.CacheVar = Name;
    } else if (A.Vectorized && A.InnerBound == 4 &&
               A.Space != MemSpace::LocalTiled) {
      std::string Name = freshName(D->name());
      line(formatString("float4 %s = vload4(%s, %s);", Name.c_str(),
                        Outer.c_str(), A.CName.c_str()));
      V.CacheVar = Name;
    } else if (A.InnerIndexConstant && A.InnerBound <= 16) {
      // Scalar promotion: constant component indices mean each
      // component loads exactly once into a register.
      std::string IdxName = freshName(D->name() + "_o");
      line(formatString("int %s = %s;", IdxName.c_str(), Outer.c_str()));
      V.OuterIndex = IdxName;
      std::string CT = cTypeFor(A.Scalar);
      for (unsigned C2 = 0; C2 != A.InnerBound; ++C2) {
        std::string CompName = freshName(D->name() + std::to_string(C2));
        line(formatString("%s %s = %s[(%s) * %u + %u];", CT.c_str(),
                          CompName.c_str(), A.CName.c_str(), IdxName.c_str(),
                          A.InnerBound, C2));
        V.CompVars.push_back(CompName);
      }
    } else {
      // Bind the index once so re-emission stays pure.
      std::string IdxName = freshName(D->name() + "_o");
      line(formatString("int %s = %s;", IdxName.c_str(), Outer.c_str()));
      V.OuterIndex = IdxName;
    }
    RowViews[D] = V;
    return;
  }

  std::string Name = freshName(D->name());
  Names[D] = Name;
  if (D->init())
    line(formatString("%s %s = %s;", cTypeFor(D->type()).c_str(),
                      Name.c_str(), emitExpr(D->init()).c_str()));
  else
    line(formatString("%s %s = 0;", cTypeFor(D->type()).c_str(),
                      Name.c_str()));
}

void OpenCLEmitter::emitStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    open("{");
    for (Stmt *Sub : cast<BlockStmt>(S)->stmts())
      emitStmt(Sub);
    close();
    return;

  case Stmt::Kind::VarDecl:
    emitVarDecl(cast<VarDeclStmt>(S));
    return;

  case Stmt::Kind::Expr:
    line(emitExpr(cast<ExprStmt>(S)->expr()) + ";");
    return;

  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    open("if (" + emitExpr(If->cond()) + ") {");
    emitStmt(If->thenStmt());
    if (If->elseStmt()) {
      --Indent;
      line("} else {");
      ++Indent;
      emitStmt(If->elseStmt());
    }
    close();
    return;
  }

  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    open("while (" + emitExpr(W->cond()) + ") {");
    emitStmt(W->body());
    close();
    return;
  }

  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    // Tiled loops are handled by emitTiledLoop from emitMapKernel;
    // reaching one here means the optimizer chose not to tile it.
    std::string Init;
    if (auto *D = dyn_cast_if_present<VarDeclStmt>(F->init())) {
      std::string Name = freshName(D->name());
      Names[D] = Name;
      Init = formatString("%s %s = %s", cTypeFor(D->type()).c_str(),
                          Name.c_str(),
                          D->init() ? emitExpr(D->init()).c_str() : "0");
    } else if (auto *ES = dyn_cast_if_present<ExprStmt>(F->init())) {
      Init = emitExpr(ES->expr());
    }
    std::string Cond = F->cond() ? emitExpr(F->cond()) : "1";
    std::string Step = F->update() ? emitExpr(F->update()) : "";
    open("for (" + Init + "; " + Cond + "; " + Step + ") {");
    emitStmt(F->body());
    close();
    return;
  }

  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (EmittingHelper) {
      line("return " + (R->value() ? emitExpr(R->value()) : "") + ";");
      return;
    }
    errorAt(S->loc(), "unexpected return position in kernel body");
    return;
  }

  case Stmt::Kind::ThrowUnderflow:
  case Stmt::Kind::Finish:
    errorAt(S->loc(), "statement not available in kernel code");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Top-level pieces
//===----------------------------------------------------------------------===//

void OpenCLEmitter::emitHelpers() {
  // Emit in reverse discovery order so callees precede callers.
  std::vector<MethodDecl *> Ordered(Plan.Helpers.rbegin(),
                                    Plan.Helpers.rend());
  if (Plan.Kind == KernelKind::Reduce && Plan.MapFn)
    Ordered.push_back(Plan.MapFn);
  for (MethodDecl *H : Ordered) {
    std::vector<std::string> Params;
    for (ParamDecl *P : H->params()) {
      std::string Name = freshName(P->name());
      Names[P] = Name;
      Params.push_back(cTypeFor(P->type()) + " " + Name);
    }
    EmittingHelper = true;
    open(cTypeFor(H->returnType()) + " " + H->parent()->name() + "_" +
         H->name() + "(" + joinStrings(Params, ", ") + ") {");
    for (Stmt *S : H->body()->stmts())
      emitStmt(S);
    close();
    EmittingHelper = false;
    line("");
  }
}

void OpenCLEmitter::emitArgsStruct() {
  open("typedef struct {");
  line("int n;");
  for (const KernelArray &A : Plan.Arrays)
    if (!A.IsOutput)
      line("int len_" + A.CName + ";");
  close("} " + Plan.KernelName + "_args;");
  line("");
}

void OpenCLEmitter::emitKernelSignature() {
  std::vector<std::string> Params;
  const KernelArray *OutArr = Plan.output();
  Params.push_back("__global " + std::string(cTypeFor(OutArr->Scalar)) +
                   "* out");
  for (const KernelArray &A : Plan.Arrays) {
    if (A.IsOutput)
      continue;
    switch (A.Space) {
    case MemSpace::Image:
      Params.push_back("__read_only image2d_t img_" + A.CName);
      Params.push_back("sampler_t smp_" + A.CName);
      break;
    case MemSpace::Constant:
      Params.push_back("__constant " + cTypeFor(A.Scalar) + "* " + A.CName);
      break;
    case MemSpace::Global:
    case MemSpace::LocalTiled:
      // Tiled arrays still arrive through global memory; the kernel
      // stages them into the local tile.
      Params.push_back("__global const " + cTypeFor(A.Scalar) + "* " +
                       A.CName);
      break;
    }
  }
  for (const KernelScalar &S : Plan.Scalars) {
    Params.push_back(cTypeFor(S.Scalar) + " " + S.CName);
    Names[S.MapParam] = S.CName;
  }
  Params.push_back(Plan.KernelName + "_args args");
  if (Plan.Kind == KernelKind::Reduce)
    Params.push_back("__local " + std::string(cTypeFor(Plan.OutScalarType)) +
                     "* scratch");
  open("__kernel void " + Plan.KernelName + "(" + joinStrings(Params, ", ") +
       ") {");
}

/// Emits the image-fetch helper for flat scalar arrays in texture
/// memory (index folded to 2-D, component selected by i & 3).
static std::string fetch1Helper(const KernelArray &A,
                                const std::string &CType) {
  return formatString(
      "%s __fetch1_%s(__read_only image2d_t img, sampler_t smp, int i) {\n"
      "  int t = i >> 2;\n"
      "  float4 v = read_imagef(img, smp, (int2)(t %% %u, t / %u));\n"
      "  int c = i & 3;\n"
      "  return (%s)(c == 0 ? v.x : (c == 1 ? v.y : (c == 2 ? v.z : "
      "v.w)));\n"
      "}\n",
      CType.c_str(), A.CName.c_str(), ImageRowTexels, ImageRowTexels,
      CType.c_str());
}

void OpenCLEmitter::emitTiledLoop(const ForStmt *Loop) {
  const KernelArray &A =
      Plan.Arrays[static_cast<size_t>(Plan.TiledArrayIndex)];
  auto *Init = cast<VarDeclStmt>(Loop->init());

  line(formatString("for (int jt = 0; jt < args.len_%s; jt += %u) {",
                    A.CName.c_str(), A.TileRows));
  ++Indent;
  line(formatString("int cnt = min(%u, args.len_%s - jt);", A.TileRows,
                    A.CName.c_str()));
  line("barrier(CLK_LOCAL_MEM_FENCE);");

  // Cooperative fill.
  open("for (int t = lid; t < cnt; t += lsize) {");
  if (A.InnerBound == 0) {
    line(formatString("tile_%s[t] = %s[jt + t];", A.CName.c_str(),
                      A.CName.c_str()));
  } else if (A.Vectorized && A.InnerBound == 4 && A.RowStride == 4) {
    line(formatString("vstore4(vload4(jt + t, %s), t, tile_%s);",
                      A.CName.c_str(), A.CName.c_str()));
  } else if (A.Vectorized && A.InnerBound == 4) {
    // Padded rows: vector load from global, scalar stores locally.
    line(formatString("float4 tv = vload4(jt + t, %s);", A.CName.c_str()));
    line(formatString("tile_%s[t * %u + 0] = tv.x;", A.CName.c_str(),
                      A.RowStride));
    line(formatString("tile_%s[t * %u + 1] = tv.y;", A.CName.c_str(),
                      A.RowStride));
    line(formatString("tile_%s[t * %u + 2] = tv.z;", A.CName.c_str(),
                      A.RowStride));
    line(formatString("tile_%s[t * %u + 3] = tv.w;", A.CName.c_str(),
                      A.RowStride));
  } else {
    for (unsigned C = 0; C != A.InnerBound; ++C)
      line(formatString("tile_%s[t * %u + %u] = %s[(jt + t) * %u + %u];",
                        A.CName.c_str(), A.RowStride, C, A.CName.c_str(),
                        A.InnerBound, C));
  }
  close();
  line("barrier(CLK_LOCAL_MEM_FENCE);");

  // Guarded compute sweep over the staged tile.
  open("if (i < args.n) {");
  std::string JLoc = freshName("j_loc");
  TileLocalIdxName = JLoc;
  TileLoopVar = Init;
  open(formatString("for (int %s = 0; %s < cnt; %s++) {", JLoc.c_str(),
                    JLoc.c_str(), JLoc.c_str()));
  std::string JName = freshName(Init->name());
  Names[Init] = JName;
  line(formatString("int %s = jt + %s;", JName.c_str(), JLoc.c_str()));
  emitStmt(Loop->body());
  close();
  close();
  TileLoopVar = nullptr;

  --Indent;
  line("}");
}

void OpenCLEmitter::emitMapKernel() {
  const KernelArray *Src = Plan.mapSource();
  bool Tiled = Plan.TiledLoop && Plan.TiledArrayIndex >= 0 &&
               Plan.Arrays[static_cast<size_t>(Plan.TiledArrayIndex)].Space ==
                   MemSpace::LocalTiled;

  // Local tile declarations.
  if (Tiled) {
    const KernelArray &A =
        Plan.Arrays[static_cast<size_t>(Plan.TiledArrayIndex)];
    line("int lid = get_local_id(0);");
    line("int lsize = get_local_size(0);");
    line(formatString("__local %s tile_%s[%u];",
                      cTypeFor(A.Scalar).c_str(), A.CName.c_str(),
                      A.TileRows * A.RowStride));
  }

  std::string IndexVar;
  if (Tiled) {
    line("int gsize = get_global_size(0);");
    open("for (int i0 = 0; i0 < args.n; i0 += gsize) {");
    line("int i = i0 + get_global_id(0);");
    line("int i_c = i < args.n ? i : 0;");
    IndexVar = "i_c";
  } else {
    open("for (int i = get_global_id(0); i < args.n; "
         "i += get_global_size(0)) {");
    IndexVar = "i";
  }

  // Element binding.
  const ParamDecl *Elem = Plan.ElemParam;
  if (const auto *ElemArr = dyn_cast<ArrayType>(Elem->type())) {
    (void)ElemArr;
    RowView V;
    V.ArrayIndex = 0;
    if (Src->Space == MemSpace::Image && Src->InnerBound == 4) {
      std::string Name = freshName("p_" + Elem->name());
      line(formatString(
          "float4 %s = read_imagef(img_%s, smp_%s, (int2)((%s) %% %u, "
          "(%s) / %u));",
          Name.c_str(), Src->CName.c_str(), Src->CName.c_str(),
          IndexVar.c_str(), ImageRowTexels, IndexVar.c_str(),
          ImageRowTexels));
      V.CacheVar = Name;
    } else if (Src->Vectorized && Src->InnerBound == 4) {
      std::string Name = freshName("p_" + Elem->name());
      line(formatString("float4 %s = vload4(%s, %s);", Name.c_str(),
                        IndexVar.c_str(), Src->CName.c_str()));
      V.CacheVar = Name;
    } else {
      V.OuterIndex = IndexVar;
      if (Src->InnerIndexConstant && Src->InnerBound <= 16) {
        // Promote element components into registers once.
        std::string CT = cTypeFor(Src->Scalar);
        for (unsigned C2 = 0; C2 != Src->InnerBound; ++C2) {
          std::string CompName = freshName("p" + std::to_string(C2));
          line(formatString("%s %s = %s[(%s) * %u + %u];", CT.c_str(),
                            CompName.c_str(), Src->CName.c_str(),
                            IndexVar.c_str(), Src->InnerBound, C2));
          V.CompVars.push_back(CompName);
        }
      }
    }
    RowViews[nullptr] = V;
  } else {
    std::string Name = freshName("p_" + Elem->name());
    Names[Elem] = Name;
    line(formatString("%s %s = %s;", cTypeFor(Elem->type()).c_str(),
                      Name.c_str(),
                      emitScalarArrayAccess(0, IndexVar).c_str()));
  }

  // Body: statements before / the tiled loop / statements after; the
  // final return becomes the output store.
  const auto &Body = Plan.MapFn->body()->stmts();
  auto EmitReturnStore = [&](ReturnStmt *R) {
    Expr *V = R->value();
    const KernelArray *OutArr = Plan.output();
    unsigned Rw = Plan.OutScalars;
    if (Rw == 1) {
      line(formatString("out[i] = %s;", emitExpr(V).c_str()));
      return;
    }
    if (auto *NA = dyn_cast<NewArrayExpr>(V); NA && !NA->inits().empty()) {
      if (OutArr->Vectorized && Rw == 4) {
        line(formatString(
            "vstore4((float4)(%s, %s, %s, %s), i, out);",
            emitExpr(NA->inits()[0]).c_str(),
            emitExpr(NA->inits()[1]).c_str(),
            emitExpr(NA->inits()[2]).c_str(),
            emitExpr(NA->inits()[3]).c_str()));
        return;
      }
      for (unsigned C = 0; C != Rw; ++C)
        line(formatString("out[i * %u + %u] = %s;", Rw, C,
                          emitExpr(NA->inits()[C]).c_str()));
      return;
    }
    // `return (float[[R]]) localArr;` or a bare row-typed local.
    Expr *Val = V;
    if (auto *Cast = dyn_cast<CastExpr>(V))
      Val = Cast->sub();
    if (auto *N = dyn_cast<NameRefExpr>(Val);
        N && N->resolution() == NameRefExpr::Resolution::Local &&
        Names.count(N->local())) {
      const std::string &Arr = Names[N->local()];
      for (unsigned C = 0; C != Rw; ++C)
        line(formatString("out[i * %u + %u] = %s[%u];", Rw, C, Arr.c_str(),
                          C));
      return;
    }
    errorAt(V->loc(), "unsupported map result shape (literal value "
                      "array or frozen scratch array expected)");
  };

  bool GuardOpen = false;
  auto EnsureGuard = [&](bool Want) {
    if (!Tiled)
      return;
    if (Want && !GuardOpen) {
      open("if (i < args.n) {");
      GuardOpen = true;
    } else if (!Want && GuardOpen) {
      close();
      GuardOpen = false;
    }
  };

  bool AfterTile = false;
  for (Stmt *S : Body) {
    if (auto *R = dyn_cast<ReturnStmt>(S)) {
      EnsureGuard(true);
      EmitReturnStore(R);
      continue;
    }
    if (Tiled && S == Plan.TiledLoop) {
      EnsureGuard(false);
      emitTiledLoop(cast<ForStmt>(S));
      AfterTile = true;
      continue;
    }
    // Pre-tile statements run unguarded (they only touch scalars and
    // the clamped element); post-tile statements run guarded.
    EnsureGuard(AfterTile);
    emitStmt(S);
  }
  EnsureGuard(false);

  close(); // grid-stride loop
}

void OpenCLEmitter::emitReduceKernel() {
  std::string T = cTypeFor(Plan.OutScalarType);
  bool IsFloat = Plan.OutScalarType->isFloating();

  std::string Identity;
  switch (Plan.Combiner) {
  case ReduceExpr::Combiner::Add:
    Identity = IsFloat ? "0.0f" : "0";
    break;
  case ReduceExpr::Combiner::Mul:
    Identity = IsFloat ? "1.0f" : "1";
    break;
  case ReduceExpr::Combiner::Min:
    Identity = IsFloat ? "3.402823e38f" : "2147483647";
    break;
  case ReduceExpr::Combiner::Max:
    Identity = IsFloat ? "-3.402823e38f" : "-2147483647";
    break;
  case ReduceExpr::Combiner::Method:
    lime_unreachable("method combiners rejected at identification");
  }
  auto Combine = [&](const std::string &A, const std::string &B) {
    switch (Plan.Combiner) {
    case ReduceExpr::Combiner::Add:
      return "(" + A + ") + (" + B + ")";
    case ReduceExpr::Combiner::Mul:
      return "(" + A + ") * (" + B + ")";
    case ReduceExpr::Combiner::Min:
      return (IsFloat ? "fmin(" : "min(") + A + ", " + B + ")";
    case ReduceExpr::Combiner::Max:
      return (IsFloat ? "fmax(" : "max(") + A + ", " + B + ")";
    case ReduceExpr::Combiner::Method:
      break;
    }
    lime_unreachable("bad combiner");
  };

  line("int lid = get_local_id(0);");
  line("int lsize = get_local_size(0);");
  line(T + " acc = " + Identity + ";");
  open("for (int i = get_global_id(0); i < args.n; "
       "i += get_global_size(0)) {");
  std::string ElemExpr = emitScalarArrayAccess(0, "i");
  if (Plan.MapFn) {
    std::vector<std::string> Args;
    Args.push_back(ElemExpr);
    for (const KernelScalar &S : Plan.Scalars)
      Args.push_back(S.CName);
    ElemExpr = Plan.MapFn->parent()->name() + "_" + Plan.MapFn->name() +
               "(" + joinStrings(Args, ", ") + ")";
  }
  line("acc = " + Combine("acc", ElemExpr) + ";");
  close();
  line("scratch[lid] = acc;");
  line("barrier(CLK_LOCAL_MEM_FENCE);");
  open("for (int s = lsize >> 1; s > 0; s >>= 1) {");
  line("if (lid < s) scratch[lid] = " +
       Combine("scratch[lid]", "scratch[lid + s]") + ";");
  line("barrier(CLK_LOCAL_MEM_FENCE);");
  close();
  line("if (lid == 0) out[get_group_id(0)] = scratch[0];");
}

std::string OpenCLEmitter::emit() {
  Out.clear();
  Names.clear();
  RowViews.clear();
  PrivateSizes.clear();

  line("// Generated by limecc from Lime filter " +
       Plan.Worker->qualifiedName() + " (" + Plan.Config.str() + ")");
  line("");

  // Image fetch helpers for flat arrays in texture memory.
  for (const KernelArray &A : Plan.Arrays)
    if (!A.IsOutput && A.Space == MemSpace::Image && A.InnerBound == 0)
      Out += fetch1Helper(A, cTypeFor(A.Scalar)) + "\n";

  emitHelpers();
  emitArgsStruct();
  emitKernelSignature();
  if (Plan.Kind == KernelKind::Map)
    emitMapKernel();
  else
    emitReduceKernel();
  close(); // kernel
  return Out;
}
