//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "compiler/GpuCompiler.h"

#include "compiler/OpenCLEmitter.h"

using namespace lime;

GpuCompiler::GpuCompiler(Program *P, TypeContext &Types)
    : TheProgram(P), Types(Types) {}

IdentifyResult GpuCompiler::identify(MethodDecl *Worker) {
  KernelAnalysis KA(TheProgram, Types);
  return KA.identify(Worker);
}

CompiledKernel GpuCompiler::compile(MethodDecl *Worker,
                                    const MemoryConfig &Config) {
  return compile(Worker, Config, PlanHook());
}

CompiledKernel GpuCompiler::compile(MethodDecl *Worker,
                                    const MemoryConfig &Config,
                                    const PlanHook &Hook) {
  CompiledKernel Out;
  KernelAnalysis KA(TheProgram, Types);
  IdentifyResult R = KA.identify(Worker);
  if (!R.Offloadable) {
    Out.Error = R.Reason;
    return Out;
  }
  if (Hook)
    Hook(R.Plan);
  KA.optimize(R.Plan, Config);

  DiagnosticEngine Diags;
  OpenCLEmitter Emitter(R.Plan, Diags);
  Out.Source = Emitter.emit();
  if (Diags.hasErrors()) {
    Out.Error = Diags.dump();
    return Out;
  }
  Out.Plan = std::move(R.Plan);
  Out.Ok = true;
  return Out;
}
