//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenCL-C code generation from an optimized KernelPlan (paper §4.2,
/// Fig. 4). The emitted kernel follows the paper's robust shape: a
/// grid-stride loop assigns elements to threads so the code "executes
/// correctly independent of the number of threads", and a by-value
/// bookkeeping record carries array lengths (Fig. 4(b)).
///
/// The memory plan drives the shapes:
///  - LocalTiled arrays become a tiling transformation with barriers
///    and a cooperative fill loop (Fig. 5(d)), padded rows when bank
///    conflicts are removed;
///  - Constant arrays become __constant pointers;
///  - Image arrays become image2d_t + sampler pairs with read_imagef
///    fetches (1-D indices folded to 2-D coordinates, §4.2.1);
///  - Vectorized rows load/store via vload4/vstore4 (§4.2.2).
///
/// Reductions emit the classic two-stage shape: grid-stride
/// accumulation, local-memory tree, one partial per work-group
/// (stage two runs on the host).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_COMPILER_OPENCLEMITTER_H
#define LIMECC_COMPILER_OPENCLEMITTER_H

#include "compiler/KernelPlan.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace lime {

/// Fixed width of simulated images; 1-D indices fold modulo this
/// (the paper folds against the device's maximum image width).
constexpr unsigned ImageRowTexels = 2048;

class OpenCLEmitter {
public:
  OpenCLEmitter(const KernelPlan &Plan, DiagnosticEngine &Diags);

  /// Emits the complete OpenCL translation unit. Check Diags.
  std::string emit();

private:
  // Layout of one array access: the emitted strings for base-offset
  // arithmetic depend on the array's space and vectorization.
  struct RowView {
    int ArrayIndex = -1;      // plan array
    std::string OuterIndex;   // emitted outer index expression
    std::string CacheVar;     // non-empty when cached in a floatN var
    /// Per-component scalar register cache (rows with constant inner
    /// indices load each component once — ordinary scalar promotion).
    std::vector<std::string> CompVars;
    bool OnTile = false;      // indexes the local tile instead
  };

  void emitHelpers();
  void emitArgsStruct();
  void emitKernelSignature();
  void emitMapKernel();
  void emitReduceKernel();
  void emitTiledLoop(const ForStmt *Loop);

  // Statement / expression translation.
  void emitStmt(Stmt *S);
  void emitVarDecl(VarDeclStmt *D);
  std::string emitExpr(Expr *E);
  std::string emitElementAccess(int ArrayIndex, const std::string &Outer,
                                Expr *InnerIdx, bool OnTile);
  std::string emitScalarArrayAccess(int ArrayIndex, const std::string &Outer);
  /// Access through a bound row view (register caches first).
  std::string rowAccess(const RowView &V, Expr *InnerIdx);

  /// Resolves `X[outer]` to a plan array when X is a mapped array
  /// parameter; -1 otherwise.
  int arrayIndexOfBase(Expr *Base);

  std::string cTypeFor(const Type *T);
  std::string freshName(const std::string &Hint);

  void line(const std::string &Text);
  void open(const std::string &Text);
  void close(const std::string &Text = "}");

  void errorAt(SourceLocation Loc, const std::string &Msg);

  const KernelPlan &Plan;
  DiagnosticEngine &Diags;

  std::string Out;
  unsigned Indent = 0;
  unsigned NameCounter = 0;

  /// Emission names for locals/params; row views for locals bound to
  /// array rows.
  std::map<const void *, std::string> Names;
  std::map<const VarDeclStmt *, RowView> RowViews;
  /// Locals that are private arrays.
  std::map<const VarDeclStmt *, unsigned> PrivateSizes;

  /// Whether we are inside the tiled loop (X[j] goes to the tile).
  const VarDeclStmt *TileLoopVar = nullptr;
  std::string TileLocalIdxName;

  bool EmittingHelper = false;
};

} // namespace lime

#endif // LIMECC_COMPILER_OPENCLEMITTER_H
