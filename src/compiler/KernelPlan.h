//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data structures describing how a Lime filter compiles to a GPU
/// kernel: the identification result (§4.1 — which map/reduce drives
/// the kernel, which arrays flow in), the memory optimizer's
/// placement decisions (§4.2.1 — global / private / local+tiling /
/// constant / image, bank-conflict padding), the vectorizer's choices
/// (§4.2.2), and the host plan the runtime uses to orchestrate
/// buffers, transfers and the launch (§4.3).
///
/// MemoryConfig's switches mirror the paper's evaluation axes: each
/// optimization "can be enabled and disabled so that it is possible
/// to perform an automated exploration of the memory mapping" — the
/// eight bars per benchmark in Figure 8.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_COMPILER_KERNELPLAN_H
#define LIMECC_COMPILER_KERNELPLAN_H

#include "lime/ast/AST.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lime {

/// Where the optimizer places an array (paper §2, §4.2.1).
enum class MemSpace : uint8_t { Global, Constant, Image, LocalTiled };

const char *memSpaceName(MemSpace S);

/// Outcome of a query against the analysis oracle. The compiler never
/// depends on the analysis library (the oracle lives above it); these
/// facts are plain data stamped into the plan before optimize() by
/// whoever owns a proof (analysis::AnalysisOracle via the compile
/// hook). Unknown means "no oracle consulted": the optimizer then
/// falls back to the syntactic Fig. 5 idioms, exactly the paper's
/// behavior.
enum class FactState : uint8_t { Unknown, Proven, Refuted };

/// Why the memory optimizer did (or did not) place an array in
/// __constant memory — recorded per array so `--analyze` can report
/// the decision instead of leaving callers to reverse-engineer it.
enum class PlacementReason : uint8_t {
  NotApplicable,   // output arrays: never constant candidates
  ConfigDisabled,  // AllowConstant off in this configuration
  SyntacticIdiom,  // Fig. 5(g) pattern matched, no proof consulted
  ProvenUniform,   // oracle proved uniform read-only access
  OracleRefused,   // the pattern matched but the oracle refuted it
  NotUniform,      // neither the pattern nor the oracle holds
  NoUniformAccess, // only per-element accesses: nothing to broadcast
  TiledInstead,    // eligible, but local tiling took precedence
  ImageInstead,    // eligible, but texture placement took precedence
};

/// Stable kebab-case name (appears in JSON findings and goldens).
const char *placementReasonName(PlacementReason R);

/// Optimization switches (one Figure 8 bar = one configuration).
struct MemoryConfig {
  bool AllowPrivate = true;  // private scratch for in-kernel arrays
  bool AllowLocal = false;   // local-memory tiling of shared arrays
  bool RemoveBankConflicts = false; // pad local tiles
  bool AllowConstant = false;
  bool AllowImage = false;
  bool Vectorize = false;

  /// Private-array size threshold in bytes ("extremely small
  /// capacity", §4.2.1).
  unsigned PrivateBytesLimit = 512;

  /// Local-memory budget for one tile (the offload manager sets this
  /// from the target's scratchpad size; 8KB suits every Table 2
  /// device as a default).
  unsigned LocalTileBudgetBytes = 8 * 1024;

  std::string str() const;

  // The named configurations of Figure 8.
  static MemoryConfig global() { return MemoryConfig(); }
  static MemoryConfig globalVector() {
    MemoryConfig C;
    C.Vectorize = true;
    return C;
  }
  static MemoryConfig local() {
    MemoryConfig C;
    C.AllowLocal = true;
    return C;
  }
  static MemoryConfig localNoConflict() {
    MemoryConfig C;
    C.AllowLocal = true;
    C.RemoveBankConflicts = true;
    return C;
  }
  static MemoryConfig localNoConflictVector() {
    MemoryConfig C;
    C.AllowLocal = true;
    C.RemoveBankConflicts = true;
    C.Vectorize = true;
    return C;
  }
  static MemoryConfig constant() {
    MemoryConfig C;
    C.AllowConstant = true;
    return C;
  }
  static MemoryConfig constantVector() {
    MemoryConfig C;
    C.AllowConstant = true;
    C.Vectorize = true;
    return C;
  }
  static MemoryConfig texture() {
    MemoryConfig C;
    C.AllowImage = true;
    return C;
  }
  /// Everything on: what the production compiler would pick before
  /// auto-tuning.
  static MemoryConfig best() {
    MemoryConfig C;
    C.AllowLocal = true;
    C.RemoveBankConflicts = true;
    C.AllowConstant = true;
    C.Vectorize = true;
    return C;
  }
};

/// One array visible to the kernel.
struct KernelArray {
  /// Parameter of the *mapped function* this array binds to; null
  /// for the output array.
  const ParamDecl *MapParam = nullptr;
  /// Parameter of the *worker* supplying the data (the runtime
  /// serializes this value into the buffer).
  const ParamDecl *WorkerParam = nullptr;

  std::string CName;                 // C identifier in the kernel
  const PrimitiveType *Scalar = nullptr;
  /// Bound of the inner dimension (elements are rows of this many
  /// scalars); 0 when elements are scalars.
  unsigned InnerBound = 0;
  bool IsMapSource = false;
  bool IsOutput = false;

  // Eligibility facts computed during identification.
  bool UniformlyIndexed = false; // Fig. 5(g) constant-memory test
  bool InnerIndexConstant = false; // vectorization legality (§4.2.2)
  bool ImageEligible = false;      // Fig. 5(e) texture test

  // Oracle facts (stamped before optimize(); Unknown when no oracle
  // ran). OracleUniform covers the constant-memory broadcast test:
  // Proven beats the syntactic matcher (it can bless map-source
  // arrays the pattern categorically refuses), Refuted vetoes it.
  FactState OracleUniform = FactState::Unknown;
  FactState OracleReadOnly = FactState::Unknown;
  /// With OracleUniform == Refuted: every access was the work-item's
  /// own element, so there is no broadcast read to serve from
  /// __constant memory (reduce sources, pure element maps).
  bool OracleOnlyElementAccesses = false;

  // Optimizer decisions.
  MemSpace Space = MemSpace::Global;
  /// The constant-memory decision trail for this array.
  PlacementReason ConstReason = PlacementReason::NotApplicable;
  bool Vectorized = false;
  /// Local tiling (only with Space == LocalTiled): row stride in
  /// scalars (InnerBound, +1 when padded) and rows per tile.
  unsigned RowStride = 0;
  unsigned TileRows = 0;

  unsigned rowScalars() const { return InnerBound ? InnerBound : 1; }
  unsigned rowBytes() const;
};

/// A scalar argument forwarded from the worker to the kernel.
struct KernelScalar {
  const ParamDecl *MapParam = nullptr;
  const ParamDecl *WorkerParam = nullptr;
  std::string CName;
  const PrimitiveType *Scalar = nullptr;
};

/// What drives the parallelism.
enum class KernelKind : uint8_t {
  Map,       // out[i] = f(src[i], extras...)
  Reduce,    // out = combine(!) over src (optionally f-mapped)
};

/// A private (in-kernel) array the optimizer placed (§4.2.1 Fig 5a-b).
struct PrivateArray {
  const VarDeclStmt *Decl = nullptr;
  unsigned Scalars = 0; // total scalar slots (static)
};

/// The identified-and-optimized kernel.
struct KernelPlan {
  KernelKind Kind = KernelKind::Map;
  std::string KernelName;

  /// The worker (filter) this kernel offloads and the mapped /
  /// reduced source code.
  MethodDecl *Worker = nullptr;
  MethodDecl *MapFn = nullptr; // null for pure operator reductions
  ReduceExpr::Combiner Combiner = ReduceExpr::Combiner::Add; // Reduce only

  std::vector<KernelArray> Arrays;
  std::vector<KernelScalar> Scalars;
  std::vector<PrivateArray> PrivateArrays;

  /// The mapped function's element parameter, and the resolution of
  /// its remaining parameters to plan arrays/scalars (several mapped
  /// parameters may alias one array — N-Body passes `positions` both
  /// as the element and as the whole array).
  const ParamDecl *ElemParam = nullptr;
  std::map<const ParamDecl *, int> ParamToArray;
  std::map<const ParamDecl *, int> ParamToScalar;

  /// Loop statement (inside MapFn's body) selected for local tiling;
  /// null when no tiling applies.
  const ForStmt *TiledLoop = nullptr;
  /// The KernelArray index tiled by that loop.
  int TiledArrayIndex = -1;

  /// Helper methods called from the map function (emitted as OpenCL
  /// helper functions, in call order).
  std::vector<MethodDecl *> Helpers;

  /// Output element: scalars per produced element (rows of the out
  /// array; 1 for scalar results).
  unsigned OutScalars = 1;
  const PrimitiveType *OutScalarType = nullptr;

  MemoryConfig Config;

  const KernelArray *mapSource() const {
    for (const KernelArray &A : Arrays)
      if (A.IsMapSource)
        return &A;
    return nullptr;
  }
  const KernelArray *output() const {
    for (const KernelArray &A : Arrays)
      if (A.IsOutput)
        return &A;
    return nullptr;
  }
};

} // namespace lime

#endif // LIMECC_COMPILER_KERNELPLAN_H
