//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/DevicePool.h"

#include <algorithm>
#include <cassert>

using namespace lime;
using namespace lime::service;

const char *lime::service::breakerStateName(BreakerState S) {
  switch (S) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    return "open";
  case BreakerState::Probation:
    return "probation";
  }
  return "?";
}

/// Two invocations of the same instance may merge only when every
/// argument other than the map source is bit-identical: the merged
/// launch forwards one set of scalars/bound arrays to the kernel.
static bool mergeable(const PendingInvoke &A, const PendingInvoke &B) {
  if (A.Instance != B.Instance || A.SourceParam < 0 || B.SourceParam < 0)
    return false;
  if (A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I != A.Args.size(); ++I) {
    if (static_cast<int>(I) == A.SourceParam)
      continue;
    if (!A.Args[I].equals(B.Args[I]))
      return false;
  }
  return true;
}

DevicePool::DevicePool(std::vector<std::string> DeviceNames, size_t QueueDepth,
                       unsigned MaxBatch, BreakerConfig Breaker, Executor Exec)
    : QueueDepth(QueueDepth ? QueueDepth : 1),
      MaxBatch(MaxBatch ? MaxBatch : 1), Breaker(Breaker),
      Exec(std::move(Exec)) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::string &Name : DeviceNames)
    addWorkerLocked(Name);
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &W : Workers) {
      std::lock_guard<std::mutex> WL(W->Mu);
      W->Stop = true;
      W->NotEmpty.notify_all();
    }
  }
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

DevicePool::Worker &DevicePool::addWorkerLocked(const std::string &DeviceName) {
  auto W = std::make_unique<Worker>();
  W->Id = static_cast<unsigned>(Workers.size());
  W->DeviceName = DeviceName;
  Workers.push_back(std::move(W));
  Worker &Ref = *Workers.back();
  Ref.Thread = std::thread([this, &Ref] { workerLoop(Ref); });
  return Ref;
}

bool DevicePool::eligibleLocked(Worker &W,
                                std::chrono::steady_clock::time_point Now)
    const {
  switch (W.Breaker) {
  case BreakerState::Closed:
    return true;
  case BreakerState::Open:
    // Quarantined; re-admittable once the cooldown elapsed (the pick
    // that selects it flips the state to Probation).
    return Now >= W.QuarantinedUntil;
  case BreakerState::Probation:
    // One trial at a time: ineligible until the probe resolves.
    return !W.ProbationInFlight;
  }
  return false;
}

int DevicePool::pickWorker(const std::string &DeviceName,
                           const std::vector<unsigned> &Preferred,
                           size_t AffinityBias,
                           const std::vector<unsigned> &Exclude,
                           bool AddIfMissing) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Now = std::chrono::steady_clock::now();
  Worker *Best = nullptr, *BestPreferred = nullptr, *Probe = nullptr;
  size_t BestLoad = 0, BestPreferredLoad = 0;
  bool ModelExists = false;
  for (auto &W : Workers) {
    if (W->DeviceName != DeviceName)
      continue;
    ModelExists = true;
    if (std::find(Exclude.begin(), Exclude.end(), W->Id) != Exclude.end())
      continue;
    size_t Load;
    {
      std::lock_guard<std::mutex> WL(W->Mu);
      if (W->Stop || !eligibleLocked(*W, Now))
        continue;
      // A quarantined worker past its cooldown beats every healthy
      // candidate: load-based picking (let alone instance affinity)
      // would never route a request to it, and without a probation
      // trial it could never be re-admitted.
      if (W->Breaker != BreakerState::Closed && !Probe)
        Probe = W.get();
      Load = W->Queue.size() + W->InFlight;
    }
    if (!Best || Load < BestLoad) {
      Best = W.get();
      BestLoad = Load;
    }
    bool IsPreferred =
        std::find(Preferred.begin(), Preferred.end(), W->Id) !=
        Preferred.end();
    if (IsPreferred && (!BestPreferred || Load < BestPreferredLoad)) {
      BestPreferred = W.get();
      BestPreferredLoad = Load;
    }
  }
  if (BestPreferred && BestPreferredLoad <= BestLoad + AffinityBias)
    Best = BestPreferred;
  if (Probe)
    Best = Probe;
  if (!Best) {
    if (ModelExists || !AddIfMissing)
      return -1; // every worker of this model quarantined/excluded
    Best = &addWorkerLocked(DeviceName);
  }
  // A quarantined pick past its cooldown becomes the probation trial.
  {
    std::lock_guard<std::mutex> WL(Best->Mu);
    if (Best->Breaker == BreakerState::Open) {
      Best->Breaker = BreakerState::Probation;
      Best->ProbationInFlight = true;
    } else if (Best->Breaker == BreakerState::Probation) {
      Best->ProbationInFlight = true;
    }
  }
  return static_cast<int>(Best->Id);
}

std::vector<std::string> DevicePool::modelNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Names;
  for (const auto &W : Workers)
    if (std::find(Names.begin(), Names.end(), W->DeviceName) == Names.end())
      Names.push_back(W->DeviceName);
  return Names;
}

bool DevicePool::submitTo(unsigned Id, PendingInvoke &Inv, bool Force) {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::unique_lock<std::mutex> WL(W->Mu);
  if (!Force)
    W->NotFull.wait(WL, [&] { return W->Stop || W->Queue.size() < QueueDepth; });
  if (W->Stop)
    return false;
  W->Queue.push_back(std::move(Inv));
  W->QueueHighWater = std::max(W->QueueHighWater, W->Queue.size());
  W->NotEmpty.notify_one();
  return true;
}

void DevicePool::recordSuccess(unsigned Id) {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::lock_guard<std::mutex> WL(W->Mu);
  W->ConsecFailures = 0;
  if (W->Breaker == BreakerState::Probation) {
    // Probe succeeded: re-admit.
    W->Breaker = BreakerState::Closed;
    W->ProbationInFlight = false;
  }
}

bool DevicePool::recordFailure(unsigned Id,
                               std::vector<PendingInvoke> &Drained) {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::lock_guard<std::mutex> WL(W->Mu);
  ++W->Failures;
  ++W->ConsecFailures;
  bool Quarantine = false;
  if (W->Breaker == BreakerState::Probation) {
    // Probe failed: back to quarantine for another cooldown.
    Quarantine = true;
  } else if (W->Breaker == BreakerState::Closed && Breaker.Threshold &&
             W->ConsecFailures >= Breaker.Threshold) {
    Quarantine = true;
  }
  if (!Quarantine)
    return false;
  W->Breaker = BreakerState::Open;
  W->ProbationInFlight = false;
  ++W->TimesQuarantined;
  W->QuarantinedUntil =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(Breaker.CooldownMs * 1000.0));
  // Hand the queued work back for re-routing onto healthy peers. The
  // batch currently in flight is the caller's to retry.
  while (!W->Queue.empty()) {
    Drained.push_back(std::move(W->Queue.front()));
    W->Queue.pop_front();
  }
  W->NotFull.notify_all();
  return true;
}

void DevicePool::recordSkipped(unsigned Id) {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::lock_guard<std::mutex> WL(W->Mu);
  if (W->Breaker == BreakerState::Probation && W->ProbationInFlight) {
    // Verdict still pending; drop back to Open with the cooldown
    // already elapsed so the next pick starts a fresh trial.
    W->ProbationInFlight = false;
    W->Breaker = BreakerState::Open;
  }
}

BreakerState DevicePool::breakerStateOf(unsigned Id) const {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::lock_guard<std::mutex> WL(W->Mu);
  return W->Breaker;
}

const std::string &DevicePool::deviceNameOf(unsigned Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Id < Workers.size() && "bad worker id");
  return Workers[Id]->DeviceName;
}

size_t DevicePool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Workers.size();
}

void DevicePool::waitIdle() {
  // The worker list only grows; walk by index so a lazily added
  // worker (created while we wait) is still visited. A requeue always
  // lands on its target before the failing worker's InFlight drops,
  // so a full pass with every queue empty means quiescence.
  for (size_t I = 0;; ++I) {
    Worker *W;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (I >= Workers.size())
        return;
      W = Workers[I].get();
    }
    std::unique_lock<std::mutex> WL(W->Mu);
    W->Idle.wait(WL, [&] { return W->Queue.empty() && W->InFlight == 0; });
  }
}

std::vector<DeviceStatsSnapshot> DevicePool::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<DeviceStatsSnapshot> Out;
  Out.reserve(Workers.size());
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> WL(W->Mu);
    DeviceStatsSnapshot S;
    S.Id = W->Id;
    S.DeviceName = W->DeviceName;
    S.Executed = W->Executed;
    S.Launches = W->Launches;
    S.BatchedRequests = W->BatchedRequests;
    S.QueueDepth = W->Queue.size() + W->InFlight;
    S.QueueHighWater = W->QueueHighWater;
    S.SimBusyNs = W->SimBusyNs;
    S.Failures = W->Failures;
    S.ConsecutiveFailures = W->ConsecFailures;
    S.TimesQuarantined = W->TimesQuarantined;
    S.Breaker = W->Breaker;
    Out.push_back(std::move(S));
  }
  return Out;
}

void DevicePool::workerLoop(Worker &W) {
  for (;;) {
    std::vector<PendingInvoke> Batch;
    {
      std::unique_lock<std::mutex> WL(W.Mu);
      W.NotEmpty.wait(WL, [&] { return W.Stop || !W.Queue.empty(); });
      if (W.Queue.empty())
        return; // Stop and drained
      Batch.push_back(std::move(W.Queue.front()));
      W.Queue.pop_front();
      if (MaxBatch > 1 && Batch.front().SourceParam >= 0) {
        for (auto It = W.Queue.begin();
             It != W.Queue.end() && Batch.size() < MaxBatch;) {
          if (mergeable(Batch.front(), *It)) {
            Batch.push_back(std::move(*It));
            It = W.Queue.erase(It);
          } else {
            ++It;
          }
        }
      }
      W.InFlight = Batch.size();
      W.NotFull.notify_all();
    }

    double SimNs = Exec(Batch, W.Id);

    {
      std::lock_guard<std::mutex> WL(W.Mu);
      W.Executed += Batch.size();
      W.Launches += 1;
      if (Batch.size() > 1)
        W.BatchedRequests += Batch.size();
      W.SimBusyNs += SimNs;
      W.InFlight = 0;
      if (W.Queue.empty())
        W.Idle.notify_all();
    }
  }
}
