//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/DevicePool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lime;
using namespace lime::service;

const char *lime::service::breakerStateName(BreakerState S) {
  switch (S) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    return "open";
  case BreakerState::Probation:
    return "probation";
  }
  return "?";
}

/// Two invocations of the same instance may merge only when every
/// argument other than the map source is bit-identical: the merged
/// launch forwards one set of scalars/bound arrays to the kernel.
static bool mergeable(const PendingInvoke &A, const PendingInvoke &B) {
  // Interpreter-peer invocations share Instance == nullptr across
  // *different* kernels, and a shard must launch exactly its slice —
  // neither may merge.
  if (!A.Instance || !B.Instance || A.Group || B.Group)
    return false;
  if (A.Instance != B.Instance || A.SourceParam < 0 || B.SourceParam < 0)
    return false;
  if (A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I != A.Args.size(); ++I) {
    if (static_cast<int>(I) == A.SourceParam)
      continue;
    if (!A.Args[I].equals(B.Args[I]))
      return false;
  }
  return true;
}

/// Coalescing eligibility: the whole argument list is bit-identical
/// (map source included), so one launch's result answers both
/// futures. Unlike mergeable() this holds for reduce kernels and
/// retries too — identical inputs give identical outputs regardless
/// of kernel shape.
static bool identicalInvoke(const PendingInvoke &A, const PendingInvoke &B) {
  // Same null-Instance / shard caveats as mergeable(): an interp
  // invocation's identity is not its Instance pointer, and a shard's
  // result belongs to its group alone.
  if (!A.Instance || !B.Instance || A.Group || B.Group)
    return false;
  if (A.Instance != B.Instance || A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I != A.Args.size(); ++I)
    if (!A.Args[I].equals(B.Args[I]))
      return false;
  return true;
}

/// Requests a batch resolves: members plus their coalesced twins.
static size_t requestCount(const std::vector<PendingInvoke> &Batch) {
  size_t N = Batch.size();
  for (const PendingInvoke &B : Batch)
    N += B.Twins.size();
  return N;
}

DevicePool::DevicePool(std::vector<std::string> DeviceNames, PoolConfig Config,
                       Executor Exec)
    : Cfg(std::move(Config)), Exec(std::move(Exec)) {
  if (!Cfg.QueueDepth)
    Cfg.QueueDepth = 1;
  if (!Cfg.MaxBatch)
    Cfg.MaxBatch = 1;
  if (!Cfg.CoalesceWindow)
    Cfg.CoalesceWindow = 1;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::string &Name : DeviceNames)
    addWorkerLocked(Name);
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &W : Workers) {
      std::lock_guard<std::mutex> WL(W->Mu);
      W->Stop = true;
      W->NotEmpty.notify_all();
    }
  }
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

DevicePool::Worker &DevicePool::addWorkerLocked(const std::string &DeviceName) {
  auto W = std::make_unique<Worker>();
  W->Id = static_cast<unsigned>(Workers.size());
  W->DeviceName = DeviceName;
  W->Cursor = W->Active.end();
  Workers.push_back(std::move(W));
  Worker &Ref = *Workers.back();
  Ref.Thread = std::thread([this, &Ref] { workerLoop(Ref); });
  return Ref;
}

DevicePool::Worker *DevicePool::workerById(unsigned Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Id < Workers.size() && "bad worker id");
  return Workers[Id].get();
}

double DevicePool::weightOf(const std::string &Client) const {
  // ClientWeights is immutable once workers run; no lock needed.
  auto It = Cfg.ClientWeights.find(Client);
  double W = It == Cfg.ClientWeights.end() ? 1.0 : It->second;
  // Floor keeps the DRR loop's catch-up rounds bounded and denies no
  // one service entirely.
  return W > 0.05 ? W : 0.05;
}

size_t DevicePool::effBacklogLocked(const Worker &W,
                                    const std::string &Client) const {
  size_t Own = 0;
  auto It = W.ByClient.find(Client);
  if (It != W.ByClient.end())
    Own = It->second->Q.size();
  double Wc = weightOf(Client);
  size_t Ahead = W.InFlight + Own;
  // A new arrival is request Own+1 of its client; until DRR serves
  // it, every other backlogged client j is granted at most
  // ceil((Own + 1) * w_j / w_c) dequeues — or its whole queue, if
  // shorter.
  for (const ClientQueue &CQ : W.Active) {
    if (CQ.Client == Client)
      continue;
    double Share = std::ceil(static_cast<double>(Own + 1) *
                             weightOf(CQ.Client) / Wc);
    Ahead += std::min(CQ.Q.size(), static_cast<size_t>(Share));
  }
  return Ahead;
}

bool DevicePool::eligibleLocked(Worker &W,
                                std::chrono::steady_clock::time_point Now)
    const {
  switch (W.Breaker) {
  case BreakerState::Closed:
    return true;
  case BreakerState::Open:
    // Quarantined; re-admittable once the cooldown elapsed (the pick
    // that selects it flips the state to Probation).
    return Now >= W.QuarantinedUntil;
  case BreakerState::Probation:
    // One trial at a time: ineligible until the probe resolves.
    return !W.ProbationInFlight;
  }
  return false;
}

int DevicePool::pickWorker(const std::string &DeviceName,
                           const std::vector<unsigned> &Preferred,
                           size_t AffinityBias,
                           const std::vector<unsigned> &Exclude,
                           bool AddIfMissing, const std::string *ClientId) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Now = std::chrono::steady_clock::now();
  Worker *Best = nullptr, *BestPreferred = nullptr, *Probe = nullptr;
  size_t BestLoad = 0, BestPreferredLoad = 0;
  bool ModelExists = false;
  for (auto &W : Workers) {
    if (W->DeviceName != DeviceName)
      continue;
    ModelExists = true;
    if (std::find(Exclude.begin(), Exclude.end(), W->Id) != Exclude.end())
      continue;
    size_t Load;
    {
      std::lock_guard<std::mutex> WL(W->Mu);
      if (W->Stop || !eligibleLocked(*W, Now))
        continue;
      // A quarantined worker past its cooldown beats every healthy
      // candidate: load-based picking (let alone instance affinity)
      // would never route a request to it, and without a probation
      // trial it could never be re-admitted.
      if (W->Breaker != BreakerState::Closed && !Probe)
        Probe = W.get();
      // Total depth undercounts what *this client* would wait behind
      // on a worker busy with another tenant's burst, which let the
      // affinity bias defeat DRR fairness: the client-aware estimate
      // is what the AffinityBias comparison below must weigh.
      Load = ClientId ? effBacklogLocked(*W, *ClientId)
                      : W->Queued + W->InFlight;
    }
    if (!Best || Load < BestLoad) {
      Best = W.get();
      BestLoad = Load;
    }
    bool IsPreferred =
        std::find(Preferred.begin(), Preferred.end(), W->Id) !=
        Preferred.end();
    if (IsPreferred && (!BestPreferred || Load < BestPreferredLoad)) {
      BestPreferred = W.get();
      BestPreferredLoad = Load;
    }
  }
  if (BestPreferred && BestPreferredLoad <= BestLoad + AffinityBias)
    Best = BestPreferred;
  if (Probe)
    Best = Probe;
  if (!Best) {
    if (ModelExists || !AddIfMissing)
      return -1; // every worker of this model quarantined/excluded
    Best = &addWorkerLocked(DeviceName);
  }
  // A quarantined pick past its cooldown becomes the probation trial.
  {
    std::lock_guard<std::mutex> WL(Best->Mu);
    if (Best->Breaker == BreakerState::Open) {
      Best->Breaker = BreakerState::Probation;
      Best->ProbationInFlight = true;
    } else if (Best->Breaker == BreakerState::Probation) {
      Best->ProbationInFlight = true;
    }
  }
  return static_cast<int>(Best->Id);
}

std::vector<CandidateLoad>
DevicePool::candidates(const std::string &ClientId,
                       const std::vector<unsigned> &Exclude) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Now = std::chrono::steady_clock::now();
  std::vector<CandidateLoad> Out;
  Out.reserve(Workers.size());
  for (const auto &W : Workers) {
    if (std::find(Exclude.begin(), Exclude.end(), W->Id) != Exclude.end())
      continue;
    std::lock_guard<std::mutex> WL(W->Mu);
    if (W->Stop || !eligibleLocked(*W, Now))
      continue;
    CandidateLoad C;
    C.Id = W->Id;
    C.DeviceName = W->DeviceName;
    C.EffBacklog = effBacklogLocked(*W, ClientId);
    C.Queued = W->Queued;
    C.NeedsProbe = W->Breaker != BreakerState::Closed;
    Out.push_back(std::move(C));
  }
  return Out;
}

unsigned DevicePool::ensureWorker(const std::string &DeviceName) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &W : Workers)
    if (W->DeviceName == DeviceName)
      return W->Id;
  return addWorkerLocked(DeviceName).Id;
}

bool DevicePool::admitWorker(unsigned Id) {
  Worker *W = workerById(Id);
  std::lock_guard<std::mutex> WL(W->Mu);
  if (W->Stop || !eligibleLocked(*W, std::chrono::steady_clock::now()))
    return false;
  if (W->Breaker == BreakerState::Open) {
    W->Breaker = BreakerState::Probation;
    W->ProbationInFlight = true;
  } else if (W->Breaker == BreakerState::Probation) {
    W->ProbationInFlight = true;
  }
  return true;
}

bool DevicePool::stealOne(unsigned VictimId, size_t MinDepth,
                          PendingInvoke &Out) {
  Worker *W = workerById(VictimId);
  std::lock_guard<std::mutex> WL(W->Mu);
  if (W->Stop || W->Queued < MinDepth || !W->Queued)
    return false;
  // Take the *tail* of the deepest sub-queue: the request the victim
  // would serve last, so the theft never reorders anyone's EDF/FIFO
  // position and moves the work with the most wait left to save.
  auto Deepest = W->Active.end();
  for (auto It = W->Active.begin(); It != W->Active.end(); ++It)
    if (Deepest == W->Active.end() || It->Q.size() > Deepest->Q.size())
      Deepest = It;
  if (Deepest == W->Active.end() || Deepest->Q.empty())
    return false;
  Out = std::move(Deepest->Q.back());
  Deepest->Q.pop_back();
  --W->Queued;
  if (Deepest->Q.empty()) {
    if (W->Cursor == Deepest)
      ++W->Cursor;
    W->ByClient.erase(Deepest->Client);
    W->Active.erase(Deepest);
  }
  W->NotFull.notify_one();
  return true;
}

std::vector<std::string> DevicePool::modelNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Names;
  for (const auto &W : Workers)
    if (std::find(Names.begin(), Names.end(), W->DeviceName) == Names.end())
      Names.push_back(W->DeviceName);
  return Names;
}

size_t DevicePool::loadOf(const std::string &DeviceName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Best = SIZE_MAX;
  for (const auto &W : Workers) {
    if (W->DeviceName != DeviceName)
      continue;
    std::lock_guard<std::mutex> WL(W->Mu);
    if (W->Stop || W->Breaker == BreakerState::Open)
      continue;
    Best = std::min(Best, W->Queued + W->InFlight);
  }
  return Best == SIZE_MAX ? 0 : Best;
}

void DevicePool::enqueueLocked(Worker &W, PendingInvoke Inv) {
  auto It = W.ByClient.find(Inv.ClientId);
  if (It == W.ByClient.end()) {
    ClientQueue CQ;
    CQ.Client = Inv.ClientId;
    // New queues join just behind the cursor, i.e. at the end of the
    // current round-robin cycle.
    auto Pos = W.Active.insert(
        W.Cursor == W.Active.end() ? W.Active.end() : W.Cursor, std::move(CQ));
    It = W.ByClient.emplace(Inv.ClientId, Pos).first;
  }
  std::deque<PendingInvoke> &Q = It->second->Q;
  // Earliest deadline first within the client's share; deadline-less
  // requests keep FIFO order behind every deadline-bearing one.
  auto Pos = Q.end();
  if (Inv.hasDeadline())
    Pos = std::find_if(Q.begin(), Q.end(), [&](const PendingInvoke &P) {
      return !P.hasDeadline() || P.Deadline > Inv.Deadline;
    });
  Q.insert(Pos, std::move(Inv));
  ++W.Queued;
  W.QueueHighWater = std::max(W.QueueHighWater, W.Queued);
}

PendingInvoke DevicePool::popLocked(Worker &W) {
  assert(W.Queued && !W.Active.empty() && "pop from empty worker");
  // Weighted deficit round robin, unit cost per request: each visit
  // credits the client its weight; a request costs one token. The
  // cursor stays on a client while it still has credit, so weights
  // above 1 translate into consecutive dequeues.
  for (;;) {
    if (W.Cursor == W.Active.end())
      W.Cursor = W.Active.begin();
    ClientQueue &CQ = *W.Cursor;
    if (CQ.Deficit < 1.0)
      CQ.Deficit += weightOf(CQ.Client);
    if (CQ.Deficit >= 1.0) {
      CQ.Deficit -= 1.0;
      PendingInvoke Inv = std::move(CQ.Q.front());
      CQ.Q.pop_front();
      --W.Queued;
      if (CQ.Q.empty()) {
        W.ByClient.erase(CQ.Client);
        W.Cursor = W.Active.erase(W.Cursor);
      } else if (CQ.Deficit < 1.0) {
        ++W.Cursor;
      }
      return Inv;
    }
    ++W.Cursor;
  }
}

void DevicePool::collectMatchingLocked(
    Worker &W, const PendingInvoke &Proto,
    bool (*Match)(const PendingInvoke &, const PendingInvoke &), size_t Limit,
    std::vector<PendingInvoke> &Out) {
  if (!Limit)
    return;
  size_t Taken = 0;
  for (auto QIt = W.Active.begin(); QIt != W.Active.end() && Taken < Limit;) {
    std::deque<PendingInvoke> &Q = QIt->Q;
    for (auto It = Q.begin(); It != Q.end() && Taken < Limit;) {
      if (Match(Proto, *It)) {
        Out.push_back(std::move(*It));
        It = Q.erase(It);
        --W.Queued;
        ++Taken;
      } else {
        ++It;
      }
    }
    if (Q.empty()) {
      if (W.Cursor == QIt)
        ++W.Cursor;
      W.ByClient.erase(QIt->Client);
      QIt = W.Active.erase(QIt);
    } else {
      ++QIt;
    }
  }
}

DevicePool::SubmitOutcome DevicePool::submitTo(unsigned Id, PendingInvoke &Inv,
                                               bool Force, bool Block) {
  Worker *W = workerById(Id);
  std::unique_lock<std::mutex> WL(W->Mu);
  if (!Force) {
    if (Block) {
      W->NotFull.wait(WL,
                      [&] { return W->Stop || W->Queued < Cfg.QueueDepth; });
    } else if (!W->Stop && W->Queued >= Cfg.QueueDepth) {
      return SubmitOutcome::Full;
    }
  }
  if (W->Stop)
    return SubmitOutcome::Stopping;
  enqueueLocked(*W, std::move(Inv));
  W->NotEmpty.notify_one();
  return SubmitOutcome::Accepted;
}

void DevicePool::recordSuccess(unsigned Id) {
  Worker *W = workerById(Id);
  std::lock_guard<std::mutex> WL(W->Mu);
  W->ConsecFailures = 0;
  if (W->Breaker == BreakerState::Probation) {
    // Probe succeeded: re-admit.
    W->Breaker = BreakerState::Closed;
    W->ProbationInFlight = false;
  }
}

bool DevicePool::recordFailure(unsigned Id,
                               std::vector<PendingInvoke> &Drained) {
  Worker *W = workerById(Id);
  std::lock_guard<std::mutex> WL(W->Mu);
  ++W->Failures;
  ++W->ConsecFailures;
  bool Quarantine = false;
  if (W->Breaker == BreakerState::Probation) {
    // Probe failed: back to quarantine for another cooldown.
    Quarantine = true;
  } else if (W->Breaker == BreakerState::Closed && Cfg.Breaker.Threshold &&
             W->ConsecFailures >= Cfg.Breaker.Threshold) {
    Quarantine = true;
  }
  if (!Quarantine)
    return false;
  W->Breaker = BreakerState::Open;
  W->ProbationInFlight = false;
  ++W->TimesQuarantined;
  W->QuarantinedUntil =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(Cfg.Breaker.CooldownMs * 1000.0));
  // Hand the queued work back for re-routing onto healthy peers — in
  // round-robin client order so re-placement stays fair. The batch
  // currently in flight is the caller's to retry.
  while (!W->Active.empty()) {
    ClientQueue &CQ = W->Active.front();
    while (!CQ.Q.empty()) {
      Drained.push_back(std::move(CQ.Q.front()));
      CQ.Q.pop_front();
    }
    W->Active.pop_front();
  }
  W->ByClient.clear();
  W->Cursor = W->Active.end();
  W->Queued = 0;
  W->NotFull.notify_all();
  return true;
}

void DevicePool::recordSkipped(unsigned Id) {
  Worker *W = workerById(Id);
  std::lock_guard<std::mutex> WL(W->Mu);
  if (W->Breaker == BreakerState::Probation && W->ProbationInFlight) {
    // Verdict still pending; drop back to Open with the cooldown
    // already elapsed so the next pick starts a fresh trial.
    W->ProbationInFlight = false;
    W->Breaker = BreakerState::Open;
  }
}

BreakerState DevicePool::breakerStateOf(unsigned Id) const {
  Worker *W = workerById(Id);
  std::lock_guard<std::mutex> WL(W->Mu);
  return W->Breaker;
}

const std::string &DevicePool::deviceNameOf(unsigned Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Id < Workers.size() && "bad worker id");
  return Workers[Id]->DeviceName;
}

size_t DevicePool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Workers.size();
}

void DevicePool::waitIdle() {
  // The worker list only grows; walk by index so a lazily added
  // worker (created while we wait) is still visited. A requeue always
  // lands on its target before the failing worker's InFlight drops,
  // so a full pass with every queue empty means quiescence.
  for (size_t I = 0;; ++I) {
    Worker *W;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (I >= Workers.size())
        return;
      W = Workers[I].get();
    }
    std::unique_lock<std::mutex> WL(W->Mu);
    W->Idle.wait(WL, [&] { return W->Queued == 0 && W->InFlight == 0; });
  }
}

std::vector<DeviceStatsSnapshot> DevicePool::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<DeviceStatsSnapshot> Out;
  Out.reserve(Workers.size());
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> WL(W->Mu);
    DeviceStatsSnapshot S;
    S.Id = W->Id;
    S.DeviceName = W->DeviceName;
    S.Executed = W->Executed;
    S.Launches = W->Launches;
    S.BatchedRequests = W->BatchedRequests;
    S.CoalescedRequests = W->CoalescedRequests;
    S.QueueDepth = W->Queued + W->InFlight;
    S.QueueHighWater = W->QueueHighWater;
    S.ActiveClients = W->Active.size();
    S.SimBusyNs = W->SimBusyNs;
    S.Failures = W->Failures;
    S.ConsecutiveFailures = W->ConsecFailures;
    S.TimesQuarantined = W->TimesQuarantined;
    S.Breaker = W->Breaker;
    Out.push_back(std::move(S));
  }
  return Out;
}

void DevicePool::workerLoop(Worker &W) {
  for (;;) {
    std::vector<PendingInvoke> Batch;
    {
      std::unique_lock<std::mutex> WL(W.Mu);
      if (Cfg.OnIdle) {
        // Work stealing: an idle worker asks the service for work
        // (hook runs unlocked — it calls back into the pool) and
        // falls back to a short timed wait when none was found, so a
        // victim that backs up later still gets relieved.
        while (!W.Stop && !W.Queued) {
          WL.unlock();
          bool Got = Cfg.OnIdle(W.Id);
          WL.lock();
          if (!Got && !W.Stop && !W.Queued)
            W.NotEmpty.wait_for(WL, std::chrono::milliseconds(2));
        }
      } else {
        W.NotEmpty.wait(WL, [&] { return W.Stop || W.Queued; });
      }
      if (!W.Queued)
        return; // Stop and drained
      Batch.push_back(popLocked(W));
      // Coalesce bit-identical requests onto the leader first, so a
      // duplicate rides as a twin (one result, fanned out) instead of
      // as a merge member (which would re-run the duplicate input).
      auto Coalesce = [&](PendingInvoke &Member) {
        if (Cfg.CoalesceWindow > 1)
          collectMatchingLocked(W, Member, identicalInvoke,
                                Cfg.CoalesceWindow - 1, Member.Twins);
      };
      Coalesce(Batch.front());
      if (Cfg.MaxBatch > 1 && Batch.front().SourceParam >= 0) {
        std::vector<PendingInvoke> More;
        collectMatchingLocked(W, Batch.front(), mergeable, Cfg.MaxBatch - 1,
                              More);
        for (PendingInvoke &M : More) {
          Batch.push_back(std::move(M));
          Coalesce(Batch.back());
        }
      }
      W.InFlight = requestCount(Batch);
      W.NotFull.notify_all();
    }

    double SimNs = Exec(Batch, W.Id);

    {
      std::lock_guard<std::mutex> WL(W.Mu);
      // The executor moves requests out of the batch when it fails
      // them elsewhere (retry, fallback); what's left resolved here.
      W.Executed += requestCount(Batch);
      W.Launches += 1;
      if (Batch.size() > 1)
        W.BatchedRequests += Batch.size();
      for (const PendingInvoke &B : Batch)
        W.CoalescedRequests += B.Twins.size();
      W.SimBusyNs += SimNs;
      W.InFlight = 0;
      if (!W.Queued)
        W.Idle.notify_all();
    }
  }
}
