//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/DevicePool.h"

#include <algorithm>
#include <cassert>

using namespace lime;
using namespace lime::service;

/// Two invocations of the same instance may merge only when every
/// argument other than the map source is bit-identical: the merged
/// launch forwards one set of scalars/bound arrays to the kernel.
static bool mergeable(const PendingInvoke &A, const PendingInvoke &B) {
  if (A.Instance != B.Instance || A.SourceParam < 0 || B.SourceParam < 0)
    return false;
  if (A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I != A.Args.size(); ++I) {
    if (static_cast<int>(I) == A.SourceParam)
      continue;
    if (!A.Args[I].equals(B.Args[I]))
      return false;
  }
  return true;
}

DevicePool::DevicePool(std::vector<std::string> DeviceNames, size_t QueueDepth,
                       unsigned MaxBatch, Executor Exec)
    : QueueDepth(QueueDepth ? QueueDepth : 1),
      MaxBatch(MaxBatch ? MaxBatch : 1), Exec(std::move(Exec)) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::string &Name : DeviceNames)
    addWorkerLocked(Name);
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &W : Workers) {
      std::lock_guard<std::mutex> WL(W->Mu);
      W->Stop = true;
      W->NotEmpty.notify_all();
    }
  }
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

DevicePool::Worker &DevicePool::addWorkerLocked(const std::string &DeviceName) {
  auto W = std::make_unique<Worker>();
  W->Id = static_cast<unsigned>(Workers.size());
  W->DeviceName = DeviceName;
  Workers.push_back(std::move(W));
  Worker &Ref = *Workers.back();
  Ref.Thread = std::thread([this, &Ref] { workerLoop(Ref); });
  return Ref;
}

unsigned DevicePool::pickWorker(const std::string &DeviceName,
                                const std::vector<unsigned> &Preferred,
                                size_t AffinityBias) {
  std::lock_guard<std::mutex> Lock(Mu);
  Worker *Best = nullptr, *BestPreferred = nullptr;
  size_t BestLoad = 0, BestPreferredLoad = 0;
  for (auto &W : Workers) {
    if (W->DeviceName != DeviceName)
      continue;
    size_t Load;
    {
      std::lock_guard<std::mutex> WL(W->Mu);
      Load = W->Queue.size() + W->InFlight;
    }
    if (!Best || Load < BestLoad) {
      Best = W.get();
      BestLoad = Load;
    }
    bool IsPreferred =
        std::find(Preferred.begin(), Preferred.end(), W->Id) !=
        Preferred.end();
    if (IsPreferred && (!BestPreferred || Load < BestPreferredLoad)) {
      BestPreferred = W.get();
      BestPreferredLoad = Load;
    }
  }
  if (BestPreferred && BestPreferredLoad <= BestLoad + AffinityBias)
    return BestPreferred->Id;
  if (!Best)
    Best = &addWorkerLocked(DeviceName);
  return Best->Id;
}

void DevicePool::submitTo(unsigned Id, PendingInvoke Inv) {
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Workers.size() && "bad worker id");
    W = Workers[Id].get();
  }
  std::unique_lock<std::mutex> WL(W->Mu);
  W->NotFull.wait(WL, [&] { return W->Queue.size() < QueueDepth; });
  W->Queue.push_back(std::move(Inv));
  W->QueueHighWater = std::max(W->QueueHighWater, W->Queue.size());
  W->NotEmpty.notify_one();
}

const std::string &DevicePool::deviceNameOf(unsigned Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Id < Workers.size() && "bad worker id");
  return Workers[Id]->DeviceName;
}

size_t DevicePool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Workers.size();
}

void DevicePool::waitIdle() {
  // The worker list only grows; walk by index so a lazily added
  // worker (created while we wait) is still visited.
  for (size_t I = 0;; ++I) {
    Worker *W;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (I >= Workers.size())
        return;
      W = Workers[I].get();
    }
    std::unique_lock<std::mutex> WL(W->Mu);
    W->Idle.wait(WL, [&] { return W->Queue.empty() && W->InFlight == 0; });
  }
}

std::vector<DeviceStatsSnapshot> DevicePool::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<DeviceStatsSnapshot> Out;
  Out.reserve(Workers.size());
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> WL(W->Mu);
    DeviceStatsSnapshot S;
    S.Id = W->Id;
    S.DeviceName = W->DeviceName;
    S.Executed = W->Executed;
    S.Launches = W->Launches;
    S.BatchedRequests = W->BatchedRequests;
    S.QueueDepth = W->Queue.size() + W->InFlight;
    S.QueueHighWater = W->QueueHighWater;
    S.SimBusyNs = W->SimBusyNs;
    Out.push_back(std::move(S));
  }
  return Out;
}

void DevicePool::workerLoop(Worker &W) {
  for (;;) {
    std::vector<PendingInvoke> Batch;
    {
      std::unique_lock<std::mutex> WL(W.Mu);
      W.NotEmpty.wait(WL, [&] { return W.Stop || !W.Queue.empty(); });
      if (W.Queue.empty())
        return; // Stop and drained
      Batch.push_back(std::move(W.Queue.front()));
      W.Queue.pop_front();
      if (MaxBatch > 1 && Batch.front().SourceParam >= 0) {
        for (auto It = W.Queue.begin();
             It != W.Queue.end() && Batch.size() < MaxBatch;) {
          if (mergeable(Batch.front(), *It)) {
            Batch.push_back(std::move(*It));
            It = W.Queue.erase(It);
          } else {
            ++It;
          }
        }
      }
      W.InFlight = Batch.size();
      W.NotFull.notify_all();
    }

    double SimNs = Exec(Batch, W.Id);

    {
      std::lock_guard<std::mutex> WL(W.Mu);
      W.Executed += Batch.size();
      W.Launches += 1;
      if (Batch.size() > 1)
        W.BatchedRequests += Batch.size();
      W.SimBusyNs += SimNs;
      W.InFlight = 0;
      if (W.Queue.empty())
        W.Idle.notify_all();
    }
  }
}
