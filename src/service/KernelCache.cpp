//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/KernelCache.h"

#include "lime/ast/ASTPrinter.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace lime;
using namespace lime::service;

uint64_t lime::service::fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

KernelKey KernelKey::make(const MethodDecl *Worker,
                          const rt::OffloadConfig &Config,
                          const std::string *ClassText) {
  // The lowered filter source: the pretty-printed, type-annotated
  // class the worker lives in. Printing the class (not the whole
  // program) keeps unrelated edits from invalidating this filter.
  std::ostringstream Key;
  Key << "filter=" << Worker->qualifiedName() << '\n';
  if (ClassText) {
    Key << *ClassText;
  } else if (const ClassDecl *C = Worker->parent()) {
    ASTPrintOptions Opts;
    Opts.ShowTypes = true;
    Key << printClass(C, Opts);
  }
  const MemoryConfig &M = Config.Mem;
  Key << "\ndevice=" << Config.DeviceName << "\nmem=" << M.str()
      << " private=" << M.AllowPrivate << " privlim=" << M.PrivateBytesLimit
      << " tile=" << M.LocalTileBudgetBytes << '\n';
  KernelKey K;
  K.Canonical = Key.str();
  K.Hash = fnv1a(K.Canonical);
  return K;
}

void KernelCache::setDiskDir(std::string Dir) {
  DiskDir = std::move(Dir);
  if (DiskDir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(DiskDir, EC);
  if (EC)
    DiskDir.clear(); // unusable path: fall back to in-memory only
}

std::string KernelCache::diskPathFor(uint64_t Hash) const {
  std::ostringstream P;
  P << DiskDir << "/" << std::hex << Hash << ".cl";
  return P.str();
}

/// Pulls the hex/decimal value of "// <Field>: <value>" out of a v2
/// header, or ~0 when the field is missing or malformed.
static uint64_t headerField(const std::string &Header,
                            const std::string &Field, int Base) {
  std::string Tag = "// " + Field + ": ";
  size_t At = Header.find(Tag);
  if (At == std::string::npos)
    return ~0ull;
  errno = 0;
  char *End = nullptr;
  const char *Begin = Header.c_str() + At + Tag.size();
  uint64_t V = std::strtoull(Begin, &End, Base);
  if (End == Begin || errno != 0)
    return ~0ull;
  return V;
}

std::string KernelCache::diskLookup(const KernelKey &Key) const {
  if (DiskDir.empty())
    return "";
  std::string Path = diskPathFor(Key.Hash);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  In.close();

  // Validate before trusting: version line, then the header's length
  // and FNV-1a checksum against the body. A truncated, bit-flipped,
  // or old-format file is discarded (removed best-effort) and the
  // caller recompiles as if it never existed — a corrupt cache entry
  // must never poison a launch.
  auto Discard = [&] {
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    return std::string();
  };
  static const char Magic[] = "// limecc kernel cache v2\n";
  if (Text.compare(0, sizeof(Magic) - 1, Magic) != 0)
    return Discard();
  size_t HdrEnd = Text.find("\n\n");
  if (HdrEnd == std::string::npos)
    return Discard();
  std::string Header = Text.substr(0, HdrEnd + 1);
  std::string Body = Text.substr(HdrEnd + 2);
  if (headerField(Header, "key-fnv1a", 16) != Key.Hash ||
      headerField(Header, "src-bytes", 10) != Body.size() ||
      headerField(Header, "src-fnv1a", 16) != fnv1a(Body))
    return Discard();
  return Body;
}

void KernelCache::persist(const KernelKey &Key, const CompiledKernel &K) {
  if (DiskDir.empty() || !K.Ok)
    return;
  // Write-then-rename: readers (this process later, or a concurrent
  // one) only ever see a complete, checksummed file. rename(2) within
  // one directory is atomic; a crash mid-write leaves only the temp.
  std::string Path = diskPathFor(Key.Hash);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc | std::ios::binary);
    if (!Out)
      return; // persistence is best-effort
    Out << "// limecc kernel cache v2\n// key-fnv1a: " << std::hex << Key.Hash
        << "\n// src-fnv1a: " << fnv1a(K.Source) << std::dec
        << "\n// src-bytes: " << K.Source.size() << "\n\n"
        << K.Source;
    Out.flush();
    if (!Out) {
      Out.close();
      std::error_code EC;
      std::filesystem::remove(Tmp, EC);
      return;
    }
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

std::shared_ptr<const CompiledKernel>
KernelCache::getOrCompile(const KernelKey &Key,
                          const std::function<CompiledKernel()> &Compile,
                          bool *WasMiss) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (WasMiss)
    *WasMiss = false;
  auto It = Index.find(Key.Hash);
  if (It != Index.end() && It->second->second.Canonical == Key.Canonical) {
    ++Stats.Hits;
    Lru.splice(Lru.begin(), Lru, It->second); // touch
    return It->second->second.Kernel;
  }
  if (It != Index.end()) {
    // A different key collided into this hash: evict the squatter.
    Lru.erase(It->second);
    Index.erase(It);
    Bundles.erase(Key.Hash);
    Resident.erase(Key.Hash);
    ++Stats.Evictions;
  }
  ++Stats.Misses;
  if (WasMiss)
    *WasMiss = true;

  // Cross-process reuse check before compiling anew.
  std::string OnDisk = diskLookup(Key);

  auto Kernel = std::make_shared<CompiledKernel>(Compile());
  if (!OnDisk.empty() && Kernel->Ok && OnDisk == Kernel->Source)
    ++Stats.DiskHits;
  else
    persist(Key, *Kernel);

  Lru.emplace_front(Key.Hash,
                    Entry{Key.Canonical,
                          std::shared_ptr<const CompiledKernel>(Kernel)});
  Index[Key.Hash] = Lru.begin();
  while (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Bundles.erase(Lru.back().first);
    Resident.erase(Lru.back().first);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Stats.Entries = Lru.size();
  return Lru.front().second.Kernel;
}

KernelCacheStats KernelCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  KernelCacheStats S = Stats;
  S.Entries = Lru.size();
  return S;
}

std::shared_ptr<rt::SharedProgramSlot>
KernelCache::bundleSlot(const KernelKey &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Bundles[Key.Hash];
  if (!Slot)
    Slot = std::make_shared<rt::SharedProgramSlot>();
  return Slot;
}

void KernelCache::tagResident(const KernelKey &Key, unsigned WorkerId) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Tags are only meaningful for live entries; a tag for an evicted
  // (or never-compiled) kernel would claim a build that is gone.
  auto It = Index.find(Key.Hash);
  if (It == Index.end() || It->second->second.Canonical != Key.Canonical)
    return;
  auto &Ids = Resident[Key.Hash];
  if (std::find(Ids.begin(), Ids.end(), WorkerId) == Ids.end())
    Ids.push_back(WorkerId);
}

bool KernelCache::isResident(const KernelKey &Key, unsigned WorkerId) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Resident.find(Key.Hash);
  if (It == Resident.end())
    return false;
  return std::find(It->second.begin(), It->second.end(), WorkerId) !=
         It->second.end();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Index.clear();
  Bundles.clear();
  Resident.clear();
  Stats = KernelCacheStats();
}
