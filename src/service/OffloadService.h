//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload service: a shared, thread-safe front end to the
/// simulated OpenCL stack. Many client threads submit OffloadRequests
/// (filter + arguments + OffloadConfig); the service compiles each
/// distinct (filter, canonical config, device) once through the
/// content-addressed KernelCache, schedules work across a DevicePool
/// of simulated devices, opportunistically merges same-filter map
/// invocations into one NDRange launch, and hands back futures whose
/// results are bit-identical to the direct rt::OffloadedFilter path.
///
/// Concurrency contract:
///  - GpuCompiler runs under a single compile mutex (TypeContext
///    canonicalization is not thread-safe);
///  - each FilterInstance (compiled filter bound to one worker
///    thread) owns a private ClContext and is only ever touched by
///    its worker, so no device state is shared across threads;
///  - marshalling (WireFormat) is stateless and runs concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_OFFLOADSERVICE_H
#define LIMECC_SERVICE_OFFLOADSERVICE_H

#include "runtime/Offload.h"
#include "service/DevicePool.h"
#include "service/KernelCache.h"

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lime::service {

struct ServiceConfig {
  /// Device model names to spawn workers for, one worker per entry
  /// (repeat a name for a multi-queue device). Requests naming other
  /// registered models get a worker lazily.
  std::vector<std::string> Devices = {"gtx580"};
  /// Bound on each worker's queue; submit() blocks when exceeded.
  size_t QueueDepth = 256;
  size_t CacheCapacity = 64;
  /// Directory for cross-process kernel persistence ("" = off).
  std::string DiskCacheDir;
  /// Merge same-filter map invocations queued behind each other into
  /// one launch.
  bool EnableBatching = true;
  unsigned MaxBatch = 8;
  /// Run the kernel verifier (analysis::analyzeKernel) on every
  /// cache-miss compile; kernels with error-severity findings are
  /// rejected — and negatively cached — instead of launched.
  bool VerifyKernels = true;
  /// Test seam: mutates each freshly compiled kernel *before* the
  /// verifier sees it (used to exercise the admission gate with
  /// corrupted kernels). Runs under the compile mutex; keep it cheap.
  std::function<void(CompiledKernel &)> PostCompileHook;
};

/// One request to run a filter on a device.
struct OffloadRequest {
  MethodDecl *Worker = nullptr;
  std::vector<RtValue> Args; // worker parameter order, stream input first
  rt::OffloadConfig Config;
};

/// Point-in-time snapshot of everything the service counts.
struct OffloadServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0; // fulfilled ok
  uint64_t Failed = 0;    // fulfilled with a trap
  uint64_t Rejected = 0;  // refused before scheduling (bad config/device)
  KernelCacheStats Cache;
  /// Figure-9 style per-stage decomposition summed over every launch.
  rt::OffloadStats Device;
  std::vector<DeviceStatsSnapshot> Devices;

  uint64_t launches() const {
    uint64_t N = 0;
    for (const DeviceStatsSnapshot &D : Devices)
      N += D.Launches;
    return N;
  }
  uint64_t batchedRequests() const {
    uint64_t N = 0;
    for (const DeviceStatsSnapshot &D : Devices)
      N += D.BatchedRequests;
    return N;
  }
};

class OffloadService {
public:
  OffloadService(Program *P, TypeContext &Types,
                 ServiceConfig Config = ServiceConfig());
  ~OffloadService();

  OffloadService(const OffloadService &) = delete;
  OffloadService &operator=(const OffloadService &) = delete;

  /// Queues \p Request; the future traps (ExecResult::Trapped) on
  /// invalid configs, unknown devices, or compilation failure, and
  /// otherwise resolves to the same value the direct rt::Offload path
  /// produces. Blocks only when the target device queue is full.
  std::future<ExecResult> submit(OffloadRequest Request);

  /// submit() + wait, for synchronous callers (the pipeline hook).
  ExecResult invoke(OffloadRequest Request);

  /// Whether \p Worker compiles for \p Config (consulting and warming
  /// the kernel cache). On failure *Why receives the compiler's
  /// reason.
  bool offloadable(MethodDecl *Worker, const rt::OffloadConfig &Config,
                   std::string *Why = nullptr);

  /// Blocks until all queues are drained (quiesced callers only).
  void waitIdle();

  OffloadServiceStats stats() const;
  KernelCache &cache() { return Cache; }

private:
  /// Instance-map key: kernel identity plus the launch/marshal knobs
  /// the kernel key does not cover (worker id is the inner map key).
  static std::string instanceKey(MethodDecl *Worker,
                                 const CompiledKernel *Kernel,
                                 const rt::OffloadConfig &Canon);
  /// Workers that already built an instance for \p Key — scheduling
  /// prefers them so a cache-warm request skips the per-worker
  /// program build.
  std::vector<unsigned> instanceWorkers(const std::string &Key);
  /// Memoized type-annotated print of \p Worker's class for kernel
  /// keys (pretty-printing per request would dominate the cache-hit
  /// path). The AST is immutable after Sema; map nodes are
  /// address-stable, so the returned reference outlives the lock.
  const std::string &classTextFor(const MethodDecl *Worker);
  /// Cache-miss path shared by submit() and offloadable(): compiles
  /// under the compile mutex, then runs the kernel verifier; kernels
  /// with error findings come back !Ok so the cache remembers the
  /// rejection.
  CompiledKernel compileVerified(MethodDecl *Worker,
                                 const rt::OffloadConfig &Canon);
  FilterInstance *instanceFor(const std::string &Key, MethodDecl *Worker,
                              std::shared_ptr<const CompiledKernel> Kernel,
                              unsigned WorkerId, const rt::OffloadConfig &Canon,
                              std::string &Err);
  /// Runs on a device worker thread: merges, prepares (under the
  /// compile mutex when first-invoke work is needed), launches, and
  /// fulfils every promise. Returns simulated device ns consumed.
  double execute(std::vector<PendingInvoke> &Batch, unsigned WorkerId);
  void accumulate(const rt::OffloadStats &Before, const rt::OffloadStats &After);

  Program *Prog;
  TypeContext &Types;
  ServiceConfig Config;

  KernelCache Cache;
  /// Serializes every code path that touches GpuCompiler / the shared
  /// TypeContext: cache-miss compiles and first-invoke preparation
  /// (whose constant-capacity fallback can recompile).
  std::mutex CompileMu;

  /// FilterInstances keyed by (kernel identity, execution config) and
  /// then by worker id — each instance's ClContext is pinned to one
  /// worker thread. Address-stable, created on demand, guarded by
  /// InstMu.
  std::mutex InstMu;
  std::map<std::string, std::map<unsigned, std::unique_ptr<FilterInstance>>>
      Instances;

  std::mutex ClassTextMu;
  std::map<const ClassDecl *, std::string> ClassTexts;

  mutable std::mutex StatsMu;
  rt::OffloadStats DeviceStats; // aggregated per-launch deltas
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<uint64_t> Rejected{0};

  /// Destroyed first on teardown (drains onto still-valid members) —
  /// keep last.
  std::unique_ptr<DevicePool> Pool;
};

/// The concrete FilterInstance: a compiled filter pinned to one
/// device worker. Public so the pool's PendingInvoke can point at it;
/// only the service and the owning worker thread touch the contents.
struct FilterInstance {
  std::unique_ptr<rt::OffloadedFilter> Filter;
  /// Pins the cache entry this instance was built from (the instance
  /// key embeds its address).
  std::shared_ptr<const CompiledKernel> Kernel;
  /// Worker-parameter index of the map source when invocations of
  /// this instance may merge; -1 otherwise.
  int SourceParam = -1;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_OFFLOADSERVICE_H
