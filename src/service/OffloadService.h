//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload service: a shared, thread-safe front end to the
/// simulated OpenCL stack. Many client threads submit OffloadRequests
/// (filter + arguments + OffloadConfig, tagged with a ClientId); the
/// service compiles each distinct (filter, canonical config, device)
/// once through the content-addressed KernelCache, schedules work
/// across a DevicePool of simulated devices with per-client fair
/// queueing, opportunistically merges same-filter map invocations
/// into one NDRange launch, coalesces bit-identical requests across
/// clients onto one launch, and hands back futures whose results are
/// bit-identical to the direct rt::OffloadedFilter path.
///
/// Overload control (see DESIGN.md §12): per-client token-bucket
/// quotas run at admission, bounded queues reject (or block, the seed
/// behavior) with typed errors when full, and under the Deadline shed
/// policy a request whose remaining deadline is below a moving
/// estimate of (queue wait + compile + launch) cost is refused at
/// submit instead of timing out in queue. Every typed rejection is
/// layered on ExecResult::TrapMessage with a grep-stable marker
/// (classifyServiceError parses it back out), so the interpreter's
/// result type stays untouched.
///
/// Concurrency contract:
///  - GpuCompiler runs under a single compile mutex (TypeContext
///    canonicalization is not thread-safe);
///  - each FilterInstance (compiled filter bound to one worker
///    thread) owns a private ClContext and is only ever touched by
///    its worker, so no device state is shared across threads;
///  - marshalling (WireFormat) is stateless and runs concurrently;
///  - every service counter — aggregate, per-client, token buckets,
///    cost EWMAs — lives under one stats mutex so snapshots are
///    never torn.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_OFFLOADSERVICE_H
#define LIMECC_SERVICE_OFFLOADSERVICE_H

#include "runtime/Offload.h"
#include "service/DevicePool.h"
#include "service/KernelCache.h"
#include "service/Scheduler.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lime::service {

struct ServiceConfig {
  /// Device model names to spawn workers for, one worker per entry
  /// (repeat a name for a multi-queue device). Requests naming other
  /// registered models get a worker lazily.
  std::vector<std::string> Devices = {"gtx580"};
  /// Bound on each worker's queue; what happens when it is exceeded
  /// is ShedPolicy's call.
  size_t QueueDepth = 256;
  size_t CacheCapacity = 64;
  /// Directory for cross-process kernel persistence ("" = off).
  std::string DiskCacheDir;
  /// Merge same-filter map invocations queued behind each other into
  /// one launch.
  bool EnableBatching = true;
  unsigned MaxBatch = 8;
  /// Run the kernel verifier (analysis::analyzeKernel) on every
  /// cache-miss compile; kernels with error-severity findings are
  /// rejected — and negatively cached — instead of launched.
  bool VerifyKernels = true;
  /// Test seam: mutates each freshly compiled kernel *before* the
  /// verifier sees it (used to exercise the admission gate with
  /// corrupted kernels). Runs under the compile mutex; keep it cheap.
  std::function<void(CompiledKernel &)> PostCompileHook;

  // --- Multi-tenant overload control ------------------------------
  /// Default per-client token-bucket quota: sustained requests per
  /// second (0 = unlimited) and bucket depth in requests (0 = derive
  /// max(1, QuotaQps)). A client over quota gets a typed
  /// rejected[quota-exceeded] trap before any compile or cache work.
  double QuotaQps = 0.0;
  double QuotaBurst = 0.0;
  /// Per-client overrides of quota and fair-queueing weight. Negative
  /// Qps/Burst inherit the defaults above; Weight scales the client's
  /// DRR share (1.0 = equal).
  struct ClientPolicy {
    double Qps = -1.0;
    double Burst = -1.0;
    double Weight = 1.0;
  };
  std::map<std::string, ClientPolicy> Clients;
  /// Full-queue and deadline policy at admission:
  ///  Block    - submit() blocks on a full queue (seed backpressure);
  ///  Reject   - full queue answers rejected[queue-full] immediately;
  ///  Deadline - Reject, plus proactive rejected[deadline-infeasible]
  ///             shedding of requests whose deadline budget is below
  ///             the moving (queue wait + compile + launch) estimate.
  enum class Shedding : uint8_t { Block, Reject, Deadline };
  Shedding ShedPolicy = Shedding::Block;
  /// Identical-request coalescing across clients: up to this many
  /// bit-identical queued requests (same kernel instance, same
  /// argument bits) collapse into one launch fanned out to every
  /// waiting future. 1 disables.
  unsigned CoalesceWindow = 16;

  // --- Fault-tolerance policy -------------------------------------
  /// Launch attempts beyond the first for a failed or timed-out
  /// request: the first retry stays on the same worker (transient
  /// glitch), later ones re-route to another worker — of any
  /// registered device model, recompiling through the cache — with
  /// every previously failed worker excluded. 0 disables retries.
  unsigned MaxRetries = 3;
  /// Exponential backoff between attempts: base * 2^(attempt-1),
  /// capped at BackoffMaxMs.
  double BackoffBaseMs = 0.25;
  double BackoffMaxMs = 20.0;
  /// Per-launch deadline (wall clock). A request expiring in the
  /// queue skips the device and re-routes; a launch completing past
  /// it counts as timed out against the worker's breaker. 0 = none.
  /// OffloadRequest::DeadlineMs overrides this per request.
  double LaunchDeadlineMs = 0.0;
  /// Circuit breaker: this many consecutive failures quarantine a
  /// worker (0 disables). Its queue drains onto healthy peers; after
  /// the cooldown one probation request decides re-admission.
  unsigned BreakerThreshold = 3;
  double BreakerCooldownMs = 250.0;
  /// When retries are exhausted or no device can serve a request,
  /// execute it through the Lime interpreter — the result is
  /// bit-identical for the kernels the GPU path supports — instead
  /// of failing the future. Counted in stats as FellBack.
  bool FallbackToInterpreter = true;

  // --- Data-aware scheduling (DESIGN.md §13) ----------------------
  /// Default placement policy for requests that do not set one via
  /// SubmitOptions. LeastLoaded is the pre-scheduler behavior.
  SchedulerPolicy Policy = SchedulerPolicy::LeastLoaded;
  /// Host the CPU interpreter as a first-class pool peer: an "interp"
  /// worker whose queue executes through the Lime interpreter, scored
  /// by the cost model like any device (no transfer term, slow
  /// compute prior). Distinct from FallbackToInterpreter, which is a
  /// last-resort path after placement already failed.
  bool CpuPeer = false;
  /// Idle workers steal queued work from the deepest backlog when the
  /// cost model says the move pays for its transfers. Active only
  /// when Policy != LeastLoaded.
  bool WorkStealing = false;
  /// Default shard plan for SchedulerPolicy::Shard (per-request
  /// SubmitOptions::Shard fields at their defaults inherit these).
  ShardOptions Shard;
  CostModelParams Cost;
  /// Test seam: injectable cost terms (see CostHooks).
  CostHooks Hooks;
};

/// One request to run a filter on a device.
struct OffloadRequest {
  MethodDecl *Worker = nullptr;
  std::vector<RtValue> Args; // worker parameter order, stream input first
  rt::OffloadConfig Config;
  /// The consolidated per-request submit surface (client identity,
  /// deadline, placement policy, shard plan) — see SubmitOptions.
  SubmitOptions Options;

  // Deprecated (one-release shim): pre-SubmitOptions call sites set
  // these directly. They are honored only when the corresponding
  // Options field is unset; new code should populate Options.
  std::string ClientId;
  double DeadlineMs = 0.0;
};

/// Fan-out state of one sharded data-parallel map. Each shard is an
/// independent PendingInvoke (placed, retried, and fallen back on its
/// own); results land in Parts[ShardIndex], and the last delivery
/// stitches them in shard order — bit-identical to the unsplit launch
/// — and resolves the parent promise. The parent counts once, at
/// stitch time; shards never touch Submitted/Completed themselves.
struct ShardGroup {
  std::promise<ExecResult> Promise;
  std::string ClientId;
  std::mutex Mu;
  std::vector<ExecResult> Parts;
  size_t Remaining = 0;
};

/// Machine-readable classification of a service-level trap. Overload
/// control rejects with grep-stable markers inside
/// ExecResult::TrapMessage ("rejected[queue-full]", ...), so the core
/// ExecResult type needs no new fields and old callers see an
/// ordinary trap.
enum class ServiceRejectKind : uint8_t {
  None,               ///< not an overload-control rejection
  QueueFull,          ///< bounded queue full (or injected QueueFull fault)
  QuotaExceeded,      ///< per-client token bucket empty
  DeadlineInfeasible, ///< shed: deadline budget below the cost estimate
  TimedOut,           ///< deadline lapsed while its coalesced launch flew
};

const char *serviceRejectKindName(ServiceRejectKind K);
/// The typed rejection carried by \p R, or None for successes and
/// ordinary (compile/config) traps.
ServiceRejectKind classifyServiceError(const ExecResult &R);

/// Per-client counters; a point-in-time snapshot row.
struct ClientStatsSnapshot {
  std::string Client;
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Failed = 0;
  uint64_t Rejected = 0;          // all typed rejections below
  uint64_t QuotaRejected = 0;     // rejected[quota-exceeded]
  uint64_t QueueFullRejected = 0; // rejected[queue-full]
  uint64_t Shed = 0;              // rejected[deadline-infeasible]
  uint64_t TimedOut = 0;          // deadline expiries, typed or retried
  uint64_t Coalesced = 0;         // served as a twin on another's launch
  uint64_t Retried = 0;
  uint64_t FellBack = 0;
};

/// Point-in-time snapshot of everything the service counts. Taken
/// under one lock, so totals are never torn against each other.
struct OffloadServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0; // fulfilled ok
  uint64_t Failed = 0;    // fulfilled with a trap
  uint64_t Rejected = 0;  // refused before scheduling (bad config/device,
                          // quota, queue-full, shed)
  // Fault-tolerance counters. These overlap the four above rather
  // than extending the sum: at quiescence Submitted == Completed +
  // Failed + Rejected always holds, and Retried/TimedOut/FellBack
  // say how bumpy the road there was.
  uint64_t Retried = 0;   // re-dispatches after a failure/timeout/drain
  uint64_t TimedOut = 0;  // deadline expiries (in queue or past launch)
  uint64_t Quarantined = 0; // breaker transitions into quarantine
  uint64_t FellBack = 0;  // requests served by the interpreter
  // Overload-control counters (each also folds into Rejected, except
  // Coalesced which folds into Completed).
  uint64_t QuotaRejected = 0;
  uint64_t QueueFullRejected = 0;
  uint64_t Shed = 0;      // deadline-infeasible rejections
  uint64_t Coalesced = 0; // requests served as coalesced twins
  // Scheduler counters (placement, stealing, sharding).
  SchedulerPolicy Policy = SchedulerPolicy::LeastLoaded; // service default
  Scheduler::Counters Sched;
  uint64_t ShardedParents = 0; ///< requests split across devices
  uint64_t ShardLaunches = 0;  ///< shards those splits produced
  KernelCacheStats Cache;
  /// Figure-9 style per-stage decomposition summed over every launch.
  rt::OffloadStats Device;
  std::vector<DeviceStatsSnapshot> Devices;
  /// Per-client rows, sorted by client id.
  std::vector<ClientStatsSnapshot> Clients;

  uint64_t launches() const {
    uint64_t N = 0;
    for (const DeviceStatsSnapshot &D : Devices)
      N += D.Launches;
    return N;
  }
  uint64_t batchedRequests() const {
    uint64_t N = 0;
    for (const DeviceStatsSnapshot &D : Devices)
      N += D.BatchedRequests;
    return N;
  }
  uint64_t coalescedRequests() const {
    uint64_t N = 0;
    for (const DeviceStatsSnapshot &D : Devices)
      N += D.CoalescedRequests;
    return N;
  }
};

class OffloadService {
public:
  OffloadService(Program *P, TypeContext &Types,
                 ServiceConfig Config = ServiceConfig());
  ~OffloadService();

  OffloadService(const OffloadService &) = delete;
  OffloadService &operator=(const OffloadService &) = delete;

  /// "" when the ServiceConfig validated, else the reason every
  /// submit() will be rejected (unknown device model in Devices —
  /// checked against the device registry at construction).
  const std::string &configError() const { return ConfigError; }
  bool ok() const { return ConfigError.empty(); }

  /// Queues \p Request; the future traps (ExecResult::Trapped) on
  /// invalid configs, unknown devices, compilation failure, or a
  /// typed overload rejection (classifyServiceError tells which), and
  /// otherwise resolves to the same value the direct rt::Offload path
  /// produces. Blocks on a full device queue only under the Block
  /// shed policy.
  std::future<ExecResult> submit(OffloadRequest Request);

  /// submit() + wait, for synchronous callers (the pipeline hook).
  ExecResult invoke(OffloadRequest Request);

  /// Whether \p Worker compiles for \p Config (consulting and warming
  /// the kernel cache). On failure *Why receives the compiler's
  /// reason.
  bool offloadable(MethodDecl *Worker, const rt::OffloadConfig &Config,
                   std::string *Why = nullptr);

  /// Blocks until all queues are drained (quiesced callers only).
  void waitIdle();

  OffloadServiceStats stats() const;
  KernelCache &cache() { return Cache; }

private:
  /// Instance-map key: kernel identity plus the launch/marshal knobs
  /// the kernel key does not cover (worker id is the inner map key).
  static std::string instanceKey(MethodDecl *Worker,
                                 const CompiledKernel *Kernel,
                                 const rt::OffloadConfig &Canon);
  /// Workers that already built an instance for \p Key — scheduling
  /// prefers them so a cache-warm request skips the per-worker
  /// program build.
  std::vector<unsigned> instanceWorkers(const std::string &Key);
  /// Memoized type-annotated print of \p Worker's class for kernel
  /// keys (pretty-printing per request would dominate the cache-hit
  /// path). The AST is immutable after Sema; map nodes are
  /// address-stable, so the returned reference outlives the lock.
  const std::string &classTextFor(const MethodDecl *Worker);
  /// Cache-miss path shared by submit() and offloadable(): compiles
  /// under the compile mutex, then runs the kernel verifier; kernels
  /// with error findings come back !Ok so the cache remembers the
  /// rejection. Feeds the compile-cost EWMA.
  CompiledKernel compileVerified(MethodDecl *Worker,
                                 const rt::OffloadConfig &Canon);
  FilterInstance *instanceFor(const std::string &Key, MethodDecl *Worker,
                              std::shared_ptr<const CompiledKernel> Kernel,
                              unsigned WorkerId, const rt::OffloadConfig &Canon,
                              std::string &Err);
  /// Runs on a device worker thread: merges, prepares (under the
  /// compile mutex when first-invoke work is needed), launches, and
  /// fulfils every promise — coalesced twins included. Returns
  /// simulated device ns consumed.
  double execute(std::vector<PendingInvoke> &Batch, unsigned WorkerId);
  /// The CPU peer's executor: runs each batch member through the Lime
  /// interpreter (under the compile mutex) and delivers. Returns the
  /// wall ns spent interpreting, which doubles as the peer's "sim"
  /// time for the scheduler's EWMA.
  double executeInterp(std::vector<PendingInvoke> &Batch, unsigned WorkerId);
  void accumulate(const rt::OffloadStats &Before, const rt::OffloadStats &After);

  // --- Data-aware scheduling --------------------------------------
  enum class PlaceResult : uint8_t { Placed, Full, NoWorker };
  /// The single promise-fulfillment funnel: shard members route their
  /// result into their group (stitching on the last one), everything
  /// else counts Completed/Failed and resolves its own promise.
  /// EVERY final resolution of a placed invoke must go through here —
  /// a set_value elsewhere would drop shard results on the floor.
  /// Consumes Inv's promise/group but leaves the struct in place (the
  /// worker loop still reads the batch for its counters).
  void deliver(PendingInvoke &Inv, ExecResult R, bool AsTwin = false);
  /// Shard leg of deliver(): park the result in the group, stitch and
  /// resolve the parent on the last one.
  void finishShard(PendingInvoke &Inv, ExecResult R);
  /// Cost terms' view of one request (kernel identity, source elems,
  /// argument buffer ids/bytes).
  PlacementRequest placementRequestFor(const PendingInvoke &Inv) const;
  /// Cost-model placement across every eligible worker — all pool
  /// device models plus the interpreter peer — per DESIGN.md §13.
  /// \p Spread, when non-null, gang-spreads a shard group: workers
  /// already listed are passed over while an unlisted one is
  /// eligible (siblings only pay off when they run concurrently, so
  /// a queue-cost tie must not pile them onto one worker), and the
  /// chosen worker is appended on success.
  PlaceResult placeCost(PendingInvoke &Inv, const std::string &Hint,
                        std::vector<unsigned> *Spread = nullptr);
  /// Splits a large map across the pool per the shard plan; false
  /// when the request is not shard-eligible (caller places it whole).
  bool trySubmitSharded(PendingInvoke &Inv, const ShardOptions &SO);
  /// DevicePool OnIdle hook: steal one queued request for \p ThiefId
  /// when the cost model approves the move.
  bool tryStealFor(unsigned ThiefId);

  // --- Overload control -------------------------------------------
  /// Takes one token from \p Client's bucket. False — with \p Why set
  /// to the typed message — when the client is over quota.
  bool admitQuota(const std::string &Client, std::string &Why);
  /// Non-"" = the typed deadline-infeasible message: under the
  /// Deadline shed policy, the request's deadline budget cannot cover
  /// the moving (queue wait + compile + launch) estimate.
  std::string shedVerdict(const rt::OffloadConfig &Canon, double DeadlineMs,
                          bool CompileOwed) const;
  /// Resolves the effective deadline budget for a request.
  double deadlineBudgetMs(double RequestMs) const {
    return RequestMs > 0 ? RequestMs : Config.LaunchDeadlineMs;
  }

  // --- Fault tolerance --------------------------------------------
  /// Binds \p Inv to a worker and queues it. Tries the request's own
  /// device model first; on a requeue every other model in the pool
  /// is a candidate too (recompiling through the kernel cache), with
  /// Inv.FailedWorkers excluded. Full only on the non-blocking
  /// (Reject/Deadline) admission path.
  PlaceResult place(PendingInvoke &Inv, bool IsRequeue);
  /// Retry policy for one failed/timed-out request: backoff, then
  /// same-worker retry (first attempt only), then cross-worker
  /// requeue, then interpreter fallback. Consumes \p Inv. Coalesced
  /// twins must be detached first — each retries independently.
  void handleFailure(PendingInvoke Inv, unsigned WorkerId,
                     const std::string &Reason);
  /// Detaches \p Inv's twins and sends it and each twin through
  /// handleFailure independently.
  void failGroup(PendingInvoke Inv, unsigned WorkerId,
                 const std::string &Reason);
  /// Re-places requests drained from a quarantined worker's queue.
  void reroute(std::vector<PendingInvoke> &Drained, unsigned WorkerId);
  /// Last resort: run through the Lime interpreter (under the compile
  /// mutex — it shares the TypeContext), or trap with \p Reason when
  /// fallback is disabled. Consumes \p Inv.
  void fallbackOrFail(PendingInvoke Inv, const std::string &Reason);
  void refreshDeadline(PendingInvoke &Inv) const;

  Program *Prog;
  TypeContext &Types;
  ServiceConfig Config;
  std::string ConfigError;

  KernelCache Cache;
  Scheduler Sched;
  /// Set at the end of construction. Worker threads start inside the
  /// DevicePool constructor and may call the OnIdle (steal) hook
  /// before the Pool member is even assigned; the hook no-ops until
  /// this flips.
  std::atomic<bool> Ready{false};
  /// Serializes every code path that touches GpuCompiler / the shared
  /// TypeContext: cache-miss compiles and first-invoke preparation
  /// (whose constant-capacity fallback can recompile).
  std::mutex CompileMu;

  /// FilterInstances keyed by (kernel identity, execution config) and
  /// then by worker id — each instance's ClContext is pinned to one
  /// worker thread. Address-stable, created on demand, guarded by
  /// InstMu.
  std::mutex InstMu;
  std::map<std::string, std::map<unsigned, std::unique_ptr<FilterInstance>>>
      Instances;

  std::mutex ClassTextMu;
  std::map<const ClassDecl *, std::string> ClassTexts;

  /// One lock for every counter the stats snapshot reports —
  /// aggregates, per-client rows, token buckets, and the cost EWMAs —
  /// so a snapshot can never observe torn totals (e.g. Completed
  /// bumped but Submitted not yet).
  mutable std::mutex StatsMu;
  rt::OffloadStats DeviceStats; // aggregated per-launch deltas
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Failed = 0;
  uint64_t Rejected = 0;
  uint64_t Retried = 0;
  uint64_t TimedOut = 0;
  uint64_t Quarantined = 0;
  uint64_t FellBack = 0;
  uint64_t QuotaRejectedC = 0;
  uint64_t QueueFullRejectedC = 0;
  uint64_t ShedC = 0;
  uint64_t CoalescedC = 0;
  uint64_t ShardedParentsC = 0;
  uint64_t ShardLaunchesC = 0;
  std::map<std::string, ClientStatsSnapshot> PerClient;
  /// Per-client token buckets (guarded by StatsMu; quota state and
  /// quota counters move together).
  struct TokenBucket {
    double Tokens = 0.0;
    std::chrono::steady_clock::time_point Last{};
    bool Primed = false;
  };
  std::map<std::string, TokenBucket> Buckets;
  /// Moving per-request cost estimates feeding shedVerdict (EWMA,
  /// alpha 0.25): device service time per request, and cache-miss
  /// compile+verify time.
  double EwmaLaunchMs = 0.0;
  double EwmaCompileMs = 0.0;

  ClientStatsSnapshot &clientLocked(const std::string &Client);
  void countRejected(const std::string &Client, ServiceRejectKind Kind);
  void countCompleted(const std::string &Client, bool AsTwin = false);
  void countFailed(const std::string &Client);
  void countTimedOut(const std::string &Client);
  void countRetried(const std::string &Client);

  /// Destroyed first on teardown (drains onto still-valid members) —
  /// keep last.
  std::unique_ptr<DevicePool> Pool;
};

/// The concrete FilterInstance: a compiled filter pinned to one
/// device worker. Public so the pool's PendingInvoke can point at it;
/// only the service and the owning worker thread touch the contents.
struct FilterInstance {
  std::unique_ptr<rt::OffloadedFilter> Filter;
  /// Pins the cache entry this instance was built from (the instance
  /// key embeds its address).
  std::shared_ptr<const CompiledKernel> Kernel;
  /// Worker-parameter index of the map source when invocations of
  /// this instance may merge; -1 otherwise.
  int SourceParam = -1;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_OFFLOADSERVICE_H
