//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed cache of compiled kernels for the offload
/// service. A cache key is the hash of everything that determines the
/// GpuCompiler's output for one filter: the lowered (pretty-printed,
/// type-annotated) source of the worker's class, the worker's
/// qualified name, the canonical MemoryConfig, and the target device
/// name. Entries are LRU-evicted, and hit / miss / eviction counters
/// feed the service's stats snapshot.
///
/// Optionally the cache persists generated OpenCL next to a process
/// (one `<hash>.cl` file per kernel): a later `limec` run that
/// compiles the same filter for the same configuration finds its own
/// output on disk, which the DiskHits counter reports. Files are
/// written atomically (temp file + rename, so a crashed writer never
/// leaves a half-written entry visible) and carry a checksummed `v2`
/// header; a load that fails the version, length, or FNV-1a content
/// check discards the file and recompiles as if it never existed. The host-side
/// KernelPlan holds pointers into the current process's AST, so the
/// plan itself is always rebuilt; the disk layer exists to carry the
/// generated source across runs (inspection, warm-start validation)
/// the way a real driver's program-binary cache would.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_KERNELCACHE_H
#define LIMECC_SERVICE_KERNELCACHE_H

#include "compiler/GpuCompiler.h"
#include "runtime/Offload.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace lime::service {

/// Everything that determines a compiled kernel, in canonical string
/// form (hashed for addressing, kept whole to disambiguate hash
/// collisions).
struct KernelKey {
  std::string Canonical;
  uint64_t Hash = 0;

  /// Builds the key for compiling \p Worker under \p Config. \p
  /// Config must already be canonical (rt::canonicalOffloadConfig).
  /// \p ClassText, when given, is the worker class's pre-printed
  /// type-annotated source (callers on a hot path memoize it; the AST
  /// is immutable after Sema, so the text never changes).
  static KernelKey make(const MethodDecl *Worker,
                        const rt::OffloadConfig &Config,
                        const std::string *ClassText = nullptr);
};

/// FNV-1a, the classic content-address hash.
uint64_t fnv1a(const std::string &S);

struct KernelCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// In-memory misses whose generated source was already on disk from
  /// an earlier process run.
  uint64_t DiskHits = 0;
  size_t Entries = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

class KernelCache {
public:
  explicit KernelCache(size_t Capacity = 64) : Capacity(Capacity ? Capacity : 1) {}

  /// Points the cache at a persistence directory (created on demand).
  /// Pass "" to disable. Not thread-safe against concurrent
  /// getOrCompile; call before serving.
  void setDiskDir(std::string Dir);
  const std::string &diskDir() const { return DiskDir; }

  /// Returns the cached kernel for \p Key, or runs \p Compile, caches
  /// its result, and returns it. The compile callback runs under the
  /// cache lock on purpose: GpuCompiler canonicalizes types through
  /// the shared TypeContext, so compilations must be serialized
  /// anyway, and holding the lock also prevents duplicate compiles of
  /// one key racing each other. Failed compilations are negatively
  /// cached (they would fail identically every time). \p WasMiss,
  /// when given, reports whether \p Compile ran (the service's shed
  /// estimator charges a compile only to cache-cold requests).
  std::shared_ptr<const CompiledKernel>
  getOrCompile(const KernelKey &Key,
               const std::function<CompiledKernel()> &Compile,
               bool *WasMiss = nullptr);

  /// The generated source persisted for \p Key by this or an earlier
  /// process, or "" when the disk layer is off / has no entry.
  std::string diskLookup(const KernelKey &Key) const;

  /// The native-artifact slot for \p Key: filter instances created
  /// from one cache entry all receive the same slot, so the program
  /// bundle (bytecode + JIT code) is built by the first worker and
  /// adopted by the rest. Slots are created on demand and dropped
  /// when their kernel entry is evicted.
  std::shared_ptr<rt::SharedProgramSlot> bundleSlot(const KernelKey &Key);

  /// Per-device residency tags: records that pool worker \p WorkerId
  /// holds a live native instance built from this entry, so placement
  /// charges the cold-build cost only where it is real. Tags ride the
  /// entry: eviction (or clear) drops them with the kernel.
  void tagResident(const KernelKey &Key, unsigned WorkerId);
  bool isResident(const KernelKey &Key, unsigned WorkerId) const;

  KernelCacheStats stats() const;
  void clear();

private:
  struct Entry {
    std::string Canonical;
    std::shared_ptr<const CompiledKernel> Kernel;
  };
  using LruList = std::list<std::pair<uint64_t, Entry>>;

  std::string diskPathFor(uint64_t Hash) const;
  void persist(const KernelKey &Key, const CompiledKernel &K);

  mutable std::mutex Mu;
  size_t Capacity;
  LruList Lru; // front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> Index;
  std::unordered_map<uint64_t, std::shared_ptr<rt::SharedProgramSlot>>
      Bundles;
  std::unordered_map<uint64_t, std::vector<unsigned>> Resident;
  KernelCacheStats Stats;
  std::string DiskDir;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_KERNELCACHE_H
