//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload service's device side: one worker thread per simulated
/// device, each with a bounded, multi-tenant work queue. Every client
/// gets its own sub-queue on each worker, served by weighted deficit
/// round robin (DRR) so no tenant can starve another, with earliest-
/// deadline-first ordering inside a client's share. Submission either
/// blocks when the chosen worker is full (backpressure toward the
/// clients, the seed behavior) or reports Full so the service can
/// shed with a typed rejection; dispatch picks the least-loaded
/// worker among those simulating the requested device model.
///
/// Before launching, the worker loop opportunistically (a) merges
/// batch-eligible invocations of the same filter instance into one
/// concatenated launch, and (b) *coalesces* bit-identical invocations
/// — same instance, same arguments, possibly from different clients —
/// onto one launch as "twins" of a batch member, fanned out to every
/// waiting future on completion.
///
/// Each worker also carries a circuit breaker. Consecutive failures
/// (recorded by the executor) past a threshold *quarantine* the
/// worker: dispatch stops selecting it and its queued work is drained
/// back to the service for re-routing onto healthy peers. After a
/// cooldown the worker is eligible again for exactly one *probation*
/// request; success re-admits it, failure re-opens the quarantine.
///
/// The pool itself knows nothing about kernels or marshalling: a task
/// is an opaque FilterInstance pointer plus arguments and a promise,
/// and the executor callback (installed by OffloadService) does the
/// actual device work on the worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_DEVICEPOOL_H
#define LIMECC_SERVICE_DEVICEPOOL_H

#include "lime/interp/Interp.h"
#include "runtime/Offload.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lime::service {

struct FilterInstance; // owned by OffloadService
struct ShardGroup;     // owned by its shard invokes (OffloadService.h)

/// One queued filter invocation, fulfilled on a device worker thread.
struct PendingInvoke {
  FilterInstance *Instance = nullptr;
  /// Serve this invocation through the Lime interpreter (the CPU
  /// peer's queue); Instance is null and the executor routes to the
  /// interpreter instead of a device.
  bool RunOnInterp = false;
  /// Non-null for one shard of a split data-parallel map: the result
  /// routes into the group's stitch buffer (ShardIndex'th slot)
  /// instead of resolving Promise, and the last shard to land
  /// resolves the parent. Shards retry/fall back independently.
  std::shared_ptr<ShardGroup> Group;
  unsigned ShardIndex = 0;
  /// Index of the worker parameter carrying the map source when this
  /// invocation may merge with others of the same instance; -1 when
  /// it must launch alone (reduce kernels, multi-array filters,
  /// batching disabled, retries).
  int SourceParam = -1;
  std::vector<RtValue> Args;
  std::promise<ExecResult> Promise;

  /// Tenant that submitted this request. "" is a valid (anonymous)
  /// client and gets its own fair-queueing share like any other.
  std::string ClientId;
  /// Bit-identical queued invocations (same instance, same argument
  /// bits — possibly from other clients) that coalesced onto this
  /// one's launch. The executor fans the result out to each twin, or
  /// re-resolves each independently on failure; a twin whose deadline
  /// lapsed while the launch was in flight resolves as a typed
  /// timeout without touching its siblings.
  std::vector<PendingInvoke> Twins;

  // Fault-tolerance state, carried so a failed launch can be
  // re-resolved against a different worker (possibly of a different
  // device model, which needs a recompile through the kernel cache).
  MethodDecl *Worker = nullptr;
  rt::OffloadConfig Config;    // canonical config of the original request
  unsigned Attempt = 0;        // launch attempts that have failed so far
  std::vector<unsigned> FailedWorkers; // excluded from re-routing
  /// Absolute per-launch deadline (epoch = none). Enforced by the
  /// worker loop: expired-in-queue requests skip the device, and a
  /// dispatch completing past it counts as timed out.
  std::chrono::steady_clock::time_point Deadline{};
  /// The per-request deadline budget in ms this request was submitted
  /// with (0 = the service-config default); each retry attempt
  /// re-derives a fresh absolute Deadline from it.
  double DeadlineMs = 0.0;

  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }
  bool excluded(unsigned Id) const {
    for (unsigned W : FailedWorkers)
      if (W == Id)
        return true;
    return false;
  }
};

/// Circuit-breaker state of one worker.
enum class BreakerState : uint8_t {
  Closed,    ///< healthy, receiving work
  Open,      ///< quarantined, skipped by dispatch until cooldown
  Probation, ///< cooldown elapsed, serving one trial request
};

const char *breakerStateName(BreakerState S);

/// Circuit-breaker policy shared by every worker in a pool.
struct BreakerConfig {
  /// Consecutive failures that quarantine a worker (0 disables).
  unsigned Threshold = 3;
  /// Quarantine duration before a probation trial is allowed.
  double CooldownMs = 250.0;
};

/// Per-device counters, snapshotted under the worker's queue lock.
struct DeviceStatsSnapshot {
  unsigned Id = 0;
  std::string DeviceName;
  uint64_t Executed = 0;       // requests resolved by this worker's launches
  uint64_t Launches = 0;       // executor calls (a merged batch is one)
  uint64_t BatchedRequests = 0; // requests that rode a merged launch
  uint64_t CoalescedRequests = 0; // requests served as coalesced twins
  size_t QueueDepth = 0;        // queued + in flight right now
  size_t QueueHighWater = 0;    // max queued ever observed
  size_t ActiveClients = 0;     // client sub-queues with work right now
  double SimBusyNs = 0.0;       // simulated device-side time executed
  // Breaker state.
  uint64_t Failures = 0;            // failures recorded against this worker
  unsigned ConsecutiveFailures = 0; // current streak
  uint64_t TimesQuarantined = 0;    // transitions into Open
  BreakerState Breaker = BreakerState::Closed;
};

/// Queue/batch policy shared by every worker in a pool.
struct PoolConfig {
  /// Bound on each worker's queue (queued requests, twins included).
  size_t QueueDepth = 256;
  /// Caps merged launches (1 disables merging).
  unsigned MaxBatch = 8;
  /// Caps how many bit-identical requests collapse onto one launch
  /// (the leader plus CoalesceWindow-1 twins; 1 disables coalescing).
  unsigned CoalesceWindow = 1;
  /// DRR weight per client id (missing = 1.0). A weight-2 client
  /// drains twice as fast as a weight-1 client while both are
  /// backlogged. Immutable once the pool is running.
  std::map<std::string, double> ClientWeights;
  BreakerConfig Breaker;
  /// Work-stealing hook: called by a worker thread that finds its
  /// queue empty (no locks held), with the idle worker's id. Returns
  /// true when it moved work onto that worker's queue. An idle worker
  /// without the hook blocks on its queue as before; with it, the
  /// worker polls the hook between short waits.
  std::function<bool(unsigned)> OnIdle;
};

/// One worker's load as the scheduler sees it: a consistent snapshot
/// taken under the worker's lock (racy across workers, like any load
/// estimate).
struct CandidateLoad {
  unsigned Id = 0;
  std::string DeviceName;
  /// Requests the DRR scheduler would serve before a new arrival from
  /// the snapshot's client, in-flight work included (the same
  /// fairness-aware estimate pickWorker minimizes).
  size_t EffBacklog = 0;
  /// Raw queued requests (steal-victim depth, client-blind).
  size_t Queued = 0;
  /// Quarantined past cooldown: must win placement to be re-admitted.
  bool NeedsProbe = false;
};

class DevicePool {
public:
  /// The executor runs a batch (size >= 1, all same Instance) on the
  /// worker thread and returns the simulated device nanoseconds the
  /// batch consumed. It must fulfil every promise in the batch —
  /// twins included — (directly, or by requeueing / falling back
  /// through the service).
  using Executor =
      std::function<double(std::vector<PendingInvoke> &Batch, unsigned Id)>;

  /// What submitTo did with the request.
  enum class SubmitOutcome : uint8_t {
    Accepted, ///< queued
    Full,     ///< non-blocking submit met a full queue; Inv intact
    Stopping, ///< worker tearing down; Inv intact
  };

  /// Spawns one worker per name in \p DeviceNames (duplicates give a
  /// multi-queue device of that model).
  DevicePool(std::vector<std::string> DeviceNames, PoolConfig Config,
             Executor Exec);

  /// Drains every queue (outstanding work still runs) and joins.
  ~DevicePool();

  DevicePool(const DevicePool &) = delete;
  DevicePool &operator=(const DevicePool &) = delete;

  /// Least-loaded *healthy* worker simulating \p DeviceName, or -1
  /// when every worker of that model is quarantined or excluded.
  /// Creates a worker on first use of a model with no worker at all
  /// (unless \p AddIfMissing is false). A quarantined worker whose
  /// cooldown elapsed may be returned: selecting it moves it to
  /// probation, and no second probation pick happens until the trial
  /// resolves through recordSuccess()/recordFailure().
  /// \p Preferred workers (those already holding a built filter
  /// instance for the request's kernel) win unless they are more
  /// than \p AffinityBias tasks deeper than the least-loaded
  /// candidate — affinity saves a per-worker program build, but not
  /// at the price of an idle device.
  /// With \p ClientId set, "load" means the *effective backlog ahead
  /// of that client* under weighted DRR, not total queue depth — so
  /// instance affinity cannot park a tenant behind another tenant's
  /// burst that fair queueing would serve around. Null keeps the
  /// legacy total-depth comparison.
  int pickWorker(const std::string &DeviceName,
                 const std::vector<unsigned> &Preferred = {},
                 size_t AffinityBias = 4,
                 const std::vector<unsigned> &Exclude = {},
                 bool AddIfMissing = true,
                 const std::string *ClientId = nullptr);

  /// Load snapshot of every dispatchable worker (any model) from
  /// \p ClientId's point of view, minus \p Exclude and stopped or
  /// still-quarantined workers. Workers needing a probation trial are
  /// included with NeedsProbe set. Feeds Scheduler::choose.
  std::vector<CandidateLoad>
  candidates(const std::string &ClientId,
             const std::vector<unsigned> &Exclude = {}) const;

  /// Worker id of some worker simulating \p DeviceName, adding one if
  /// the model has none yet (the scheduler's way to make every
  /// registered model a candidate before any request has run on it).
  unsigned ensureWorker(const std::string &DeviceName);

  /// Admission for a scheduler-pinned pick: re-checks eligibility and
  /// performs the same Open -> Probation flip pickWorker would.
  /// False when the worker stopped or re-entered quarantine since the
  /// candidate snapshot (caller should re-plan).
  bool admitWorker(unsigned Id);

  /// Steals the newest queued request from \p VictimId's deepest
  /// client sub-queue into \p Out, only when at least \p MinDepth
  /// requests are queued there. False (Out untouched) otherwise.
  /// Never steals in-flight work, shard members' twins, or from a
  /// stopping worker.
  bool stealOne(unsigned VictimId, size_t MinDepth, PendingInvoke &Out);

  /// Device-model names with at least one worker, in worker order
  /// (used for cross-model requeue candidates).
  std::vector<std::string> modelNames() const;

  /// Smallest (queued + in flight) among non-quarantined workers of
  /// \p DeviceName; 0 when the model has no worker yet. Feeds the
  /// service's deadline-feasibility estimate.
  size_t loadOf(const std::string &DeviceName) const;

  /// Queues \p Inv on worker \p Id under its client's sub-queue. With
  /// \p Force false and \p Block true, blocks while the queue is full
  /// (client backpressure); with \p Block false a full queue returns
  /// Full immediately so the caller can shed. With \p Force true the
  /// bound is bypassed (internal requeues from worker threads must
  /// never block on each other). \p Inv is left intact on any outcome
  /// but Accepted.
  SubmitOutcome submitTo(unsigned Id, PendingInvoke &Inv, bool Force = false,
                         bool Block = true);

  /// Breaker bookkeeping, called by the executor after each launch.
  /// recordFailure appends the quarantined worker's queued work to
  /// \p Drained (for the service to re-route) and returns true when
  /// this failure transitioned the worker into quarantine.
  void recordSuccess(unsigned Id);
  bool recordFailure(unsigned Id, std::vector<PendingInvoke> &Drained);
  /// A pick that never produced a launch verdict (placement bailed
  /// out, or every queued request expired before the device ran):
  /// releases a pending probation trial so the worker stays
  /// re-admittable instead of wedging in Probation forever.
  void recordSkipped(unsigned Id);

  BreakerState breakerStateOf(unsigned Id) const;
  const std::string &deviceNameOf(unsigned Id) const;
  size_t workerCount() const;

  /// Blocks until every queue is empty and no batch is in flight.
  /// Racy against concurrent submitters; meant for quiesced callers
  /// (benchmarks, tests, end-of-run stats).
  void waitIdle();

  std::vector<DeviceStatsSnapshot> stats() const;

private:
  /// One client's share of a worker's queue. Requests with deadlines
  /// sit in earliest-deadline-first order ahead of deadline-less ones
  /// (which keep FIFO order among themselves).
  struct ClientQueue {
    std::string Client;
    std::deque<PendingInvoke> Q;
    /// DRR deficit: grows by the client's weight per scheduler visit,
    /// pays 1 per dequeued request, resets when the queue empties.
    double Deficit = 0.0;
  };

  struct Worker {
    unsigned Id = 0;
    std::string DeviceName;
    std::thread Thread;

    mutable std::mutex Mu;
    std::condition_variable NotEmpty;
    std::condition_variable NotFull;
    std::condition_variable Idle;
    /// Client sub-queues with work, in round-robin order. Emptied
    /// queues leave the ring (and their deficit) immediately.
    std::list<ClientQueue> Active;
    std::unordered_map<std::string, std::list<ClientQueue>::iterator> ByClient;
    std::list<ClientQueue>::iterator Cursor; // DRR position in Active
    size_t Queued = 0; // total requests across every sub-queue
    size_t InFlight = 0;
    bool Stop = false;

    // Stats, guarded by Mu.
    uint64_t Executed = 0;
    uint64_t Launches = 0;
    uint64_t BatchedRequests = 0;
    uint64_t CoalescedRequests = 0;
    size_t QueueHighWater = 0;
    double SimBusyNs = 0.0;

    // Circuit breaker, guarded by Mu.
    BreakerState Breaker = BreakerState::Closed;
    unsigned ConsecFailures = 0;
    uint64_t Failures = 0;
    uint64_t TimesQuarantined = 0;
    std::chrono::steady_clock::time_point QuarantinedUntil{};
    bool ProbationInFlight = false;
  };

  Worker &addWorkerLocked(const std::string &DeviceName);
  void workerLoop(Worker &W);
  /// Worker eligibility for dispatch under W.Mu; promotes an Open
  /// worker whose cooldown elapsed into a probation candidate.
  bool eligibleLocked(Worker &W,
                      std::chrono::steady_clock::time_point Now) const;
  Worker *workerById(unsigned Id) const;
  double weightOf(const std::string &Client) const;
  /// Requests DRR would serve on \p W before a new arrival from
  /// \p Client (under W.Mu): in-flight work, the client's own queue,
  /// and for every other active client j, min(depth_j, the share
  /// ceil((own_depth + 1) * w_j / w_c) DRR grants j per own-queue
  /// drain). Collapses to Queued + InFlight in the single-client case.
  size_t effBacklogLocked(const Worker &W, const std::string &Client) const;
  /// EDF-inserts \p Inv into its client's sub-queue (under W.Mu).
  void enqueueLocked(Worker &W, PendingInvoke Inv);
  /// Weighted-DRR dequeue of the next request (under W.Mu; Queued>0).
  PendingInvoke popLocked(Worker &W);
  /// Moves queued requests matching \p Match against \p Proto into
  /// \p Out, at most \p Limit, scanning every client sub-queue
  /// (under W.Mu). Used for both batch merging and identical-request
  /// coalescing.
  void collectMatchingLocked(Worker &W, const PendingInvoke &Proto,
                             bool (*Match)(const PendingInvoke &,
                                           const PendingInvoke &),
                             size_t Limit, std::vector<PendingInvoke> &Out);

  PoolConfig Cfg;
  Executor Exec;

  /// Guards the worker list itself; per-worker state is under each
  /// worker's own mutex. Workers are never removed, and the deque
  /// keeps them address-stable, so holding Mu is only needed while
  /// the list may grow.
  mutable std::mutex Mu;
  std::deque<std::unique_ptr<Worker>> Workers;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_DEVICEPOOL_H
