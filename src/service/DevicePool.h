//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload service's device side: one worker thread per simulated
/// device, each with a bounded work queue. Submission blocks when the
/// chosen queue is full (backpressure toward the clients), dispatch
/// picks the least-loaded worker among those simulating the requested
/// device model, and the worker loop opportunistically merges
/// batch-eligible invocations of the same filter instance into one
/// launch before handing them to the service's executor.
///
/// Each worker also carries a circuit breaker. Consecutive failures
/// (recorded by the executor) past a threshold *quarantine* the
/// worker: dispatch stops selecting it and its queued work is drained
/// back to the service for re-routing onto healthy peers. After a
/// cooldown the worker is eligible again for exactly one *probation*
/// request; success re-admits it, failure re-opens the quarantine.
///
/// The pool itself knows nothing about kernels or marshalling: a task
/// is an opaque FilterInstance pointer plus arguments and a promise,
/// and the executor callback (installed by OffloadService) does the
/// actual device work on the worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_DEVICEPOOL_H
#define LIMECC_SERVICE_DEVICEPOOL_H

#include "lime/interp/Interp.h"
#include "runtime/Offload.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lime::service {

struct FilterInstance; // owned by OffloadService

/// One queued filter invocation, fulfilled on a device worker thread.
struct PendingInvoke {
  FilterInstance *Instance = nullptr;
  /// Index of the worker parameter carrying the map source when this
  /// invocation may merge with others of the same instance; -1 when
  /// it must launch alone (reduce kernels, multi-array filters,
  /// batching disabled, retries).
  int SourceParam = -1;
  std::vector<RtValue> Args;
  std::promise<ExecResult> Promise;

  // Fault-tolerance state, carried so a failed launch can be
  // re-resolved against a different worker (possibly of a different
  // device model, which needs a recompile through the kernel cache).
  MethodDecl *Worker = nullptr;
  rt::OffloadConfig Config;    // canonical config of the original request
  unsigned Attempt = 0;        // launch attempts that have failed so far
  std::vector<unsigned> FailedWorkers; // excluded from re-routing
  /// Absolute per-launch deadline (epoch = none). Enforced by the
  /// worker loop: expired-in-queue requests skip the device, and a
  /// dispatch completing past it counts as timed out.
  std::chrono::steady_clock::time_point Deadline{};

  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }
  bool excluded(unsigned Id) const {
    for (unsigned W : FailedWorkers)
      if (W == Id)
        return true;
    return false;
  }
};

/// Circuit-breaker state of one worker.
enum class BreakerState : uint8_t {
  Closed,    ///< healthy, receiving work
  Open,      ///< quarantined, skipped by dispatch until cooldown
  Probation, ///< cooldown elapsed, serving one trial request
};

const char *breakerStateName(BreakerState S);

/// Circuit-breaker policy shared by every worker in a pool.
struct BreakerConfig {
  /// Consecutive failures that quarantine a worker (0 disables).
  unsigned Threshold = 3;
  /// Quarantine duration before a probation trial is allowed.
  double CooldownMs = 250.0;
};

/// Per-device counters, snapshotted under the worker's queue lock.
struct DeviceStatsSnapshot {
  unsigned Id = 0;
  std::string DeviceName;
  uint64_t Executed = 0;       // requests completed
  uint64_t Launches = 0;       // executor calls (a merged batch is one)
  uint64_t BatchedRequests = 0; // requests that rode a merged launch
  size_t QueueDepth = 0;        // queued + in flight right now
  size_t QueueHighWater = 0;    // max queued ever observed
  double SimBusyNs = 0.0;       // simulated device-side time executed
  // Breaker state.
  uint64_t Failures = 0;            // failures recorded against this worker
  unsigned ConsecutiveFailures = 0; // current streak
  uint64_t TimesQuarantined = 0;    // transitions into Open
  BreakerState Breaker = BreakerState::Closed;
};

class DevicePool {
public:
  /// The executor runs a batch (size >= 1, all same Instance) on the
  /// worker thread and returns the simulated device nanoseconds the
  /// batch consumed. It must fulfil every promise in the batch
  /// (directly, or by requeueing / falling back through the service).
  using Executor =
      std::function<double(std::vector<PendingInvoke> &Batch, unsigned Id)>;

  /// Spawns one worker per name in \p DeviceNames (duplicates give a
  /// multi-queue device of that model). \p QueueDepth bounds each
  /// queue; \p MaxBatch caps merged launches (1 disables merging).
  DevicePool(std::vector<std::string> DeviceNames, size_t QueueDepth,
             unsigned MaxBatch, BreakerConfig Breaker, Executor Exec);

  /// Drains every queue (outstanding work still runs) and joins.
  ~DevicePool();

  DevicePool(const DevicePool &) = delete;
  DevicePool &operator=(const DevicePool &) = delete;

  /// Least-loaded *healthy* worker simulating \p DeviceName, or -1
  /// when every worker of that model is quarantined or excluded.
  /// Creates a worker on first use of a model with no worker at all
  /// (unless \p AddIfMissing is false). A quarantined worker whose
  /// cooldown elapsed may be returned: selecting it moves it to
  /// probation, and no second probation pick happens until the trial
  /// resolves through recordSuccess()/recordFailure().
  /// \p Preferred workers (those already holding a built filter
  /// instance for the request's kernel) win unless they are more
  /// than \p AffinityBias tasks deeper than the least-loaded
  /// candidate — affinity saves a per-worker program build, but not
  /// at the price of an idle device.
  int pickWorker(const std::string &DeviceName,
                 const std::vector<unsigned> &Preferred = {},
                 size_t AffinityBias = 4,
                 const std::vector<unsigned> &Exclude = {},
                 bool AddIfMissing = true);

  /// Device-model names with at least one worker, in worker order
  /// (used for cross-model requeue candidates).
  std::vector<std::string> modelNames() const;

  /// Queues \p Inv on worker \p Id. With \p Force false, blocks while
  /// the queue is full (client backpressure); with \p Force true the
  /// bound is bypassed (internal requeues from worker threads must
  /// never block on each other). Returns false — and leaves \p Inv
  /// intact — when the worker is already stopping (teardown).
  bool submitTo(unsigned Id, PendingInvoke &Inv, bool Force = false);

  /// Breaker bookkeeping, called by the executor after each launch.
  /// recordFailure appends the quarantined worker's queued work to
  /// \p Drained (for the service to re-route) and returns true when
  /// this failure transitioned the worker into quarantine.
  void recordSuccess(unsigned Id);
  bool recordFailure(unsigned Id, std::vector<PendingInvoke> &Drained);
  /// A pick that never produced a launch verdict (placement bailed
  /// out, or every queued request expired before the device ran):
  /// releases a pending probation trial so the worker stays
  /// re-admittable instead of wedging in Probation forever.
  void recordSkipped(unsigned Id);

  BreakerState breakerStateOf(unsigned Id) const;
  const std::string &deviceNameOf(unsigned Id) const;
  size_t workerCount() const;

  /// Blocks until every queue is empty and no batch is in flight.
  /// Racy against concurrent submitters; meant for quiesced callers
  /// (benchmarks, tests, end-of-run stats).
  void waitIdle();

  std::vector<DeviceStatsSnapshot> stats() const;

private:
  struct Worker {
    unsigned Id = 0;
    std::string DeviceName;
    std::thread Thread;

    mutable std::mutex Mu;
    std::condition_variable NotEmpty;
    std::condition_variable NotFull;
    std::condition_variable Idle;
    std::deque<PendingInvoke> Queue;
    size_t InFlight = 0;
    bool Stop = false;

    // Stats, guarded by Mu.
    uint64_t Executed = 0;
    uint64_t Launches = 0;
    uint64_t BatchedRequests = 0;
    size_t QueueHighWater = 0;
    double SimBusyNs = 0.0;

    // Circuit breaker, guarded by Mu.
    BreakerState Breaker = BreakerState::Closed;
    unsigned ConsecFailures = 0;
    uint64_t Failures = 0;
    uint64_t TimesQuarantined = 0;
    std::chrono::steady_clock::time_point QuarantinedUntil{};
    bool ProbationInFlight = false;
  };

  Worker &addWorkerLocked(const std::string &DeviceName);
  void workerLoop(Worker &W);
  /// Worker eligibility for dispatch under W.Mu; promotes an Open
  /// worker whose cooldown elapsed into a probation candidate.
  bool eligibleLocked(Worker &W,
                      std::chrono::steady_clock::time_point Now) const;

  size_t QueueDepth;
  unsigned MaxBatch;
  BreakerConfig Breaker;
  Executor Exec;

  /// Guards the worker list itself; per-worker state is under each
  /// worker's own mutex. Workers are never removed, and the deque
  /// keeps them address-stable, so holding Mu is only needed while
  /// the list may grow.
  mutable std::mutex Mu;
  std::deque<std::unique_ptr<Worker>> Workers;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_DEVICEPOOL_H
