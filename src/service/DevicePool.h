//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload service's device side: one worker thread per simulated
/// device, each with a bounded work queue. Submission blocks when the
/// chosen queue is full (backpressure toward the clients), dispatch
/// picks the least-loaded worker among those simulating the requested
/// device model, and the worker loop opportunistically merges
/// batch-eligible invocations of the same filter instance into one
/// launch before handing them to the service's executor.
///
/// The pool itself knows nothing about kernels or marshalling: a task
/// is an opaque FilterInstance pointer plus arguments and a promise,
/// and the executor callback (installed by OffloadService) does the
/// actual device work on the worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_DEVICEPOOL_H
#define LIMECC_SERVICE_DEVICEPOOL_H

#include "lime/interp/Interp.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lime::service {

struct FilterInstance; // owned by OffloadService

/// One queued filter invocation, fulfilled on a device worker thread.
struct PendingInvoke {
  FilterInstance *Instance = nullptr;
  /// Index of the worker parameter carrying the map source when this
  /// invocation may merge with others of the same instance; -1 when
  /// it must launch alone (reduce kernels, multi-array filters,
  /// batching disabled).
  int SourceParam = -1;
  std::vector<RtValue> Args;
  std::promise<ExecResult> Promise;
};

/// Per-device counters, snapshotted under the worker's queue lock.
struct DeviceStatsSnapshot {
  unsigned Id = 0;
  std::string DeviceName;
  uint64_t Executed = 0;       // requests completed
  uint64_t Launches = 0;       // executor calls (a merged batch is one)
  uint64_t BatchedRequests = 0; // requests that rode a merged launch
  size_t QueueDepth = 0;        // queued + in flight right now
  size_t QueueHighWater = 0;    // max queued ever observed
  double SimBusyNs = 0.0;       // simulated device-side time executed
};

class DevicePool {
public:
  /// The executor runs a batch (size >= 1, all same Instance) on the
  /// worker thread and returns the simulated device nanoseconds the
  /// batch consumed. It must fulfil every promise in the batch.
  using Executor =
      std::function<double(std::vector<PendingInvoke> &Batch, unsigned Id)>;

  /// Spawns one worker per name in \p DeviceNames (duplicates give a
  /// multi-queue device of that model). \p QueueDepth bounds each
  /// queue; \p MaxBatch caps merged launches (1 disables merging).
  DevicePool(std::vector<std::string> DeviceNames, size_t QueueDepth,
             unsigned MaxBatch, Executor Exec);

  /// Drains every queue (outstanding work still runs) and joins.
  ~DevicePool();

  DevicePool(const DevicePool &) = delete;
  DevicePool &operator=(const DevicePool &) = delete;

  /// Least-loaded worker simulating \p DeviceName; creates one on
  /// first use of a model that was not in the constructor list.
  /// \p Preferred workers (those already holding a built filter
  /// instance for the request's kernel) win unless they are more
  /// than \p AffinityBias tasks deeper than the least-loaded
  /// candidate — affinity saves a per-worker program build, but not
  /// at the price of an idle device.
  unsigned pickWorker(const std::string &DeviceName,
                      const std::vector<unsigned> &Preferred = {},
                      size_t AffinityBias = 4);

  /// Queues \p Inv on worker \p Id, blocking while its queue is full.
  void submitTo(unsigned Id, PendingInvoke Inv);

  const std::string &deviceNameOf(unsigned Id) const;
  size_t workerCount() const;

  /// Blocks until every queue is empty and no batch is in flight.
  /// Racy against concurrent submitters; meant for quiesced callers
  /// (benchmarks, tests, end-of-run stats).
  void waitIdle();

  std::vector<DeviceStatsSnapshot> stats() const;

private:
  struct Worker {
    unsigned Id = 0;
    std::string DeviceName;
    std::thread Thread;

    mutable std::mutex Mu;
    std::condition_variable NotEmpty;
    std::condition_variable NotFull;
    std::condition_variable Idle;
    std::deque<PendingInvoke> Queue;
    size_t InFlight = 0;
    bool Stop = false;

    // Stats, guarded by Mu.
    uint64_t Executed = 0;
    uint64_t Launches = 0;
    uint64_t BatchedRequests = 0;
    size_t QueueHighWater = 0;
    double SimBusyNs = 0.0;
  };

  Worker &addWorkerLocked(const std::string &DeviceName);
  void workerLoop(Worker &W);

  size_t QueueDepth;
  unsigned MaxBatch;
  Executor Exec;

  /// Guards the worker list itself; per-worker state is under each
  /// worker's own mutex. Workers are never removed, and the deque
  /// keeps them address-stable, so holding Mu is only needed while
  /// the list may grow.
  mutable std::mutex Mu;
  std::deque<std::unique_ptr<Worker>> Workers;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_DEVICEPOOL_H
