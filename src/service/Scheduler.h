//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-aware placement layer between OffloadService::submit and
/// the DevicePool (StarPU-style heterogeneous scheduling, see
/// DESIGN.md §13). Every eligible worker — all registered GPU device
/// models plus the CPU interpreter as a first-class peer device — is
/// scored as
///
///   estimated compute   (per-device prior, refined by an observed
///                        EWMA per kernel x device model)
/// + transfer cost       (the paper's Fig. 9 communication model,
///                        applied to argument bytes NOT already
///                        resident on that worker)
/// + queue wait          (effective per-client backlog x the worker's
///                        observed per-request service time)
///
/// and the cheapest candidate wins. Residency per (buffer-id x
/// worker) lives in the ResidencyMap, fed by the service after each
/// successful launch, so repeated launches over the same frozen
/// arrays prefer the device that already holds them. The same
/// cost terms answer the work-stealing question (steal only when
/// compute_gain > transfer_cost) and size the shard plan for
/// splitting one large data-parallel map across several devices.
///
/// The scheduler holds no pool or service references: callers pass
/// plain candidate/request structs, which is what makes the cost
/// model mockable in unit tests (CostHooks).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_SCHEDULER_H
#define LIMECC_SERVICE_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lime::service {

/// How the service places a submitted request.
enum class SchedulerPolicy : uint8_t {
  LeastLoaded, ///< pre-scheduler behavior: least-loaded worker of the
               ///< request's own device model (the default)
  CostModel,   ///< cost-model placement across every eligible worker
  Shard,       ///< CostModel, plus large maps split across devices
};

const char *schedulerPolicyName(SchedulerPolicy P);
/// Parses "least-loaded" | "cost" | "shard"; false on anything else.
bool parseSchedulerPolicy(const std::string &Text, SchedulerPolicy &Out);

/// Shard-policy knobs (SchedulerPolicy::Shard).
struct ShardOptions {
  /// Upper bound on shards per request; 0 = one per pool worker.
  unsigned MaxShards = 0;
  /// Minimum source elements per shard — below 2x this, a request
  /// launches whole (splitting tiny maps only adds launch overhead).
  size_t MinShardElems = 1024;
  /// Halo exchange for stencil-shaped filters: the worker-parameter
  /// index of the bound data array that the kernel indexes at
  /// source-element positions, and the declared access radius around
  /// each position. -1 = no halo argument (plain map). The radius is
  /// trusted like an --assume fact; an understated radius makes a
  /// shard's window too small, which the VM's bounds checks trap
  /// loudly (never a silently wrong result — see DESIGN.md §13).
  int HaloParam = -1;
  unsigned HaloRadius = 0;
};

/// The consolidated per-request submit surface. PR-3/8 accreted
/// ClientId/DeadlineMs directly onto OffloadRequest; new code sets
/// this struct instead (the old fields remain as a one-release
/// deprecation shim).
struct SubmitOptions {
  /// Tenant identity for quotas, fair queueing, and per-client stats.
  /// "" is a valid anonymous client with its own share.
  std::string ClientId;
  /// Per-request deadline budget in ms; 0 uses the service config's
  /// LaunchDeadlineMs.
  double DeadlineMs = 0.0;
  /// Placement policy for this request; unset inherits the service
  /// config's default.
  SchedulerPolicy Policy = SchedulerPolicy::LeastLoaded;
  bool PolicySet = false;
  /// Non-"" restricts cost-model placement to workers of this device
  /// model when any is eligible (falls back to all candidates when
  /// none is).
  std::string PlacementHint;
  /// Shard plan for this request; fields at defaults inherit the
  /// service config's.
  ShardOptions Shard;

  SubmitOptions &withPolicy(SchedulerPolicy P) {
    Policy = P;
    PolicySet = true;
    return *this;
  }
};

/// Cost-model constants. Transfer prices are the paper's Fig. 9
/// communication model (ClContext's PCIe parameters); compute priors
/// are roofline-flavored fallbacks used until the per-(kernel x
/// device) EWMA has observations.
struct CostModelParams {
  double PciBandwidthGBs = 6.0; // PCIe 2.0 x16 effective (Fig. 9)
  double PciLatencyNs = 4000.0;
  double ApiCallOverheadNs = 2500.0;
  /// CPU-kind OpenCL devices share host memory (Fig. 9(a)): transfer
  /// is a cache-speed copy, no PCIe latency.
  double CpuCopyGBs = 12.0;
  /// The interpreter peer reads host values in place: no transfer.
  /// Its compute prior, per source element, until the EWMA learns.
  double InterpNsPerElem = 25000.0;
  /// Prior FP ops per source element for the device compute prior
  /// (elems x OpsPerElem / (SMs x lanes x clock)).
  double OpsPerElemPrior = 16.0;
  /// Charge for a worker that has not yet built this kernel's program
  /// (per-worker OpenCL build + JIT adoption).
  double ColdBuildNs = 2.0e6;
  /// EWMA smoothing for observed compute / service times.
  double Alpha = 0.25;
  /// Residency entries tracked per worker (mirrors the filter-level
  /// per-slot cap; an over-estimate only mispredicts cost, never
  /// correctness).
  size_t ResidencyCap = 32;
};

/// Test seam: injectable cost terms. When set, they replace the
/// corresponding model term so unit tests can shape placement and
/// steal decisions exactly.
struct CostHooks {
  /// (kernel id, device model, source elems) -> estimated compute ns.
  std::function<double(const std::string &, const std::string &, uint64_t)>
      ComputeNs;
  /// (device model, non-resident bytes) -> estimated transfer ns.
  std::function<double(const std::string &, uint64_t)> TransferNs;
};

/// The device model name the CPU-interpreter peer worker runs under.
/// Not a registry device: the pool hosts it like any worker, but the
/// service executes its queue through the Lime interpreter.
inline const char *interpDeviceName() { return "interp"; }

/// One worker the scheduler may place on. Built by the service from
/// the pool's candidate snapshot.
struct WorkerCandidate {
  unsigned Id = 0;
  std::string Device; ///< model name, or interpDeviceName()
  /// Effective backlog ahead of the submitting client on this worker
  /// (DRR-aware, see DevicePool::candidates), plus in-flight work.
  size_t Backlog = 0;
  /// Worker already built this kernel's program (no cold-build owed).
  bool HasInstance = false;
  /// Quarantined worker past its cooldown: the pool's probation
  /// contract says it must win the pick so it can be re-admitted.
  bool NeedsProbe = false;
  bool IsInterp = false;
};

/// Everything about one request the cost terms need.
struct PlacementRequest {
  /// Stable kernel identity for the EWMA tables (the service passes
  /// the worker method's qualified name).
  std::string KernelId;
  /// Source elements driving the NDRange (0 when unknown).
  uint64_t Elems = 0;
  /// Argument arrays as (stable buffer id, wire bytes); id 0 means
  /// no identity — always charged as a transfer.
  std::vector<std::pair<uint64_t, uint64_t>> ArgBuffers;
};

struct PlacementDecision {
  int Index = -1; ///< into the candidate vector; -1 = none eligible
  double CostNs = 0.0;
  double ComputeNs = 0.0;
  double TransferNs = 0.0;
  double QueueNs = 0.0;
};

class Scheduler {
public:
  explicit Scheduler(CostModelParams Params = CostModelParams(),
                     CostHooks Hooks = CostHooks());

  const CostModelParams &params() const { return Params; }

  /// Scores every candidate and returns the cheapest (probation
  /// candidates win unconditionally, preserving the pool's breaker
  /// re-admission contract). Index -1 when Cands is empty.
  PlacementDecision choose(const PlacementRequest &Req,
                           const std::vector<WorkerCandidate> &Cands) const;

  /// The steal verdict for moving \p Req (queued on \p Victim behind
  /// \p QueueAhead requests) onto idle \p Thief: steal only when the
  /// compute+wait saved exceeds the transfer the move costs, i.e.
  ///   (queue wait on victim + compute on victim) - compute on thief
  ///     > transfer to thief (non-resident bytes only).
  /// \p GainNs, when given, receives the margin (positive = steal).
  bool shouldSteal(const PlacementRequest &Req, const WorkerCandidate &Victim,
                   size_t QueueAhead, const WorkerCandidate &Thief,
                   double *GainNs = nullptr) const;

  /// Feeds the per-(kernel x device) compute EWMA and the per-worker
  /// service-time EWMA with one observed launch: \p SimNs of device
  /// (or interpreter) time over \p Elems source elements.
  void noteExecution(const std::string &KernelId, const std::string &Device,
                     unsigned WorkerId, uint64_t Elems, double SimNs);

  /// Records that \p WorkerId now holds a device copy of the array
  /// identified by \p BufferId (\p Bytes wire bytes), LRU-bounded by
  /// CostModelParams::ResidencyCap.
  void noteResident(unsigned WorkerId, uint64_t BufferId, uint64_t Bytes);

  /// Forgets one worker's residency (its filter instances were torn
  /// down, or the worker was quarantined and its queue drained).
  void dropResidency(unsigned WorkerId);

  /// Bytes of \p Req's arguments NOT resident on \p WorkerId (what a
  /// launch there would have to move).
  uint64_t nonResidentBytes(const PlacementRequest &Req,
                            unsigned WorkerId) const;

  /// The compute term for \p Req on \p Device: the observed EWMA when
  /// present, else the model prior (roofline for registry devices,
  /// InterpNsPerElem for the interpreter peer).
  double computeNs(const PlacementRequest &Req,
                   const std::string &Device) const;

  /// The Fig. 9 transfer term for moving \p Bytes to \p Device.
  double transferNs(const std::string &Device, uint64_t Bytes) const;

  /// Splits \p N source elements into \p ShardCount contiguous
  /// [begin, end) ranges, first ranges one element longer when N does
  /// not divide evenly. Deterministic — the stitch order contract.
  static std::vector<std::pair<size_t, size_t>> shardRanges(size_t N,
                                                            unsigned ShardCount);

  /// Counters for the stats schema.
  struct Counters {
    uint64_t CostPlaced = 0;   ///< requests placed by the cost model
    uint64_t InterpPlaced = 0; ///< of those, onto the interpreter peer
    uint64_t Steals = 0;
    uint64_t StealRefusals = 0; ///< transfer dominated; left on victim
  };
  Counters counters() const;
  void countCostPlaced(bool OnInterp);
  void countSteal(bool Refused);

private:
  double queueNs(const WorkerCandidate &W) const;

  CostModelParams Params;
  CostHooks Hooks;

  mutable std::mutex Mu;
  /// (kernel id, device model) -> EWMA of sim ns per source element.
  std::map<std::pair<std::string, std::string>, double> ComputeEwma;
  /// worker id -> EWMA of sim ns per launch (the queue-wait unit).
  std::map<unsigned, double> ServiceEwma;
  /// worker id -> LRU list of (buffer id -> bytes).
  struct ResidentEntry {
    uint64_t Bytes = 0;
    uint64_t Tick = 0;
  };
  std::map<unsigned, std::map<uint64_t, ResidentEntry>> Residency;
  uint64_t Tick = 0;
  Counters Stats;
};

} // namespace lime::service

#endif // LIMECC_SERVICE_SCHEDULER_H
