//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/StatsJson.h"

#include "service/OffloadService.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace lime::service {

namespace {

/// Minimal JSON string escaping: the only strings we emit are device
/// models, client ids, and enum names, but a client id is caller
/// input and may contain anything.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Emits `"key": value` pairs with bookkeeping for the separating
/// comma, so adding a field to a section is a one-line change.
class ObjectWriter {
public:
  ObjectWriter(std::ostringstream &OS, int Indent) : OS(OS), Indent(Indent) {}

  void field(const char *Key, uint64_t V) { prefix(Key) << V; }
  void field(const char *Key, double V) { prefix(Key) << V; }
  void field(const char *Key, const std::string &V) {
    prefix(Key) << '"' << jsonEscape(V) << '"';
  }
  /// Starts a nested value (object or array) the caller writes itself.
  std::ostringstream &raw(const char *Key) { return prefix(Key); }

private:
  std::ostringstream &prefix(const char *Key) {
    if (!First)
      OS << ',';
    First = false;
    OS << '\n';
    for (int I = 0; I != Indent; ++I)
      OS << ' ';
    OS << '"' << Key << "\": ";
    return OS;
  }

  std::ostringstream &OS;
  int Indent;
  bool First = true;
};

} // namespace

std::string renderServiceStatsJson(const OffloadServiceStats &S) {
  std::ostringstream OS;
  OS.precision(17); // doubles round-trip
  OS << '{';
  ObjectWriter Top(OS, 2);
  Top.field("schema", std::string("limec-service-stats-v1"));

  Top.raw("aggregate") << '{';
  {
    ObjectWriter A(OS, 4);
    A.field("submitted", S.Submitted);
    A.field("completed", S.Completed);
    A.field("failed", S.Failed);
    A.field("rejected", S.Rejected);
    A.field("retried", S.Retried);
    A.field("timed_out", S.TimedOut);
    A.field("quarantined", S.Quarantined);
    A.field("fell_back", S.FellBack);
    A.field("quota_rejected", S.QuotaRejected);
    A.field("queue_full_rejected", S.QueueFullRejected);
    A.field("shed", S.Shed);
    A.field("coalesced", S.Coalesced);
    A.field("launches", S.launches());
    A.field("batched_requests", S.batchedRequests());
    A.field("coalesced_requests", S.coalescedRequests());
  }
  OS << "\n  }";

  Top.raw("scheduler") << '{';
  {
    ObjectWriter Sc(OS, 4);
    Sc.field("policy", std::string(schedulerPolicyName(S.Policy)));
    Sc.field("cost_placed", S.Sched.CostPlaced);
    Sc.field("interp_placed", S.Sched.InterpPlaced);
    Sc.field("steals", S.Sched.Steals);
    Sc.field("steal_refusals", S.Sched.StealRefusals);
    Sc.field("sharded_parents", S.ShardedParents);
    Sc.field("shard_launches", S.ShardLaunches);
    Sc.field("resident_hits", S.Device.ResidentHits);
    Sc.field("resident_bytes_skipped", S.Device.ResidentBytesSkipped);
  }
  OS << "\n  }";

  Top.raw("cache") << '{';
  {
    ObjectWriter C(OS, 4);
    C.field("hits", S.Cache.Hits);
    C.field("misses", S.Cache.Misses);
    C.field("evictions", S.Cache.Evictions);
    C.field("disk_hits", S.Cache.DiskHits);
    C.field("entries", static_cast<uint64_t>(S.Cache.Entries));
    C.field("hit_rate", S.Cache.hitRate());
  }
  OS << "\n  }";

  Top.raw("device_time") << '{';
  {
    ObjectWriter D(OS, 4);
    D.field("marshal_java_ns", S.Device.Marshal.JavaNs);
    D.field("marshal_native_ns", S.Device.Marshal.NativeNs);
    D.field("marshal_bytes", S.Device.Marshal.Bytes);
    D.field("api_ns", S.Device.ApiNs);
    D.field("pcie_ns", S.Device.PcieNs);
    D.field("kernel_ns", S.Device.KernelNs);
    D.field("comm_ns", S.Device.commNs());
    D.field("total_ns", S.Device.totalNs());
    D.field("invocations", S.Device.Invocations);
  }
  OS << "\n  }";

  Top.raw("workers") << '[';
  for (size_t I = 0; I != S.Devices.size(); ++I) {
    const DeviceStatsSnapshot &W = S.Devices[I];
    OS << (I ? ",\n    {" : "\n    {");
    ObjectWriter R(OS, 6);
    R.field("id", static_cast<uint64_t>(W.Id));
    R.field("device", W.DeviceName);
    R.field("executed", W.Executed);
    R.field("launches", W.Launches);
    R.field("batched_requests", W.BatchedRequests);
    R.field("coalesced_requests", W.CoalescedRequests);
    R.field("queue_depth", static_cast<uint64_t>(W.QueueDepth));
    R.field("queue_high_water", static_cast<uint64_t>(W.QueueHighWater));
    R.field("active_clients", static_cast<uint64_t>(W.ActiveClients));
    R.field("sim_busy_ns", W.SimBusyNs);
    R.field("failures", W.Failures);
    R.field("consecutive_failures",
            static_cast<uint64_t>(W.ConsecutiveFailures));
    R.field("times_quarantined", W.TimesQuarantined);
    R.field("breaker", std::string(breakerStateName(W.Breaker)));
    OS << "\n    }";
  }
  OS << (S.Devices.empty() ? "]" : "\n  ]");

  Top.raw("clients") << '[';
  for (size_t I = 0; I != S.Clients.size(); ++I) {
    const ClientStatsSnapshot &C = S.Clients[I];
    OS << (I ? ",\n    {" : "\n    {");
    ObjectWriter R(OS, 6);
    R.field("client", C.Client);
    R.field("submitted", C.Submitted);
    R.field("completed", C.Completed);
    R.field("failed", C.Failed);
    R.field("rejected", C.Rejected);
    R.field("quota_rejected", C.QuotaRejected);
    R.field("queue_full_rejected", C.QueueFullRejected);
    R.field("shed", C.Shed);
    R.field("timed_out", C.TimedOut);
    R.field("coalesced", C.Coalesced);
    R.field("retried", C.Retried);
    R.field("fell_back", C.FellBack);
    OS << "\n    }";
  }
  OS << (S.Clients.empty() ? "]" : "\n  ]");

  OS << "\n}\n";
  return OS.str();
}

} // namespace lime::service
