//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable rendering of an OffloadServiceStats snapshot.
///
/// The output is a single JSON object carrying a `schema` marker
/// ("limec-service-stats-v1"). The schema is a compatibility contract:
/// keys are only ever added, never renamed or removed, within one
/// version — CI golden-diffs the key set against
/// tests/golden/service-stats-keys.txt so an accidental rename fails
/// the build instead of silently breaking downstream scrapers.
/// Values are intentionally NOT golden-diffed (timings and queue
/// depths vary run to run); only the shape is pinned.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SERVICE_STATSJSON_H
#define LIMECC_SERVICE_STATSJSON_H

#include <string>

namespace lime::service {

struct OffloadServiceStats;

/// Renders \p S as a `limec-service-stats-v1` JSON document
/// (pretty-printed, trailing newline), suitable for
/// `limec --stats-format=json`.
std::string renderServiceStatsJson(const OffloadServiceStats &S);

} // namespace lime::service

#endif // LIMECC_SERVICE_STATSJSON_H
