//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/Scheduler.h"

#include "ocl/DeviceModel.h"

#include <algorithm>
#include <cassert>

using namespace lime;
using namespace lime::service;

const char *lime::service::schedulerPolicyName(SchedulerPolicy P) {
  switch (P) {
  case SchedulerPolicy::LeastLoaded:
    return "least-loaded";
  case SchedulerPolicy::CostModel:
    return "cost";
  case SchedulerPolicy::Shard:
    return "shard";
  }
  return "?";
}

bool lime::service::parseSchedulerPolicy(const std::string &Text,
                                         SchedulerPolicy &Out) {
  if (Text == "least-loaded") {
    Out = SchedulerPolicy::LeastLoaded;
    return true;
  }
  if (Text == "cost") {
    Out = SchedulerPolicy::CostModel;
    return true;
  }
  if (Text == "shard") {
    Out = SchedulerPolicy::Shard;
    return true;
  }
  return false;
}

Scheduler::Scheduler(CostModelParams Params, CostHooks Hooks)
    : Params(Params), Hooks(std::move(Hooks)) {}

double Scheduler::transferNs(const std::string &Device,
                             uint64_t Bytes) const {
  if (Hooks.TransferNs)
    return Hooks.TransferNs(Device, Bytes);
  if (!Bytes)
    return 0.0;
  if (Device == interpDeviceName())
    return 0.0; // the interpreter reads host values in place
  const ocl::DeviceModel &M = ocl::deviceByName(Device);
  if (M.Kind == ocl::DeviceKind::Cpu)
    // Fig. 9(a): a CPU OpenCL device shares host memory; "transfer"
    // is a cache-speed copy with no bus latency.
    return static_cast<double>(Bytes) / Params.CpuCopyGBs;
  return Params.PciLatencyNs + Params.ApiCallOverheadNs +
         static_cast<double>(Bytes) / Params.PciBandwidthGBs;
}

double Scheduler::computeNs(const PlacementRequest &Req,
                            const std::string &Device) const {
  if (Hooks.ComputeNs)
    return Hooks.ComputeNs(Req.KernelId, Device, Req.Elems);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ComputeEwma.find({Req.KernelId, Device});
    if (It != ComputeEwma.end())
      return It->second * static_cast<double>(Req.Elems ? Req.Elems : 1);
  }
  double Elems = static_cast<double>(Req.Elems ? Req.Elems : 1);
  if (Device == interpDeviceName())
    return Elems * Params.InterpNsPerElem;
  // Roofline-flavored prior: assume OpsPerElemPrior FP ops per source
  // element over the device's peak SP throughput. Crude, but it only
  // has to rank devices until the first observation lands in the EWMA.
  const ocl::DeviceModel &M = ocl::deviceByName(Device);
  double LanesGHz = static_cast<double>(M.NumSMs) *
                    static_cast<double>(M.FpUnitsPerSM) * M.ClockGHz *
                    (M.Kind == ocl::DeviceKind::Cpu ? M.SmtFactor : 1.0);
  if (LanesGHz <= 0.0)
    LanesGHz = 1.0;
  return Elems * Params.OpsPerElemPrior / LanesGHz;
}

double Scheduler::queueNs(const WorkerCandidate &W) const {
  if (!W.Backlog)
    return 0.0;
  double PerLaunch;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ServiceEwma.find(W.Id);
    PerLaunch = It == ServiceEwma.end() ? 0.0 : It->second;
  }
  if (PerLaunch <= 0.0)
    // No history: charge one API call per queued request so a deep
    // queue still loses ties against an idle worker.
    PerLaunch = Params.ApiCallOverheadNs;
  return PerLaunch * static_cast<double>(W.Backlog);
}

uint64_t Scheduler::nonResidentBytes(const PlacementRequest &Req,
                                     unsigned WorkerId) const {
  uint64_t Bytes = 0;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Residency.find(WorkerId);
  for (const auto &[Id, Sz] : Req.ArgBuffers) {
    if (Id && It != Residency.end() &&
        It->second.find(Id) != It->second.end())
      continue;
    Bytes += Sz;
  }
  return Bytes;
}

PlacementDecision
Scheduler::choose(const PlacementRequest &Req,
                  const std::vector<WorkerCandidate> &Cands) const {
  PlacementDecision Best;
  for (size_t I = 0; I != Cands.size(); ++I) {
    const WorkerCandidate &W = Cands[I];
    if (W.NeedsProbe) {
      // Probation overrides cost: a quarantined worker past its
      // cooldown can only be re-admitted by receiving a trial.
      Best.Index = static_cast<int>(I);
      Best.ComputeNs = computeNs(Req, W.Device);
      Best.TransferNs =
          transferNs(W.Device, nonResidentBytes(Req, W.Id));
      Best.QueueNs = queueNs(W);
      Best.CostNs = Best.ComputeNs + Best.TransferNs + Best.QueueNs;
      return Best;
    }
    double Compute = computeNs(Req, W.Device);
    double Transfer = transferNs(W.Device, nonResidentBytes(Req, W.Id));
    double Queue = queueNs(W);
    double Cost = Compute + Transfer + Queue;
    if (!W.HasInstance && !W.IsInterp)
      Cost += Params.ColdBuildNs;
    if (Best.Index < 0 || Cost < Best.CostNs) {
      Best.Index = static_cast<int>(I);
      Best.CostNs = Cost;
      Best.ComputeNs = Compute;
      Best.TransferNs = Transfer;
      Best.QueueNs = Queue;
    }
  }
  return Best;
}

bool Scheduler::shouldSteal(const PlacementRequest &Req,
                            const WorkerCandidate &Victim, size_t QueueAhead,
                            const WorkerCandidate &Thief,
                            double *GainNs) const {
  WorkerCandidate V = Victim;
  V.Backlog = QueueAhead;
  double StayNs = queueNs(V) + computeNs(Req, Victim.Device);
  double MoveComputeNs = computeNs(Req, Thief.Device);
  double MoveTransferNs =
      transferNs(Thief.Device, nonResidentBytes(Req, Thief.Id));
  if (!Thief.HasInstance && !Thief.IsInterp)
    MoveTransferNs += Params.ColdBuildNs;
  double Gain = (StayNs - MoveComputeNs) - MoveTransferNs;
  if (GainNs)
    *GainNs = Gain;
  return Gain > 0.0;
}

void Scheduler::noteExecution(const std::string &KernelId,
                              const std::string &Device, unsigned WorkerId,
                              uint64_t Elems, double SimNs) {
  if (SimNs < 0.0)
    return;
  double PerElem = SimNs / static_cast<double>(Elems ? Elems : 1);
  std::lock_guard<std::mutex> Lock(Mu);
  double &E = ComputeEwma[{KernelId, Device}];
  E = E <= 0.0 ? PerElem : (1.0 - Params.Alpha) * E + Params.Alpha * PerElem;
  double &S = ServiceEwma[WorkerId];
  S = S <= 0.0 ? SimNs : (1.0 - Params.Alpha) * S + Params.Alpha * SimNs;
}

void Scheduler::noteResident(unsigned WorkerId, uint64_t BufferId,
                             uint64_t Bytes) {
  if (!BufferId)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Map = Residency[WorkerId];
  ResidentEntry &E = Map[BufferId];
  E.Bytes = Bytes;
  E.Tick = ++Tick;
  while (Map.size() > Params.ResidencyCap) {
    auto Victim = Map.begin();
    for (auto It = Map.begin(); It != Map.end(); ++It)
      if (It->second.Tick < Victim->second.Tick)
        Victim = It;
    Map.erase(Victim);
  }
}

void Scheduler::dropResidency(unsigned WorkerId) {
  std::lock_guard<std::mutex> Lock(Mu);
  Residency.erase(WorkerId);
}

std::vector<std::pair<size_t, size_t>>
Scheduler::shardRanges(size_t N, unsigned ShardCount) {
  std::vector<std::pair<size_t, size_t>> Ranges;
  if (!ShardCount)
    return Ranges;
  size_t K = std::min<size_t>(ShardCount, N ? N : 1);
  size_t Base = N / K, Extra = N % K;
  size_t At = 0;
  for (size_t I = 0; I != K; ++I) {
    size_t Len = Base + (I < Extra ? 1 : 0);
    Ranges.emplace_back(At, At + Len);
    At += Len;
  }
  assert(At == N && "shard ranges must cover the index space");
  return Ranges;
}

Scheduler::Counters Scheduler::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

void Scheduler::countCostPlaced(bool OnInterp) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.CostPlaced;
  if (OnInterp)
    ++Stats.InterpPlaced;
}

void Scheduler::countSteal(bool Refused) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Refused)
    ++Stats.StealRefusals;
  else
    ++Stats.Steals;
}
