//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/OffloadService.h"

#include "analysis/AnalysisOracle.h"
#include "analysis/Verification.h"
#include "lime/ast/ASTPrinter.h"
#include "ocl/DeviceModel.h"
#include "runtime/Serializer.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

using namespace lime;
using namespace lime::service;

static bool knownDevice(const std::string &Name) {
  for (const ocl::DeviceModel &D : ocl::deviceRegistry())
    if (D.Name == Name)
      return true;
  return false;
}

static ExecResult trapped(std::string Msg) {
  ExecResult R;
  R.Trapped = true;
  R.TrapMessage = std::move(Msg);
  return R;
}

/// A result copy safe to hand to a second future: the top-level array
/// (if any) is duplicated so coalesced clients never share a mutable
/// buffer.
static ExecResult copyResult(const ExecResult &R) {
  ExecResult C = R;
  if (C.Value.isArray() && C.Value.array())
    C.Value = RtValue::makeArray(std::make_shared<RtArray>(*C.Value.array()));
  return C;
}

static double elapsedMs(std::chrono::steady_clock::time_point Since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Since)
      .count();
}

const char *lime::service::serviceRejectKindName(ServiceRejectKind K) {
  switch (K) {
  case ServiceRejectKind::None:
    return "none";
  case ServiceRejectKind::QueueFull:
    return "queue-full";
  case ServiceRejectKind::QuotaExceeded:
    return "quota-exceeded";
  case ServiceRejectKind::DeadlineInfeasible:
    return "deadline-infeasible";
  case ServiceRejectKind::TimedOut:
    return "timed-out";
  }
  return "?";
}

ServiceRejectKind lime::service::classifyServiceError(const ExecResult &R) {
  if (!R.Trapped)
    return ServiceRejectKind::None;
  const std::string &M = R.TrapMessage;
  if (M.find("rejected[queue-full]") != std::string::npos)
    return ServiceRejectKind::QueueFull;
  if (M.find("rejected[quota-exceeded]") != std::string::npos)
    return ServiceRejectKind::QuotaExceeded;
  if (M.find("rejected[deadline-infeasible]") != std::string::npos)
    return ServiceRejectKind::DeadlineInfeasible;
  if (M.find("timed-out[") != std::string::npos)
    return ServiceRejectKind::TimedOut;
  return ServiceRejectKind::None;
}

OffloadService::OffloadService(Program *P, TypeContext &Types,
                               ServiceConfig Config)
    : Prog(P), Types(Types), Config(std::move(Config)),
      Cache(this->Config.CacheCapacity),
      Sched(this->Config.Cost, this->Config.Hooks) {
  Cache.setDiskDir(this->Config.DiskCacheDir);
  // Unknown model names would abort deep in the device layer. Reject
  // the whole configuration here, with the registry's names in the
  // message, instead of silently dropping entries: a misspelled
  // device list is an operator error, not a scheduling preference.
  std::vector<std::string> Names;
  for (const std::string &N : this->Config.Devices) {
    if (knownDevice(N)) {
      Names.push_back(N);
      continue;
    }
    std::ostringstream E;
    E << "offload service: unknown device model '" << N
      << "' in ServiceConfig.Devices (known:";
    for (const ocl::DeviceModel &D : ocl::deviceRegistry())
      E << ' ' << D.Name;
    E << ')';
    ConfigError = E.str();
    break;
  }
  if (Names.empty())
    Names.push_back("gtx580");
  // The interpreter peer is a pool worker like any other; its queue
  // just executes through the Lime interpreter instead of a device.
  // Added after registry validation — "interp" is not a device model.
  if (this->Config.CpuPeer)
    Names.push_back(interpDeviceName());
  PoolConfig PC;
  PC.QueueDepth = this->Config.QueueDepth;
  PC.MaxBatch = this->Config.EnableBatching ? this->Config.MaxBatch : 1;
  PC.CoalesceWindow = this->Config.CoalesceWindow;
  for (const auto &[Name, Policy] : this->Config.Clients)
    PC.ClientWeights[Name] = Policy.Weight;
  PC.Breaker.Threshold = this->Config.BreakerThreshold;
  PC.Breaker.CooldownMs = this->Config.BreakerCooldownMs;
  if (this->Config.WorkStealing &&
      this->Config.Policy != SchedulerPolicy::LeastLoaded)
    PC.OnIdle = [this](unsigned Id) { return tryStealFor(Id); };
  Pool = std::make_unique<DevicePool>(
      std::move(Names), std::move(PC),
      [this](std::vector<PendingInvoke> &Batch, unsigned Id) {
        return execute(Batch, Id);
      });
  // Worker threads are already running inside the DevicePool
  // constructor, so an idle worker can call the OnIdle hook before
  // make_unique's result is assigned to Pool. The hook spins on this
  // flag instead of touching a half-constructed service.
  Ready.store(true, std::memory_order_release);
}

OffloadService::~OffloadService() {
  // Drain the workers while every member they touch is still alive.
  Pool.reset();
}

ClientStatsSnapshot &OffloadService::clientLocked(const std::string &Client) {
  auto It = PerClient.find(Client);
  if (It == PerClient.end()) {
    It = PerClient.emplace(Client, ClientStatsSnapshot()).first;
    It->second.Client = Client;
  }
  return It->second;
}

void OffloadService::countRejected(const std::string &Client,
                                   ServiceRejectKind Kind) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Rejected;
  ClientStatsSnapshot &C = clientLocked(Client);
  ++C.Rejected;
  switch (Kind) {
  case ServiceRejectKind::QuotaExceeded:
    ++QuotaRejectedC;
    ++C.QuotaRejected;
    break;
  case ServiceRejectKind::QueueFull:
    ++QueueFullRejectedC;
    ++C.QueueFullRejected;
    break;
  case ServiceRejectKind::DeadlineInfeasible:
    ++ShedC;
    ++C.Shed;
    break;
  default:
    break;
  }
}

void OffloadService::countCompleted(const std::string &Client, bool AsTwin) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Completed;
  ClientStatsSnapshot &C = clientLocked(Client);
  ++C.Completed;
  if (AsTwin) {
    ++CoalescedC;
    ++C.Coalesced;
  }
}

void OffloadService::countFailed(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Failed;
  ++clientLocked(Client).Failed;
}

void OffloadService::countTimedOut(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++TimedOut;
  ++clientLocked(Client).TimedOut;
}

void OffloadService::countRetried(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Retried;
  ++clientLocked(Client).Retried;
}

bool OffloadService::admitQuota(const std::string &Client, std::string &Why) {
  double Qps = Config.QuotaQps, Burst = Config.QuotaBurst;
  auto It = Config.Clients.find(Client);
  if (It != Config.Clients.end()) {
    if (It->second.Qps >= 0)
      Qps = It->second.Qps;
    if (It->second.Burst >= 0)
      Burst = It->second.Burst;
  }
  if (Qps <= 0)
    return true; // unlimited
  if (Burst <= 0)
    Burst = std::max(1.0, Qps);
  auto Now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> Lock(StatsMu);
  TokenBucket &B = Buckets[Client];
  if (!B.Primed) {
    B.Tokens = Burst; // a fresh client starts with a full bucket
    B.Primed = true;
  } else {
    double Sec = std::chrono::duration<double>(Now - B.Last).count();
    B.Tokens = std::min(Burst, B.Tokens + Sec * Qps);
  }
  B.Last = Now;
  if (B.Tokens >= 1.0) {
    B.Tokens -= 1.0;
    return true;
  }
  std::ostringstream E;
  E << "offload service: rejected[quota-exceeded]: client '" << Client
    << "' is over its " << Qps << " qps quota (burst " << Burst << ")";
  Why = E.str();
  return false;
}

std::string OffloadService::shedVerdict(const rt::OffloadConfig &Canon,
                                        double DeadlineMs,
                                        bool CompileOwed) const {
  if (Config.ShedPolicy != ServiceConfig::Shedding::Deadline ||
      DeadlineMs <= 0)
    return "";
  size_t Load = Pool->loadOf(Canon.DeviceName);
  double Launch, Compile;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Launch = EwmaLaunchMs;
    Compile = CompileOwed ? EwmaCompileMs : 0.0;
  }
  if (Launch <= 0.0 && Compile <= 0.0)
    return ""; // no cost history yet: admit and learn
  // Queue wait (everything ahead of us) + our own launch + any
  // per-worker compile still owed for a cold kernel.
  double Est = Compile + (static_cast<double>(Load) + 1.0) * Launch;
  if (Est <= DeadlineMs)
    return "";
  std::ostringstream E;
  E << "offload service: rejected[deadline-infeasible]: estimated " << Est
    << " ms (queue wait + compile + launch) exceeds the " << DeadlineMs
    << " ms deadline";
  return E.str();
}

std::future<ExecResult> OffloadService::submit(OffloadRequest Request) {
  // Resolve the consolidated submit surface first: Options wins, and
  // the deprecated flat ClientId/DeadlineMs fields fill any gap (the
  // one-release compatibility shim for pre-SubmitOptions call sites).
  SubmitOptions O = std::move(Request.Options);
  if (O.ClientId.empty())
    O.ClientId = std::move(Request.ClientId);
  if (O.DeadlineMs <= 0)
    O.DeadlineMs = Request.DeadlineMs;
  if (!O.PolicySet)
    O.withPolicy(Config.Policy);
  // Per-request shard fields left at their defaults inherit the
  // service-wide plan.
  if (!O.Shard.MaxShards)
    O.Shard.MaxShards = Config.Shard.MaxShards;
  if (O.Shard.MinShardElems == ShardOptions().MinShardElems)
    O.Shard.MinShardElems = Config.Shard.MinShardElems;
  if (O.Shard.HaloParam < 0) {
    O.Shard.HaloParam = Config.Shard.HaloParam;
    O.Shard.HaloRadius = Config.Shard.HaloRadius;
  }

  std::promise<ExecResult> Promise;
  std::future<ExecResult> Future = Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Submitted;
    ++clientLocked(O.ClientId).Submitted;
  }

  std::string VErr = ConfigError;
  if (VErr.empty())
    VErr = rt::validateOffloadConfig(Request.Config);
  if (!Request.Worker)
    VErr = "offload service: request has no worker";
  else if (VErr.empty() && !knownDevice(Request.Config.DeviceName))
    VErr = "offload service: unknown device '" + Request.Config.DeviceName +
           "'";
  if (!VErr.empty()) {
    countRejected(O.ClientId, ServiceRejectKind::None);
    Promise.set_value(trapped(VErr));
    return Future;
  }

  // Admission control runs before any compile or cache work: a
  // rate-limited client must not consume compile capacity, and a
  // quota rejection must not disturb the kernel cache (hit/miss
  // stats, LRU order, negative entries).
  std::string QuotaWhy;
  if (!admitQuota(O.ClientId, QuotaWhy)) {
    countRejected(O.ClientId, ServiceRejectKind::QuotaExceeded);
    Promise.set_value(trapped(QuotaWhy));
    return Future;
  }

  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Request.Config);
  // Under scheduler placement the launch path may keep immutable
  // inputs resident per device (the transfer term the cost model
  // optimizes for). Not part of the kernel cache key.
  Canon.ReuseResidentInputs = O.Policy != SchedulerPolicy::LeastLoaded;

  // Deterministic overload for tests: an injected QueueFull fault on
  // this device's domain rejects exactly as a saturated queue would,
  // regardless of live queue state.
  if (support::FaultInjector::instance().enabled() &&
      support::FaultInjector::instance().shouldFire(
          Canon.DeviceName, support::FaultKind::QueueFull)) {
    countRejected(O.ClientId, ServiceRejectKind::QueueFull);
    Promise.set_value(
        trapped("offload service: rejected[queue-full]: injected overload on "
                "device '" +
                Canon.DeviceName + "'"));
    return Future;
  }

  KernelKey Key =
      KernelKey::make(Request.Worker, Canon, &classTextFor(Request.Worker));
  bool WasMiss = false;
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Request.Worker, Canon); }, &WasMiss);
  if (!Kernel->Ok) {
    // Semantic failure: the filter does not compile for GPUs at all.
    // No retry and no interpreter fallback — callers rely on the trap
    // to learn the filter is not offloadable. A negatively cached
    // compile failure takes precedence over shedding: it is the more
    // actionable error, and it costs nothing to report.
    countFailed(O.ClientId);
    Promise.set_value(
        trapped("offload service: compilation failed: " + Kernel->Error));
    return Future;
  }

  // Proactive shedding: refuse now what would only time out in queue.
  double BudgetMs = deadlineBudgetMs(O.DeadlineMs);
  std::string ShedWhy = shedVerdict(Canon, BudgetMs, WasMiss);
  if (!ShedWhy.empty()) {
    countRejected(O.ClientId, ServiceRejectKind::DeadlineInfeasible);
    Promise.set_value(trapped(ShedWhy));
    return Future;
  }

  PendingInvoke Inv;
  Inv.Worker = Request.Worker;
  Inv.Config = Canon;
  Inv.Args = std::move(Request.Args);
  Inv.Promise = std::move(Promise);
  Inv.ClientId = std::move(O.ClientId);
  Inv.DeadlineMs = O.DeadlineMs;
  refreshDeadline(Inv);

  // Shard-eligible large maps split across the pool; everything else
  // goes through cost-model (or legacy least-loaded) placement whole.
  if (O.Policy == SchedulerPolicy::Shard && trySubmitSharded(Inv, O.Shard))
    return Future;

  PlaceResult Placed = O.Policy == SchedulerPolicy::LeastLoaded
                           ? place(Inv, /*IsRequeue=*/false)
                           : placeCost(Inv, O.PlacementHint);
  switch (Placed) {
  case PlaceResult::Placed:
    break;
  case PlaceResult::Full: {
    std::ostringstream E;
    E << "offload service: rejected[queue-full]: queue for device '"
      << Canon.DeviceName << "' is at capacity (" << Config.QueueDepth << ")";
    countRejected(Inv.ClientId, ServiceRejectKind::QueueFull);
    Inv.Promise.set_value(trapped(E.str()));
    break;
  }
  case PlaceResult::NoWorker:
    fallbackOrFail(std::move(Inv),
                   "offload service: no worker available for device '" +
                       Canon.DeviceName + "'");
    break;
  }
  return Future;
}

ExecResult OffloadService::invoke(OffloadRequest Request) {
  return submit(std::move(Request)).get();
}

bool OffloadService::offloadable(MethodDecl *Worker,
                                 const rt::OffloadConfig &Config,
                                 std::string *Why) {
  std::string VErr = rt::validateOffloadConfig(Config);
  if (VErr.empty() && !knownDevice(Config.DeviceName))
    VErr = "unknown device '" + Config.DeviceName + "'";
  if (!VErr.empty()) {
    if (Why)
      *Why = VErr;
    return false;
  }
  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Config);
  KernelKey Key = KernelKey::make(Worker, Canon, &classTextFor(Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Worker, Canon); });
  if (!Kernel->Ok && Why)
    *Why = Kernel->Error;
  return Kernel->Ok;
}

CompiledKernel OffloadService::compileVerified(MethodDecl *Worker,
                                               const rt::OffloadConfig &Canon) {
  auto T0 = std::chrono::steady_clock::now();
  CompiledKernel Kernel;
  {
    std::lock_guard<std::mutex> Lock(CompileMu);
    Kernel = analysis::oracleCompile(Prog, Types, Worker, Canon.Mem);
    if (Config.PostCompileHook)
      Config.PostCompileHook(Kernel);
  }
  if (Kernel.Ok && Config.VerifyKernels) {
    // Admission gate: a kernel the verifier cannot certify never
    // reaches a device. The failure is cached like any other compile
    // failure, so repeat offenders are rejected without re-analysis.
    // The cache key covers source, device, and memory config but NOT
    // launch geometry, so the cached verdict must hold for every
    // LocalSize/MaxGroups that can share the entry: Symbolic geometry,
    // not this request's sizes. Caller --assume facts are Ignored for
    // the same reason — they are not part of the key either. The device
    // IS part of the key, so its occupancy limits are fair game.
    analysis::VerifyRequest VR;
    VR.Kernel = &Kernel;
    VR.Geometry = analysis::GeometryPolicy::Symbolic;
    VR.AssumeMode = analysis::AssumePolicy::Ignore;
    VR.Device = &ocl::deviceByName(Canon.DeviceName);
    // The bytecode tier runs too: a proven-OOB access in the
    // post-inlining bytecode is an error finding and blocks admission
    // (its Unknowns are notes, so it never rejects more than the AST
    // passes would — it only adds what they miss at the other tier).
    VR.BytecodeTier = true;
    analysis::VerifyResult V = analysis::runVerification(VR);
    if (!V.Admitted) {
      std::ostringstream E;
      E << "kernel verifier: " << V.Report.errorCount()
        << " error finding(s) in '" << Kernel.Plan.KernelName << "':\n"
        << V.Report.str();
      Kernel.Ok = false;
      Kernel.Error = E.str();
    }
  }
  // Feed the shed estimator: what a cold kernel costs before it can
  // launch (compile + verify; the per-worker program build tracks it
  // closely enough for an estimate).
  double Ms = elapsedMs(T0);
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    EwmaCompileMs =
        EwmaCompileMs <= 0.0 ? Ms : 0.75 * EwmaCompileMs + 0.25 * Ms;
  }
  return Kernel;
}

const std::string &OffloadService::classTextFor(const MethodDecl *Worker) {
  const ClassDecl *C = Worker->parent();
  std::lock_guard<std::mutex> Lock(ClassTextMu);
  auto It = ClassTexts.find(C);
  if (It != ClassTexts.end())
    return It->second;
  ASTPrintOptions Opts;
  Opts.ShowTypes = true;
  return ClassTexts.emplace(C, C ? printClass(C, Opts) : std::string())
      .first->second;
}

std::string OffloadService::instanceKey(MethodDecl *Worker,
                                        const CompiledKernel *Kernel,
                                        const rt::OffloadConfig &Canon) {
  // Everything that changes execution except the worker id: which
  // kernel, and the launch/marshal knobs the kernel key does not
  // cover. The worker id is the inner map key so scheduling can see
  // which workers already hold an instance.
  std::ostringstream K;
  K << static_cast<const void *>(Worker) << '|'
    << static_cast<const void *>(Kernel) << "|ls" << Canon.LocalSize << "|mg"
    << Canon.MaxGroups << "|sm" << Canon.UseSpecializedMarshal << "|dm"
    << Canon.DirectMarshal << "|ov" << Canon.OverlapPipelining << "|rr"
    << Canon.ReuseResidentInputs;
  return K.str();
}

std::vector<unsigned> OffloadService::instanceWorkers(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(InstMu);
  std::vector<unsigned> Ids;
  auto It = Instances.find(Key);
  if (It != Instances.end())
    for (const auto &[Id, Inst] : It->second)
      Ids.push_back(Id); // a past fault left no stale error (the
                         // worker clears it when recording a failure)
  return Ids;
}

FilterInstance *
OffloadService::instanceFor(const std::string &Key, MethodDecl *Worker,
                            std::shared_ptr<const CompiledKernel> Kernel,
                            unsigned WorkerId, const rt::OffloadConfig &Canon,
                            std::string &Err) {
  std::lock_guard<std::mutex> Lock(InstMu);
  auto &PerWorker = Instances[Key];
  auto It = PerWorker.find(WorkerId);
  if (It != PerWorker.end())
    return It->second.get();

  auto Inst = std::make_unique<FilterInstance>();
  Inst->Filter = std::make_unique<rt::OffloadedFilter>(
      Prog, Types, Worker, Canon, nullptr, *Kernel);
  // Per-worker fault domain: "w3:gtx580" so injection plans can pin
  // one worker ("w3:gtx580") or every worker of a model ("gtx580").
  Inst->Filter->setFaultDomain("w" + std::to_string(WorkerId) + ":" +
                               Canon.DeviceName);
  // Native-artifact sharing: all workers of one cache entry build
  // through the same slot, so the bytecode + JIT code is compiled
  // once and adopted by every later context.
  KernelKey CK = KernelKey::make(Worker, Canon, &classTextFor(Worker));
  Inst->Filter->setSharedProgram(Cache.bundleSlot(CK));
  // Keep the cached kernel alive as long as the instance references
  // its plan-derived state (the filter holds its own copy, but the
  // instance key embeds the cache pointer).
  Inst->Kernel = std::move(Kernel);
  if (!Inst->Filter->ok()) {
    // Construction failures are not cached: a retry may rebuild.
    Err = Inst->Filter->error();
    return nullptr;
  }

  // Batch eligibility: a map kernel whose only non-output array is
  // the map source. Then requests differ only in that one stream
  // argument (mergeable() verifies the rest match bit-for-bit), and
  // per-element independence makes a concatenated launch produce the
  // same bits as separate launches.
  const KernelPlan &Plan = Inst->Filter->kernel().Plan;
  if (Plan.Kind == KernelKind::Map) {
    const KernelArray *Src = Plan.mapSource();
    size_t NonOutputArrays = 0;
    for (const KernelArray &A : Plan.Arrays)
      if (!A.IsOutput)
        ++NonOutputArrays;
    if (Src && Src->WorkerParam && NonOutputArrays == 1) {
      const auto &Params = Worker->params();
      for (size_t I = 0; I != Params.size(); ++I)
        if (Params[I] == Src->WorkerParam)
          Inst->SourceParam = static_cast<int>(I);
    }
  }

  FilterInstance *Raw = Inst.get();
  PerWorker[WorkerId] = std::move(Inst);
  Cache.tagResident(CK, WorkerId);
  return Raw;
}

double OffloadService::execute(std::vector<PendingInvoke> &Batch,
                               unsigned WorkerId) {
  // The CPU peer's queue executes through the interpreter; everything
  // below is device-only (merging, residency, Fig. 9 accounting).
  if (!Batch.empty() && Batch.front().RunOnInterp)
    return executeInterp(Batch, WorkerId);
  const char *QueueExpired =
      "offload service: launch deadline expired in queue";
  // Deadline enforcement, part 1: a request that expired while queued
  // (typically behind a hung launch) never reaches the device — it
  // goes straight back through the retry path toward a healthy worker
  // or the interpreter. Coalesced twins expire independently; an
  // expired *leader* promotes its first surviving twin so the
  // siblings still launch.
  auto Now0 = std::chrono::steady_clock::now();
  for (auto It = Batch.begin(); It != Batch.end();) {
    for (auto T = It->Twins.begin(); T != It->Twins.end();) {
      if (T->hasDeadline() && Now0 > T->Deadline) {
        PendingInvoke Exp = std::move(*T);
        T = It->Twins.erase(T);
        countTimedOut(Exp.ClientId);
        handleFailure(std::move(Exp), WorkerId, QueueExpired);
      } else {
        ++T;
      }
    }
    if (It->hasDeadline() && Now0 > It->Deadline) {
      PendingInvoke Expired = std::move(*It);
      countTimedOut(Expired.ClientId);
      if (!Expired.Twins.empty()) {
        PendingInvoke Leader = std::move(Expired.Twins.front());
        Expired.Twins.erase(Expired.Twins.begin());
        Leader.Twins = std::move(Expired.Twins);
        Expired.Twins.clear();
        *It = std::move(Leader);
        ++It;
      } else {
        It = Batch.erase(It);
      }
      handleFailure(std::move(Expired), WorkerId, QueueExpired);
    } else {
      ++It;
    }
  }
  if (Batch.empty()) {
    // Nothing launched, so the breaker gets no verdict; if this was a
    // probation trial, make the worker probe-able again.
    Pool->recordSkipped(WorkerId);
    return 0.0;
  }

  FilterInstance *Inst = Batch.front().Instance;
  rt::OffloadedFilter &F = *Inst->Filter;

  // A failed launch is a device fault (injected or real): record it
  // against the worker's breaker, then push every request of the
  // batch — twins detached, each with its own retry state — through
  // retry/requeue/fallback. Requests drained from the queue by a
  // quarantine re-route without counting an attempt.
  auto FailAll = [&](const std::string &Msg) {
    F.clearError();
    std::vector<PendingInvoke> Drained;
    if (Pool->recordFailure(WorkerId, Drained)) {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Quarantined;
    }
    for (PendingInvoke &B : Batch)
      failGroup(std::move(B), WorkerId, Msg);
    Batch.clear();
    reroute(Drained, WorkerId);
  };

  // Merge a multi-request batch into one launch: concatenate the
  // stream arrays, remember the split points. (Coalesced twins add
  // nothing to the input — they are bit-identical to their member —
  // and receive copies of its output.)
  bool Merged = Batch.size() > 1;
  int SP = Batch.front().SourceParam;
  std::vector<RtValue> Args;
  std::vector<size_t> Lens;
  if (Merged) {
    auto MergedArr = std::make_shared<RtArray>();
    const std::shared_ptr<RtArray> &First = Batch.front().Args[SP].array();
    MergedArr->ElementType = First->ElementType;
    MergedArr->Immutable = true;
    for (PendingInvoke &B : Batch) {
      const std::vector<RtValue> &E = B.Args[SP].array()->Elems;
      Lens.push_back(E.size());
      MergedArr->Elems.insert(MergedArr->Elems.end(), E.begin(), E.end());
    }
    Args = Batch.front().Args;
    Args[SP] = RtValue::makeArray(std::move(MergedArr));
  } else {
    // Copied, not moved: a failed launch retries with these args.
    Args = Batch.front().Args;
  }

  size_t Group = Batch.size();
  for (const PendingInvoke &B : Batch)
    Group += B.Twins.size();
  rt::OffloadStats Before = F.stats();
  auto LaunchT0 = std::chrono::steady_clock::now();

  // First invocation builds the OpenCL program, and the
  // constant-capacity fallback may recompile through GpuCompiler:
  // serialize that against cache-miss compiles. Preparing with the
  // *merged* arguments sizes the fallback check for what actually
  // launches.
  if (!F.prepared()) {
    std::string Err;
    {
      std::lock_guard<std::mutex> Lock(CompileMu);
      Err = F.prepare(Args);
    }
    if (!Err.empty()) {
      FailAll(Err);
      return 0.0;
    }
  }

  ExecResult R = F.invoke(Args);
  rt::OffloadStats After = F.stats();
  accumulate(Before, After);
  double SimNs = After.totalNs() - Before.totalNs();

  if (R.Trapped) {
    FailAll(R.TrapMessage);
    return SimNs;
  }

  // Scheduler learning: the observed sim time refines the per-(kernel
  // x device) compute EWMA, and — when the launch path caches inputs
  // on the device — the argument arrays are now resident here.
  {
    const PendingInvoke &Lead = Batch.front();
    uint64_t Elems = 1;
    if (SP >= 0 && Args[SP].isArray() && Args[SP].array())
      Elems = Args[SP].array()->Elems.size();
    else if (!Args.empty() && Args[0].isArray() && Args[0].array())
      Elems = Args[0].array()->Elems.size();
    Sched.noteExecution(Lead.Worker->qualifiedName(),
                        Pool->deviceNameOf(WorkerId), WorkerId, Elems, SimNs);
    if (Lead.Config.ReuseResidentInputs)
      for (size_t I = 0; I != Args.size(); ++I) {
        // A merged launch's concatenated source is a throwaway array;
        // its residency would never be hit again.
        if (Merged && static_cast<int>(I) == SP)
          continue;
        if (uint64_t BufId = rt::bufferIdOf(Args[I]))
          Sched.noteResident(WorkerId, BufId, rt::wireByteSize(Args[I]));
      }
  }

  // Feed the shed estimator with the realized per-request wall cost.
  {
    double PerReq = elapsedMs(LaunchT0) / static_cast<double>(Group);
    std::lock_guard<std::mutex> Lock(StatsMu);
    EwmaLaunchMs =
        EwmaLaunchMs <= 0.0 ? PerReq : 0.75 * EwmaLaunchMs + 0.25 * PerReq;
  }

  // Deadline enforcement, part 2: the launch completed but a hang may
  // have pushed it past its deadline. A late *member*'s result is
  // still correct and is delivered, but the worker eats a breaker
  // failure — a device that keeps clients waiting sheds its queue
  // like a dead one. A late coalesced twin instead resolves as a
  // typed timeout below (its sibling futures are untouched).
  bool Late = false;
  auto Done = std::chrono::steady_clock::now();
  for (const PendingInvoke &B : Batch)
    if (B.hasDeadline() && Done > B.Deadline) {
      Late = true;
      break;
    }
  if (Late) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TimedOut;
    }
    std::vector<PendingInvoke> Drained;
    if (Pool->recordFailure(WorkerId, Drained)) {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Quarantined;
    }
    reroute(Drained, WorkerId);
  } else {
    Pool->recordSuccess(WorkerId);
  }

  // Fan a member's result out to its coalesced twins. A twin whose
  // deadline lapsed while the launch flew gets a typed timeout — its
  // siblings (including the member) are unaffected.
  auto DeliverTwins = [&](PendingInvoke &Member, const ExecResult &Res) {
    auto DoneT = std::chrono::steady_clock::now();
    for (PendingInvoke &T : Member.Twins) {
      if (T.hasDeadline() && DoneT > T.Deadline) {
        countTimedOut(T.ClientId);
        deliver(T,
                trapped("offload service: timed-out[coalesced]: deadline "
                        "expired while the coalesced launch was in flight"));
      } else {
        deliver(T, copyResult(Res), /*AsTwin=*/true);
      }
    }
  };

  if (!Merged) {
    PendingInvoke &M = Batch.front();
    DeliverTwins(M, R);
    deliver(M, std::move(R));
    return SimNs;
  }

  // Split the merged output back per request. A malformed merged
  // result is a launch-level fault like any other: retry unmerged.
  const std::shared_ptr<RtArray> &Out =
      R.Value.isArray() ? R.Value.array() : nullptr;
  size_t Total = 0;
  for (size_t L : Lens)
    Total += L;
  if (!Out || Out->Elems.size() != Total) {
    FailAll("offload service: merged launch output mismatch");
    return SimNs;
  }
  size_t Off = 0;
  for (size_t I = 0; I != Batch.size(); ++I) {
    auto Part = std::make_shared<RtArray>();
    Part->ElementType = Out->ElementType;
    Part->Immutable = Out->Immutable;
    Part->Elems.assign(Out->Elems.begin() + Off,
                       Out->Elems.begin() + Off + Lens[I]);
    Off += Lens[I];
    ExecResult RR;
    RR.Value = RtValue::makeArray(std::move(Part));
    DeliverTwins(Batch[I], RR);
    deliver(Batch[I], std::move(RR));
  }
  return SimNs;
}

OffloadService::PlaceResult OffloadService::place(PendingInvoke &Inv,
                                                  bool IsRequeue) {
  // Candidate models: the request's own first; on a requeue every
  // other model in the pool too ("any compatible device" — the cache
  // recompiles the kernel for the alternate model's memory config).
  std::vector<std::string> Models{Inv.Config.DeviceName};
  if (IsRequeue)
    for (const std::string &M : Pool->modelNames())
      // The interpreter peer is not a registry model (deviceByName
      // would abort); the interpreter is reached through
      // fallbackOrFail when every model fails.
      if (M != Inv.Config.DeviceName && M != interpDeviceName())
        Models.push_back(M);
  Inv.RunOnInterp = false; // re-placement binds to a real device

  bool SawFull = false;
  for (const std::string &M : Models) {
    rt::OffloadConfig Cfg = Inv.Config;
    Cfg.DeviceName = M;
    rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Cfg);
    KernelKey Key =
        KernelKey::make(Inv.Worker, Canon, &classTextFor(Inv.Worker));
    std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
        Key, [&] { return compileVerified(Inv.Worker, Canon); });
    if (!Kernel->Ok)
      continue;
    std::string IKey = instanceKey(Inv.Worker, Kernel.get(), Canon);
    // Lazy worker creation only for the model the request asked for;
    // requeue candidates are whatever the pool already runs.
    int Id = Pool->pickWorker(Canon.DeviceName, instanceWorkers(IKey),
                              /*AffinityBias=*/4, Inv.FailedWorkers,
                              /*AddIfMissing=*/!IsRequeue, &Inv.ClientId);
    if (Id < 0)
      continue;
    std::string IErr;
    FilterInstance *Inst =
        instanceFor(IKey, Inv.Worker, std::move(Kernel),
                    static_cast<unsigned>(Id), Canon, IErr);
    if (!Inst) {
      Pool->recordSkipped(static_cast<unsigned>(Id));
      continue;
    }
    Inv.Instance = Inst;
    Inv.SourceParam = -1;
    if (!IsRequeue && Config.EnableBatching && Inst->SourceParam >= 0 &&
        Inst->SourceParam < static_cast<int>(Inv.Args.size()) &&
        Inv.Args[Inst->SourceParam].isArray())
      Inv.SourceParam = Inst->SourceParam;
    // Internal requeues come from worker threads and must not block
    // on a full queue (two workers re-routing onto each other would
    // deadlock), so they bypass the backpressure bound. Client
    // admission blocks only under the Block shed policy; otherwise a
    // full queue comes back as Full for a typed rejection.
    bool Block = Config.ShedPolicy == ServiceConfig::Shedding::Block;
    switch (Pool->submitTo(static_cast<unsigned>(Id), Inv,
                           /*Force=*/IsRequeue, Block)) {
    case DevicePool::SubmitOutcome::Accepted:
      return PlaceResult::Placed;
    case DevicePool::SubmitOutcome::Full:
      SawFull = true;
      break;
    case DevicePool::SubmitOutcome::Stopping:
      break;
    }
    Pool->recordSkipped(static_cast<unsigned>(Id));
  }
  return SawFull ? PlaceResult::Full : PlaceResult::NoWorker;
}

void OffloadService::refreshDeadline(PendingInvoke &Inv) const {
  double Ms = deadlineBudgetMs(Inv.DeadlineMs);
  if (Ms > 0)
    Inv.Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(Ms * 1000.0));
}

void OffloadService::failGroup(PendingInvoke Inv, unsigned WorkerId,
                               const std::string &Reason) {
  std::vector<PendingInvoke> Twins = std::move(Inv.Twins);
  Inv.Twins.clear();
  handleFailure(std::move(Inv), WorkerId, Reason);
  for (PendingInvoke &T : Twins)
    failGroup(std::move(T), WorkerId, Reason); // twins never nest; be safe
}

void OffloadService::handleFailure(PendingInvoke Inv, unsigned WorkerId,
                                   const std::string &Reason) {
  Inv.Attempt += 1;
  if (!Inv.excluded(WorkerId))
    Inv.FailedWorkers.push_back(WorkerId);
  if (Inv.Attempt > Config.MaxRetries) {
    fallbackOrFail(std::move(Inv), Reason);
    return;
  }

  // Exponential backoff: base * 2^(attempt-1), capped.
  double Ms = Config.BackoffBaseMs *
              static_cast<double>(1ull << std::min(Inv.Attempt - 1, 20u));
  Ms = std::min(Ms, Config.BackoffMaxMs);
  if (Ms > 0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(Ms));

  countRetried(Inv.ClientId);
  refreshDeadline(Inv); // each attempt is a fresh launch
  // First retry stays on the failed worker — most injected/real
  // faults are transient — unless the breaker already opened.
  if (Inv.Attempt == 1 &&
      Pool->breakerStateOf(WorkerId) == BreakerState::Closed) {
    Inv.SourceParam = -1;
    if (Pool->submitTo(WorkerId, Inv, /*Force=*/true) ==
        DevicePool::SubmitOutcome::Accepted)
      return;
  }
  if (place(Inv, /*IsRequeue=*/true) == PlaceResult::Placed)
    return;
  fallbackOrFail(std::move(Inv), Reason);
}

void OffloadService::reroute(std::vector<PendingInvoke> &Drained,
                             unsigned WorkerId) {
  for (PendingInvoke &D : Drained) {
    if (!D.excluded(WorkerId))
      D.FailedWorkers.push_back(WorkerId);
    countRetried(D.ClientId);
    refreshDeadline(D);
    if (place(D, /*IsRequeue=*/true) != PlaceResult::Placed)
      fallbackOrFail(std::move(D),
                     "offload service: worker quarantined and no healthy "
                     "peer available");
  }
  Drained.clear();
}

void OffloadService::fallbackOrFail(PendingInvoke Inv,
                                    const std::string &Reason) {
  if (!Config.FallbackToInterpreter) {
    deliver(Inv, trapped(Reason));
    return;
  }
  // Graceful degradation: the interpreter is the language's reference
  // semantics, so the future resolves bit-identically to a healthy
  // offload — just without a device. Runs under the compile mutex
  // because evaluation shares the TypeContext with the compiler.
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++FellBack;
    ++clientLocked(Inv.ClientId).FellBack;
  }
  ExecResult R;
  {
    std::lock_guard<std::mutex> Lock(CompileMu);
    Interp I(Prog, Types);
    R = I.callMethod(Inv.Worker, nullptr, std::move(Inv.Args));
  }
  deliver(Inv, std::move(R));
}

void OffloadService::deliver(PendingInvoke &Inv, ExecResult R, bool AsTwin) {
  if (Inv.Group) {
    finishShard(Inv, std::move(R));
    return;
  }
  if (R.Trapped)
    countFailed(Inv.ClientId);
  else
    countCompleted(Inv.ClientId, AsTwin);
  Inv.Promise.set_value(std::move(R));
}

void OffloadService::finishShard(PendingInvoke &Inv, ExecResult R) {
  std::shared_ptr<ShardGroup> G = std::move(Inv.Group);
  std::vector<ExecResult> Parts;
  {
    std::lock_guard<std::mutex> Lock(G->Mu);
    G->Parts[Inv.ShardIndex] = std::move(R);
    if (--G->Remaining)
      return;
    Parts = std::move(G->Parts);
  }
  // Last shard in: stitch in shard-index order, which reproduces the
  // unsplit launch bit for bit (shardRanges covers the index space
  // contiguously and map outputs are per-element). Any trapped part
  // fails the parent with the lowest-indexed trap, deterministically.
  ExecResult Final;
  for (ExecResult &P : Parts)
    if (P.Trapped) {
      Final = std::move(P);
      break;
    }
  if (!Final.Trapped) {
    auto Stitched = std::make_shared<RtArray>();
    bool Ok = true;
    for (size_t I = 0; I != Parts.size(); ++I) {
      const std::shared_ptr<RtArray> &A =
          Parts[I].Value.isArray() ? Parts[I].Value.array() : nullptr;
      if (!A) {
        Ok = false;
        break;
      }
      if (I == 0) {
        Stitched->ElementType = A->ElementType;
        Stitched->Immutable = A->Immutable;
      }
      Stitched->Elems.insert(Stitched->Elems.end(), A->Elems.begin(),
                             A->Elems.end());
    }
    if (Ok)
      Final.Value = RtValue::makeArray(std::move(Stitched));
    else
      Final = trapped("offload service: shard produced a non-array result");
  }
  // The parent counts exactly once, here; shards never touched the
  // Submitted/Completed ledgers on their own.
  if (Final.Trapped)
    countFailed(G->ClientId);
  else
    countCompleted(G->ClientId);
  G->Promise.set_value(std::move(Final));
}

PlacementRequest
OffloadService::placementRequestFor(const PendingInvoke &Inv) const {
  PlacementRequest Req;
  Req.KernelId = Inv.Worker->qualifiedName();
  // Stream input first (the OffloadRequest contract): its length
  // drives the NDRange, so it anchors the compute estimate.
  if (!Inv.Args.empty() && Inv.Args[0].isArray() && Inv.Args[0].array())
    Req.Elems = Inv.Args[0].array()->Elems.size();
  for (const RtValue &V : Inv.Args)
    if (V.isArray() && V.array())
      Req.ArgBuffers.emplace_back(rt::bufferIdOf(V), rt::wireByteSize(V));
  return Req;
}

double OffloadService::executeInterp(std::vector<PendingInvoke> &Batch,
                                     unsigned WorkerId) {
  // Interp invocations never merge or coalesce (the pool predicates
  // bail on a null Instance), but keep the batch shape for safety.
  double SimNs = 0.0;
  for (PendingInvoke &B : Batch) {
    auto T0 = std::chrono::steady_clock::now();
    ExecResult R;
    {
      std::lock_guard<std::mutex> Lock(CompileMu);
      Interp I(Prog, Types);
      std::vector<RtValue> Args = B.Args; // keep B intact for counters
      R = I.callMethod(B.Worker, nullptr, std::move(Args));
    }
    double Ns = elapsedMs(T0) * 1.0e6;
    SimNs += Ns;
    uint64_t Elems = 1;
    if (!B.Args.empty() && B.Args[0].isArray() && B.Args[0].array())
      Elems = B.Args[0].array()->Elems.size();
    Sched.noteExecution(B.Worker->qualifiedName(), interpDeviceName(),
                        WorkerId, Elems, Ns);
    // An interpreter trap is the reference semantics speaking: a
    // semantic failure, not a worker fault — no retry, no breaker.
    deliver(B, std::move(R));
  }
  Pool->recordSuccess(WorkerId);
  return SimNs;
}

OffloadService::PlaceResult
OffloadService::placeCost(PendingInvoke &Inv, const std::string &Hint,
                          std::vector<unsigned> *Spread) {
  // Parity with legacy placement: the request's own model gets a
  // worker on first use, and the interpreter peer exists when
  // enabled — both are candidates from the first request on.
  Pool->ensureWorker(Inv.Config.DeviceName);
  if (Config.CpuPeer)
    Pool->ensureWorker(interpDeviceName());

  // Bind a compiled kernel to every candidate's device model through
  // the cache; models that cannot compile the kernel drop out.
  struct Bound {
    rt::OffloadConfig Canon;
    std::shared_ptr<const CompiledKernel> Kernel;
    std::string IKey;
  };
  std::vector<WorkerCandidate> Cands;
  std::vector<Bound> Binds;
  for (CandidateLoad &L : Pool->candidates(Inv.ClientId, Inv.FailedWorkers)) {
    WorkerCandidate C;
    C.Id = L.Id;
    C.Device = L.DeviceName;
    C.Backlog = L.EffBacklog;
    C.NeedsProbe = L.NeedsProbe;
    Bound B;
    if (L.DeviceName == interpDeviceName()) {
      C.IsInterp = true;
      C.HasInstance = true; // nothing to build
    } else {
      rt::OffloadConfig Cfg = Inv.Config;
      Cfg.DeviceName = L.DeviceName;
      B.Canon = rt::canonicalOffloadConfig(Cfg);
      KernelKey Key =
          KernelKey::make(Inv.Worker, B.Canon, &classTextFor(Inv.Worker));
      B.Kernel = Cache.getOrCompile(
          Key, [&] { return compileVerified(Inv.Worker, B.Canon); });
      if (!B.Kernel->Ok)
        continue;
      B.IKey = instanceKey(Inv.Worker, B.Kernel.get(), B.Canon);
      std::vector<unsigned> Holders = instanceWorkers(B.IKey);
      // Warm if the exact instance exists on this worker, or the cache
      // tags the worker as holding any build of this kernel (the shared
      // program bundle makes a re-instantiation there near-free).
      C.HasInstance =
          std::find(Holders.begin(), Holders.end(), L.Id) != Holders.end() ||
          Cache.isResident(Key, L.Id);
    }
    Cands.push_back(std::move(C));
    Binds.push_back(std::move(B));
  }
  // Gang-spreading for shard siblings: drop workers that already
  // hold one, as long as a fresh worker remains. A split only beats
  // a whole launch when its parts overlap in time, so an otherwise
  // cheaper (warm, shorter-queued) worker must not collect them all.
  if (Spread && !Spread->empty()) {
    bool AnyFresh = false;
    for (const WorkerCandidate &C : Cands)
      AnyFresh = AnyFresh || std::find(Spread->begin(), Spread->end(),
                                       C.Id) == Spread->end();
    if (AnyFresh)
      for (size_t I = Cands.size(); I-- != 0;)
        if (std::find(Spread->begin(), Spread->end(), Cands[I].Id) !=
            Spread->end()) {
          Cands.erase(Cands.begin() + static_cast<ptrdiff_t>(I));
          Binds.erase(Binds.begin() + static_cast<ptrdiff_t>(I));
        }
  }
  // A placement hint narrows the field to its device model when any
  // such worker is eligible; with none, every candidate stays in play.
  if (!Hint.empty()) {
    bool Any = false;
    for (const WorkerCandidate &C : Cands)
      Any = Any || C.Device == Hint;
    if (Any)
      for (size_t I = Cands.size(); I-- != 0;)
        if (Cands[I].Device != Hint) {
          Cands.erase(Cands.begin() + static_cast<ptrdiff_t>(I));
          Binds.erase(Binds.begin() + static_cast<ptrdiff_t>(I));
        }
  }

  PlacementRequest Req = placementRequestFor(Inv);
  bool SawFull = false;
  bool Block = Config.ShedPolicy == ServiceConfig::Shedding::Block;
  while (!Cands.empty()) {
    PlacementDecision D = Sched.choose(Req, Cands);
    if (D.Index < 0)
      break;
    size_t I = static_cast<size_t>(D.Index);
    WorkerCandidate C = Cands[I];
    Bound B = std::move(Binds[I]);
    Cands.erase(Cands.begin() + static_cast<ptrdiff_t>(I));
    Binds.erase(Binds.begin() + static_cast<ptrdiff_t>(I));
    if (!Pool->admitWorker(C.Id))
      continue; // raced into quarantine since the snapshot
    if (C.IsInterp) {
      Inv.Instance = nullptr;
      Inv.RunOnInterp = true;
      Inv.SourceParam = -1;
    } else {
      std::string IErr;
      FilterInstance *Inst =
          instanceFor(B.IKey, Inv.Worker, B.Kernel, C.Id, B.Canon, IErr);
      if (!Inst) {
        Pool->recordSkipped(C.Id);
        continue;
      }
      Inv.Instance = Inst;
      Inv.RunOnInterp = false;
      Inv.Config = B.Canon; // retries re-plan from the placed model
      Inv.SourceParam = -1;
      if (Config.EnableBatching && !Inv.Group && Inst->SourceParam >= 0 &&
          Inst->SourceParam < static_cast<int>(Inv.Args.size()) &&
          Inv.Args[Inst->SourceParam].isArray())
        Inv.SourceParam = Inst->SourceParam;
    }
    switch (Pool->submitTo(C.Id, Inv, /*Force=*/false, Block)) {
    case DevicePool::SubmitOutcome::Accepted:
      Sched.countCostPlaced(C.IsInterp);
      if (Spread)
        Spread->push_back(C.Id);
      return PlaceResult::Placed;
    case DevicePool::SubmitOutcome::Full:
      SawFull = true;
      break;
    case DevicePool::SubmitOutcome::Stopping:
      break;
    }
    Pool->recordSkipped(C.Id);
  }
  return SawFull ? PlaceResult::Full : PlaceResult::NoWorker;
}

bool OffloadService::trySubmitSharded(PendingInvoke &Inv,
                                      const ShardOptions &SO) {
  // Shard eligibility is a property of the kernel plan: a map whose
  // source is a worker parameter, with no other input arrays (one
  // extra is admitted for the declared halo argument). Per-element
  // independence then makes contiguous splits exact.
  KernelKey Key =
      KernelKey::make(Inv.Worker, Inv.Config, &classTextFor(Inv.Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Inv.Worker, Inv.Config); });
  if (!Kernel->Ok || Kernel->Plan.Kind != KernelKind::Map)
    return false;
  int SP = -1;
  {
    const KernelPlan &Plan = Kernel->Plan;
    const KernelArray *Src = Plan.mapSource();
    size_t NonOutputArrays = 0;
    for (const KernelArray &A : Plan.Arrays)
      if (!A.IsOutput)
        ++NonOutputArrays;
    size_t Allowed = SO.HaloParam >= 0 ? 2 : 1;
    if (Src && Src->WorkerParam && NonOutputArrays <= Allowed) {
      const auto &Params = Inv.Worker->params();
      for (size_t I = 0; I != Params.size(); ++I)
        if (Params[I] == Src->WorkerParam)
          SP = static_cast<int>(I);
    }
  }
  if (SP < 0 || SP >= static_cast<int>(Inv.Args.size()) ||
      !Inv.Args[SP].isArray() || !Inv.Args[SP].array())
    return false;
  const RtArray &Src = *Inv.Args[SP].array();
  size_t N = Src.Elems.size();
  if (N < 2 * std::max<size_t>(SO.MinShardElems, 1))
    return false;
  unsigned MaxK =
      SO.MaxShards ? SO.MaxShards : static_cast<unsigned>(Pool->workerCount());
  size_t ByMin = N / std::max<size_t>(SO.MinShardElems, 1);
  unsigned K =
      static_cast<unsigned>(std::min<size_t>(MaxK, std::max<size_t>(ByMin, 1)));
  if (K < 2)
    return false;

  // Halo exchange needs the stencil data argument and integer source
  // indices to rebase; anything else ships the bound arrays whole
  // (more transfer, same bits).
  int HP = SO.HaloParam;
  if (HP >= 0 &&
      (HP == SP || HP >= static_cast<int>(Inv.Args.size()) ||
       !Inv.Args[HP].isArray() || !Inv.Args[HP].array()))
    HP = -1;
  if (HP >= 0)
    for (const RtValue &V : Src.Elems)
      if (V.kind() != RtValue::Kind::Int) {
        HP = -1;
        break;
      }

  std::vector<std::pair<size_t, size_t>> Ranges = Scheduler::shardRanges(N, K);
  auto G = std::make_shared<ShardGroup>();
  G->Promise = std::move(Inv.Promise);
  G->ClientId = Inv.ClientId;
  G->Parts.resize(Ranges.size());
  G->Remaining = Ranges.size();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++ShardedParentsC;
    ShardLaunchesC += Ranges.size();
  }
  std::vector<unsigned> ShardWorkers; // gang-spread state, see placeCost
  for (size_t I = 0; I != Ranges.size(); ++I) {
    size_t Lo = Ranges[I].first, Hi = Ranges[I].second;
    PendingInvoke C;
    C.Worker = Inv.Worker;
    C.Config = Inv.Config;
    C.ClientId = Inv.ClientId;
    C.DeadlineMs = Inv.DeadlineMs;
    C.Deadline = Inv.Deadline; // the parent deadline binds every shard
    C.Group = G;
    C.ShardIndex = static_cast<unsigned>(I);
    C.Args = Inv.Args; // bound arrays shared across shards (residency)
    auto Slice = std::make_shared<RtArray>();
    Slice->ElementType = Src.ElementType;
    Slice->Immutable = Src.Immutable;
    Slice->Elems.assign(Src.Elems.begin() + static_cast<ptrdiff_t>(Lo),
                        Src.Elems.begin() + static_cast<ptrdiff_t>(Hi));
    if (HP >= 0 && !Slice->Elems.empty()) {
      // Halo window: [min(idx) - R, max(idx) + R + 1) of the stencil
      // data, clamped; indices rebase into it. The declared radius is
      // trusted like an --assume fact — an under-declared radius makes
      // the window too small, which the VM's bounds checks trap
      // loudly, never a silently wrong result (DESIGN.md §13).
      int64_t MinV = Slice->Elems.front().asIntegral();
      int64_t MaxV = MinV;
      for (const RtValue &V : Slice->Elems) {
        MinV = std::min(MinV, V.asIntegral());
        MaxV = std::max(MaxV, V.asIntegral());
      }
      const RtArray &Data = *Inv.Args[HP].array();
      int64_t R = static_cast<int64_t>(SO.HaloRadius);
      int64_t WLo = std::max<int64_t>(0, MinV - R);
      int64_t WHi = std::min<int64_t>(
          static_cast<int64_t>(Data.Elems.size()), MaxV + R + 1);
      if (WLo < WHi) {
        auto Window = std::make_shared<RtArray>();
        Window->ElementType = Data.ElementType;
        Window->Immutable = Data.Immutable;
        Window->Elems.assign(Data.Elems.begin() + static_cast<ptrdiff_t>(WLo),
                             Data.Elems.begin() + static_cast<ptrdiff_t>(WHi));
        for (RtValue &V : Slice->Elems)
          V = RtValue::makeInt(static_cast<int32_t>(V.asIntegral() - WLo));
        C.Args[HP] = RtValue::makeArray(std::move(Window));
      }
    }
    C.Args[SP] = RtValue::makeArray(std::move(Slice));
    // Shards place like any request except for gang-spreading: a
    // worker takes a second sibling only once every worker holds one.
    if (placeCost(C, "", &ShardWorkers) != PlaceResult::Placed)
      fallbackOrFail(std::move(C),
                     "offload service: no worker available for shard");
  }
  return true;
}

bool OffloadService::tryStealFor(unsigned ThiefId) {
  // Workers start inside the DevicePool constructor, before the
  // service finishes constructing; no stealing until it has.
  if (!Ready.load(std::memory_order_acquire))
    return false;
  // Victim: the deepest raw backlog among other workers (client-blind
  // — stealing relieves the queue as a whole). Two queued requests
  // minimum: stealing a victim's only pending item just moves the
  // wait, plus a transfer.
  std::vector<CandidateLoad> Loads = Pool->candidates("", {});
  const CandidateLoad *Victim = nullptr, *Thief = nullptr;
  for (const CandidateLoad &L : Loads) {
    if (L.Id == ThiefId) {
      Thief = &L;
      continue;
    }
    if (L.Queued >= 2 && (!Victim || L.Queued > Victim->Queued))
      Victim = &L;
  }
  if (!Victim || !Thief)
    return false;
  PendingInvoke Inv;
  if (!Pool->stealOne(Victim->Id, 2, Inv))
    return false;

  // Rebind plan for the thief's model (the verdict needs to know
  // whether a cold build would be owed there).
  bool ThiefIsInterp = Thief->DeviceName == interpDeviceName();
  rt::OffloadConfig ThiefCanon;
  std::shared_ptr<const CompiledKernel> ThiefKernel;
  std::string ThiefIKey;
  bool CanRun = true;
  bool HasInstance = true;
  if (!ThiefIsInterp) {
    rt::OffloadConfig Cfg = Inv.Config;
    Cfg.DeviceName = Thief->DeviceName;
    ThiefCanon = rt::canonicalOffloadConfig(Cfg);
    KernelKey Key =
        KernelKey::make(Inv.Worker, ThiefCanon, &classTextFor(Inv.Worker));
    ThiefKernel = Cache.getOrCompile(
        Key, [&] { return compileVerified(Inv.Worker, ThiefCanon); });
    CanRun = ThiefKernel->Ok;
    if (CanRun) {
      ThiefIKey = instanceKey(Inv.Worker, ThiefKernel.get(), ThiefCanon);
      std::vector<unsigned> Holders = instanceWorkers(ThiefIKey);
      HasInstance =
          std::find(Holders.begin(), Holders.end(), ThiefId) != Holders.end();
    }
  }

  PlacementRequest Req = placementRequestFor(Inv);
  WorkerCandidate V;
  V.Id = Victim->Id;
  V.Device = Victim->DeviceName;
  V.HasInstance = true; // it was queued there, so the victim has one
  V.IsInterp = Victim->DeviceName == interpDeviceName();
  WorkerCandidate T;
  T.Id = ThiefId;
  T.Device = Thief->DeviceName;
  T.HasInstance = HasInstance;
  T.IsInterp = ThiefIsInterp;

  double GainNs = 0.0;
  bool Steal =
      CanRun && Sched.shouldSteal(Req, V, Victim->Queued, T, &GainNs);
  if (!Steal) {
    // Transfer (or a cold build) dominates the wait saved: put the
    // request back where its data and instance already are.
    Sched.countSteal(/*Refused=*/true);
    Pool->submitTo(Victim->Id, Inv, /*Force=*/true);
    return false;
  }
  if (ThiefIsInterp) {
    Inv.Instance = nullptr;
    Inv.RunOnInterp = true;
    Inv.SourceParam = -1;
  } else {
    std::string IErr;
    FilterInstance *Inst = instanceFor(ThiefIKey, Inv.Worker, ThiefKernel,
                                       ThiefId, ThiefCanon, IErr);
    if (!Inst) {
      Sched.countSteal(/*Refused=*/true);
      Pool->submitTo(Victim->Id, Inv, /*Force=*/true);
      return false;
    }
    Inv.Instance = Inst;
    Inv.RunOnInterp = false;
    Inv.Config = ThiefCanon;
    Inv.SourceParam = -1; // stolen work launches alone
  }
  Sched.countSteal(/*Refused=*/false);
  Pool->submitTo(ThiefId, Inv, /*Force=*/true);
  return true;
}

void OffloadService::accumulate(const rt::OffloadStats &Before,
                                const rt::OffloadStats &After) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  DeviceStats.Marshal.JavaNs += After.Marshal.JavaNs - Before.Marshal.JavaNs;
  DeviceStats.Marshal.NativeNs +=
      After.Marshal.NativeNs - Before.Marshal.NativeNs;
  DeviceStats.Marshal.Bytes += After.Marshal.Bytes - Before.Marshal.Bytes;
  DeviceStats.ApiNs += After.ApiNs - Before.ApiNs;
  DeviceStats.PcieNs += After.PcieNs - Before.PcieNs;
  DeviceStats.KernelNs += After.KernelNs - Before.KernelNs;
  DeviceStats.Invocations += After.Invocations - Before.Invocations;
  DeviceStats.ResidentHits += After.ResidentHits - Before.ResidentHits;
  DeviceStats.ResidentBytesSkipped +=
      After.ResidentBytesSkipped - Before.ResidentBytesSkipped;
}

void OffloadService::waitIdle() { Pool->waitIdle(); }

OffloadServiceStats OffloadService::stats() const {
  OffloadServiceStats S;
  {
    // One lock for the whole snapshot: no torn totals.
    std::lock_guard<std::mutex> Lock(StatsMu);
    S.Submitted = Submitted;
    S.Completed = Completed;
    S.Failed = Failed;
    S.Rejected = Rejected;
    S.Retried = Retried;
    S.TimedOut = TimedOut;
    S.Quarantined = Quarantined;
    S.FellBack = FellBack;
    S.QuotaRejected = QuotaRejectedC;
    S.QueueFullRejected = QueueFullRejectedC;
    S.Shed = ShedC;
    S.Coalesced = CoalescedC;
    S.ShardedParents = ShardedParentsC;
    S.ShardLaunches = ShardLaunchesC;
    S.Device = DeviceStats;
    S.Clients.reserve(PerClient.size());
    for (const auto &[Name, Row] : PerClient)
      S.Clients.push_back(Row); // map order = sorted by client id
  }
  S.Policy = Config.Policy;
  S.Sched = Sched.counters();
  S.Cache = Cache.stats();
  S.Devices = Pool->stats();
  return S;
}
