//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/OffloadService.h"

#include "analysis/AnalysisOracle.h"
#include "analysis/Verification.h"
#include "lime/ast/ASTPrinter.h"
#include "ocl/DeviceModel.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

using namespace lime;
using namespace lime::service;

static bool knownDevice(const std::string &Name) {
  for (const ocl::DeviceModel &D : ocl::deviceRegistry())
    if (D.Name == Name)
      return true;
  return false;
}

static ExecResult trapped(std::string Msg) {
  ExecResult R;
  R.Trapped = true;
  R.TrapMessage = std::move(Msg);
  return R;
}

OffloadService::OffloadService(Program *P, TypeContext &Types,
                               ServiceConfig Config)
    : Prog(P), Types(Types), Config(std::move(Config)),
      Cache(this->Config.CacheCapacity) {
  Cache.setDiskDir(this->Config.DiskCacheDir);
  // Unknown model names would abort deep in the device layer. Reject
  // the whole configuration here, with the registry's names in the
  // message, instead of silently dropping entries: a misspelled
  // device list is an operator error, not a scheduling preference.
  std::vector<std::string> Names;
  for (const std::string &N : this->Config.Devices) {
    if (knownDevice(N)) {
      Names.push_back(N);
      continue;
    }
    std::ostringstream E;
    E << "offload service: unknown device model '" << N
      << "' in ServiceConfig.Devices (known:";
    for (const ocl::DeviceModel &D : ocl::deviceRegistry())
      E << ' ' << D.Name;
    E << ')';
    ConfigError = E.str();
    break;
  }
  if (Names.empty())
    Names.push_back("gtx580");
  unsigned MaxBatch = this->Config.EnableBatching ? this->Config.MaxBatch : 1;
  BreakerConfig BC;
  BC.Threshold = this->Config.BreakerThreshold;
  BC.CooldownMs = this->Config.BreakerCooldownMs;
  Pool = std::make_unique<DevicePool>(
      std::move(Names), this->Config.QueueDepth, MaxBatch, BC,
      [this](std::vector<PendingInvoke> &Batch, unsigned Id) {
        return execute(Batch, Id);
      });
}

OffloadService::~OffloadService() {
  // Drain the workers while every member they touch is still alive.
  Pool.reset();
}

std::future<ExecResult> OffloadService::submit(OffloadRequest Request) {
  std::promise<ExecResult> Promise;
  std::future<ExecResult> Future = Promise.get_future();
  ++Submitted;

  std::string VErr = ConfigError;
  if (VErr.empty())
    VErr = rt::validateOffloadConfig(Request.Config);
  if (!Request.Worker)
    VErr = "offload service: request has no worker";
  else if (VErr.empty() && !knownDevice(Request.Config.DeviceName))
    VErr = "offload service: unknown device '" + Request.Config.DeviceName +
           "'";
  if (!VErr.empty()) {
    ++Rejected;
    Promise.set_value(trapped(VErr));
    return Future;
  }

  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Request.Config);
  KernelKey Key =
      KernelKey::make(Request.Worker, Canon, &classTextFor(Request.Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Request.Worker, Canon); });
  if (!Kernel->Ok) {
    // Semantic failure: the filter does not compile for GPUs at all.
    // No retry and no interpreter fallback — callers rely on the trap
    // to learn the filter is not offloadable.
    ++Failed;
    Promise.set_value(
        trapped("offload service: compilation failed: " + Kernel->Error));
    return Future;
  }

  PendingInvoke Inv;
  Inv.Worker = Request.Worker;
  Inv.Config = Canon;
  Inv.Args = std::move(Request.Args);
  Inv.Promise = std::move(Promise);
  refreshDeadline(Inv);
  if (!place(Inv, /*IsRequeue=*/false))
    fallbackOrFail(std::move(Inv),
                   "offload service: no worker available for device '" +
                       Canon.DeviceName + "'");
  return Future;
}

ExecResult OffloadService::invoke(OffloadRequest Request) {
  return submit(std::move(Request)).get();
}

bool OffloadService::offloadable(MethodDecl *Worker,
                                 const rt::OffloadConfig &Config,
                                 std::string *Why) {
  std::string VErr = rt::validateOffloadConfig(Config);
  if (VErr.empty() && !knownDevice(Config.DeviceName))
    VErr = "unknown device '" + Config.DeviceName + "'";
  if (!VErr.empty()) {
    if (Why)
      *Why = VErr;
    return false;
  }
  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Config);
  KernelKey Key = KernelKey::make(Worker, Canon, &classTextFor(Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Worker, Canon); });
  if (!Kernel->Ok && Why)
    *Why = Kernel->Error;
  return Kernel->Ok;
}

CompiledKernel OffloadService::compileVerified(MethodDecl *Worker,
                                               const rt::OffloadConfig &Canon) {
  CompiledKernel Kernel;
  {
    std::lock_guard<std::mutex> Lock(CompileMu);
    Kernel = analysis::oracleCompile(Prog, Types, Worker, Canon.Mem);
    if (Config.PostCompileHook)
      Config.PostCompileHook(Kernel);
  }
  if (!Kernel.Ok || !Config.VerifyKernels)
    return Kernel;

  // Admission gate: a kernel the verifier cannot certify never
  // reaches a device. The failure is cached like any other compile
  // failure, so repeat offenders are rejected without re-analysis.
  // The cache key covers source, device, and memory config but NOT
  // launch geometry, so the cached verdict must hold for every
  // LocalSize/MaxGroups that can share the entry: Symbolic geometry,
  // not this request's sizes. Caller --assume facts are Ignored for
  // the same reason — they are not part of the key either. The device
  // IS part of the key, so its occupancy limits are fair game.
  analysis::VerifyRequest VR;
  VR.Kernel = &Kernel;
  VR.Geometry = analysis::GeometryPolicy::Symbolic;
  VR.AssumeMode = analysis::AssumePolicy::Ignore;
  VR.Device = &ocl::deviceByName(Canon.DeviceName);
  // The bytecode tier runs too: a proven-OOB access in the
  // post-inlining bytecode is an error finding and blocks admission
  // (its Unknowns are notes, so it never rejects more than the AST
  // passes would — it only adds what they miss at the other tier).
  VR.BytecodeTier = true;
  analysis::VerifyResult V = analysis::runVerification(VR);
  if (!V.Admitted) {
    std::ostringstream E;
    E << "kernel verifier: " << V.Report.errorCount()
      << " error finding(s) in '" << Kernel.Plan.KernelName << "':\n"
      << V.Report.str();
    Kernel.Ok = false;
    Kernel.Error = E.str();
  }
  return Kernel;
}

const std::string &OffloadService::classTextFor(const MethodDecl *Worker) {
  const ClassDecl *C = Worker->parent();
  std::lock_guard<std::mutex> Lock(ClassTextMu);
  auto It = ClassTexts.find(C);
  if (It != ClassTexts.end())
    return It->second;
  ASTPrintOptions Opts;
  Opts.ShowTypes = true;
  return ClassTexts.emplace(C, C ? printClass(C, Opts) : std::string())
      .first->second;
}

std::string OffloadService::instanceKey(MethodDecl *Worker,
                                        const CompiledKernel *Kernel,
                                        const rt::OffloadConfig &Canon) {
  // Everything that changes execution except the worker id: which
  // kernel, and the launch/marshal knobs the kernel key does not
  // cover. The worker id is the inner map key so scheduling can see
  // which workers already hold an instance.
  std::ostringstream K;
  K << static_cast<const void *>(Worker) << '|'
    << static_cast<const void *>(Kernel) << "|ls" << Canon.LocalSize << "|mg"
    << Canon.MaxGroups << "|sm" << Canon.UseSpecializedMarshal << "|dm"
    << Canon.DirectMarshal << "|ov" << Canon.OverlapPipelining;
  return K.str();
}

std::vector<unsigned> OffloadService::instanceWorkers(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(InstMu);
  std::vector<unsigned> Ids;
  auto It = Instances.find(Key);
  if (It != Instances.end())
    for (const auto &[Id, Inst] : It->second)
      Ids.push_back(Id); // a past fault left no stale error (the
                         // worker clears it when recording a failure)
  return Ids;
}

FilterInstance *
OffloadService::instanceFor(const std::string &Key, MethodDecl *Worker,
                            std::shared_ptr<const CompiledKernel> Kernel,
                            unsigned WorkerId, const rt::OffloadConfig &Canon,
                            std::string &Err) {
  std::lock_guard<std::mutex> Lock(InstMu);
  auto &PerWorker = Instances[Key];
  auto It = PerWorker.find(WorkerId);
  if (It != PerWorker.end())
    return It->second.get();

  auto Inst = std::make_unique<FilterInstance>();
  Inst->Filter = std::make_unique<rt::OffloadedFilter>(
      Prog, Types, Worker, Canon, nullptr, *Kernel);
  // Per-worker fault domain: "w3:gtx580" so injection plans can pin
  // one worker ("w3:gtx580") or every worker of a model ("gtx580").
  Inst->Filter->setFaultDomain("w" + std::to_string(WorkerId) + ":" +
                               Canon.DeviceName);
  // Native-artifact sharing: all workers of one cache entry build
  // through the same slot, so the bytecode + JIT code is compiled
  // once and adopted by every later context.
  Inst->Filter->setSharedProgram(
      Cache.bundleSlot(KernelKey::make(Worker, Canon, &classTextFor(Worker))));
  // Keep the cached kernel alive as long as the instance references
  // its plan-derived state (the filter holds its own copy, but the
  // instance key embeds the cache pointer).
  Inst->Kernel = std::move(Kernel);
  if (!Inst->Filter->ok()) {
    // Construction failures are not cached: a retry may rebuild.
    Err = Inst->Filter->error();
    return nullptr;
  }

  // Batch eligibility: a map kernel whose only non-output array is
  // the map source. Then requests differ only in that one stream
  // argument (mergeable() verifies the rest match bit-for-bit), and
  // per-element independence makes a concatenated launch produce the
  // same bits as separate launches.
  const KernelPlan &Plan = Inst->Filter->kernel().Plan;
  if (Plan.Kind == KernelKind::Map) {
    const KernelArray *Src = Plan.mapSource();
    size_t NonOutputArrays = 0;
    for (const KernelArray &A : Plan.Arrays)
      if (!A.IsOutput)
        ++NonOutputArrays;
    if (Src && Src->WorkerParam && NonOutputArrays == 1) {
      const auto &Params = Worker->params();
      for (size_t I = 0; I != Params.size(); ++I)
        if (Params[I] == Src->WorkerParam)
          Inst->SourceParam = static_cast<int>(I);
    }
  }

  FilterInstance *Raw = Inst.get();
  PerWorker[WorkerId] = std::move(Inst);
  return Raw;
}

double OffloadService::execute(std::vector<PendingInvoke> &Batch,
                               unsigned WorkerId) {
  // Deadline enforcement, part 1: a request that expired while queued
  // (typically behind a hung launch) never reaches the device — it
  // goes straight back through the retry path toward a healthy worker
  // or the interpreter.
  for (auto It = Batch.begin(); It != Batch.end();) {
    if (It->hasDeadline() &&
        std::chrono::steady_clock::now() > It->Deadline) {
      PendingInvoke Expired = std::move(*It);
      It = Batch.erase(It);
      ++TimedOut;
      handleFailure(std::move(Expired), WorkerId,
                    "offload service: launch deadline expired in queue");
    } else {
      ++It;
    }
  }
  if (Batch.empty()) {
    // Nothing launched, so the breaker gets no verdict; if this was a
    // probation trial, make the worker probe-able again.
    Pool->recordSkipped(WorkerId);
    return 0.0;
  }

  FilterInstance *Inst = Batch.front().Instance;
  rt::OffloadedFilter &F = *Inst->Filter;

  // A failed launch is a device fault (injected or real): record it
  // against the worker's breaker, then push every request of the
  // batch through retry/requeue/fallback. Requests drained from the
  // queue by a quarantine re-route without counting an attempt.
  auto FailAll = [&](const std::string &Msg) {
    F.clearError();
    std::vector<PendingInvoke> Drained;
    if (Pool->recordFailure(WorkerId, Drained))
      ++Quarantined;
    for (PendingInvoke &B : Batch)
      handleFailure(std::move(B), WorkerId, Msg);
    Batch.clear();
    reroute(Drained, WorkerId);
  };

  // Merge a multi-request batch into one launch: concatenate the
  // stream arrays, remember the split points.
  bool Merged = Batch.size() > 1;
  int SP = Batch.front().SourceParam;
  std::vector<RtValue> Args;
  std::vector<size_t> Lens;
  if (Merged) {
    auto MergedArr = std::make_shared<RtArray>();
    const std::shared_ptr<RtArray> &First = Batch.front().Args[SP].array();
    MergedArr->ElementType = First->ElementType;
    MergedArr->Immutable = true;
    for (PendingInvoke &B : Batch) {
      const std::vector<RtValue> &E = B.Args[SP].array()->Elems;
      Lens.push_back(E.size());
      MergedArr->Elems.insert(MergedArr->Elems.end(), E.begin(), E.end());
    }
    Args = Batch.front().Args;
    Args[SP] = RtValue::makeArray(std::move(MergedArr));
  } else {
    // Copied, not moved: a failed launch retries with these args.
    Args = Batch.front().Args;
  }

  rt::OffloadStats Before = F.stats();

  // First invocation builds the OpenCL program, and the
  // constant-capacity fallback may recompile through GpuCompiler:
  // serialize that against cache-miss compiles. Preparing with the
  // *merged* arguments sizes the fallback check for what actually
  // launches.
  if (!F.prepared()) {
    std::string Err;
    {
      std::lock_guard<std::mutex> Lock(CompileMu);
      Err = F.prepare(Args);
    }
    if (!Err.empty()) {
      FailAll(Err);
      return 0.0;
    }
  }

  ExecResult R = F.invoke(Args);
  rt::OffloadStats After = F.stats();
  accumulate(Before, After);
  double SimNs = After.totalNs() - Before.totalNs();

  if (R.Trapped) {
    FailAll(R.TrapMessage);
    return SimNs;
  }

  // Deadline enforcement, part 2: the launch completed but a hang may
  // have pushed it past its deadline. The result is still correct and
  // is delivered, but the worker eats a breaker failure — a device
  // that keeps clients waiting sheds its queue like a dead one.
  bool Late = false;
  auto Done = std::chrono::steady_clock::now();
  for (const PendingInvoke &B : Batch)
    if (B.hasDeadline() && Done > B.Deadline) {
      Late = true;
      break;
    }
  if (Late) {
    ++TimedOut;
    std::vector<PendingInvoke> Drained;
    if (Pool->recordFailure(WorkerId, Drained))
      ++Quarantined;
    reroute(Drained, WorkerId);
  } else {
    Pool->recordSuccess(WorkerId);
  }

  if (!Merged) {
    Batch.front().Promise.set_value(std::move(R));
    ++Completed;
    return SimNs;
  }

  // Split the merged output back per request. A malformed merged
  // result is a launch-level fault like any other: retry unmerged.
  const std::shared_ptr<RtArray> &Out =
      R.Value.isArray() ? R.Value.array() : nullptr;
  size_t Total = 0;
  for (size_t L : Lens)
    Total += L;
  if (!Out || Out->Elems.size() != Total) {
    FailAll("offload service: merged launch output mismatch");
    return SimNs;
  }
  size_t Off = 0;
  for (size_t I = 0; I != Batch.size(); ++I) {
    auto Part = std::make_shared<RtArray>();
    Part->ElementType = Out->ElementType;
    Part->Immutable = Out->Immutable;
    Part->Elems.assign(Out->Elems.begin() + Off,
                       Out->Elems.begin() + Off + Lens[I]);
    Off += Lens[I];
    ExecResult RR;
    RR.Value = RtValue::makeArray(std::move(Part));
    Batch[I].Promise.set_value(std::move(RR));
    ++Completed;
  }
  return SimNs;
}

bool OffloadService::place(PendingInvoke &Inv, bool IsRequeue) {
  // Candidate models: the request's own first; on a requeue every
  // other model in the pool too ("any compatible device" — the cache
  // recompiles the kernel for the alternate model's memory config).
  std::vector<std::string> Models{Inv.Config.DeviceName};
  if (IsRequeue)
    for (const std::string &M : Pool->modelNames())
      if (M != Inv.Config.DeviceName)
        Models.push_back(M);

  for (const std::string &M : Models) {
    rt::OffloadConfig Cfg = Inv.Config;
    Cfg.DeviceName = M;
    rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Cfg);
    KernelKey Key =
        KernelKey::make(Inv.Worker, Canon, &classTextFor(Inv.Worker));
    std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
        Key, [&] { return compileVerified(Inv.Worker, Canon); });
    if (!Kernel->Ok)
      continue;
    std::string IKey = instanceKey(Inv.Worker, Kernel.get(), Canon);
    // Lazy worker creation only for the model the request asked for;
    // requeue candidates are whatever the pool already runs.
    int Id = Pool->pickWorker(Canon.DeviceName, instanceWorkers(IKey),
                              /*AffinityBias=*/4, Inv.FailedWorkers,
                              /*AddIfMissing=*/!IsRequeue);
    if (Id < 0)
      continue;
    std::string IErr;
    FilterInstance *Inst =
        instanceFor(IKey, Inv.Worker, std::move(Kernel),
                    static_cast<unsigned>(Id), Canon, IErr);
    if (!Inst) {
      Pool->recordSkipped(static_cast<unsigned>(Id));
      continue;
    }
    Inv.Instance = Inst;
    Inv.SourceParam = -1;
    if (!IsRequeue && Config.EnableBatching && Inst->SourceParam >= 0 &&
        Inst->SourceParam < static_cast<int>(Inv.Args.size()) &&
        Inv.Args[Inst->SourceParam].isArray())
      Inv.SourceParam = Inst->SourceParam;
    // Internal requeues come from worker threads and must not block
    // on a full queue (two workers re-routing onto each other would
    // deadlock), so they bypass the backpressure bound.
    if (Pool->submitTo(static_cast<unsigned>(Id), Inv, /*Force=*/IsRequeue))
      return true;
    Pool->recordSkipped(static_cast<unsigned>(Id));
  }
  return false;
}

void OffloadService::refreshDeadline(PendingInvoke &Inv) const {
  if (Config.LaunchDeadlineMs > 0)
    Inv.Deadline = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(static_cast<int64_t>(
                       Config.LaunchDeadlineMs * 1000.0));
}

void OffloadService::handleFailure(PendingInvoke Inv, unsigned WorkerId,
                                   const std::string &Reason) {
  Inv.Attempt += 1;
  if (!Inv.excluded(WorkerId))
    Inv.FailedWorkers.push_back(WorkerId);
  if (Inv.Attempt > Config.MaxRetries) {
    fallbackOrFail(std::move(Inv), Reason);
    return;
  }

  // Exponential backoff: base * 2^(attempt-1), capped.
  double Ms = Config.BackoffBaseMs *
              static_cast<double>(1ull << std::min(Inv.Attempt - 1, 20u));
  Ms = std::min(Ms, Config.BackoffMaxMs);
  if (Ms > 0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(Ms));

  ++Retried;
  refreshDeadline(Inv); // each attempt is a fresh launch
  // First retry stays on the failed worker — most injected/real
  // faults are transient — unless the breaker already opened.
  if (Inv.Attempt == 1 &&
      Pool->breakerStateOf(WorkerId) == BreakerState::Closed) {
    Inv.SourceParam = -1;
    if (Pool->submitTo(WorkerId, Inv, /*Force=*/true))
      return;
  }
  if (place(Inv, /*IsRequeue=*/true))
    return;
  fallbackOrFail(std::move(Inv), Reason);
}

void OffloadService::reroute(std::vector<PendingInvoke> &Drained,
                             unsigned WorkerId) {
  for (PendingInvoke &D : Drained) {
    if (!D.excluded(WorkerId))
      D.FailedWorkers.push_back(WorkerId);
    ++Retried;
    refreshDeadline(D);
    if (!place(D, /*IsRequeue=*/true))
      fallbackOrFail(std::move(D),
                     "offload service: worker quarantined and no healthy "
                     "peer available");
  }
  Drained.clear();
}

void OffloadService::fallbackOrFail(PendingInvoke Inv,
                                    const std::string &Reason) {
  if (!Config.FallbackToInterpreter) {
    ++Failed;
    Inv.Promise.set_value(trapped(Reason));
    return;
  }
  // Graceful degradation: the interpreter is the language's reference
  // semantics, so the future resolves bit-identically to a healthy
  // offload — just without a device. Runs under the compile mutex
  // because evaluation shares the TypeContext with the compiler.
  ++FellBack;
  ExecResult R;
  {
    std::lock_guard<std::mutex> Lock(CompileMu);
    Interp I(Prog, Types);
    R = I.callMethod(Inv.Worker, nullptr, std::move(Inv.Args));
  }
  if (R.Trapped)
    ++Failed;
  else
    ++Completed;
  Inv.Promise.set_value(std::move(R));
}

void OffloadService::accumulate(const rt::OffloadStats &Before,
                                const rt::OffloadStats &After) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  DeviceStats.Marshal.JavaNs += After.Marshal.JavaNs - Before.Marshal.JavaNs;
  DeviceStats.Marshal.NativeNs +=
      After.Marshal.NativeNs - Before.Marshal.NativeNs;
  DeviceStats.Marshal.Bytes += After.Marshal.Bytes - Before.Marshal.Bytes;
  DeviceStats.ApiNs += After.ApiNs - Before.ApiNs;
  DeviceStats.PcieNs += After.PcieNs - Before.PcieNs;
  DeviceStats.KernelNs += After.KernelNs - Before.KernelNs;
  DeviceStats.Invocations += After.Invocations - Before.Invocations;
}

void OffloadService::waitIdle() { Pool->waitIdle(); }

OffloadServiceStats OffloadService::stats() const {
  OffloadServiceStats S;
  S.Submitted = Submitted.load();
  S.Completed = Completed.load();
  S.Failed = Failed.load();
  S.Rejected = Rejected.load();
  S.Retried = Retried.load();
  S.TimedOut = TimedOut.load();
  S.Quarantined = Quarantined.load();
  S.FellBack = FellBack.load();
  S.Cache = Cache.stats();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S.Device = DeviceStats;
  }
  S.Devices = Pool->stats();
  return S;
}
