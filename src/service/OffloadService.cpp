//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "service/OffloadService.h"

#include "analysis/KernelVerifier.h"
#include "lime/ast/ASTPrinter.h"
#include "ocl/DeviceModel.h"

#include <sstream>

using namespace lime;
using namespace lime::service;

static bool knownDevice(const std::string &Name) {
  for (const ocl::DeviceModel &D : ocl::deviceRegistry())
    if (D.Name == Name)
      return true;
  return false;
}

static ExecResult trapped(std::string Msg) {
  ExecResult R;
  R.Trapped = true;
  R.TrapMessage = std::move(Msg);
  return R;
}

OffloadService::OffloadService(Program *P, TypeContext &Types,
                               ServiceConfig Config)
    : Prog(P), Types(Types), Config(std::move(Config)),
      Cache(this->Config.CacheCapacity) {
  Cache.setDiskDir(this->Config.DiskCacheDir);
  // Unknown model names would abort deep in the device layer; drop
  // them here and guarantee at least one worker.
  std::vector<std::string> Names;
  for (const std::string &N : this->Config.Devices)
    if (knownDevice(N))
      Names.push_back(N);
  if (Names.empty())
    Names.push_back("gtx580");
  unsigned MaxBatch = this->Config.EnableBatching ? this->Config.MaxBatch : 1;
  Pool = std::make_unique<DevicePool>(
      std::move(Names), this->Config.QueueDepth, MaxBatch,
      [this](std::vector<PendingInvoke> &Batch, unsigned Id) {
        return execute(Batch, Id);
      });
}

OffloadService::~OffloadService() {
  // Drain the workers while every member they touch is still alive.
  Pool.reset();
}

std::future<ExecResult> OffloadService::submit(OffloadRequest Request) {
  std::promise<ExecResult> Promise;
  std::future<ExecResult> Future = Promise.get_future();
  ++Submitted;

  std::string VErr = rt::validateOffloadConfig(Request.Config);
  if (!Request.Worker)
    VErr = "offload service: request has no worker";
  else if (VErr.empty() && !knownDevice(Request.Config.DeviceName))
    VErr = "offload service: unknown device '" + Request.Config.DeviceName +
           "'";
  if (!VErr.empty()) {
    ++Rejected;
    Promise.set_value(trapped(VErr));
    return Future;
  }

  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Request.Config);
  KernelKey Key =
      KernelKey::make(Request.Worker, Canon, &classTextFor(Request.Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Request.Worker, Canon); });
  if (!Kernel->Ok) {
    ++Failed;
    Promise.set_value(
        trapped("offload service: compilation failed: " + Kernel->Error));
    return Future;
  }

  // Prefer a worker that already built this kernel's per-worker
  // instance (skips an OpenCL program build) unless it is noticeably
  // more loaded than the least-loaded candidate.
  std::string IKey = instanceKey(Request.Worker, Kernel.get(), Canon);
  unsigned WorkerId =
      Pool->pickWorker(Canon.DeviceName, instanceWorkers(IKey));
  std::string IErr;
  FilterInstance *Inst =
      instanceFor(IKey, Request.Worker, std::move(Kernel), WorkerId, Canon,
                  IErr);
  if (!Inst) {
    ++Failed;
    Promise.set_value(trapped(IErr));
    return Future;
  }

  PendingInvoke Inv;
  Inv.Instance = Inst;
  if (Config.EnableBatching && Inst->SourceParam >= 0 &&
      Inst->SourceParam < static_cast<int>(Request.Args.size()) &&
      Request.Args[Inst->SourceParam].isArray())
    Inv.SourceParam = Inst->SourceParam;
  Inv.Args = std::move(Request.Args);
  Inv.Promise = std::move(Promise);
  Pool->submitTo(WorkerId, std::move(Inv));
  return Future;
}

ExecResult OffloadService::invoke(OffloadRequest Request) {
  return submit(std::move(Request)).get();
}

bool OffloadService::offloadable(MethodDecl *Worker,
                                 const rt::OffloadConfig &Config,
                                 std::string *Why) {
  std::string VErr = rt::validateOffloadConfig(Config);
  if (VErr.empty() && !knownDevice(Config.DeviceName))
    VErr = "unknown device '" + Config.DeviceName + "'";
  if (!VErr.empty()) {
    if (Why)
      *Why = VErr;
    return false;
  }
  rt::OffloadConfig Canon = rt::canonicalOffloadConfig(Config);
  KernelKey Key = KernelKey::make(Worker, Canon, &classTextFor(Worker));
  std::shared_ptr<const CompiledKernel> Kernel = Cache.getOrCompile(
      Key, [&] { return compileVerified(Worker, Canon); });
  if (!Kernel->Ok && Why)
    *Why = Kernel->Error;
  return Kernel->Ok;
}

CompiledKernel OffloadService::compileVerified(MethodDecl *Worker,
                                               const rt::OffloadConfig &Canon) {
  CompiledKernel Kernel;
  {
    std::lock_guard<std::mutex> Lock(CompileMu);
    GpuCompiler GC(Prog, Types);
    Kernel = GC.compile(Worker, Canon.Mem);
    if (Config.PostCompileHook)
      Config.PostCompileHook(Kernel);
  }
  if (!Kernel.Ok || !Config.VerifyKernels)
    return Kernel;

  // Admission gate: a kernel the verifier cannot certify never
  // reaches a device. The failure is cached like any other compile
  // failure, so repeat offenders are rejected without re-analysis.
  // The cache key covers source, device, and memory config but NOT
  // launch geometry, so the cached verdict must hold for every
  // LocalSize/MaxGroups that can share the entry: analyze with fully
  // symbolic geometry instead of baking in this request's sizes.
  analysis::AnalysisReport Report = analysis::analyzeKernel(Kernel);
  if (!Report.ok()) {
    std::ostringstream E;
    E << "kernel verifier: " << Report.errorCount()
      << " error finding(s) in '" << Kernel.Plan.KernelName << "':\n"
      << Report.str();
    Kernel.Ok = false;
    Kernel.Error = E.str();
  }
  return Kernel;
}

const std::string &OffloadService::classTextFor(const MethodDecl *Worker) {
  const ClassDecl *C = Worker->parent();
  std::lock_guard<std::mutex> Lock(ClassTextMu);
  auto It = ClassTexts.find(C);
  if (It != ClassTexts.end())
    return It->second;
  ASTPrintOptions Opts;
  Opts.ShowTypes = true;
  return ClassTexts.emplace(C, C ? printClass(C, Opts) : std::string())
      .first->second;
}

std::string OffloadService::instanceKey(MethodDecl *Worker,
                                        const CompiledKernel *Kernel,
                                        const rt::OffloadConfig &Canon) {
  // Everything that changes execution except the worker id: which
  // kernel, and the launch/marshal knobs the kernel key does not
  // cover. The worker id is the inner map key so scheduling can see
  // which workers already hold an instance.
  std::ostringstream K;
  K << static_cast<const void *>(Worker) << '|'
    << static_cast<const void *>(Kernel) << "|ls" << Canon.LocalSize << "|mg"
    << Canon.MaxGroups << "|sm" << Canon.UseSpecializedMarshal << "|dm"
    << Canon.DirectMarshal << "|ov" << Canon.OverlapPipelining;
  return K.str();
}

std::vector<unsigned> OffloadService::instanceWorkers(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(InstMu);
  std::vector<unsigned> Ids;
  auto It = Instances.find(Key);
  if (It != Instances.end())
    for (const auto &[Id, Inst] : It->second)
      if (Inst->Filter->ok())
        Ids.push_back(Id);
  return Ids;
}

FilterInstance *
OffloadService::instanceFor(const std::string &Key, MethodDecl *Worker,
                            std::shared_ptr<const CompiledKernel> Kernel,
                            unsigned WorkerId, const rt::OffloadConfig &Canon,
                            std::string &Err) {
  std::lock_guard<std::mutex> Lock(InstMu);
  auto &PerWorker = Instances[Key];
  auto It = PerWorker.find(WorkerId);
  if (It != PerWorker.end()) {
    if (!It->second->Filter->ok()) {
      Err = It->second->Filter->error();
      return nullptr;
    }
    return It->second.get();
  }

  auto Inst = std::make_unique<FilterInstance>();
  Inst->Filter = std::make_unique<rt::OffloadedFilter>(
      Prog, Types, Worker, Canon, nullptr, *Kernel);
  // Keep the cached kernel alive as long as the instance references
  // its plan-derived state (the filter holds its own copy, but the
  // instance key embeds the cache pointer).
  Inst->Kernel = std::move(Kernel);
  if (!Inst->Filter->ok()) {
    Err = Inst->Filter->error();
    PerWorker[WorkerId] = std::move(Inst); // negative-cache the failure
    return nullptr;
  }

  // Batch eligibility: a map kernel whose only non-output array is
  // the map source. Then requests differ only in that one stream
  // argument (mergeable() verifies the rest match bit-for-bit), and
  // per-element independence makes a concatenated launch produce the
  // same bits as separate launches.
  const KernelPlan &Plan = Inst->Filter->kernel().Plan;
  if (Plan.Kind == KernelKind::Map) {
    const KernelArray *Src = Plan.mapSource();
    size_t NonOutputArrays = 0;
    for (const KernelArray &A : Plan.Arrays)
      if (!A.IsOutput)
        ++NonOutputArrays;
    if (Src && Src->WorkerParam && NonOutputArrays == 1) {
      const auto &Params = Worker->params();
      for (size_t I = 0; I != Params.size(); ++I)
        if (Params[I] == Src->WorkerParam)
          Inst->SourceParam = static_cast<int>(I);
    }
  }

  FilterInstance *Raw = Inst.get();
  PerWorker[WorkerId] = std::move(Inst);
  return Raw;
}

double OffloadService::execute(std::vector<PendingInvoke> &Batch, unsigned) {
  FilterInstance *Inst = Batch.front().Instance;
  rt::OffloadedFilter &F = *Inst->Filter;

  auto TrapAll = [&](const std::string &Msg) {
    for (PendingInvoke &B : Batch)
      B.Promise.set_value(trapped(Msg));
    Failed += Batch.size();
  };

  // Merge a multi-request batch into one launch: concatenate the
  // stream arrays, remember the split points.
  bool Merged = Batch.size() > 1;
  int SP = Batch.front().SourceParam;
  std::vector<RtValue> Args;
  std::vector<size_t> Lens;
  if (Merged) {
    auto MergedArr = std::make_shared<RtArray>();
    const std::shared_ptr<RtArray> &First = Batch.front().Args[SP].array();
    MergedArr->ElementType = First->ElementType;
    MergedArr->Immutable = true;
    for (PendingInvoke &B : Batch) {
      const std::vector<RtValue> &E = B.Args[SP].array()->Elems;
      Lens.push_back(E.size());
      MergedArr->Elems.insert(MergedArr->Elems.end(), E.begin(), E.end());
    }
    Args = Batch.front().Args;
    Args[SP] = RtValue::makeArray(std::move(MergedArr));
  } else {
    Args = std::move(Batch.front().Args);
  }

  rt::OffloadStats Before = F.stats();

  // First invocation builds the OpenCL program, and the
  // constant-capacity fallback may recompile through GpuCompiler:
  // serialize that against cache-miss compiles. Preparing with the
  // *merged* arguments sizes the fallback check for what actually
  // launches.
  if (!F.prepared()) {
    std::lock_guard<std::mutex> Lock(CompileMu);
    std::string Err = F.prepare(Args);
    if (!Err.empty()) {
      TrapAll(Err);
      return 0.0;
    }
  }

  ExecResult R = F.invoke(Args);
  rt::OffloadStats After = F.stats();
  accumulate(Before, After);
  double SimNs = After.totalNs() - Before.totalNs();

  if (R.Trapped) {
    TrapAll(R.TrapMessage);
    return SimNs;
  }
  if (!Merged) {
    Batch.front().Promise.set_value(std::move(R));
    ++Completed;
    return SimNs;
  }

  // Split the merged output back per request.
  if (!R.Value.isArray()) {
    TrapAll("offload service: merged launch produced a non-array result");
    return SimNs;
  }
  const std::shared_ptr<RtArray> &Out = R.Value.array();
  size_t Total = 0;
  for (size_t L : Lens)
    Total += L;
  if (Out->Elems.size() != Total) {
    TrapAll("offload service: merged output length mismatch");
    return SimNs;
  }
  size_t Off = 0;
  for (size_t I = 0; I != Batch.size(); ++I) {
    auto Part = std::make_shared<RtArray>();
    Part->ElementType = Out->ElementType;
    Part->Immutable = Out->Immutable;
    Part->Elems.assign(Out->Elems.begin() + Off,
                       Out->Elems.begin() + Off + Lens[I]);
    Off += Lens[I];
    ExecResult RR;
    RR.Value = RtValue::makeArray(std::move(Part));
    Batch[I].Promise.set_value(std::move(RR));
    ++Completed;
  }
  return SimNs;
}

void OffloadService::accumulate(const rt::OffloadStats &Before,
                                const rt::OffloadStats &After) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  DeviceStats.Marshal.JavaNs += After.Marshal.JavaNs - Before.Marshal.JavaNs;
  DeviceStats.Marshal.NativeNs +=
      After.Marshal.NativeNs - Before.Marshal.NativeNs;
  DeviceStats.Marshal.Bytes += After.Marshal.Bytes - Before.Marshal.Bytes;
  DeviceStats.ApiNs += After.ApiNs - Before.ApiNs;
  DeviceStats.PcieNs += After.PcieNs - Before.PcieNs;
  DeviceStats.KernelNs += After.KernelNs - Before.KernelNs;
  DeviceStats.Invocations += After.Invocations - Before.Invocations;
}

void OffloadService::waitIdle() { Pool->waitIdle(); }

OffloadServiceStats OffloadService::stats() const {
  OffloadServiceStats S;
  S.Submitted = Submitted.load();
  S.Completed = Completed.load();
  S.Failed = Failed.load();
  S.Rejected = Rejected.load();
  S.Cache = Cache.stats();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S.Device = DeviceStats;
  }
  S.Devices = Pool->stats();
  return S;
}
