//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "runtime/AutoTuner.h"

#include "analysis/AnalysisOracle.h"
#include "ocl/DeviceModel.h"
#include "support/StringUtils.h"

using namespace lime;
using namespace lime::rt;

TuneResult lime::rt::autoTune(Program *P, TypeContext &Types,
                              MethodDecl *Worker,
                              const std::vector<RtValue> &SampleArgs,
                              const OffloadConfig &Base,
                              const TuneOptions &Opts) {
  TuneResult Out;

  const std::pair<const char *, MemoryConfig> Configs[] = {
      {"global", MemoryConfig::global()},
      {"global+vector", MemoryConfig::globalVector()},
      {"local", MemoryConfig::local()},
      {"local+noconflict", MemoryConfig::localNoConflict()},
      {"local+noconflict+vector", MemoryConfig::localNoConflictVector()},
      {"constant", MemoryConfig::constant()},
      {"constant+vector", MemoryConfig::constantVector()},
      {"texture", MemoryConfig::texture()},
  };
  const unsigned LocalSizes[] = {32, 64, 128, 256};

  const ocl::DeviceModel &Dev = ocl::deviceByName(Base.DeviceName);
  // One oracle for the whole sweep: the proof runs over the baseline
  // emission, which no sweep axis changes.
  analysis::AnalysisOracle Oracle(P, Types, Worker);
  GpuCompiler GC(P, Types);

  bool AnyValid = false;
  for (const auto &[Name, Mem] : Configs) {
    // The plan depends only on the memory configuration, so compile
    // once per column and reuse it across group sizes. Compile under
    // the canonical config (tile budget clamped to the device) so the
    // plan matches what OffloadedFilter would have produced itself.
    OffloadConfig Proto = Base;
    Proto.Mem = Mem;
    Proto = canonicalOffloadConfig(Proto);
    CompiledKernel CK = GC.compile(
        Worker, Proto.Mem,
        [&Oracle](KernelPlan &Plan) { Oracle.stampFacts(Plan); });

    for (unsigned Local : LocalSizes) {
      TuneTrial Trial;
      Trial.Label = formatString("%s @%u", Name, Local);
      Trial.Mem = Mem;
      Trial.LocalSize = Local;

      if (!CK.Ok) {
        Trial.Error = CK.Error;
        Out.Trials.push_back(std::move(Trial));
        continue;
      }

      if (Opts.PruneInfeasible) {
        analysis::OccupancyVerdict V =
            analysis::AnalysisOracle::occupancyVerdict(CK.Plan, Dev, Local);
        if (!V.feasible()) {
          Trial.Pruned = true;
          Trial.Error = "pruned by occupancy verdict: " + V.summary();
          ++Out.Pruned;
          Out.Trials.push_back(std::move(Trial));
          continue;
        }
      }

      OffloadConfig OC = Base;
      OC.Mem = Mem;
      OC.LocalSize = Local;
      OffloadedFilter Filter(P, Types, Worker, OC, nullptr, CK);
      if (!Filter.ok()) {
        Trial.Error = Filter.error();
        Out.Trials.push_back(std::move(Trial));
        continue;
      }
      ExecResult R = Filter.invoke(SampleArgs);
      if (!R.ok()) {
        Trial.Error = R.TrapMessage;
        Out.Trials.push_back(std::move(Trial));
        continue;
      }
      Trial.Valid = true;
      Trial.KernelNs = Filter.stats().KernelNs;
      if (!AnyValid || Trial.KernelNs < Out.BestKernelNs) {
        AnyValid = true;
        Out.BestKernelNs = Trial.KernelNs;
        Out.Best = OC;
      }
      Out.Trials.push_back(std::move(Trial));
    }
  }

  if (!AnyValid) {
    Out.Error = "no configuration ran successfully";
    if (!Out.Trials.empty())
      Out.Error += "; first failure: " + Out.Trials.front().Error;
    return Out;
  }
  Out.Ok = true;
  return Out;
}
