//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "runtime/AutoTuner.h"

#include "support/StringUtils.h"

using namespace lime;
using namespace lime::rt;

TuneResult lime::rt::autoTune(Program *P, TypeContext &Types,
                              MethodDecl *Worker,
                              const std::vector<RtValue> &SampleArgs,
                              const OffloadConfig &Base) {
  TuneResult Out;

  const std::pair<const char *, MemoryConfig> Configs[] = {
      {"global", MemoryConfig::global()},
      {"global+vector", MemoryConfig::globalVector()},
      {"local", MemoryConfig::local()},
      {"local+noconflict", MemoryConfig::localNoConflict()},
      {"local+noconflict+vector", MemoryConfig::localNoConflictVector()},
      {"constant", MemoryConfig::constant()},
      {"constant+vector", MemoryConfig::constantVector()},
      {"texture", MemoryConfig::texture()},
  };
  const unsigned LocalSizes[] = {32, 64, 128, 256};

  bool AnyValid = false;
  for (const auto &[Name, Mem] : Configs) {
    for (unsigned Local : LocalSizes) {
      TuneTrial Trial;
      Trial.Label = formatString("%s @%u", Name, Local);
      Trial.Mem = Mem;
      Trial.LocalSize = Local;

      OffloadConfig OC = Base;
      OC.Mem = Mem;
      OC.LocalSize = Local;
      OffloadedFilter Filter(P, Types, Worker, OC);
      if (!Filter.ok()) {
        Trial.Error = Filter.error();
        Out.Trials.push_back(std::move(Trial));
        continue;
      }
      ExecResult R = Filter.invoke(SampleArgs);
      if (!R.ok()) {
        Trial.Error = R.TrapMessage;
        Out.Trials.push_back(std::move(Trial));
        continue;
      }
      Trial.Valid = true;
      Trial.KernelNs = Filter.stats().KernelNs;
      if (!AnyValid || Trial.KernelNs < Out.BestKernelNs) {
        AnyValid = true;
        Out.BestKernelNs = Trial.KernelNs;
        Out.Best = OC;
      }
      Out.Trials.push_back(std::move(Trial));
    }
  }

  if (!AnyValid) {
    Out.Error = "no configuration ran successfully";
    if (!Out.Trials.empty())
      Out.Error += "; first failure: " + Out.Trials.front().Error;
    return Out;
  }
  Out.Ok = true;
  return Out;
}
