//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Task-graph execution (paper §3.1, §4). A graph built by `task` and
/// `=>` runs as a pipeline: the source worker is pulled until it
/// throws Underflow; each produced value flows through the filters to
/// the sink. Filters that pass kernel identification run on the
/// simulated device through the offload manager when offloading is
/// enabled; everything else (sources, sinks, stateful tasks,
/// non-offloadable filters) runs in the evaluator — the same split as
/// the paper's JVM + OpenCL co-execution.
///
/// The runtime registers itself as the evaluator's GraphExecutor, so
/// Lime-level `finish g;` statements execute through it.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_RUNTIME_TASKGRAPH_H
#define LIMECC_RUNTIME_TASKGRAPH_H

#include "lime/interp/Interp.h"
#include "runtime/Offload.h"

#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace lime::rt {

/// Installed by an offload service (src/service): given a filter
/// worker and its arguments, either handles the invocation (filling
/// \p Out, returning true) or declines (return false → the filter
/// runs on the host). Lets pipelines share compiled kernels and
/// devices with every other client of the service.
using ServiceInvokeFn = std::function<bool(
    MethodDecl *Worker, const std::vector<RtValue> &Args, ExecResult &Out)>;

struct PipelineConfig {
  /// Offload eligible filters to the simulated device; otherwise the
  /// whole pipeline runs in the evaluator (the Fig. 7 baseline).
  bool OffloadFilters = false;
  OffloadConfig Offload;
  /// When set (and OffloadFilters is on), filter invocations route
  /// through the shared offload service instead of per-pipeline
  /// OffloadedFilters.
  ServiceInvokeFn ServiceInvoke;
  /// Safety valve for runaway sources.
  uint64_t MaxPulls = 1u << 20;
};

/// Per-node accounting for the figures.
struct NodeStats {
  std::string Name;
  bool Offloaded = false;
  uint64_t Invocations = 0;
  double HostNs = 0.0;     // evaluator time in this node
  OffloadStats Device;     // device time decomposition (offloaded only)
};

class TaskGraphRuntime : public GraphExecutor {
public:
  TaskGraphRuntime(Interp &I, PipelineConfig Config = PipelineConfig());
  ~TaskGraphRuntime() override;

  /// GraphExecutor: runs \p Graph to completion; returns an error
  /// message or "".
  std::string run(const RtGraph &Graph) override;

  const std::vector<NodeStats> &nodeStats() const { return Stats; }

  /// Why each filter was (not) offloaded, for reports.
  const std::map<MethodDecl *, std::string> &offloadDecisions() const {
    return Decisions;
  }

private:
  /// Returns the cached offloaded form of \p Worker, or null when it
  /// stays on the host.
  OffloadedFilter *offloadedFor(MethodDecl *Worker);

  Interp &I;
  PipelineConfig Config;
  std::vector<NodeStats> Stats;
  std::map<MethodDecl *, std::unique_ptr<OffloadedFilter>> Cache;
  std::map<MethodDecl *, std::string> Decisions;
  /// One context per device, shared by every filter in the pipeline.
  std::map<std::string, std::shared_ptr<ocl::ClContext>> DeviceContexts;
};

} // namespace lime::rt

#endif // LIMECC_RUNTIME_TASKGRAPH_H
