//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serializer.h"

#include "support/Casting.h"
#include "support/FaultInjection.h"

#include <cstring>
#include <mutex>

using namespace lime;
using namespace lime::rt;

namespace {

void appendBytes(std::vector<uint8_t> &Out, const void *P, size_t N) {
  const auto *B = static_cast<const uint8_t *>(P);
  Out.insert(Out.end(), B, B + N);
}

void appendScalar(std::vector<uint8_t> &Out, const RtValue &V) {
  switch (V.kind()) {
  case RtValue::Kind::Bool: {
    uint8_t B = V.asBool() ? 1 : 0;
    appendBytes(Out, &B, 1);
    return;
  }
  case RtValue::Kind::Byte: {
    int8_t B = static_cast<int8_t>(V.asIntegral());
    appendBytes(Out, &B, 1);
    return;
  }
  case RtValue::Kind::Int: {
    int32_t I = static_cast<int32_t>(V.asIntegral());
    appendBytes(Out, &I, 4);
    return;
  }
  case RtValue::Kind::Long: {
    int64_t I = V.asIntegral();
    appendBytes(Out, &I, 8);
    return;
  }
  case RtValue::Kind::Float: {
    float F = static_cast<float>(V.asNumber());
    appendBytes(Out, &F, 4);
    return;
  }
  case RtValue::Kind::Double: {
    double D = V.asNumber();
    appendBytes(Out, &D, 8);
    return;
  }
  default:
    lime_unreachable("non-scalar in scalar serializer");
  }
}

/// True when an array holds scalars directly (a specializable leaf).
bool isPrimitiveLeaf(const RtArray &A) {
  return A.Elems.empty() || A.Elems[0].isNumeric() ||
         A.Elems[0].kind() == RtValue::Kind::Bool;
}

/// True when an array is a matrix of primitive rows. "Because Lime
/// arrays can express bounds, the runtime system can sometimes
/// determine the exact size of the target byte array up-front"
/// (§4.3) — such nested arrays bulk-copy without a per-row generic
/// walk.
bool isNestedPrimitive(const RtArray &A) {
  return !A.Elems.empty() && A.Elems[0].isArray() &&
         isPrimitiveLeaf(*A.Elems[0].array());
}

} // namespace

uint64_t WireFormat::scalarCount(const RtValue &V) {
  if (!V.isArray())
    return V.isUnit() ? 0 : 1;
  uint64_t N = 0;
  for (const RtValue &E : V.array()->Elems)
    N += scalarCount(E);
  return N;
}

void WireFormat::serializeInto(const RtValue &V, std::vector<uint8_t> &Out,
                               MarshalCost &Cost,
                               bool SpecializedLeaf) const {
  if (!V.isArray()) {
    appendScalar(Out, V);
    if (!SpecializedLeaf)
      Cost.JavaNs += Model.GenericJavaNsPerElem;
    return;
  }
  const RtArray &A = *V.array();
  if (UseSpecialized && isPrimitiveLeaf(A)) {
    size_t Before = Out.size();
    for (const RtValue &E : A.Elems)
      appendScalar(Out, E);
    Cost.JavaNs += Model.SpecializedJavaNsPerByte *
                   static_cast<double>(Out.size() - Before);
    return;
  }
  if (UseSpecialized && isNestedPrimitive(A)) {
    // Bounded rows: the exact byte size is known up-front, so the
    // whole matrix bulk-copies (§4.3).
    size_t Before = Out.size();
    for (const RtValue &Row : A.Elems)
      for (const RtValue &E : Row.array()->Elems)
        appendScalar(Out, E);
    Cost.JavaNs += Model.SpecializedJavaNsPerByte *
                   static_cast<double>(Out.size() - Before);
    return;
  }
  for (const RtValue &E : A.Elems)
    serializeInto(E, Out, Cost, /*SpecializedLeaf=*/false);
  // The generic walker pays per element visited at this level too.
  Cost.JavaNs +=
      Model.GenericJavaNsPerElem * static_cast<double>(A.Elems.size());
}

std::vector<uint8_t> WireFormat::serialize(const RtValue &V,
                                           MarshalCost &Cost) const {
  std::vector<uint8_t> Out;
  serializeInto(V, Out, Cost, false);
  Cost.JavaNs += Model.BoundaryCrossNs;
  Cost.Bytes += Out.size();
  // Fig. 6's forward path: after the boundary, the C side converts
  // the byte stream into the device layout — unless the Java side
  // already wrote the device format directly (§5.3 optimization).
  if (!DirectToDevice) {
    if (UseSpecialized)
      Cost.NativeNs += Model.SpecializedNativeNsPerByte *
                       static_cast<double>(Out.size());
    else
      Cost.NativeNs += Model.GenericNativeNsPerElem *
                       static_cast<double>(Out.size()) / 4.0;
  }
  return Out;
}

namespace {

/// Reads one scalar of primitive type \p P from \p Bytes at \p Off.
/// Bounds-checked: a read past \p Limit sets \p Err and returns unit.
RtValue readScalar(const PrimitiveType *P, const uint8_t *Bytes, size_t &Off,
                   size_t Limit, std::string &Err) {
  using Prim = PrimitiveType::Prim;
  size_t Need = P->sizeInBytes();
  if (Need == 0 || Off + Need > Limit) {
    if (Err.empty())
      Err = "wire: truncated buffer (need " + std::to_string(Need) +
            " byte(s) at offset " + std::to_string(Off) + " of " +
            std::to_string(Limit) + ")";
    return RtValue();
  }
  switch (P->prim()) {
  case Prim::Boolean: {
    uint8_t B = Bytes[Off];
    Off += 1;
    return RtValue::makeBool(B != 0);
  }
  case Prim::Byte: {
    int8_t B;
    std::memcpy(&B, Bytes + Off, 1);
    Off += 1;
    return RtValue::makeByte(B);
  }
  case Prim::Int: {
    int32_t I;
    std::memcpy(&I, Bytes + Off, 4);
    Off += 4;
    return RtValue::makeInt(I);
  }
  case Prim::Long: {
    int64_t I;
    std::memcpy(&I, Bytes + Off, 8);
    Off += 8;
    return RtValue::makeLong(I);
  }
  case Prim::Float: {
    float F;
    std::memcpy(&F, Bytes + Off, 4);
    Off += 4;
    return RtValue::makeFloat(F);
  }
  case Prim::Double: {
    double D;
    std::memcpy(&D, Bytes + Off, 8);
    Off += 8;
    return RtValue::makeDouble(D);
  }
  case Prim::Void:
    break;
  }
  if (Err.empty())
    Err = "wire: non-scalar primitive on the wire";
  return RtValue();
}

/// Scalars per element of array type \p T (product of bounded inner
/// dimensions), and the scalar type at the bottom. Returns 0 when an
/// inner dimension is unbounded — not decodable from a flat stream.
uint64_t scalarsPerElement(const ArrayType *T) {
  uint64_t N = 1;
  const Type *E = T->element();
  while (const auto *AE = dyn_cast<ArrayType>(E)) {
    if (AE->bound() == 0)
      return 0;
    N *= AE->bound();
    E = AE->element();
  }
  return N;
}

RtValue deserializeValue(const Type *T, const uint8_t *Bytes, size_t &Off,
                         size_t Limit, uint64_t OuterLen, std::string &Err) {
  if (const auto *PT = dyn_cast<PrimitiveType>(T))
    return readScalar(PT, Bytes, Off, Limit, Err);
  const auto *AT = cast<ArrayType>(T);
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = AT->element();
  Arr->Immutable = AT->isValueArray();
  uint64_t Len = AT->bound() ? AT->bound() : OuterLen;
  Arr->Elems.reserve(Len);
  for (uint64_t I = 0; I != Len && Err.empty(); ++I)
    Arr->Elems.push_back(
        deserializeValue(AT->element(), Bytes, Off, Limit, 0, Err));
  return RtValue::makeArray(std::move(Arr));
}

} // namespace

WireDecodeResult
WireFormat::deserializeChecked(const std::vector<uint8_t> &Bytes,
                               const Type *T, MarshalCost &Cost,
                               uint64_t ExpectedOuter) const {
  Cost.NativeNs += Model.BoundaryCrossNs;
  Cost.Bytes += Bytes.size();
  WireDecodeResult R;

  // Fault-injection hook: the buffer crossed the boundary truncated
  // (a real JNI bridge can hand over a short region under memory
  // pressure). The bounds-checked decode below turns the corruption
  // into a typed error instead of silently wrong data.
  size_t Size = Bytes.size();
  if (Size > 0 && support::FaultInjector::instance().shouldFire(
                      FaultDomain, support::FaultKind::CorruptWire))
    Size -= 1 + Size / 7;

  size_t Off = 0;
  if (const auto *PT = dyn_cast<PrimitiveType>(T)) {
    Cost.NativeNs += Model.GenericNativeNsPerElem;
    if (Size != PT->sizeInBytes()) {
      R.Error = "wire: scalar payload is " + std::to_string(Size) +
                " byte(s), type needs " + std::to_string(PT->sizeInBytes());
      return R;
    }
    R.Value = readScalar(PT, Bytes.data(), Off, Size, R.Error);
    return R;
  }

  const auto *AT = dyn_cast<ArrayType>(T);
  if (!AT) {
    R.Error = "wire: type is not decodable from a flat stream";
    return R;
  }
  const auto *Scalar = dyn_cast<PrimitiveType>(AT->scalarElement());
  uint64_t PerElem = Scalar ? scalarsPerElement(AT) * Scalar->sizeInBytes() : 0;
  if (PerElem == 0) {
    R.Error = "wire: array element size is not statically known";
    return R;
  }
  uint64_t OuterLen = AT->bound() ? AT->bound() : Size / PerElem;
  if (ExpectedOuter && OuterLen != ExpectedOuter) {
    R.Error = "wire: buffer encodes " + std::to_string(OuterLen) +
              " element(s), caller expected " + std::to_string(ExpectedOuter);
    return R;
  }
  if (OuterLen * PerElem != Size) {
    R.Error = "wire: buffer is " + std::to_string(Size) +
              " byte(s), not a whole number of " + std::to_string(PerElem) +
              "-byte elements";
    return R;
  }

  // The return path of Fig. 6: the C side emits the byte stream
  // (skipped under direct-to-device, where the Java side reads the
  // device layout itself), then the Java side reconstructs the heap
  // value.
  if (!DirectToDevice) {
    if (UseSpecialized)
      Cost.NativeNs += Model.SpecializedNativeNsPerByte *
                       static_cast<double>(Bytes.size());
    else
      Cost.NativeNs += Model.GenericNativeNsPerElem *
                       static_cast<double>(Bytes.size() /
                                           std::max(1u,
                                                    Scalar->sizeInBytes()));
  }
  if (UseSpecialized)
    Cost.JavaNs += Model.SpecializedJavaNsPerByte *
                   static_cast<double>(Bytes.size());
  else
    Cost.JavaNs += Model.GenericJavaNsPerElem *
                   static_cast<double>(Bytes.size() /
                                       std::max(1u, Scalar->sizeInBytes()));

  R.Value = deserializeValue(AT, Bytes.data(), Off, Size, OuterLen, R.Error);
  if (R.Error.empty() && Off != Size)
    R.Error = "wire: " + std::to_string(Size - Off) + " trailing byte(s)";
  if (!R.Error.empty())
    R.Value = RtValue();
  return R;
}

RtValue WireFormat::deserialize(const std::vector<uint8_t> &Bytes,
                                const Type *T, MarshalCost &Cost) const {
  return deserializeChecked(Bytes, T, Cost).Value;
}

uint64_t lime::rt::bufferIdOf(const RtValue &V) {
  if (!V.isArray() || !V.array() || !V.array()->Immutable)
    return 0;
  RtArray &A = *V.array();
  // Racing submitters may name the same array concurrently; one
  // global lock keeps ids unique and the assignment atomic. The array
  // is frozen, so only BufferId itself ever mutates here.
  static std::mutex IdMu;
  static uint64_t NextId = 1;
  std::lock_guard<std::mutex> Lock(IdMu);
  if (!A.BufferId)
    A.BufferId = NextId++;
  return A.BufferId;
}

uint64_t lime::rt::wireByteSize(const RtValue &V) {
  if (!V.isArray() || !V.array())
    return 0;
  return flatByteSize(V);
}
