//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The universal wire format between the managed host and native
/// devices (paper §4.3, Fig. 6): a Lime value serializes to a flat
/// little-endian byte stream (row-major scalars), crosses the
/// JNI-equivalent boundary, and deserializes into the C-side layout
/// the code generator expects — which is the same flat layout, so the
/// byte stream uploads directly into device buffers.
///
/// Two marshalers exist, as in the paper:
///  - the *generic* marshaler walks runtime type information value by
///    value (the paper's first implementation, where >90% of offload
///    time went);
///  - *specialized* marshalers handle (nested) primitive arrays as
///    bulk copies, restoring performance. The registry dispatches by
///    type and the generic path recurses into specialized leaves,
///    mirroring §4.3's "specialized marshaller recursively when
///    available".
///
/// Both produce identical bytes; they differ in the simulated cost
/// they report, which feeds Figure 9's marshaling share.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_RUNTIME_SERIALIZER_H
#define LIMECC_RUNTIME_SERIALIZER_H

#include "lime/interp/Value.h"

#include <cstdint>
#include <vector>

namespace lime::rt {

/// Simulated time spent marshaling, split by side of the boundary
/// (Fig. 9 reports "Java" vs "C" marshal portions).
struct MarshalCost {
  double JavaNs = 0.0;
  double NativeNs = 0.0;
  uint64_t Bytes = 0;

  MarshalCost &operator+=(const MarshalCost &R) {
    JavaNs += R.JavaNs;
    NativeNs += R.NativeNs;
    Bytes += R.Bytes;
    return *this;
  }
};

/// Cost parameters of the two marshaler families. Defaults are
/// calibrated so the generic path dominates end-to-end time (the
/// paper's >90% observation) while the specialized path leaves
/// marshaling at roughly a third of communication overhead.
struct MarshalCostModel {
  // Generic: per-element dynamic dispatch, bounds checks, boxing.
  double GenericJavaNsPerElem = 9.0;
  double GenericNativeNsPerElem = 3.5;
  // Specialized: bulk copies.
  double SpecializedJavaNsPerByte = 0.30; // array store checks remain
  double SpecializedNativeNsPerByte = 0.25;
  // Per-call boundary crossing (JNI transition).
  double BoundaryCrossNs = 1200.0;
};

/// Typed outcome of a checked deserialization: the reconstructed
/// value, or the first malformation detected in the byte stream
/// (truncated buffer, trailing bytes, un-decodable type). No byte is
/// ever read past the buffer end.
struct WireDecodeResult {
  RtValue Value;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Stable buffer identity of \p V for device-residency tracking.
/// Returns the array's id, assigning a fresh process-unique one on
/// first query; returns 0 (no identity) for non-arrays and for
/// mutable arrays, whose bits may change between launches and so can
/// never be trusted as already-resident. Thread-safe: concurrent
/// submitters may race to name the same array.
uint64_t bufferIdOf(const RtValue &V);

/// Estimated wire size of \p V in bytes (scalar payload only) — the
/// scheduler's transfer-cost input. Cheaper than serializing: counts
/// scalar slots and multiplies by the flat element size.
uint64_t wireByteSize(const RtValue &V);

class WireFormat {
public:
  explicit WireFormat(bool UseSpecialized = true,
                      MarshalCostModel Model = MarshalCostModel())
      : UseSpecialized(UseSpecialized), Model(Model) {}

  bool usesSpecialized() const { return UseSpecialized; }

  /// Fault-injection domain for the corrupt-wire hook (the offload
  /// path tags its wire with the worker's domain).
  void setFaultDomain(std::string Domain) { FaultDomain = std::move(Domain); }

  /// §5.3 future-work optimization: "the Java marshaling code should
  /// marshal directly to a format as required for device memory. This
  /// would approximately halve the marshaling overhead." When on,
  /// serialization writes the device layout in one pass (no
  /// intermediate byte array on the native side) and deserialization
  /// reads it directly, so each direction pays only one marshal.
  void setDirectToDevice(bool V) { DirectToDevice = V; }
  bool directToDevice() const { return DirectToDevice; }

  /// Serializes \p V (a value array or scalar) into flat bytes;
  /// accumulates the Java-side marshal cost plus one boundary cross.
  std::vector<uint8_t> serialize(const RtValue &V, MarshalCost &Cost) const;

  /// Reconstructs a Lime value of type \p T from flat bytes. Array
  /// lengths derive from the byte count and the type's bounded
  /// dimensions (outermost dimension unbounded). Accumulates the
  /// native-side cost plus one boundary cross. Every read is
  /// bounds-checked: a truncated or oversized buffer comes back as a
  /// typed error, never UB. \p ExpectedOuter, when non-zero, is the
  /// element count the caller knows the outermost dimension must
  /// have; a byte stream encoding any other count is an error (this
  /// is what makes truncation of byte-granular arrays detectable).
  WireDecodeResult deserializeChecked(const std::vector<uint8_t> &Bytes,
                                      const Type *T, MarshalCost &Cost,
                                      uint64_t ExpectedOuter = 0) const;

  /// Convenience form for known-well-formed buffers (tests, the
  /// round-trip benchmarks): returns the unit value on malformed
  /// input instead of the error string.
  RtValue deserialize(const std::vector<uint8_t> &Bytes, const Type *T,
                      MarshalCost &Cost) const;

  /// Total scalar slots in a value (for layout checks).
  static uint64_t scalarCount(const RtValue &V);

private:
  void serializeInto(const RtValue &V, std::vector<uint8_t> &Out,
                     MarshalCost &Cost, bool SpecializedLeaf) const;

  bool UseSpecialized;
  bool DirectToDevice = false;
  MarshalCostModel Model;
  std::string FaultDomain = "wire";
};

} // namespace lime::rt

#endif // LIMECC_RUNTIME_SERIALIZER_H
