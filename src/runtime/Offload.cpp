//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "runtime/Offload.h"

#include "analysis/AnalysisOracle.h"
#include "analysis/Assume.h"
#include "compiler/OpenCLEmitter.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>

using namespace lime;
using namespace lime::rt;
using lime::ocl::AddrSpace;
using lime::ocl::LaunchArg;

bool lime::rt::validateOffloadConfig(const OffloadConfig &Config,
                                     DiagnosticEngine &Diags) {
  bool Ok = true;
  if (Config.LocalSize == 0) {
    Diags.error(SourceLocation(), "offload config: LocalSize must be > 0");
    Ok = false;
  } else if ((Config.LocalSize & (Config.LocalSize - 1)) != 0) {
    Diags.error(SourceLocation(),
                "offload config: LocalSize must be a power of two, got " +
                    std::to_string(Config.LocalSize));
    Ok = false;
  }
  if (Config.MaxGroups == 0) {
    Diags.error(SourceLocation(), "offload config: MaxGroups must be > 0");
    Ok = false;
  }
  for (const std::string &Text : Config.Assumes) {
    analysis::AssumeFact F;
    std::string Err;
    if (!analysis::parseAssumeFact(Text, F, &Err)) {
      Diags.error(SourceLocation(),
                  "offload config: malformed assume '" + Text + "': " + Err);
      Ok = false;
    }
  }
  return Ok;
}

std::string lime::rt::validateOffloadConfig(const OffloadConfig &Config) {
  DiagnosticEngine Diags;
  if (validateOffloadConfig(Config, Diags))
    return "";
  return Diags.dump();
}

OffloadConfig lime::rt::canonicalOffloadConfig(OffloadConfig Config) {
  Config.Mem.LocalTileBudgetBytes = std::min<unsigned>(
      16 * 1024,
      ocl::deviceByName(Config.DeviceName).LocalBytesPerSM / 2);
  return Config;
}

OffloadedFilter::OffloadedFilter(Program *P, TypeContext &Types,
                                 MethodDecl *Worker,
                                 const OffloadConfig &Config)
    : OffloadedFilter(P, Types, Worker, Config, nullptr) {}

OffloadedFilter::OffloadedFilter(Program *P, TypeContext &Types,
                                 MethodDecl *Worker,
                                 const OffloadConfig &Config,
                                 std::shared_ptr<ocl::ClContext> Shared)
    : TheProgram(P), Types(Types), Worker(Worker), Config(Config),
      Wire(Config.UseSpecializedMarshal) {
  Wire.setDirectToDevice(Config.DirectMarshal);
  Wire.setFaultDomain(Config.DeviceName);
  Error = validateOffloadConfig(Config);
  if (!Error.empty())
    return;
  this->Config = canonicalOffloadConfig(this->Config);
  // Compile with the analysis oracle in the loop: proven facts beat
  // the syntactic placement idioms (see analysis::AnalysisOracle).
  Kernel = analysis::oracleCompile(P, Types, Worker, this->Config.Mem);
  if (!Kernel.Ok) {
    Error = Kernel.Error;
    return;
  }
  Ctx = Shared ? std::move(Shared)
               : std::make_shared<ocl::ClContext>(Config.DeviceName);
}

OffloadedFilter::OffloadedFilter(Program *P, TypeContext &Types,
                                 MethodDecl *Worker,
                                 const OffloadConfig &Config,
                                 std::shared_ptr<ocl::ClContext> Shared,
                                 CompiledKernel Precompiled)
    : TheProgram(P), Types(Types), Worker(Worker), Config(Config),
      Wire(Config.UseSpecializedMarshal) {
  Wire.setDirectToDevice(Config.DirectMarshal);
  Wire.setFaultDomain(Config.DeviceName);
  Error = validateOffloadConfig(Config);
  if (!Error.empty())
    return;
  this->Config = canonicalOffloadConfig(this->Config);
  Kernel = std::move(Precompiled);
  if (!Kernel.Ok) {
    Error = Kernel.Error;
    return;
  }
  Ctx = Shared ? std::move(Shared)
               : std::make_shared<ocl::ClContext>(this->Config.DeviceName);
}

void OffloadedFilter::setFaultDomain(const std::string &Domain) {
  if (Ctx)
    Ctx->setFaultDomain(Domain);
  Wire.setFaultDomain(Domain);
}

std::string OffloadedFilter::prepare(const std::vector<RtValue> &Args) {
  if (!ok())
    return Error;
  if (Prepared)
    return "";
  std::string Err = buildAndPrepare(Args);
  if (!Err.empty())
    Error = Err;
  return Err;
}

int OffloadedFilter::paramIndexOf(const ParamDecl *P) const {
  const auto &Params = Worker->params();
  for (size_t I = 0; I != Params.size(); ++I)
    if (Params[I] == P)
      return static_cast<int>(I);
  return -1;
}

namespace {

bool relHolds(double L, analysis::AssumeFact::Rel Rel, double R) {
  using analysis::AssumeFact;
  switch (Rel) {
  case AssumeFact::Rel::Lt:
    return L < R;
  case AssumeFact::Rel::Le:
    return L <= R;
  case AssumeFact::Rel::Gt:
    return L > R;
  case AssumeFact::Rel::Ge:
    return L >= R;
  case AssumeFact::Rel::Eq:
    return L == R;
  }
  return false;
}

std::string renderNumber(double V) {
  if (V == static_cast<double>(static_cast<int64_t>(V)))
    return std::to_string(static_cast<int64_t>(V));
  return std::to_string(V);
}

} // namespace

std::string
OffloadedFilter::checkAssumes(const std::vector<RtValue> &Args) const {
  if (Config.Assumes.empty())
    return "";
  auto ValueOf = [&](const std::string &Name) -> const RtValue * {
    const auto &Params = Worker->params();
    for (size_t I = 0; I != Params.size() && I != Args.size(); ++I)
      if (Params[I]->name() == Name)
        return &Args[I];
    return nullptr;
  };
  for (const std::string &Text : Config.Assumes) {
    analysis::AssumeFact F;
    std::string Err;
    if (!analysis::parseAssumeFact(Text, F, &Err))
      return "offload invoke: malformed assume '" + Text + "': " + Err;
    // A violated fact must abort the launch: analysis trusted it, and
    // the JIT open-codes loads whose bounds proof may rest on it.
    auto Violated = [&](const std::string &Witness) {
      return "offload invoke: declared fact '" + F.Text +
             "' is false for this launch (" + Witness +
             "); refusing to run a kernel admitted under a stale assume";
    };
    double Rhs = static_cast<double>(F.RhsConst);
    if (!F.RhsLenName.empty()) {
      const RtValue *LV = ValueOf(F.RhsLenName);
      if (!LV || !LV->isArray())
        return "offload invoke: assume '" + F.Text + "': len(" +
               F.RhsLenName + ") names no array parameter of worker '" +
               Worker->name() + "'";
      Rhs += static_cast<double>(LV->array()->Elems.size());
    }
    const RtValue *V = ValueOf(F.Name);
    if (!V)
      return "offload invoke: assume '" + F.Text + "': '" + F.Name +
             "' names no parameter of worker '" + Worker->name() + "'";
    switch (F.Kind) {
    case analysis::AssumeFact::Target::Scalar: {
      if (!V->isNumeric())
        return "offload invoke: assume '" + F.Text + "': '" + F.Name +
               "' is not a scalar parameter";
      double L = V->asNumber();
      if (!relHolds(L, F.Relation, Rhs))
        return Violated(F.Name + " = " + renderNumber(L) + ", bound " +
                        renderNumber(Rhs));
      break;
    }
    case analysis::AssumeFact::Target::Length: {
      if (!V->isArray())
        return "offload invoke: assume '" + F.Text + "': '" + F.Name +
               "' is not an array parameter";
      double L = static_cast<double>(V->array()->Elems.size());
      if (!relHolds(L, F.Relation, Rhs))
        return Violated("len(" + F.Name + ") = " + renderNumber(L) +
                        ", bound " + renderNumber(Rhs));
      break;
    }
    case analysis::AssumeFact::Target::Element: {
      if (!V->isArray())
        return "offload invoke: assume '" + F.Text + "': '" + F.Name +
               "' is not an array parameter";
      const std::vector<RtValue> &Elems = V->array()->Elems;
      size_t N = Elems.size();
      if (N == 0)
        break;
      // Spot-check a deterministic sample (both ends always included)
      // rather than scanning every element: the point is a loud
      // tripwire for stale facts, and the VM's own bounds checks
      // remain the exhaustive backstop on unproven ops.
      size_t Probes = std::min<size_t>(N, 256);
      for (size_t K = 0; K != Probes; ++K) {
        size_t I = Probes == 1 ? 0 : K * (N - 1) / (Probes - 1);
        const RtValue &E = Elems[I];
        const RtValue *Lane = nullptr;
        if (E.isArray()) {
          const auto &Lanes = E.array()->Elems;
          if (F.Lane >= 0 && static_cast<size_t>(F.Lane) < Lanes.size())
            Lane = &Lanes[static_cast<size_t>(F.Lane)];
        } else if (F.Lane == 0) {
          Lane = &E;
        }
        if (!Lane || !Lane->isNumeric())
          return "offload invoke: assume '" + F.Text + "': element " +
                 std::to_string(I) + " of '" + F.Name + "' has no scalar lane " +
                 std::to_string(F.Lane);
        double L = Lane->asNumber();
        if (!relHolds(L, F.Relation, Rhs))
          return Violated(F.Name + "[" + std::to_string(I) + "][" +
                          std::to_string(F.Lane) + "] = " + renderNumber(L) +
                          ", bound " + renderNumber(Rhs));
      }
      break;
    }
    }
  }
  return "";
}

namespace {

/// Builds the 2048-texel-wide image the emitter's coordinate folding
/// expects, from flat float bytes: rows of 4 floats per texel.
ocl::SimImage imageFromBytes(const std::vector<uint8_t> &Bytes) {
  ocl::SimImage Img;
  size_t Floats = Bytes.size() / 4;
  size_t Texels = (Floats + 3) / 4;
  Img.Width = ImageRowTexels;
  Img.Height = static_cast<unsigned>((Texels + ImageRowTexels - 1) /
                                     ImageRowTexels);
  if (Img.Height == 0)
    Img.Height = 1;
  Img.Texels.assign(static_cast<size_t>(Img.Width) * Img.Height * 4, 0.0f);
  std::memcpy(Img.Texels.data(), Bytes.data(), Floats * 4);
  return Img;
}

} // namespace

std::string
OffloadedFilter::buildAndPrepare(const std::vector<RtValue> &Args) {
  // Constant-capacity fallback: a __constant array larger than the
  // device's constant memory forces recompilation without the
  // constant optimization (the real runtime would fail clCreateBuffer
  // and fall back the same way).
  bool NeedFallback = false;
  for (const KernelArray &A : Kernel.Plan.Arrays) {
    if (A.IsOutput || A.Space != MemSpace::Constant)
      continue;
    int WP = paramIndexOf(A.WorkerParam);
    if (WP < 0)
      continue;
    uint64_t Bytes = WireFormat::scalarCount(Args[static_cast<size_t>(WP)]) *
                     A.Scalar->sizeInBytes();
    if (Bytes > Ctx->model().ConstBytes)
      NeedFallback = true;
  }
  if (NeedFallback) {
    MemoryConfig Degraded = Config.Mem;
    Degraded.AllowConstant = false;
    Kernel = analysis::oracleCompile(TheProgram, Types, Worker, Degraded);
    if (!Kernel.Ok)
      return Kernel.Error;
  }

  std::string BuildErr;
  if (SharedProgram) {
    // Cache-slot build: adopt (or fill) the shared bundle so the
    // bytecode and its JIT artifact are compiled once per cache entry
    // rather than once per worker context.
    std::lock_guard<std::mutex> Lock(SharedProgram->Mu);
    BuildErr = Ctx->buildProgram(Kernel.Source, &SharedProgram->Bundle);
  } else {
    BuildErr = Ctx->buildProgram(Kernel.Source);
  }
  if (!BuildErr.empty())
    return "generated OpenCL failed to build:\n" + BuildErr + "\n--- source ---\n" +
           Kernel.Source;
  DeviceArrays.assign(Kernel.Plan.Arrays.size(), DeviceArray());
  Prepared = true;
  return "";
}

ExecResult OffloadedFilter::invoke(const std::vector<RtValue> &Args) {
  ExecResult R;
  auto Fail = [&](std::string Msg) {
    R.Trapped = true;
    R.TrapMessage = std::move(Msg);
    return R;
  };
  if (!ok())
    return Fail(Error);
  if (Args.size() != Worker->params().size())
    return Fail("offload invoke: argument count mismatch");

  // Launch-time tripwire for the facts analysis trusted (see
  // OffloadConfig::Assumes): check before compiling or marshaling so a
  // stale fact can never reach a kernel whose proofs depend on it.
  if (std::string Bad = checkAssumes(Args); !Bad.empty())
    return Fail(Bad);

  if (!Prepared) {
    std::string Err = buildAndPrepare(Args);
    if (!Err.empty()) {
      Error = Err;
      return Fail(Err);
    }
  }

  const KernelPlan &Plan = Kernel.Plan;
  ocl::ClProfile &Profile = Ctx->profile();
  double Api0 = Profile.ApiNs;
  double Pci0 = Profile.TransferNs;
  double Kern0 = Profile.KernelNs;

  // Source length drives the NDRange.
  const KernelArray *Src = Plan.mapSource();
  int SrcParam = paramIndexOf(Src->WorkerParam);
  if (SrcParam < 0)
    return Fail("offload invoke: source parameter not found");
  const RtValue &SrcVal = Args[static_cast<size_t>(SrcParam)];
  if (!SrcVal.isArray())
    return Fail("offload invoke: source argument is not an array");
  uint32_t N = static_cast<uint32_t>(SrcVal.array()->Elems.size());

  // Marshal inputs and upload (steps 1-3 of Fig. 6, then PCIe).
  std::vector<LaunchArg> Launch;
  std::vector<int32_t> Lengths;
  uint64_t OutBytes = 0; // this invocation's output payload
  for (size_t AI = 0; AI != Plan.Arrays.size(); ++AI) {
    const KernelArray &A = Plan.Arrays[AI];
    DeviceArray &DA = DeviceArrays[AI];
    if (A.IsOutput) {
      if (Plan.Kind == KernelKind::Reduce) {
        uint32_t Total = std::min<uint32_t>(
            (N + Config.LocalSize - 1) / Config.LocalSize, Config.MaxGroups);
        OutBytes = static_cast<uint64_t>(std::max(1u, Total)) *
                   Plan.OutScalarType->sizeInBytes();
      } else {
        OutBytes = static_cast<uint64_t>(N) * Plan.OutScalars *
                   Plan.OutScalarType->sizeInBytes();
      }
      // The device buffer is a capacity cache: it only regrows.
      if (DA.Bytes < OutBytes) {
        DA.Buffer = Ctx->createBuffer(OutBytes, AddrSpace::Global);
        DA.Bytes = OutBytes;
      }
      continue;
    }

    int WP = paramIndexOf(A.WorkerParam);
    if (WP < 0)
      return Fail("offload invoke: array parameter not bound");
    const RtValue &V = Args[static_cast<size_t>(WP)];

    // Residency fast path: an immutable array whose device copy
    // survives from an earlier invoke of this filter skips marshal
    // and PCIe entirely — the kernel reads the resident copy.
    uint64_t BufId = Config.ReuseResidentInputs ? bufferIdOf(V) : 0;
    if (BufId) {
      bool Hit = false;
      for (DeviceArray::Resident &Res : DA.Cache) {
        if (Res.Id != BufId)
          continue;
        Res.Tick = ++ResidentTick;
        DA.Buffer = Res.Buffer;
        DA.Bytes = Res.Bytes;
        DA.ImageIndex = Res.ImageIndex;
        Lengths.push_back(
            static_cast<int32_t>(V.array()->Elems.size()));
        ++Stats.ResidentHits;
        Stats.ResidentBytesSkipped += Res.Bytes;
        Hit = true;
        break;
      }
      if (Hit)
        continue;
    }

    std::vector<uint8_t> Bytes = Wire.serialize(V, Stats.Marshal);
    Lengths.push_back(static_cast<int32_t>(
        V.isArray() ? V.array()->Elems.size() : 0));

    switch (A.Space) {
    case MemSpace::Image: {
      ocl::SimImage Img = imageFromBytes(Bytes);
      if (BufId) {
        // Identity-tracked arguments get their own image: reusing the
        // scratch slot would clobber a resident sibling.
        DA.ImageIndex = Ctx->createImage(std::move(Img));
      } else {
        if (DA.ScratchImage < 0)
          DA.ScratchImage = Ctx->createImage(std::move(Img));
        else
          Ctx->updateImage(DA.ScratchImage, std::move(Img));
        DA.ImageIndex = DA.ScratchImage;
      }
      Ctx->chargeHostToDevice(Bytes.size());
      break;
    }
    case MemSpace::Constant:
    case MemSpace::Global:
    case MemSpace::LocalTiled: {
      AddrSpace AS = A.Space == MemSpace::Constant ? AddrSpace::Constant
                                                   : AddrSpace::Global;
      if (BufId) {
        // Dedicated buffer per tracked array, so it can stay resident
        // across launches that bind other arrays to this slot.
        DA.Buffer = Ctx->createBuffer(Bytes.size(), AS);
        DA.Bytes = Bytes.size();
      } else {
        if (DA.ScratchBytes < Bytes.size()) {
          DA.Scratch = Ctx->createBuffer(Bytes.size(), AS);
          DA.ScratchBytes = Bytes.size();
        }
        DA.Buffer = DA.Scratch;
        DA.Bytes = DA.ScratchBytes;
      }
      Ctx->enqueueWrite(DA.Buffer, Bytes.data(), Bytes.size());
      break;
    }
    }

    if (BufId) {
      DeviceArray::Resident Res;
      Res.Id = BufId;
      Res.Buffer = DA.Buffer;
      Res.ImageIndex = DA.ImageIndex;
      Res.Bytes = static_cast<uint64_t>(Bytes.size());
      Res.Tick = ++ResidentTick;
      if (DA.Cache.size() >= ResidentSlotCap) {
        // Evict the least recently bound copy (the simulator never
        // frees device memory, so the cap bounds live tracking, not
        // the sim heap — matching a real driver's allocator slack).
        size_t Victim = 0;
        for (size_t I = 1; I != DA.Cache.size(); ++I)
          if (DA.Cache[I].Tick < DA.Cache[Victim].Tick)
            Victim = I;
        DA.Cache[Victim] = std::move(Res);
      } else {
        DA.Cache.push_back(std::move(Res));
      }
    }
  }

  // Build the launch argument list in signature order (the output
  // buffer leads the signature; the plan stores it last).
  size_t OutIdx = 0;
  for (size_t AI = 0; AI != Plan.Arrays.size(); ++AI)
    if (Plan.Arrays[AI].IsOutput)
      OutIdx = AI;
  Launch.push_back(LaunchArg::buffer(DeviceArrays[OutIdx].Buffer.Offset,
                                     AddrSpace::Global));
  for (size_t AI = 0; AI != Plan.Arrays.size(); ++AI) {
    const KernelArray &A = Plan.Arrays[AI];
    if (A.IsOutput)
      continue;
    switch (A.Space) {
    case MemSpace::Image:
      Launch.push_back(LaunchArg::image(DeviceArrays[AI].ImageIndex));
      Launch.push_back(LaunchArg::i32(0)); // sampler
      break;
    case MemSpace::Constant:
      Launch.push_back(LaunchArg::buffer(DeviceArrays[AI].Buffer.Offset,
                                         AddrSpace::Constant));
      break;
    default:
      Launch.push_back(LaunchArg::buffer(DeviceArrays[AI].Buffer.Offset,
                                         AddrSpace::Global));
      break;
    }
  }
  for (const KernelScalar &S : Plan.Scalars) {
    int WP = paramIndexOf(S.WorkerParam);
    if (WP < 0)
      return Fail("offload invoke: scalar parameter not bound");
    const RtValue &V = Args[static_cast<size_t>(WP)];
    switch (S.Scalar->prim()) {
    case PrimitiveType::Prim::Float:
      Launch.push_back(LaunchArg::f32(static_cast<float>(V.asNumber())));
      break;
    case PrimitiveType::Prim::Double:
      Launch.push_back(LaunchArg::f64(V.asNumber()));
      break;
    case PrimitiveType::Prim::Long:
      Launch.push_back(LaunchArg::i64(V.asIntegral()));
      break;
    default:
      Launch.push_back(
          LaunchArg::i32(static_cast<int32_t>(V.asIntegral())));
      break;
    }
  }

  // The bookkeeping record (Fig. 4(b)): n plus one length per input
  // array, int32 each.
  {
    std::vector<uint8_t> Rec;
    auto PushI32 = [&Rec](int32_t V) {
      uint8_t B[4];
      std::memcpy(B, &V, 4);
      Rec.insert(Rec.end(), B, B + 4);
    };
    PushI32(static_cast<int32_t>(N));
    for (int32_t L : Lengths)
      PushI32(L);
    Launch.push_back(LaunchArg::structBytes(std::move(Rec)));
  }

  // Geometry.
  uint32_t Groups = std::min<uint32_t>(
      std::max<uint32_t>(1, (N + Config.LocalSize - 1) / Config.LocalSize),
      Config.MaxGroups);
  uint32_t Local = Config.LocalSize;
  uint32_t Global = Groups * Local;

  if (Plan.Kind == KernelKind::Reduce)
    Launch.push_back(LaunchArg::localBytes(
        static_cast<uint64_t>(Local) * Plan.OutScalarType->sizeInBytes()));

  std::string Err =
      Ctx->enqueueKernel(Plan.KernelName, Launch, {Global, 1}, {Local, 1});
  if (!Err.empty())
    return Fail("kernel '" + Plan.KernelName + "' failed: " + Err +
                "\n--- source ---\n" + Kernel.Source);

  // Read back and unmarshal (the return path of Fig. 6) — only this
  // invocation's payload, not the cached buffer's capacity.
  std::vector<uint8_t> OutData(OutBytes);
  Ctx->enqueueRead(DeviceArrays[OutIdx].Buffer, OutData.data(), OutBytes);

  if (Plan.Kind == KernelKind::Reduce) {
    // Host-side final combine over the per-group partials.
    double AccF = 0.0;
    int64_t AccI = 0;
    bool IsFloat = Plan.OutScalarType->isFloating();
    bool First = true;
    unsigned Stride = Plan.OutScalarType->sizeInBytes();
    for (uint64_t Off = 0; Off + Stride <= OutBytes; Off += Stride) {
      double FV = 0;
      int64_t IV = 0;
      if (Plan.OutScalarType->prim() == PrimitiveType::Prim::Float) {
        float F;
        std::memcpy(&F, OutData.data() + Off, 4);
        FV = F;
      } else if (Plan.OutScalarType->prim() == PrimitiveType::Prim::Double) {
        double D;
        std::memcpy(&D, OutData.data() + Off, 8);
        FV = D;
      } else if (Stride == 4) {
        int32_t I;
        std::memcpy(&I, OutData.data() + Off, 4);
        IV = I;
      } else {
        std::memcpy(&IV, OutData.data() + Off, 8);
      }
      if (First) {
        AccF = FV;
        AccI = IV;
        First = false;
        continue;
      }
      switch (Plan.Combiner) {
      case ReduceExpr::Combiner::Add:
        AccF += FV;
        AccI += IV;
        break;
      case ReduceExpr::Combiner::Mul:
        AccF *= FV;
        AccI *= IV;
        break;
      case ReduceExpr::Combiner::Min:
        AccF = std::min(AccF, FV);
        AccI = std::min(AccI, IV);
        break;
      case ReduceExpr::Combiner::Max:
        AccF = std::max(AccF, FV);
        AccI = std::max(AccI, IV);
        break;
      case ReduceExpr::Combiner::Method:
        break;
      }
    }
    RtValue Result = IsFloat ? RtValue::makeDouble(AccF)
                             : RtValue::makeLong(AccI);
    R.Value = Result.convertTo(Worker->returnType());
  } else {
    // Checked decode pinned to the launch's element count: a
    // truncated or corrupted readback fails the invocation (so the
    // service can retry it) instead of yielding silently wrong data.
    WireDecodeResult Decoded =
        Wire.deserializeChecked(OutData, Worker->returnType(), Stats.Marshal,
                                /*ExpectedOuter=*/N);
    if (!Decoded.ok())
      return Fail("offload invoke: readback of kernel '" + Plan.KernelName +
                  "' failed: " + Decoded.Error);
    R.Value = std::move(Decoded.Value);
  }

  ++Stats.Invocations;
  Stats.ApiNs += Profile.ApiNs - Api0;
  Stats.PcieNs += Profile.TransferNs - Pci0;
  Stats.KernelNs += Profile.KernelNs - Kern0;
  Stats.LastCounters = Profile.LastKernelCounters;
  return R;
}
