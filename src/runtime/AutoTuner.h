//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline auto-tuner (paper §5.2): the paper controlled for thread
/// counts and memory configurations with "an exhaustive systematic
/// offline exploration of the tuning parameters" and notes that "a
/// system could perform this auto-tuning automatically ahead of time
/// or at runtime, but such tuning falls outside the scope of this
/// paper". This is that system: it sweeps the eight Figure 8 memory
/// configurations crossed with a ladder of work-group sizes against
/// sample inputs on the target device, and returns the configuration
/// with the fastest simulated kernel time.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_RUNTIME_AUTOTUNER_H
#define LIMECC_RUNTIME_AUTOTUNER_H

#include "runtime/Offload.h"

#include <string>
#include <vector>

namespace lime::rt {

/// One explored point.
struct TuneTrial {
  std::string Label; // "local+noconflict+vector @128"
  MemoryConfig Mem;
  unsigned LocalSize = 0;
  double KernelNs = 0.0;
  bool Valid = false;
  /// Skipped before any device work: the oracle's occupancy verdict
  /// said no work-group of this size can be resident (Error names the
  /// limiting resource). Pruned trials are never built or benchmarked.
  bool Pruned = false;
  std::string Error; // when invalid or pruned
};

struct TuneOptions {
  /// Ask analysis::AnalysisOracle::occupancyVerdict about each sweep
  /// point first and skip infeasible ones instead of compiling,
  /// building, and benchmarking them.
  bool PruneInfeasible = true;
};

struct TuneResult {
  bool Ok = false;
  std::string Error;
  OffloadConfig Best;
  double BestKernelNs = 0.0;
  /// Number of sweep points the occupancy verdict pruned.
  unsigned Pruned = 0;
  std::vector<TuneTrial> Trials;
};

/// Exhaustively explores (memory config x local size) for \p Worker
/// on \p Base.DeviceName using \p SampleArgs (worker-parameter
/// order). The returned Best carries the winning Mem/LocalSize on top
/// of \p Base's other settings. Points whose static resource appetite
/// cannot fit the device at the requested group size are pruned
/// before any build when Opts.PruneInfeasible is set.
TuneResult autoTune(Program *P, TypeContext &Types, MethodDecl *Worker,
                    const std::vector<RtValue> &SampleArgs,
                    const OffloadConfig &Base,
                    const TuneOptions &Opts = TuneOptions());

} // namespace lime::rt

#endif // LIMECC_RUNTIME_AUTOTUNER_H
