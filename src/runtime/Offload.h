//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offload manager: glue between the evaluator's world of Lime
/// values and the simulated OpenCL device (paper §4.3 and Fig. 6).
/// For one filter it owns the compiled kernel, the device context,
/// and cached buffers, and per invocation it performs the paper's
/// round trip:
///
///   Lime value --marshal(Java)--> byte stream --boundary--> C layout
///   --PCIe--> device buffers --kernel--> out buffer --PCIe--> bytes
///   --boundary--> Lime value,
///
/// accumulating the exact cost decomposition Figure 9 reports
/// (marshal Java/C, OpenCL API, raw transfer, kernel).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_RUNTIME_OFFLOAD_H
#define LIMECC_RUNTIME_OFFLOAD_H

#include "compiler/GpuCompiler.h"
#include "lime/interp/Interp.h"
#include "ocl/CL.h"
#include "runtime/Serializer.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lime::rt {

struct OffloadConfig {
  std::string DeviceName = "gtx580";
  MemoryConfig Mem = MemoryConfig::best();
  bool UseSpecializedMarshal = true;
  /// §5.3 optimizations the paper lists as future work, implemented
  /// here as options:
  ///  - DirectMarshal: marshal straight into the device layout,
  ///    halving the per-direction marshal cost;
  ///  - OverlapPipelining: double-buffer transfers so communication
  ///    overlaps kernel execution across pipeline items.
  bool DirectMarshal = false;
  bool OverlapPipelining = false;
  /// Data-aware scheduling support: when on, an input array that
  /// already sits on the device — same stable buffer id (see
  /// rt::bufferIdOf), immutable, uploaded by an earlier invoke of
  /// this filter — skips marshal + PCIe entirely and the kernel reads
  /// the resident copy. Only immutable arrays are trusted (a frozen
  /// array's bits can never drift from its device copy). Not part of
  /// the kernel cache key: residency changes what a launch *costs*,
  /// never what it computes.
  bool ReuseResidentInputs = false;
  unsigned LocalSize = 128;
  /// Upper bound on in-flight work-groups; total threads =
  /// min(ceil(n/LocalSize), MaxGroups) * LocalSize (the paper tunes
  /// thread counts offline; this is the knob).
  unsigned MaxGroups = 64;
  /// Declared value-range facts (the `--assume` grammar, see
  /// analysis/Assume.h) that analysis trusted when admitting this
  /// kernel. The offload spot-checks each fact against the actual
  /// arguments at every invoke and refuses to launch on a violation:
  /// a stale fact must fail loudly here, because downstream it
  /// licenses check-free native memory access in the JIT. Not part of
  /// the kernel cache key — facts gate the launch, not the compile.
  std::vector<std::string> Assumes;
};

/// Checks the launch-geometry invariants every construction site must
/// satisfy: LocalSize must be a non-zero power of two (warp and bank
/// decompositions assume it) and MaxGroups non-zero. Reports through
/// \p Diags; returns false when any check fails.
bool validateOffloadConfig(const OffloadConfig &Config,
                           DiagnosticEngine &Diags);

/// String-returning form: "" when valid, the first problem otherwise.
std::string validateOffloadConfig(const OffloadConfig &Config);

/// The device-dependent normalization every offload applies before
/// compiling: clamps the local-tile budget to the target's scratchpad
/// (half of it, so double-buffering and the runtime's own use still
/// fit). Kernel caches must key on the *canonical* config, or two
/// textually different configs that compile identically would occupy
/// two cache slots.
OffloadConfig canonicalOffloadConfig(OffloadConfig Config);

/// Accumulated per-filter cost decomposition (Figure 9's stack).
struct OffloadStats {
  MarshalCost Marshal; // JavaNs + NativeNs + Bytes
  double ApiNs = 0.0;
  double PcieNs = 0.0;
  double KernelNs = 0.0;
  uint64_t Invocations = 0;
  /// Residency wins (OffloadConfig::ReuseResidentInputs): input
  /// arrays found already on the device, and the marshal+transfer
  /// bytes those hits avoided.
  uint64_t ResidentHits = 0;
  uint64_t ResidentBytesSkipped = 0;
  ocl::KernelCounters LastCounters;

  double commNs() const {
    return Marshal.JavaNs + Marshal.NativeNs + ApiNs + PcieNs;
  }
  double totalNs() const { return commNs() + KernelNs; }
  void reset() { *this = OffloadStats(); }
};

/// One slot of the kernel cache's native-artifact layer. Filters
/// created from the same cache entry share a slot: the first worker
/// to build fills it with the program bundle (bytecode + JIT code),
/// and every later worker context adopts that bundle instead of
/// re-parsing, re-compiling and re-JITting the same source.
struct SharedProgramSlot {
  std::mutex Mu;
  std::shared_ptr<const ocl::ProgramBundle> Bundle;
};

/// One filter compiled for one device+configuration.
class OffloadedFilter {
public:
  OffloadedFilter(Program *P, TypeContext &Types, MethodDecl *Worker,
                  const OffloadConfig &Config);

  /// Shares \p Shared between filters targeting the same device (one
  /// context/queue per device, as a real host process would have).
  OffloadedFilter(Program *P, TypeContext &Types, MethodDecl *Worker,
                  const OffloadConfig &Config,
                  std::shared_ptr<ocl::ClContext> Shared);

  /// Wraps an already-compiled kernel (the offload service's
  /// KernelCache path): skips the GpuCompiler run entirely. \p
  /// Precompiled must have been produced from canonicalOffloadConfig
  /// of \p Config for the same worker.
  OffloadedFilter(Program *P, TypeContext &Types, MethodDecl *Worker,
                  const OffloadConfig &Config,
                  std::shared_ptr<ocl::ClContext> Shared,
                  CompiledKernel Precompiled);

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  const CompiledKernel &kernel() const { return Kernel; }
  const OffloadConfig &config() const { return Config; }
  ocl::ClContext &context() { return *Ctx; }

  /// Routes this filter's program build through a shared cache slot
  /// (see SharedProgramSlot). Call before the first invoke/prepare.
  void setSharedProgram(std::shared_ptr<SharedProgramSlot> Slot) {
    SharedProgram = std::move(Slot);
  }

  /// Tags this filter's device context and wire format for fault
  /// injection (the offload service pins each worker's filters to a
  /// per-worker domain). Defaults to the device model name.
  void setFaultDomain(const std::string &Domain);

  /// Clears a failure recorded by a previous prepare()/invoke() so
  /// the filter can be retried (transient device faults are the
  /// offload service's to survive, not permanent state).
  void clearError() { Error.clear(); }

  /// Runs the filter on the device. \p Args follow the worker's
  /// parameter order (stream input first, then bound arguments).
  ExecResult invoke(const std::vector<RtValue> &Args);

  /// Builds the OpenCL program (and applies the constant-capacity
  /// fallback, which may *recompile* through GpuCompiler) if that has
  /// not happened yet. Exposed so multi-threaded callers can serialize
  /// the compiler-touching step under their own lock, after which
  /// invoke() is compile-free. Returns "" or the error.
  std::string prepare(const std::vector<RtValue> &Args);
  bool prepared() const { return Prepared; }

  OffloadStats &stats() { return Stats; }

private:
  std::string buildAndPrepare(const std::vector<RtValue> &Args);
  int paramIndexOf(const ParamDecl *P) const;
  /// Spot-checks Config.Assumes against the actual arguments of this
  /// invocation. Returns "" when every fact holds (or none are
  /// declared), otherwise a message naming the violated fact and the
  /// witnessing value — the launch must not proceed.
  std::string checkAssumes(const std::vector<RtValue> &Args) const;

  Program *TheProgram;
  TypeContext &Types;
  MethodDecl *Worker;
  OffloadConfig Config;
  std::string Error;

  CompiledKernel Kernel;
  std::shared_ptr<ocl::ClContext> Ctx;
  std::shared_ptr<SharedProgramSlot> SharedProgram;
  bool Prepared = false;

  // Cached device resources per plan array. For an output slot,
  // Buffer/Bytes is a capacity cache that only regrows. For an input
  // slot, Buffer/ImageIndex is whatever this launch bound: the shared
  // scratch upload target (anonymous arguments), or a resident copy
  // (identity-tracked immutable arguments, see ReuseResidentInputs).
  struct DeviceArray {
    ocl::ClBuffer Buffer;
    int ImageIndex = -1;
    uint64_t Bytes = 0;
    /// Upload target for arguments without a stable identity; kept
    /// apart from the residency cache so an anonymous upload can
    /// never overwrite a resident sibling's device copy.
    ocl::ClBuffer Scratch;
    uint64_t ScratchBytes = 0;
    int ScratchImage = -1;
    /// Residency cache for this input slot (ReuseResidentInputs):
    /// device copies of recently uploaded immutable arrays, keyed by
    /// stable buffer id. Small and LRU-bounded; linear scan is fine.
    struct Resident {
      uint64_t Id = 0;
      ocl::ClBuffer Buffer;
      int ImageIndex = -1;
      uint64_t Bytes = 0;
      uint64_t Tick = 0; // LRU clock
    };
    std::vector<Resident> Cache;
  };
  static constexpr size_t ResidentSlotCap = 8;
  std::vector<DeviceArray> DeviceArrays;
  uint64_t ResidentTick = 0;

  WireFormat Wire;
  OffloadStats Stats;
};

} // namespace lime::rt

#endif // LIMECC_RUNTIME_OFFLOAD_H
