//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "runtime/TaskGraph.h"

#include "support/StringUtils.h"

using namespace lime;
using namespace lime::rt;

TaskGraphRuntime::TaskGraphRuntime(Interp &I, PipelineConfig Config)
    : I(I), Config(Config) {
  I.setGraphExecutor(this);
}

TaskGraphRuntime::~TaskGraphRuntime() = default;

OffloadedFilter *TaskGraphRuntime::offloadedFor(MethodDecl *Worker) {
  if (!Config.OffloadFilters)
    return nullptr;
  auto It = Cache.find(Worker);
  if (It != Cache.end())
    return It->second ? It->second.get() : nullptr;

  auto &Shared = DeviceContexts[Config.Offload.DeviceName];
  if (!Shared)
    Shared = std::make_shared<ocl::ClContext>(Config.Offload.DeviceName);
  auto Filter = std::make_unique<OffloadedFilter>(
      I.program(), I.types(), Worker, Config.Offload, Shared);
  if (!Filter->ok()) {
    Decisions[Worker] = "host: " + Filter->error();
    Cache[Worker] = nullptr;
    return nullptr;
  }
  Decisions[Worker] =
      "device (" + Config.Offload.DeviceName + ", " +
      Filter->kernel().Plan.Config.str() + ")";
  OffloadedFilter *Raw = Filter.get();
  Cache[Worker] = std::move(Filter);
  return Raw;
}

std::string TaskGraphRuntime::run(const RtGraph &Graph) {
  if (Graph.Nodes.empty())
    return "empty task graph";

  Stats.clear();
  Stats.resize(Graph.Nodes.size());
  for (size_t NI = 0; NI != Graph.Nodes.size(); ++NI)
    Stats[NI].Name = Graph.Nodes[NI].Worker->qualifiedName();

  const RtTaskNode &Source = Graph.Nodes.front();

  for (uint64_t Pull = 0;; ++Pull) {
    if (Pull >= Config.MaxPulls)
      return "source produced more than MaxPulls items (missing "
             "Underflow?)";

    // Pull one item from the source (always on the host).
    double T0 = I.simTimeNs();
    ExecResult R =
        I.callMethod(Source.Worker, Source.Instance, Source.BoundArgs);
    Stats[0].HostNs += I.simTimeNs() - T0;
    ++Stats[0].Invocations;
    if (R.Trapped)
      return "source " + Source.Worker->qualifiedName() + ": " +
             R.TrapMessage;
    if (R.Underflow)
      return "";

    RtValue Item = R.Value;

    // Push it through the rest of the pipeline.
    for (size_t NI = 1; NI != Graph.Nodes.size(); ++NI) {
      const RtTaskNode &Node = Graph.Nodes[NI];
      NodeStats &NS = Stats[NI];
      ++NS.Invocations;

      // The shared offload service, when installed, gets first claim
      // on eligible filters; it declines the ones that must stay on
      // the host.
      if (Config.OffloadFilters && Config.ServiceInvoke && !Node.Instance &&
          Node.Worker->isLocal()) {
        std::vector<RtValue> Args;
        Args.push_back(Item);
        for (const RtValue &B : Node.BoundArgs)
          Args.push_back(B);
        ExecResult DR;
        if (Config.ServiceInvoke(Node.Worker, Args, DR)) {
          if (DR.Trapped)
            return "offloaded filter " + Node.Worker->qualifiedName() + ": " +
                   DR.TrapMessage;
          NS.Offloaded = true;
          Item = DR.Value;
          continue;
        }
      }

      OffloadedFilter *Dev = nullptr;
      if (!Node.Instance && Node.Worker->isLocal() && !Config.ServiceInvoke)
        Dev = offloadedFor(Node.Worker);

      if (Dev) {
        std::vector<RtValue> Args;
        Args.push_back(Item);
        for (const RtValue &B : Node.BoundArgs)
          Args.push_back(B);
        ExecResult DR = Dev->invoke(Args);
        if (DR.Trapped)
          return "offloaded filter " + Node.Worker->qualifiedName() + ": " +
                 DR.TrapMessage;
        NS.Offloaded = true;
        NS.Device = Dev->stats();
        Item = DR.Value;
        continue;
      }

      std::vector<RtValue> Args;
      Args.push_back(Item);
      for (const RtValue &B : Node.BoundArgs)
        Args.push_back(B);
      double H0 = I.simTimeNs();
      ExecResult HR = I.callMethod(Node.Worker, Node.Instance, Args);
      NS.HostNs += I.simTimeNs() - H0;
      if (HR.Trapped)
        return "task " + Node.Worker->qualifiedName() + ": " +
               HR.TrapMessage;
      if (HR.Underflow)
        return ""; // a mid-pipeline task may also end the stream
      Item = HR.Value;
    }
  }
}
