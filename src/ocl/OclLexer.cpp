//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/OclLexer.h"

#include <cctype>
#include <cstdlib>

using namespace lime;
using namespace lime::ocl;

OclLexer::OclLexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char OclLexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char OclLexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void OclLexer::skipTrivia() {
  while (true) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start(Line, Column);
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    // Preprocessor lines (#pragma OPENCL EXTENSION ... for doubles)
    // are accepted and ignored wherever they start.
    if (C == '#') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    return;
  }
}

OclToken OclLexer::next() {
  skipTrivia();
  OclToken T;
  T.Loc = SourceLocation(Line, Column);
  char C = peek();
  if (C == '\0')
    return T;

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    size_t Start = Pos;
    bool Floaty = false;
    if (C == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        advance();
      std::string Text(Source.substr(Start, Pos - Start));
      T.K = OclToken::Kind::IntLit;
      T.Text = Text;
      T.IntValue = std::strtoll(Text.c_str(), nullptr, 16);
      if (peek() == 'u' || peek() == 'U')
        advance();
      return T;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.') {
      Floaty = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char S = peek(1);
      if (std::isdigit(static_cast<unsigned char>(S)) ||
          ((S == '+' || S == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        Floaty = true;
        advance();
        if (peek() == '+' || peek() == '-')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
    std::string Text(Source.substr(Start, Pos - Start));
    if (peek() == 'f' || peek() == 'F') {
      advance();
      T.K = OclToken::Kind::FloatLit;
      T.FloatValue = std::strtod(Text.c_str(), nullptr);
      T.FloatIsSingle = true;
      T.Text = Text + "f";
      return T;
    }
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      advance();
    if (Floaty) {
      T.K = OclToken::Kind::FloatLit;
      T.FloatValue = std::strtod(Text.c_str(), nullptr);
      T.FloatIsSingle = false;
      T.Text = Text;
      return T;
    }
    T.K = OclToken::Kind::IntLit;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    T.Text = Text;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Start = Pos;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      advance();
    T.K = OclToken::Kind::Ident;
    T.Text = std::string(Source.substr(Start, Pos - Start));
    return T;
  }

  // Operators: longest match first.
  static const char *ThreeChar[] = {">>=", "<<="};
  for (const char *Op : ThreeChar) {
    if (C == Op[0] && peek(1) == Op[1] && peek(2) == Op[2]) {
      advance();
      advance();
      advance();
      T.K = OclToken::Kind::Punct;
      T.Text = Op;
      return T;
    }
  }
  static const char *TwoChar[] = {"==", "!=", "<=", ">=", "&&", "||",
                                  "<<", ">>", "+=", "-=", "*=", "/=",
                                  "%=", "++", "--", "&=", "|=", "^="};
  char C1 = peek(1);
  for (const char *Op : TwoChar) {
    if (C == Op[0] && C1 == Op[1]) {
      advance();
      advance();
      T.K = OclToken::Kind::Punct;
      T.Text = Op;
      return T;
    }
  }
  static const char OneChar[] = "(){}[];,.*&?:+-/%!~^|<>=";
  for (char Op : OneChar) {
    if (C == Op) {
      advance();
      T.K = OclToken::Kind::Punct;
      T.Text = std::string(1, Op);
      return T;
    }
  }

  Diags.error(T.Loc, std::string("unexpected character '") + C +
                         "' in OpenCL source");
  advance();
  return next();
}
