//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/DeviceModel.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace lime;
using namespace lime::ocl;

const std::vector<DeviceModel> &lime::ocl::deviceRegistry() {
  static const std::vector<DeviceModel> Registry = [] {
    std::vector<DeviceModel> R;

    // Intel Core i7-990X: 6 cores + SMT, OpenCL CPU runtime. All
    // memory flows through large caches; transcendentals are fast
    // native code (vs. java.lang.Math in the baseline).
    {
      DeviceModel D;
      D.Name = "corei7";
      D.Kind = DeviceKind::Cpu;
      D.NumSMs = 6;
      // Table 2 lists 4 SSE lanes, but the OpenCL CPU runtime's
      // work-item loops and scalarization leave effective throughput
      // near one op/cycle — which is what makes the paper's 1-core
      // row land at parity with the JVM baseline.
      D.FpUnitsPerSM = 1;
      D.SfuUnitsPerSM = 1;
      D.WarpWidth = 4;
      D.ClockGHz = 3.46;
      D.DpRatio = 2.0; // 4 single / 2 double per Table 2
      D.LocalBanks = 1;
      D.LocalBytesPerSM = 32 * 1024;
      D.ConstBytes = 64 * 1024;
      D.DramBandwidthGBs = 25.0;
      D.DramSegmentBytes = 64;
      D.DramTransactionOverheadCycles = 2.0;
      D.L1Bytes = 6 * 64 * 1024;
      D.L2Bytes = 12 * 1024 * 1024; // stand-in for L2+L3
      D.CacheLineBytes = 64;
      D.SmtFactor = 1.05; // slight hyperthreading headroom
      D.SfuCyclesPerOp = 18.0; // scalar libm-ish, but native (not Java)
      D.Table2FpUnits = "4 single (4 double)";
      D.Table2ConstMem = "-";
      D.Table2LocalMem = "-";
      D.Table2Caches = "6x64KB L1, 6x256KB L2, 12MB L3";
      R.push_back(D);
    }

    // Core i7 restricted to one core: Figure 7(a)'s 1-core bars
    // ("running on a single core runs two threads, one each for the
    // JVM and OpenCL kernel" — SMT still applies).
    {
      DeviceModel D = R.back();
      D.Name = "corei7x1";
      D.NumSMs = 1;
      // The JVM host thread and the kernel thread share the core:
      // roughly baseline speed, "10% degradation in the worst case".
      D.SmtFactor = 0.95;
      D.Table2FpUnits = "4 single (4 double)";
      R.push_back(D);
    }

    // NVidia GeForce GTX 8800 (G80, 2006): 16 SMs x 8 units, no
    // general-purpose cache — every global access is a DRAM
    // transaction — 16 local banks, small texture cache.
    {
      DeviceModel D;
      D.Name = "gtx8800";
      D.Kind = DeviceKind::Gpu;
      D.NumSMs = 16;
      D.FpUnitsPerSM = 8;
      D.SfuUnitsPerSM = 2;
      D.WarpWidth = 32;
      D.ClockGHz = 1.35;
      D.DpRatio = 0.0; // no double support
      D.LocalBanks = 16;
      D.LocalBytesPerSM = 16 * 1024;
      D.RegBytesPerSM = 32 * 1024;
      D.ConstBytes = 64 * 1024;
      D.DramBandwidthGBs = 86.4;
      D.DramSegmentBytes = 64; // stricter pre-Fermi coalescing granule
      D.DramTransactionOverheadCycles = 110.0; // uncached DRAM latency bites
      D.L1Bytes = 0;
      D.L2Bytes = 0;
      D.TextureCacheBytes = 8 * 1024;
      D.CacheLineBytes = 64;
      D.SfuCyclesPerOp = 4.0;
      D.Table2FpUnits = "8 single";
      D.Table2ConstMem = "64KB";
      D.Table2LocalMem = "16x16KB";
      D.Table2Caches = "-";
      R.push_back(D);
    }

    // NVidia GeForce GTX 580 (Fermi): 16 SMs x 32 units, L1 + 768KB
    // L2 in front of DRAM — the cache that makes Fig. 8(b) flat —
    // 32 banks, GeForce-grade double precision.
    {
      DeviceModel D;
      D.Name = "gtx580";
      D.Kind = DeviceKind::Gpu;
      D.NumSMs = 16;
      D.FpUnitsPerSM = 32;
      D.SfuUnitsPerSM = 4;
      D.WarpWidth = 32;
      D.ClockGHz = 1.544;
      D.DpRatio = 4.0; // end-to-end DP lands 2-3x slower (§5.1)
      D.LocalBanks = 32;
      D.LocalBytesPerSM = 48 * 1024;
      D.RegBytesPerSM = 128 * 1024;
      D.ConstBytes = 64 * 1024;
      D.DramBandwidthGBs = 192.4;
      D.DramSegmentBytes = 128;
      D.DramTransactionOverheadCycles = 8.0;
      D.L1Bytes = 16 * 1024;
      D.L2Bytes = 768 * 1024;
      D.TextureCacheBytes = 12 * 1024;
      D.CacheLineBytes = 128;
      D.SfuCyclesPerOp = 4.0;
      D.Table2FpUnits = "32 single (16 double)";
      D.Table2ConstMem = "64KB";
      D.Table2LocalMem = "16x48KB";
      D.Table2Caches = "16x16KB L1, 768KB L2";
      R.push_back(D);
    }

    // AMD Radeon HD 5970 (Evergreen, one die of the dual-GPU card as
    // the paper's OpenCL runtime saw it): 20 SIMD engines x 80 VLIW
    // lanes, wavefront 64, no general R/W cache, texture cache only.
    {
      DeviceModel D;
      D.Name = "hd5970";
      D.Kind = DeviceKind::Gpu;
      D.NumSMs = 20;
      D.FpUnitsPerSM = 80;
      D.SfuUnitsPerSM = 16;
      D.WarpWidth = 64;
      D.ClockGHz = 0.725;
      D.DpRatio = 2.5; // end-to-end DP ~1.5x slower (§5.1)
      D.LocalBanks = 32;
      D.LocalBytesPerSM = 32 * 1024;
      D.RegBytesPerSM = 256 * 1024;
      D.ConstBytes = 64 * 1024;
      D.DramBandwidthGBs = 256.0;
      D.DramSegmentBytes = 128;
      D.DramTransactionOverheadCycles = 10.0;
      D.L1Bytes = 0;
      D.L2Bytes = 0;
      D.TextureCacheBytes = 8 * 1024;
      D.CacheLineBytes = 64;
      D.SfuCyclesPerOp = 4.0;
      D.Table2FpUnits = "80 single";
      D.Table2ConstMem = "64KB";
      D.Table2LocalMem = "20x32KB";
      D.Table2Caches = "-";
      R.push_back(D);
    }

    return R;
  }();
  return Registry;
}

const DeviceModel &lime::ocl::deviceByName(const std::string &Name) {
  for (const DeviceModel &D : deviceRegistry())
    if (D.Name == Name)
      return D;
  lime_unreachable("unknown device name");
}

double lime::ocl::kernelTimeNs(const DeviceModel &Dev,
                               const KernelCounters &C) {
  double EffectiveSMs = static_cast<double>(Dev.NumSMs) * Dev.SmtFactor;
  double CyclesToNs = 1.0 / Dev.ClockGHz;

  // Single-precision ALU pipe: one warp instruction occupies
  // WarpWidth/FpUnits issue slots on its SM.
  double AluCycles = static_cast<double>(C.AluWarpOps) *
                     (static_cast<double>(Dev.WarpWidth) / Dev.FpUnitsPerSM);
  // Double precision shares the pipe at DpRatio cost.
  double DpCycles =
      Dev.DpRatio > 0
          ? static_cast<double>(C.DpWarpOps) *
                (static_cast<double>(Dev.WarpWidth) / Dev.FpUnitsPerSM) *
                Dev.DpRatio
          : static_cast<double>(C.DpWarpOps) * 1e6; // unsupported: poison
  double ComputeNs = (AluCycles + DpCycles) / EffectiveSMs * CyclesToNs;

  // Special function unit: a warp transcendental issues WarpWidth
  // lane-ops over SfuUnits lanes, each costing SfuCyclesPerOp.
  double SfuCycles = static_cast<double>(C.SfuWarpOps) * Dev.SfuCyclesPerOp *
                     (static_cast<double>(Dev.WarpWidth) / Dev.SfuUnitsPerSM);
  double SfuNs = SfuCycles / EffectiveSMs * CyclesToNs;

  // DRAM: payload bytes at peak bandwidth plus per-transaction
  // overhead (uncoalesced access patterns generate many transactions
  // for few useful bytes — the paper's global-memory cliffs).
  double DramNs =
      static_cast<double>(C.GlobalBytes) / Dev.DramBandwidthGBs +
      static_cast<double>(C.GlobalTransactions) *
          Dev.DramTransactionOverheadCycles * CyclesToNs / Dev.NumSMs;

  // Cache hits are cheap but not free; they occupy the LSU.
  double CacheNs = (static_cast<double>(C.L1Hits) * 1.0 +
                    static_cast<double>(C.L2Hits) * 4.0 +
                    static_cast<double>(C.TextureHits) * 1.0) *
                   CyclesToNs / EffectiveSMs;

  // Local and constant pipes, already serialized into cycles by the
  // memory model (bank conflicts / non-broadcast reads).
  double LocalNs =
      static_cast<double>(C.LocalCycles) / EffectiveSMs * CyclesToNs;
  double ConstNs =
      static_cast<double>(C.ConstCycles) / EffectiveSMs * CyclesToNs;

  // Roofline with leakage: the slowest resource bounds the kernel,
  // but contention is never perfectly hidden — a quarter of the other
  // pipes' demand shows through (issue slots, scoreboard stalls).
  double Parts[] = {ComputeNs, SfuNs, DramNs, CacheNs, LocalNs, ConstNs};
  double Max = 0.0;
  double Sum = 0.0;
  for (double P : Parts) {
    Max = std::max(Max, P);
    Sum += P;
  }
  return Max + 0.25 * (Sum - Max);
}

std::string lime::ocl::renderTable2() {
  std::string Out;
  Out += "Table 2: Evaluation platforms (simulated models)\n";
  Out += formatString("%-10s %-8s %-6s %-22s %-11s %-10s %s\n", "Model",
                      "Type", "Cores", "FP units per core", "Const.mem",
                      "Local mem", "Caches");
  for (const DeviceModel &D : deviceRegistry()) {
    Out += formatString("%-10s %-8s %-6u %-22s %-11s %-10s %s\n",
                        D.Name.c_str(),
                        D.Kind == DeviceKind::Cpu ? "CPU" : "GPU", D.NumSMs,
                        D.Table2FpUnits.c_str(), D.Table2ConstMem.c_str(),
                        D.Table2LocalMem.c_str(), D.Table2Caches.c_str());
  }
  return Out;
}
