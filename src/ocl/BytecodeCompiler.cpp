//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/BytecodeCompiler.h"

#include "support/StringUtils.h"

using namespace lime;
using namespace lime::ocl;

bool lime::ocl::isFloatVal(ValType T) {
  return T == ValType::F32 || T == ValType::F64;
}

unsigned lime::ocl::valTypeBytes(ValType T) {
  switch (T) {
  case ValType::I8:
  case ValType::U8:
    return 1;
  case ValType::I32:
  case ValType::U32:
  case ValType::F32:
    return 4;
  case ValType::I64:
  case ValType::U64:
  case ValType::F64:
    return 8;
  }
  lime_unreachable("bad val type");
}

ValType lime::ocl::valTypeForScalar(ScalarKind K) {
  switch (K) {
  case ScalarKind::Void:
  case ScalarKind::Bool:
  case ScalarKind::Int:
    return ValType::I32;
  case ScalarKind::Char:
    return ValType::I8;
  case ScalarKind::UChar:
    return ValType::U8;
  case ScalarKind::UInt:
    return ValType::U32;
  case ScalarKind::Long:
    return ValType::I64;
  case ScalarKind::ULong:
    return ValType::U64;
  case ScalarKind::Float:
    return ValType::F32;
  case ScalarKind::Double:
    return ValType::F64;
  }
  lime_unreachable("bad scalar kind");
}

BytecodeCompiler::BytecodeCompiler(OclContext &Ctx, DiagnosticEngine &Diags)
    : Ctx(Ctx), Types(Ctx.types()), Diags(Diags) {}

void BytecodeCompiler::errorAt(SourceLocation Loc, const std::string &Msg) {
  Diags.error(Loc, "[oclc] " + Msg);
}

//===----------------------------------------------------------------------===//
// Storage helpers
//===----------------------------------------------------------------------===//

int32_t BytecodeCompiler::allocRegs(unsigned N) {
  int32_t First = static_cast<int32_t>(K->NumRegs);
  K->NumRegs += N;
  return First;
}

unsigned BytecodeCompiler::typeRegCount(const OclType *T) {
  if (const auto *VT = dyn_cast<VectorType>(T))
    return VT->lanes();
  return 1;
}

ValType BytecodeCompiler::regTypeFor(const OclType *T) {
  if (const auto *ST = dyn_cast<ScalarType>(T))
    return valTypeForScalar(ST->scalar());
  if (const auto *VT = dyn_cast<VectorType>(T))
    return valTypeForScalar(VT->element());
  if (isa<PointerType>(T))
    return ValType::I64;
  return ValType::I32;
}

BcInstr &BytecodeCompiler::emit(BcOp Op) {
  K->Code.push_back(BcInstr());
  K->Code.back().Op = Op;
  return K->Code.back();
}

int BytecodeCompiler::emitConstI(int64_t V) {
  int32_t R = allocRegs(1);
  BcInstr &I = emit(BcOp::ConstI);
  I.Dst = R;
  I.ImmI = V;
  I.Ty = ValType::I64;
  return R;
}

void BytecodeCompiler::patchTarget(size_t InstrIndex, size_t Target) {
  K->Code[InstrIndex].Target = static_cast<int32_t>(Target);
}

//===----------------------------------------------------------------------===//
// Program / kernel structure
//===----------------------------------------------------------------------===//

BcProgram BytecodeCompiler::compile(OclProgramAST *P) {
  Program = P;
  BcProgram Out;
  for (OclFunction *F : P->functions())
    if (F->isKernel())
      compileKernel(F, Out);
  return Out;
}

void BytecodeCompiler::compileKernel(OclFunction *F, BcProgram &Out) {
  Out.Kernels.push_back(BcKernel());
  K = &Out.Kernels.back();
  K->Name = F->name();
  VarRegs.clear();
  ArrayHomes.clear();
  InInline = false;
  InlineDepth = 0;

  unsigned ImageIndex = 0;
  for (OclVarDecl *P : F->params()) {
    BcParam BP;
    BP.Name = P->Name;
    if (const auto *PT = dyn_cast<PointerType>(P->Ty)) {
      switch (PT->space()) {
      case AddrSpace::Constant:
        BP.TheKind = BcParam::Kind::ConstantPtr;
        break;
      case AddrSpace::Local:
        BP.TheKind = BcParam::Kind::LocalPtr;
        break;
      default:
        BP.TheKind = BcParam::Kind::GlobalPtr;
        break;
      }
      BP.Reg = allocRegs(1);
    } else if (isa<ImageType>(P->Ty)) {
      BP.TheKind = BcParam::Kind::Image;
      BP.Reg = allocRegs(1);
      // The register holds the image slot index for ReadImage.
      VarRegs[P] = BP.Reg;
      K->Params.push_back(BP);
      ++ImageIndex;
      continue;
    } else if (const auto *ST = dyn_cast<StructType>(P->Ty)) {
      BP.TheKind = BcParam::Kind::Struct;
      BP.StructBytes = ST->sizeInBytes();
      BP.Reg = allocRegs(1); // base offset of the record in Param space
    } else {
      ValType VT = regTypeFor(P->Ty);
      switch (VT) {
      case ValType::F32:
        BP.TheKind = BcParam::Kind::ScalarF32;
        break;
      case ValType::F64:
        BP.TheKind = BcParam::Kind::ScalarF64;
        break;
      case ValType::I64:
      case ValType::U64:
        BP.TheKind = BcParam::Kind::ScalarI64;
        break;
      default:
        BP.TheKind = BcParam::Kind::ScalarI32;
        break;
      }
      BP.Reg = allocRegs(typeRegCount(P->Ty));
    }
    VarRegs[P] = BP.Reg;
    K->Params.push_back(BP);
  }
  (void)ImageIndex;

  compileStmt(F->body());
  emit(BcOp::Halt);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void BytecodeCompiler::compileStmt(OclStmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case OclStmt::Kind::Compound:
    for (OclStmt *Sub : cast<OclCompoundStmt>(S)->stmts())
      compileStmt(Sub);
    return;

  case OclStmt::Kind::Decl:
    compileDecl(cast<OclDeclStmt>(S));
    return;

  case OclStmt::Kind::Expr:
    compileExpr(cast<OclExprStmt>(S)->expr());
    return;

  case OclStmt::Kind::If: {
    auto *If = cast<OclIfStmt>(S);
    CVal C = convert(compileExpr(If->cond()), ValType::I32);
    size_t BeginIdx = here();
    BcInstr &B = emit(BcOp::IfBegin);
    B.A = C.Reg;
    compileStmt(If->thenStmt());
    if (If->elseStmt()) {
      size_t ElseIdx = here();
      emit(BcOp::IfElse);
      patchTarget(BeginIdx, ElseIdx);
      compileStmt(If->elseStmt());
      size_t EndIdx = here();
      emit(BcOp::IfEnd);
      patchTarget(ElseIdx, EndIdx);
    } else {
      size_t EndIdx = here();
      emit(BcOp::IfEnd);
      patchTarget(BeginIdx, EndIdx);
    }
    return;
  }

  case OclStmt::Kind::For: {
    auto *F = cast<OclForStmt>(S);
    compileStmt(F->init());
    emit(BcOp::LoopBegin);
    size_t TestTop = here();
    int CondReg = F->cond()
                      ? convert(compileExpr(F->cond()), ValType::I32).Reg
                      : emitConstI(1);
    size_t TestIdx = here();
    BcInstr &T = emit(BcOp::LoopTest);
    T.A = CondReg;
    compileStmt(F->body());
    if (F->step())
      compileExpr(F->step());
    BcInstr &E = emit(BcOp::LoopEnd);
    E.Target = static_cast<int32_t>(TestTop);
    patchTarget(TestIdx, here());
    return;
  }

  case OclStmt::Kind::While: {
    auto *W = cast<OclWhileStmt>(S);
    emit(BcOp::LoopBegin);
    size_t TestTop = here();
    int CondReg = convert(compileExpr(W->cond()), ValType::I32).Reg;
    size_t TestIdx = here();
    BcInstr &T = emit(BcOp::LoopTest);
    T.A = CondReg;
    compileStmt(W->body());
    BcInstr &E = emit(BcOp::LoopEnd);
    E.Target = static_cast<int32_t>(TestTop);
    patchTarget(TestIdx, here());
    return;
  }

  case OclStmt::Kind::Return: {
    auto *R = cast<OclReturnStmt>(S);
    if (InInline) {
      if (R->value()) {
        CVal V = compileExpr(R->value());
        for (unsigned I = 0; I < V.Width; ++I) {
          BcInstr &M = emit(BcOp::Mov);
          M.Dst = InlineRetReg + static_cast<int32_t>(I);
          M.A = V.Reg + static_cast<int32_t>(I);
          M.Ty = V.Ty;
        }
      }
      SawInlineReturn = true;
      return;
    }
    if (R->value())
      errorAt(R->loc(), "kernels return void");
    emit(BcOp::Ret);
    return;
  }
  }
  lime_unreachable("bad statement kind");
}

void BytecodeCompiler::compileDecl(OclDeclStmt *D) {
  OclVarDecl *V = D->decl();

  if (const auto *AT = dyn_cast<OclArrayType>(V->Ty)) {
    // Arrays live in memory: the work-group local arena or the
    // per-lane private arena (paper §4.2.1 placement).
    unsigned Bytes = AT->sizeInBytes();
    ArrayHome Home;
    if (V->Space == AddrSpace::Local) {
      K->StaticLocalBytes = (K->StaticLocalBytes + 15u) & ~15u;
      Home.Space = AddrSpace::Local;
      Home.Offset = K->StaticLocalBytes;
      K->StaticLocalBytes += Bytes;
    } else {
      K->PrivateBytes = (K->PrivateBytes + 15u) & ~15u;
      Home.Space = AddrSpace::Private;
      Home.Offset = K->PrivateBytes;
      K->PrivateBytes += Bytes;
    }
    ArrayHomes[V] = Home;
    if (D->init())
      errorAt(D->loc(), "array initializers are not supported");
    return;
  }

  unsigned N = typeRegCount(V->Ty);
  int32_t Reg = allocRegs(N);
  VarRegs[V] = Reg;
  if (!D->init())
    return;
  CVal Init = convert(compileExpr(D->init()), regTypeFor(V->Ty));
  for (unsigned I = 0; I < N; ++I) {
    BcInstr &M = emit(BcOp::Mov);
    M.Dst = Reg + static_cast<int32_t>(I);
    M.A = Init.Reg + static_cast<int32_t>(I % Init.Width);
    M.Ty = regTypeFor(V->Ty);
  }
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

BytecodeCompiler::CVal BytecodeCompiler::convert(CVal V, ValType To) {
  if (V.Ty == To)
    return V;
  int32_t Dst = allocRegs(V.Width);
  for (unsigned I = 0; I < V.Width; ++I) {
    BcInstr &C = emit(BcOp::Cvt);
    C.Dst = Dst + static_cast<int32_t>(I);
    C.A = V.Reg + static_cast<int32_t>(I);
    C.Ty = To;
    C.SrcTy = V.Ty;
  }
  return {Dst, V.Width, To};
}

BytecodeCompiler::CVal BytecodeCompiler::widen(CVal V, unsigned W) {
  // Scalars combine with vectors by modular indexing at use sites.
  return V;
}

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

BytecodeCompiler::Addr BytecodeCompiler::compilePointer(OclExpr *E) {
  if (auto *VR = dyn_cast<OclVarRef>(E)) {
    OclVarDecl *D = VR->decl();
    if (const auto *PT = dyn_cast<PointerType>(D->Ty))
      return {VarRegs[D], PT->space(), PT->pointee()};
    if (const auto *AT = dyn_cast<OclArrayType>(D->Ty)) {
      const ArrayHome &Home = ArrayHomes[D];
      return {emitConstI(Home.Offset), Home.Space, AT->element()};
    }
    errorAt(E->loc(), "expected a pointer or array");
    return {emitConstI(0), AddrSpace::Global, Types.intTy()};
  }

  // Row of a multi-dimensional array: `tile[i]` with array type.
  if (auto *IX = dyn_cast<OclIndex>(E)) {
    Addr Base = compilePointer(IX->base());
    CVal Idx = convert(compileExpr(IX->index()), ValType::I64);
    int32_t SizeReg = emitConstI(Base.ElemTy->sizeInBytes());
    int32_t Scaled = allocRegs(1);
    BcInstr &M = emit(BcOp::Mul);
    M.Dst = Scaled;
    M.A = Idx.Reg;
    M.B = SizeReg;
    M.Ty = ValType::I64;
    int32_t Sum = allocRegs(1);
    BcInstr &A = emit(BcOp::Add);
    A.Dst = Sum;
    A.A = Base.Reg;
    A.B = Scaled;
    A.Ty = ValType::I64;
    const OclType *Elem = Base.ElemTy;
    if (const auto *AT = dyn_cast<OclArrayType>(Elem))
      Elem = AT->element();
    return {Sum, Base.Space, Elem};
  }

  // Pointer arithmetic p + i / p - i.
  if (auto *B = dyn_cast<OclBinary>(E);
      B && (B->op() == OclBinOp::Add || B->op() == OclBinOp::Sub) &&
      isa<PointerType>(E->type())) {
    Addr Base = compilePointer(B->lhs());
    CVal Idx = convert(compileExpr(B->rhs()), ValType::I64);
    int32_t SizeReg = emitConstI(Base.ElemTy->sizeInBytes());
    int32_t Scaled = allocRegs(1);
    BcInstr &M = emit(BcOp::Mul);
    M.Dst = Scaled;
    M.A = Idx.Reg;
    M.B = SizeReg;
    M.Ty = ValType::I64;
    int32_t Sum = allocRegs(1);
    BcInstr &A = emit(B->op() == OclBinOp::Add ? BcOp::Add : BcOp::Sub);
    A.Dst = Sum;
    A.A = Base.Reg;
    A.B = Scaled;
    A.Ty = ValType::I64;
    return {Sum, Base.Space, Base.ElemTy};
  }

  errorAt(E->loc(), "unsupported pointer expression");
  return {emitConstI(0), AddrSpace::Global, Types.intTy()};
}

BytecodeCompiler::Addr BytecodeCompiler::compileAddress(OclExpr *Base,
                                                        OclExpr *Index) {
  Addr P = compilePointer(Base);
  CVal Idx = convert(compileExpr(Index), ValType::I64);
  int32_t SizeReg = emitConstI(P.ElemTy->sizeInBytes());
  int32_t Scaled = allocRegs(1);
  BcInstr &M = emit(BcOp::Mul);
  M.Dst = Scaled;
  M.A = Idx.Reg;
  M.B = SizeReg;
  M.Ty = ValType::I64;
  int32_t Sum = allocRegs(1);
  BcInstr &A = emit(BcOp::Add);
  A.Dst = Sum;
  A.A = P.Reg;
  A.B = Scaled;
  A.Ty = ValType::I64;
  return {Sum, P.Space, P.ElemTy};
}

//===----------------------------------------------------------------------===//
// L-values
//===----------------------------------------------------------------------===//

BytecodeCompiler::LVal BytecodeCompiler::compileLValue(OclExpr *E) {
  if (auto *VR = dyn_cast<OclVarRef>(E)) {
    OclVarDecl *D = VR->decl();
    if (isa<OclArrayType>(D->Ty)) {
      errorAt(E->loc(), "cannot assign to an array");
      return LVal();
    }
    LVal L;
    L.TheKind = LVal::Kind::Reg;
    L.Reg = VarRegs[D];
    L.Width = typeRegCount(D->Ty);
    L.Ty = regTypeFor(D->Ty);
    return L;
  }
  if (auto *IX = dyn_cast<OclIndex>(E)) {
    Addr A = compileAddress(IX->base(), IX->index());
    LVal L;
    L.TheKind = LVal::Kind::Mem;
    L.AddrReg = A.Reg;
    L.Space = A.Space;
    if (const auto *VT = dyn_cast<VectorType>(A.ElemTy)) {
      L.Width = VT->lanes();
      L.Ty = valTypeForScalar(VT->element());
    } else {
      L.Width = 1;
      L.Ty = regTypeFor(A.ElemTy);
    }
    return L;
  }
  if (auto *M = dyn_cast<OclMember>(E)) {
    if (M->vectorLane() >= 0) {
      if (auto *VR = dyn_cast<OclVarRef>(M->base())) {
        LVal L;
        L.TheKind = LVal::Kind::Reg;
        L.Reg = VarRegs[VR->decl()] + M->vectorLane();
        L.Width = 1;
        L.Ty = regTypeFor(E->type());
        return L;
      }
      if (auto *IX = dyn_cast<OclIndex>(M->base())) {
        Addr A = compileAddress(IX->base(), IX->index());
        const auto *VT = cast<VectorType>(M->base()->type());
        int32_t OffReg = emitConstI(
            static_cast<int64_t>(scalarSizeInBytes(VT->element())) *
            M->vectorLane());
        int32_t Sum = allocRegs(1);
        BcInstr &AddI = emit(BcOp::Add);
        AddI.Dst = Sum;
        AddI.A = A.Reg;
        AddI.B = OffReg;
        AddI.Ty = ValType::I64;
        LVal L;
        L.TheKind = LVal::Kind::Mem;
        L.AddrReg = Sum;
        L.Space = A.Space;
        L.Width = 1;
        L.Ty = valTypeForScalar(VT->element());
        return L;
      }
    }
    errorAt(E->loc(), "unsupported member assignment target");
    return LVal();
  }
  errorAt(E->loc(), "expression is not assignable");
  return LVal();
}

BytecodeCompiler::CVal BytecodeCompiler::loadLValue(const LVal &L,
                                                    SourceLocation Loc) {
  if (L.TheKind == LVal::Kind::Reg)
    return {L.Reg, L.Width, L.Ty};
  int32_t Dst = allocRegs(L.Width);
  BcInstr &I = emit(BcOp::Load);
  I.Dst = Dst;
  I.B = L.AddrReg;
  I.Space = L.Space;
  I.Ty = L.Ty;
  I.Width = static_cast<uint8_t>(L.Width);
  I.Loc = Loc;
  return {Dst, L.Width, L.Ty};
}

void BytecodeCompiler::storeLValue(const LVal &L, CVal V,
                                   SourceLocation Loc) {
  V = convert(V, L.Ty);
  if (L.TheKind == LVal::Kind::Reg) {
    for (unsigned I = 0; I < L.Width; ++I) {
      BcInstr &M = emit(BcOp::Mov);
      M.Dst = L.Reg + static_cast<int32_t>(I);
      M.A = V.Reg + static_cast<int32_t>(I % V.Width);
      M.Ty = L.Ty;
    }
    return;
  }
  int32_t SrcReg = V.Reg;
  if (V.Width != L.Width) {
    // Broadcast / repack into a contiguous run of L.Width registers.
    SrcReg = allocRegs(L.Width);
    for (unsigned I = 0; I < L.Width; ++I) {
      BcInstr &M = emit(BcOp::Mov);
      M.Dst = SrcReg + static_cast<int32_t>(I);
      M.A = V.Reg + static_cast<int32_t>(I % V.Width);
      M.Ty = L.Ty;
    }
  }
  BcInstr &S = emit(BcOp::Store);
  S.A = SrcReg;
  S.B = L.AddrReg;
  S.Space = L.Space;
  S.Ty = L.Ty;
  S.Width = static_cast<uint8_t>(L.Width);
  S.Loc = Loc;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static BcOp arithOpFor(OclBinOp Op) {
  switch (Op) {
  case OclBinOp::Add:
    return BcOp::Add;
  case OclBinOp::Sub:
    return BcOp::Sub;
  case OclBinOp::Mul:
    return BcOp::Mul;
  case OclBinOp::Div:
    return BcOp::Div;
  case OclBinOp::Rem:
    return BcOp::Rem;
  case OclBinOp::Shl:
    return BcOp::Shl;
  case OclBinOp::Shr:
    return BcOp::Shr;
  case OclBinOp::And:
    return BcOp::And;
  case OclBinOp::Or:
    return BcOp::Or;
  case OclBinOp::Xor:
    return BcOp::Xor;
  case OclBinOp::Lt:
    return BcOp::CmpLt;
  case OclBinOp::Le:
    return BcOp::CmpLe;
  case OclBinOp::Gt:
    return BcOp::CmpGt;
  case OclBinOp::Ge:
    return BcOp::CmpGe;
  case OclBinOp::Eq:
    return BcOp::CmpEq;
  case OclBinOp::Ne:
    return BcOp::CmpNe;
  case OclBinOp::LAnd:
    return BcOp::And;
  case OclBinOp::LOr:
    return BcOp::Or;
  }
  lime_unreachable("bad binary op");
}

BytecodeCompiler::CVal BytecodeCompiler::compileBinary(OclBinary *B) {
  CVal L = compileExpr(B->lhs());
  CVal R = compileExpr(B->rhs());

  // Pointer arithmetic routed through compilePointer produces an
  // address value.
  if (isa<PointerType>(B->type())) {
    // Recompile through the pointer path (cheap; expressions are
    // side-effect-free here by construction).
    Addr A = compilePointer(B);
    return {A.Reg, 1, ValType::I64};
  }

  switch (B->op()) {
  case OclBinOp::LAnd:
  case OclBinOp::LOr: {
    // Eager evaluation: conditions in kernels are side-effect-free;
    // divergence-correct short-circuiting would cost mask operations
    // for no modeled benefit.
    CVal LB = convert(L, ValType::I32);
    CVal RB = convert(R, ValType::I32);
    int32_t Zero = emitConstI(0);
    int32_t LN = allocRegs(1);
    BcInstr &NL = emit(BcOp::CmpNe);
    NL.Dst = LN;
    NL.A = LB.Reg;
    NL.B = Zero;
    NL.Ty = ValType::I32;
    int32_t RN = allocRegs(1);
    BcInstr &NR = emit(BcOp::CmpNe);
    NR.Dst = RN;
    NR.A = RB.Reg;
    NR.B = Zero;
    NR.Ty = ValType::I32;
    int32_t Dst = allocRegs(1);
    BcInstr &I = emit(B->op() == OclBinOp::LAnd ? BcOp::And : BcOp::Or);
    I.Dst = Dst;
    I.A = LN;
    I.B = RN;
    I.Ty = ValType::I32;
    return {Dst, 1, ValType::I32};
  }
  default:
    break;
  }

  bool IsCompare = B->op() == OclBinOp::Lt || B->op() == OclBinOp::Le ||
                   B->op() == OclBinOp::Gt || B->op() == OclBinOp::Ge ||
                   B->op() == OclBinOp::Eq || B->op() == OclBinOp::Ne;

  // Operand domain: for compares, the wider of the two; for
  // arithmetic, the node's result type.
  ValType OpTy;
  if (IsCompare) {
    auto Rank = [](ValType T) {
      switch (T) {
      case ValType::I8:
      case ValType::U8:
        return 0;
      case ValType::I32:
      case ValType::U32:
        return 1;
      case ValType::I64:
      case ValType::U64:
        return 2;
      case ValType::F32:
        return 3;
      case ValType::F64:
        return 4;
      }
      return 1;
    };
    OpTy = Rank(L.Ty) >= Rank(R.Ty) ? L.Ty : R.Ty;
    if (OpTy == ValType::I8 || OpTy == ValType::U8)
      OpTy = ValType::I32;
  } else {
    OpTy = regTypeFor(B->type());
  }

  CVal LC = convert(L, OpTy);
  CVal RC = convert(R, OpTy);
  unsigned W = std::max(LC.Width, RC.Width);
  int32_t Dst = allocRegs(W);
  for (unsigned I = 0; I < W; ++I) {
    BcInstr &Ins = emit(arithOpFor(B->op()));
    Ins.Dst = Dst + static_cast<int32_t>(I);
    Ins.A = LC.Reg + static_cast<int32_t>(I % LC.Width);
    Ins.B = RC.Reg + static_cast<int32_t>(I % RC.Width);
    Ins.Ty = OpTy;
  }
  return {Dst, W, IsCompare ? ValType::I32 : OpTy};
}

BytecodeCompiler::CVal BytecodeCompiler::compileInlineCall(OclCall *C) {
  OclFunction *F = C->function();
  if (InlineDepth > 16) {
    errorAt(C->loc(), "call nesting too deep (recursion is not legal "
                      "OpenCL C)");
    return {emitConstI(0), 1, ValType::I32};
  }

  // Bind arguments to the callee's parameter registers.
  std::vector<std::pair<const OclVarDecl *, int32_t>> SavedBindings;
  for (size_t I = 0, N = F->params().size(); I != N; ++I) {
    OclVarDecl *P = F->params()[I];
    if (isa<PointerType>(P->Ty)) {
      // Pointer argument: pass the address register through.
      Addr A = compilePointer(C->args()[I]);
      SavedBindings.emplace_back(P, VarRegs.count(P) ? VarRegs[P] : -1);
      VarRegs[P] = A.Reg;
      continue;
    }
    if (isa<ImageType>(P->Ty)) {
      // Image argument: pass the slot register through.
      auto *VR = dyn_cast<OclVarRef>(C->args()[I]);
      if (!VR || !isa<ImageType>(VR->decl()->Ty)) {
        errorAt(C->loc(), "image arguments must be image variables");
        continue;
      }
      SavedBindings.emplace_back(P, VarRegs.count(P) ? VarRegs[P] : -1);
      VarRegs[P] = VarRegs[VR->decl()];
      continue;
    }
    CVal Arg = compileExpr(C->args()[I]);
    ValType PT2 = regTypeFor(P->Ty);
    CVal Conv = convert(Arg, PT2);
    unsigned N2 = typeRegCount(P->Ty);
    int32_t Regs = allocRegs(N2);
    for (unsigned J = 0; J < N2; ++J) {
      BcInstr &M = emit(BcOp::Mov);
      M.Dst = Regs + static_cast<int32_t>(J);
      M.A = Conv.Reg + static_cast<int32_t>(J % Conv.Width);
      M.Ty = PT2;
    }
    SavedBindings.emplace_back(P, VarRegs.count(P) ? VarRegs[P] : -1);
    VarRegs[P] = Regs;
  }

  unsigned RetW = typeRegCount(F->returnType());
  ValType RetTy = regTypeFor(F->returnType());
  int32_t SavedRetReg = InlineRetReg;
  bool SavedInInline = InInline;
  bool SavedSawReturn = SawInlineReturn;

  InlineRetReg = allocRegs(RetW);
  InInline = true;
  SawInlineReturn = false;
  ++InlineDepth;
  compileStmt(F->body());
  --InlineDepth;

  const auto *RetScalar = dyn_cast<ScalarType>(F->returnType());
  bool IsVoid = RetScalar && RetScalar->isVoid();
  if (!SawInlineReturn && !IsVoid)
    errorAt(C->loc(), "non-void helper '" + F->name() +
                          "' must end in a return statement");

  CVal Result = {InlineRetReg, RetW, RetTy};
  InlineRetReg = SavedRetReg;
  InInline = SavedInInline;
  SawInlineReturn = SavedSawReturn;
  for (auto &[P, Old] : SavedBindings) {
    if (Old >= 0)
      VarRegs[P] = Old;
    else
      VarRegs.erase(P);
  }
  return Result;
}

BytecodeCompiler::CVal BytecodeCompiler::compileCall(OclCall *C) {
  OclBuiltin B = C->builtin();

  if (B == OclBuiltin::None) {
    if (!C->function()) {
      errorAt(C->loc(), "unresolved call");
      return {emitConstI(0), 1, ValType::I32};
    }
    return compileInlineCall(C);
  }

  switch (B) {
  case OclBuiltin::GetGlobalId:
  case OclBuiltin::GetLocalId:
  case OclBuiltin::GetGroupId:
  case OclBuiltin::GetGlobalSize:
  case OclBuiltin::GetLocalSize:
  case OclBuiltin::GetNumGroups: {
    auto *DimLit = dyn_cast<OclIntLit>(C->args()[0]);
    unsigned Dim = DimLit ? static_cast<unsigned>(DimLit->value()) : 0;
    if (!DimLit)
      errorAt(C->loc(), "work-item query dimension must be a constant");
    BcOp Op;
    switch (B) {
    case OclBuiltin::GetGlobalId:
      Op = BcOp::GlobalId;
      break;
    case OclBuiltin::GetLocalId:
      Op = BcOp::LocalId;
      break;
    case OclBuiltin::GetGroupId:
      Op = BcOp::GroupId;
      break;
    case OclBuiltin::GetGlobalSize:
      Op = BcOp::GlobalSize;
      break;
    case OclBuiltin::GetLocalSize:
      Op = BcOp::LocalSize;
      break;
    default:
      Op = BcOp::NumGroups;
      break;
    }
    int32_t Dst = allocRegs(1);
    BcInstr &I = emit(Op);
    I.Dst = Dst;
    I.Dim = static_cast<uint8_t>(Dim);
    I.Ty = ValType::I32;
    return {Dst, 1, ValType::I32};
  }

  case OclBuiltin::Barrier: {
    emit(BcOp::Barrier);
    return {emitConstI(0), 1, ValType::I32};
  }

  case OclBuiltin::ReadImageF: {
    // (image, sampler, (int2)(x, y)). The image identity travels in a
    // register (bound from the launch args for kernel params, passed
    // through by the inliner for helper params).
    auto *ImgRef = dyn_cast<OclVarRef>(C->args()[0]);
    if (!ImgRef || !isa<ImageType>(ImgRef->decl()->Ty)) {
      errorAt(C->loc(), "read_imagef image must be an image2d_t variable");
      return {emitConstI(0), 4, ValType::F32};
    }
    compileExpr(C->args()[1]); // sampler evaluated, ignored
    CVal Coord = compileExpr(C->args()[2]);
    if (Coord.Width < 2) {
      errorAt(C->loc(), "read_imagef coordinate must be an int2");
      return {emitConstI(0), 4, ValType::F32};
    }
    int32_t Dst = allocRegs(4);
    BcInstr &I = emit(BcOp::ReadImage);
    I.Dst = Dst;
    I.A = Coord.Reg;     // x
    I.B = Coord.Reg + 1; // y
    I.C = VarRegs[ImgRef->decl()]; // image slot register
    I.Ty = ValType::F32;
    return {Dst, 4, ValType::F32};
  }

  case OclBuiltin::VLoad2:
  case OclBuiltin::VLoad4: {
    unsigned W = B == OclBuiltin::VLoad2 ? 2 : 4;
    Addr P = compilePointer(C->args()[1]);
    CVal Off = convert(compileExpr(C->args()[0]), ValType::I64);
    unsigned ElemBytes = P.ElemTy->sizeInBytes();
    int32_t SizeReg = emitConstI(static_cast<int64_t>(ElemBytes) * W);
    int32_t Scaled = allocRegs(1);
    BcInstr &M = emit(BcOp::Mul);
    M.Dst = Scaled;
    M.A = Off.Reg;
    M.B = SizeReg;
    M.Ty = ValType::I64;
    int32_t Sum = allocRegs(1);
    BcInstr &A = emit(BcOp::Add);
    A.Dst = Sum;
    A.A = P.Reg;
    A.B = Scaled;
    A.Ty = ValType::I64;
    ValType ET = regTypeFor(P.ElemTy);
    int32_t Dst = allocRegs(W);
    BcInstr &L = emit(BcOp::Load);
    L.Dst = Dst;
    L.B = Sum;
    L.Space = P.Space;
    L.Ty = ET;
    L.Width = static_cast<uint8_t>(W);
    L.Loc = C->loc();
    return {Dst, W, ET};
  }

  case OclBuiltin::VStore2:
  case OclBuiltin::VStore4: {
    unsigned W = B == OclBuiltin::VStore2 ? 2 : 4;
    CVal V = compileExpr(C->args()[0]);
    Addr P = compilePointer(C->args()[2]);
    CVal Off = convert(compileExpr(C->args()[1]), ValType::I64);
    unsigned ElemBytes = P.ElemTy->sizeInBytes();
    int32_t SizeReg = emitConstI(static_cast<int64_t>(ElemBytes) * W);
    int32_t Scaled = allocRegs(1);
    BcInstr &M = emit(BcOp::Mul);
    M.Dst = Scaled;
    M.A = Off.Reg;
    M.B = SizeReg;
    M.Ty = ValType::I64;
    int32_t Sum = allocRegs(1);
    BcInstr &A = emit(BcOp::Add);
    A.Dst = Sum;
    A.A = P.Reg;
    A.B = Scaled;
    A.Ty = ValType::I64;
    ValType ET = regTypeFor(P.ElemTy);
    CVal VC = convert(V, ET);
    BcInstr &S = emit(BcOp::Store);
    S.A = VC.Reg;
    S.B = Sum;
    S.Space = P.Space;
    S.Ty = ET;
    S.Width = static_cast<uint8_t>(W);
    S.Loc = C->loc();
    return {emitConstI(0), 1, ValType::I32};
  }

  default:
    break;
  }

  // Math builtins: elementwise over the (possibly vector) arguments.
  std::vector<CVal> Args;
  for (OclExpr *A : C->args())
    Args.push_back(compileExpr(A));
  ValType RT = regTypeFor(C->type());
  unsigned W = typeRegCount(C->type());

  BcOp Op;
  bool Native = false;
  switch (B) {
  case OclBuiltin::Sqrt:
    Op = BcOp::Sqrt;
    break;
  case OclBuiltin::NativeSqrt:
    Op = BcOp::Sqrt;
    Native = true;
    break;
  case OclBuiltin::RSqrt:
    Op = BcOp::RSqrt;
    break;
  case OclBuiltin::NativeRsqrt:
    Op = BcOp::RSqrt;
    Native = true;
    break;
  case OclBuiltin::Sin:
    Op = BcOp::Sin;
    break;
  case OclBuiltin::NativeSin:
    Op = BcOp::Sin;
    Native = true;
    break;
  case OclBuiltin::Cos:
    Op = BcOp::Cos;
    break;
  case OclBuiltin::NativeCos:
    Op = BcOp::Cos;
    Native = true;
    break;
  case OclBuiltin::Tan:
    Op = BcOp::Tan;
    break;
  case OclBuiltin::Exp:
    Op = BcOp::Exp;
    break;
  case OclBuiltin::NativeExp:
    Op = BcOp::Exp;
    Native = true;
    break;
  case OclBuiltin::Log:
    Op = BcOp::Log;
    break;
  case OclBuiltin::NativeLog:
    Op = BcOp::Log;
    Native = true;
    break;
  case OclBuiltin::Pow:
    Op = BcOp::Pow;
    break;
  case OclBuiltin::Floor:
    Op = BcOp::Floor;
    break;
  case OclBuiltin::Fabs:
  case OclBuiltin::Abs:
    Op = BcOp::AbsOp;
    break;
  case OclBuiltin::Fmin:
  case OclBuiltin::Min:
    Op = BcOp::MinOp;
    break;
  case OclBuiltin::Fmax:
  case OclBuiltin::Max:
    Op = BcOp::MaxOp;
    break;
  default:
    errorAt(C->loc(), "builtin not supported in this position");
    return {emitConstI(0), 1, ValType::I32};
  }

  for (CVal &A : Args)
    A = convert(A, RT);
  int32_t Dst = allocRegs(W);
  for (unsigned I = 0; I < W; ++I) {
    BcInstr &Ins = emit(Op);
    Ins.Dst = Dst + static_cast<int32_t>(I);
    Ins.A = Args[0].Reg + static_cast<int32_t>(I % Args[0].Width);
    if (Args.size() > 1)
      Ins.B = Args[1].Reg + static_cast<int32_t>(I % Args[1].Width);
    Ins.Ty = RT;
    Ins.Native = Native;
  }
  return {Dst, W, RT};
}

BytecodeCompiler::CVal BytecodeCompiler::compileExpr(OclExpr *E) {
  switch (E->kind()) {
  case OclExpr::Kind::IntLit: {
    int32_t R = allocRegs(1);
    BcInstr &I = emit(BcOp::ConstI);
    I.Dst = R;
    I.ImmI = cast<OclIntLit>(E)->value();
    I.Ty = ValType::I32;
    return {R, 1, ValType::I32};
  }
  case OclExpr::Kind::FloatLit: {
    auto *L = cast<OclFloatLit>(E);
    int32_t R = allocRegs(1);
    BcInstr &I = emit(BcOp::ConstF);
    I.Dst = R;
    I.ImmF = L->isSingle()
                 ? static_cast<double>(static_cast<float>(L->value()))
                 : L->value();
    I.Ty = L->isSingle() ? ValType::F32 : ValType::F64;
    return {R, 1, I.Ty};
  }
  case OclExpr::Kind::VarRef: {
    auto *VR = cast<OclVarRef>(E);
    OclVarDecl *D = VR->decl();
    if (isa<OclArrayType>(D->Ty)) {
      Addr A = compilePointer(E);
      return {A.Reg, 1, ValType::I64};
    }
    return {VarRegs[D], typeRegCount(D->Ty), regTypeFor(D->Ty)};
  }
  case OclExpr::Kind::Index:
    return loadLValue(compileLValue(E), E->loc());
  case OclExpr::Kind::Member: {
    auto *M = cast<OclMember>(E);
    if (M->vectorLane() >= 0) {
      CVal Base = compileExpr(M->base());
      return {Base.Reg + M->vectorLane(), 1, Base.Ty};
    }
    auto *VR = dyn_cast<OclVarRef>(M->base());
    if (!VR || !VR->decl()->IsParam) {
      errorAt(E->loc(), "struct access is only supported on by-value "
                        "kernel parameters");
      return {emitConstI(0), 1, ValType::I32};
    }
    const StructType::Field *F = M->field();
    int32_t OffReg = emitConstI(F->Offset);
    int32_t AddrReg = allocRegs(1);
    BcInstr &A = emit(BcOp::Add);
    A.Dst = AddrReg;
    A.A = VarRegs[VR->decl()];
    A.B = OffReg;
    A.Ty = ValType::I64;
    unsigned W = typeRegCount(F->Ty);
    ValType VT = regTypeFor(F->Ty);
    int32_t Dst = allocRegs(W);
    BcInstr &L = emit(BcOp::Load);
    L.Dst = Dst;
    L.B = AddrReg;
    L.Space = AddrSpace::Param;
    L.Ty = VT;
    L.Width = static_cast<uint8_t>(W);
    L.Loc = E->loc();
    return {Dst, W, VT};
  }
  case OclExpr::Kind::Unary: {
    auto *U = cast<OclUnary>(E);
    switch (U->op()) {
    case OclUnaryOp::Neg:
    case OclUnaryOp::Not:
    case OclUnaryOp::BitNot: {
      CVal V = compileExpr(U->sub());
      int32_t Dst = allocRegs(V.Width);
      for (unsigned I = 0; I < V.Width; ++I) {
        BcInstr &N = emit(U->op() == OclUnaryOp::Neg   ? BcOp::Neg
                          : U->op() == OclUnaryOp::Not ? BcOp::LNot
                                                        : BcOp::Not);
        N.Dst = Dst + static_cast<int32_t>(I);
        N.A = V.Reg + static_cast<int32_t>(I);
        N.Ty = V.Ty;
      }
      return {Dst, V.Width,
              U->op() == OclUnaryOp::Not ? ValType::I32 : V.Ty};
    }
    case OclUnaryOp::PreInc:
    case OclUnaryOp::PreDec:
    case OclUnaryOp::PostInc:
    case OclUnaryOp::PostDec: {
      bool IsInc =
          U->op() == OclUnaryOp::PreInc || U->op() == OclUnaryOp::PostInc;
      bool IsPost =
          U->op() == OclUnaryOp::PostInc || U->op() == OclUnaryOp::PostDec;
      LVal L = compileLValue(U->sub());
      CVal Old = loadLValue(L, E->loc());
      int32_t One = allocRegs(1);
      if (isFloatVal(Old.Ty)) {
        BcInstr &CI = emit(BcOp::ConstF);
        CI.Dst = One;
        CI.ImmF = 1.0;
        CI.Ty = Old.Ty;
      } else {
        BcInstr &CI = emit(BcOp::ConstI);
        CI.Dst = One;
        CI.ImmI = 1;
        CI.Ty = Old.Ty;
      }
      int32_t OldCopy = Old.Reg;
      if (IsPost) {
        OldCopy = allocRegs(1);
        BcInstr &M = emit(BcOp::Mov);
        M.Dst = OldCopy;
        M.A = Old.Reg;
        M.Ty = Old.Ty;
      }
      int32_t NewReg = allocRegs(1);
      BcInstr &A = emit(IsInc ? BcOp::Add : BcOp::Sub);
      A.Dst = NewReg;
      A.A = Old.Reg;
      A.B = One;
      A.Ty = Old.Ty;
      storeLValue(L, {NewReg, 1, Old.Ty}, E->loc());
      return {IsPost ? OldCopy : NewReg, 1, Old.Ty};
    }
    }
    lime_unreachable("bad unary op");
  }
  case OclExpr::Kind::Binary:
    return compileBinary(cast<OclBinary>(E));

  case OclExpr::Kind::Assign: {
    auto *A = cast<OclAssign>(E);
    LVal L = compileLValue(A->target());
    CVal V;
    if (A->isCompound()) {
      CVal Old = loadLValue(L, E->loc());
      CVal RHS = compileExpr(A->value());
      CVal LC = convert(Old, L.Ty);
      CVal RC = convert(RHS, L.Ty);
      int32_t Dst = allocRegs(L.Width);
      for (unsigned I = 0; I < L.Width; ++I) {
        BcInstr &Ins = emit(arithOpFor(A->compoundOp()));
        Ins.Dst = Dst + static_cast<int32_t>(I);
        Ins.A = LC.Reg + static_cast<int32_t>(I % LC.Width);
        Ins.B = RC.Reg + static_cast<int32_t>(I % RC.Width);
        Ins.Ty = L.Ty;
      }
      V = {Dst, L.Width, L.Ty};
    } else {
      V = compileExpr(A->value());
    }
    storeLValue(L, V, E->loc());
    return convert(V, L.Ty);
  }

  case OclExpr::Kind::Conditional: {
    auto *C = cast<OclConditional>(E);
    CVal Cond = convert(compileExpr(C->cond()), ValType::I32);
    ValType RT = regTypeFor(E->type());
    CVal T = convert(compileExpr(C->thenExpr()), RT);
    CVal F = convert(compileExpr(C->elseExpr()), RT);
    unsigned W = std::max(T.Width, F.Width);
    int32_t Dst = allocRegs(W);
    for (unsigned I = 0; I < W; ++I) {
      BcInstr &S = emit(BcOp::Select);
      S.Dst = Dst + static_cast<int32_t>(I);
      S.A = Cond.Reg + static_cast<int32_t>(I % Cond.Width);
      S.B = T.Reg + static_cast<int32_t>(I % T.Width);
      S.C = F.Reg + static_cast<int32_t>(I % F.Width);
      S.Ty = RT;
    }
    return {Dst, W, RT};
  }

  case OclExpr::Kind::Call:
    return compileCall(cast<OclCall>(E));

  case OclExpr::Kind::Cast: {
    auto *C = cast<OclCast>(E);
    CVal V = compileExpr(C->sub());
    return convert(V, regTypeFor(E->type()));
  }

  case OclExpr::Kind::VectorLit: {
    auto *VL = cast<OclVectorLit>(E);
    const auto *VT = cast<VectorType>(E->type());
    ValType ET = valTypeForScalar(VT->element());
    unsigned W = VT->lanes();
    int32_t Dst = allocRegs(W);
    if (VL->elems().size() == 1) {
      CVal V = convert(compileExpr(VL->elems()[0]), ET);
      for (unsigned I = 0; I < W; ++I) {
        BcInstr &M = emit(BcOp::Mov);
        M.Dst = Dst + static_cast<int32_t>(I);
        M.A = V.Reg;
        M.Ty = ET;
      }
    } else {
      for (unsigned I = 0; I < W && I < VL->elems().size(); ++I) {
        CVal V = convert(compileExpr(VL->elems()[I]), ET);
        BcInstr &M = emit(BcOp::Mov);
        M.Dst = Dst + static_cast<int32_t>(I);
        M.A = V.Reg;
        M.Ty = ET;
      }
    }
    return {Dst, W, ET};
  }
  }
  lime_unreachable("bad expression kind");
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

static const char *opName(BcOp Op) {
  switch (Op) {
  case BcOp::ConstI:
    return "consti";
  case BcOp::ConstF:
    return "constf";
  case BcOp::Mov:
    return "mov";
  case BcOp::Cvt:
    return "cvt";
  case BcOp::Add:
    return "add";
  case BcOp::Sub:
    return "sub";
  case BcOp::Mul:
    return "mul";
  case BcOp::Div:
    return "div";
  case BcOp::Rem:
    return "rem";
  case BcOp::Shl:
    return "shl";
  case BcOp::Shr:
    return "shr";
  case BcOp::And:
    return "and";
  case BcOp::Or:
    return "or";
  case BcOp::Xor:
    return "xor";
  case BcOp::Neg:
    return "neg";
  case BcOp::Not:
    return "not";
  case BcOp::LNot:
    return "lnot";
  case BcOp::MinOp:
    return "min";
  case BcOp::MaxOp:
    return "max";
  case BcOp::AbsOp:
    return "abs";
  case BcOp::CmpLt:
    return "cmplt";
  case BcOp::CmpLe:
    return "cmple";
  case BcOp::CmpGt:
    return "cmpgt";
  case BcOp::CmpGe:
    return "cmpge";
  case BcOp::CmpEq:
    return "cmpeq";
  case BcOp::CmpNe:
    return "cmpne";
  case BcOp::Select:
    return "select";
  case BcOp::Sqrt:
    return "sqrt";
  case BcOp::RSqrt:
    return "rsqrt";
  case BcOp::Sin:
    return "sin";
  case BcOp::Cos:
    return "cos";
  case BcOp::Tan:
    return "tan";
  case BcOp::Exp:
    return "exp";
  case BcOp::Log:
    return "log";
  case BcOp::Pow:
    return "pow";
  case BcOp::Floor:
    return "floor";
  case BcOp::Load:
    return "load";
  case BcOp::Store:
    return "store";
  case BcOp::GlobalId:
    return "gid";
  case BcOp::LocalId:
    return "lid";
  case BcOp::GroupId:
    return "grp";
  case BcOp::GlobalSize:
    return "gsz";
  case BcOp::LocalSize:
    return "lsz";
  case BcOp::NumGroups:
    return "ngrp";
  case BcOp::ReadImage:
    return "rdimg";
  case BcOp::Jump:
    return "jump";
  case BcOp::IfBegin:
    return "if";
  case BcOp::IfElse:
    return "else";
  case BcOp::IfEnd:
    return "endif";
  case BcOp::LoopBegin:
    return "loop";
  case BcOp::LoopTest:
    return "looptest";
  case BcOp::LoopEnd:
    return "loopend";
  case BcOp::Barrier:
    return "barrier";
  case BcOp::Ret:
    return "ret";
  case BcOp::Halt:
    return "halt";
  }
  lime_unreachable("bad opcode");
}

std::string lime::ocl::disassemble(const BcKernel &K) {
  std::string Out = formatString("kernel %s: %u regs, %u local bytes, "
                                 "%u private bytes\n",
                                 K.Name.c_str(), K.NumRegs,
                                 K.StaticLocalBytes, K.PrivateBytes);
  for (size_t I = 0, E = K.Code.size(); I != E; ++I) {
    const BcInstr &In = K.Code[I];
    Out += formatString("%4zu: %-9s d=%d a=%d b=%d c=%d t=%d w=%u", I,
                        opName(In.Op), In.Dst, In.A, In.B, In.C, In.Target,
                        In.Width);
    if (In.Op == BcOp::ConstI)
      Out += formatString(" imm=%lld", static_cast<long long>(In.ImmI));
    if (In.Op == BcOp::ConstF)
      Out += formatString(" imm=%g", In.ImmF);
    if (In.Op == BcOp::Load || In.Op == BcOp::Store)
      Out += formatString(" space=%s", addrSpaceName(In.Space));
    Out += '\n';
  }
  return Out;
}
