//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the executable OpenCL-C subset. The parser type-checks
/// while building (C-style declare-before-use makes this natural), so
/// every expression node carries its resolved OclType and every name
/// its declaration. The bytecode compiler consumes this tree directly.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_OCLAST_H
#define LIMECC_OCL_OCLAST_H

#include "ocl/OclType.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <vector>

namespace lime::ocl {

class OclStmt;
class OclCompoundStmt;

/// Builtin functions the VM implements (paper-relevant set: work-item
/// queries, barriers, math including the native_* variants the paper's
/// benchmarks lean on, image reads, and vector load/store).
enum class OclBuiltin : uint8_t {
  None,
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetGlobalSize,
  GetLocalSize,
  GetNumGroups,
  Barrier,
  Sqrt,
  RSqrt,
  Sin,
  Cos,
  Tan,
  Exp,
  Log,
  Pow,
  Fabs,
  Fmin,
  Fmax,
  Floor,
  Min,
  Max,
  Abs,
  NativeSqrt,
  NativeRsqrt,
  NativeSin,
  NativeCos,
  NativeExp,
  NativeLog,
  ReadImageF,
  VLoad2,
  VLoad4,
  VStore2,
  VStore4
};

/// Returns the builtin for a callee name; None when unknown.
OclBuiltin lookupOclBuiltin(const std::string &Name);

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A named slot: kernel parameter or local variable declaration.
struct OclVarDecl {
  SourceLocation Loc;
  std::string Name;
  const OclType *Ty = nullptr;
  AddrSpace Space = AddrSpace::Private;
  bool IsParam = false;
  /// Parameter position (params only).
  unsigned ParamIndex = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class OclExpr {
public:
  enum class Kind : uint8_t {
    IntLit,
    FloatLit,
    VarRef,
    Unary,
    Binary,
    Assign,
    Conditional,
    Call,
    Index,
    Member,
    Cast,
    VectorLit
  };

  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }
  const OclType *type() const { return Ty; }
  void setType(const OclType *T) { Ty = T; }
  virtual ~OclExpr() = default;

protected:
  OclExpr(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
  const OclType *Ty = nullptr;
};

class OclIntLit : public OclExpr {
public:
  OclIntLit(SourceLocation Loc, long long V)
      : OclExpr(Kind::IntLit, Loc), Value(V) {}
  long long value() const { return Value; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::IntLit; }

private:
  long long Value;
};

class OclFloatLit : public OclExpr {
public:
  OclFloatLit(SourceLocation Loc, double V, bool IsSingle)
      : OclExpr(Kind::FloatLit, Loc), Value(V), IsSingle(IsSingle) {}
  double value() const { return Value; }
  bool isSingle() const { return IsSingle; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::FloatLit; }

private:
  double Value;
  bool IsSingle;
};

class OclVarRef : public OclExpr {
public:
  OclVarRef(SourceLocation Loc, OclVarDecl *D)
      : OclExpr(Kind::VarRef, Loc), Decl(D) {}
  OclVarDecl *decl() const { return Decl; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::VarRef; }

private:
  OclVarDecl *Decl;
};

enum class OclUnaryOp : uint8_t { Neg, Not, BitNot, PreInc, PreDec, PostInc, PostDec };

class OclUnary : public OclExpr {
public:
  OclUnary(SourceLocation Loc, OclUnaryOp Op, OclExpr *Sub)
      : OclExpr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}
  OclUnaryOp op() const { return Op; }
  OclExpr *sub() const { return Sub; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Unary; }

private:
  OclUnaryOp Op;
  OclExpr *Sub;
};

enum class OclBinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LAnd,
  LOr
};

class OclBinary : public OclExpr {
public:
  OclBinary(SourceLocation Loc, OclBinOp Op, OclExpr *L, OclExpr *R)
      : OclExpr(Kind::Binary, Loc), Op(Op), L(L), R(R) {}
  OclBinOp op() const { return Op; }
  OclExpr *lhs() const { return L; }
  OclExpr *rhs() const { return R; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Binary; }

private:
  OclBinOp Op;
  OclExpr *L;
  OclExpr *R;
};

/// `lhs = rhs` and compound forms; Op is the arithmetic op or Add==…
/// none when plain.
class OclAssign : public OclExpr {
public:
  OclAssign(SourceLocation Loc, OclExpr *Target, OclExpr *Value,
            bool IsCompound, OclBinOp CompoundOp)
      : OclExpr(Kind::Assign, Loc), Target(Target), Value(Value),
        Compound(IsCompound), CompoundOp(CompoundOp) {}
  OclExpr *target() const { return Target; }
  OclExpr *value() const { return Value; }
  bool isCompound() const { return Compound; }
  OclBinOp compoundOp() const { return CompoundOp; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Assign; }

private:
  OclExpr *Target;
  OclExpr *Value;
  bool Compound;
  OclBinOp CompoundOp;
};

class OclConditional : public OclExpr {
public:
  OclConditional(SourceLocation Loc, OclExpr *C, OclExpr *T, OclExpr *F)
      : OclExpr(Kind::Conditional, Loc), Cond(C), Then(T), Else(F) {}
  OclExpr *cond() const { return Cond; }
  OclExpr *thenExpr() const { return Then; }
  OclExpr *elseExpr() const { return Else; }
  static bool classof(const OclExpr *E) {
    return E->kind() == Kind::Conditional;
  }

private:
  OclExpr *Cond;
  OclExpr *Then;
  OclExpr *Else;
};

class OclFunction;

/// Builtin or user-function call (user calls are inlined by the
/// bytecode compiler; OpenCL C forbids recursion).
class OclCall : public OclExpr {
public:
  OclCall(SourceLocation Loc, std::string Callee, OclBuiltin Builtin,
          OclFunction *Fn, std::vector<OclExpr *> Args)
      : OclExpr(Kind::Call, Loc), Callee(std::move(Callee)), Builtin(Builtin),
        Fn(Fn), Args(std::move(Args)) {}
  const std::string &callee() const { return Callee; }
  OclBuiltin builtin() const { return Builtin; }
  OclFunction *function() const { return Fn; }
  const std::vector<OclExpr *> &args() const { return Args; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  OclBuiltin Builtin;
  OclFunction *Fn;
  std::vector<OclExpr *> Args;
};

class OclIndex : public OclExpr {
public:
  OclIndex(SourceLocation Loc, OclExpr *Base, OclExpr *Idx)
      : OclExpr(Kind::Index, Loc), Base(Base), Idx(Idx) {}
  OclExpr *base() const { return Base; }
  OclExpr *index() const { return Idx; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Index; }

private:
  OclExpr *Base;
  OclExpr *Idx;
};

/// `.x/.y/.z/.w/.sN` vector components and struct fields.
class OclMember : public OclExpr {
public:
  OclMember(SourceLocation Loc, OclExpr *Base, std::string Name,
            int VectorLane, const StructType::Field *Field)
      : OclExpr(Kind::Member, Loc), Base(Base), Name(std::move(Name)),
        VectorLane(VectorLane), Field(Field) {}
  OclExpr *base() const { return Base; }
  const std::string &name() const { return Name; }
  /// Lane index for vector component access; -1 for struct fields.
  int vectorLane() const { return VectorLane; }
  const StructType::Field *field() const { return Field; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Member; }

private:
  OclExpr *Base;
  std::string Name;
  int VectorLane;
  const StructType::Field *Field;
};

class OclCast : public OclExpr {
public:
  OclCast(SourceLocation Loc, const OclType *To, OclExpr *Sub)
      : OclExpr(Kind::Cast, Loc), Sub(Sub) {
    setType(To);
  }
  OclExpr *sub() const { return Sub; }
  static bool classof(const OclExpr *E) { return E->kind() == Kind::Cast; }

private:
  OclExpr *Sub;
};

/// `(float4)(a, b, c, d)` — also broadcasts when one element given.
class OclVectorLit : public OclExpr {
public:
  OclVectorLit(SourceLocation Loc, const VectorType *VT,
               std::vector<OclExpr *> Elems)
      : OclExpr(Kind::VectorLit, Loc), Elems(std::move(Elems)) {
    setType(VT);
  }
  const std::vector<OclExpr *> &elems() const { return Elems; }
  static bool classof(const OclExpr *E) {
    return E->kind() == Kind::VectorLit;
  }

private:
  std::vector<OclExpr *> Elems;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class OclStmt {
public:
  enum class Kind : uint8_t {
    Compound,
    Decl,
    Expr,
    If,
    For,
    While,
    Return
  };

  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }
  virtual ~OclStmt() = default;

protected:
  OclStmt(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
};

class OclCompoundStmt : public OclStmt {
public:
  OclCompoundStmt(SourceLocation Loc, std::vector<OclStmt *> Stmts)
      : OclStmt(Kind::Compound, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<OclStmt *> &stmts() const { return Stmts; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<OclStmt *> Stmts;
};

class OclDeclStmt : public OclStmt {
public:
  OclDeclStmt(SourceLocation Loc, OclVarDecl *Decl, OclExpr *Init)
      : OclStmt(Kind::Decl, Loc), Decl(Decl), Init(Init) {}
  OclVarDecl *decl() const { return Decl; }
  OclExpr *init() const { return Init; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::Decl; }

private:
  OclVarDecl *Decl;
  OclExpr *Init;
};

class OclExprStmt : public OclStmt {
public:
  OclExprStmt(SourceLocation Loc, OclExpr *E)
      : OclStmt(Kind::Expr, Loc), TheExpr(E) {}
  OclExpr *expr() const { return TheExpr; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::Expr; }

private:
  OclExpr *TheExpr;
};

class OclIfStmt : public OclStmt {
public:
  OclIfStmt(SourceLocation Loc, OclExpr *Cond, OclStmt *Then, OclStmt *Else)
      : OclStmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  OclExpr *cond() const { return Cond; }
  OclStmt *thenStmt() const { return Then; }
  OclStmt *elseStmt() const { return Else; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::If; }

private:
  OclExpr *Cond;
  OclStmt *Then;
  OclStmt *Else;
};

class OclForStmt : public OclStmt {
public:
  OclForStmt(SourceLocation Loc, OclStmt *Init, OclExpr *Cond, OclExpr *Step,
             OclStmt *Body)
      : OclStmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  OclStmt *init() const { return Init; }
  OclExpr *cond() const { return Cond; }
  OclExpr *step() const { return Step; }
  OclStmt *body() const { return Body; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::For; }

private:
  OclStmt *Init;
  OclExpr *Cond;
  OclExpr *Step;
  OclStmt *Body;
};

class OclWhileStmt : public OclStmt {
public:
  OclWhileStmt(SourceLocation Loc, OclExpr *Cond, OclStmt *Body)
      : OclStmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  OclExpr *cond() const { return Cond; }
  OclStmt *body() const { return Body; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::While; }

private:
  OclExpr *Cond;
  OclStmt *Body;
};

class OclReturnStmt : public OclStmt {
public:
  OclReturnStmt(SourceLocation Loc, OclExpr *Value)
      : OclStmt(Kind::Return, Loc), Value(Value) {}
  OclExpr *value() const { return Value; }
  static bool classof(const OclStmt *S) { return S->kind() == Kind::Return; }

private:
  OclExpr *Value;
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

class OclFunction {
public:
  OclFunction(SourceLocation Loc, std::string Name, const OclType *RetTy,
              bool IsKernel)
      : Loc(Loc), Name(std::move(Name)), RetTy(RetTy), IsKernel(IsKernel) {}

  SourceLocation loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const OclType *returnType() const { return RetTy; }
  bool isKernel() const { return IsKernel; }

  void addParam(OclVarDecl *P) { Params.push_back(P); }
  const std::vector<OclVarDecl *> &params() const { return Params; }

  void setBody(OclCompoundStmt *B) { Body = B; }
  OclCompoundStmt *body() const { return Body; }

private:
  SourceLocation Loc;
  std::string Name;
  const OclType *RetTy;
  bool IsKernel;
  std::vector<OclVarDecl *> Params;
  OclCompoundStmt *Body = nullptr;
};

class OclProgramAST {
public:
  void addFunction(OclFunction *F) { Functions.push_back(F); }
  const std::vector<OclFunction *> &functions() const { return Functions; }
  OclFunction *findFunction(const std::string &Name) const {
    for (OclFunction *F : Functions)
      if (F->name() == Name)
        return F;
    return nullptr;
  }

private:
  std::vector<OclFunction *> Functions;
};

/// Arena owning all OpenCL AST nodes plus the type context of one
/// translation unit.
class OclContext {
public:
  OclTypeContext &types() { return Types; }

  template <typename T, typename... Args> T *make(Args &&...A) {
    auto Owned = std::make_unique<T>(std::forward<Args>(A)...);
    T *Raw = Owned.get();
    Nodes.push_back(NodeOwner(Owned.release(), &destroy<T>));
    return Raw;
  }

private:
  template <typename T> static void destroy(void *P) {
    delete static_cast<T *>(P);
  }
  using NodeOwner = std::unique_ptr<void, void (*)(void *)>;
  std::vector<NodeOwner> Nodes;
  OclTypeContext Types;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_OCLAST_H
