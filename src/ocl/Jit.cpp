//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/Jit.h"

#include "jit/JitCompiler.h"
#include "ocl/DeviceModel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace lime;
using namespace lime::ocl;

namespace {

std::atomic<bool> &enabledFlag() {
  static std::atomic<bool> Enabled{std::getenv("LIMECC_NO_JIT") == nullptr};
  return Enabled;
}

std::atomic<bool> &dumpFlag() {
  static std::atomic<bool> Dump{false};
  return Dump;
}

std::atomic<bool> &bcProofsFlag() {
  static std::atomic<bool> On{std::getenv("LIMECC_NO_BC_PROOFS") == nullptr};
  return On;
}

struct StatsRegistry {
  std::mutex Mu;
  std::map<std::string, JitKernelStats> ByKernel;
  std::string DumpText;
};

StatsRegistry &registry() {
  static StatsRegistry R;
  return R;
}

} // namespace

bool lime::ocl::jitEnabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}
void lime::ocl::setJitEnabled(bool On) {
  enabledFlag().store(On, std::memory_order_relaxed);
}
bool lime::ocl::jitDumpEnabled() {
  return dumpFlag().load(std::memory_order_relaxed);
}
void lime::ocl::setJitDump(bool On) {
  dumpFlag().store(On, std::memory_order_relaxed);
}
bool lime::ocl::bcProofsEnabled() {
  return bcProofsFlag().load(std::memory_order_relaxed);
}
void lime::ocl::setBcProofsEnabled(bool On) {
  bcProofsFlag().store(On, std::memory_order_relaxed);
}

std::vector<JitKernelStats> lime::ocl::jitStatsSnapshot() {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<JitKernelStats> Out;
  Out.reserve(R.ByKernel.size());
  for (const auto &[Name, S] : R.ByKernel)
    Out.push_back(S);
  return Out;
}

void lime::ocl::resetJitStats() {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.ByKernel.clear();
  R.DumpText.clear();
}

void lime::ocl::jitNoteDispatch(const std::string &Kernel, bool Jitted) {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  JitKernelStats &S = R.ByKernel[Kernel];
  if (S.Kernel.empty())
    S.Kernel = Kernel;
  if (Jitted)
    ++S.JitDispatches;
  else
    ++S.InterpDispatches;
}

void lime::ocl::jitNoteBcProofs(const std::string &Kernel, uint64_t Proven,
                                uint64_t Total) {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  JitKernelStats &S = R.ByKernel[Kernel];
  if (S.Kernel.empty())
    S.Kernel = Kernel;
  S.BcMemOpsProven += Proven;
  S.BcMemOpsTotal += Total;
}

std::string lime::ocl::takeJitDump() {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::string Out = std::move(R.DumpText);
  R.DumpText.clear();
  return Out;
}

void lime::ocl::attachJitArtifacts(BcProgram &P, const DeviceModel &Dev) {
  if (!jitEnabled())
    return;
  const bool WantDump = jitDumpEnabled();
  for (BcKernel &K : P.Kernels) {
    if (K.Jit)
      continue; // already compiled (shared program bundle)
    std::string Dump;
    jitabi::JitArtifact Art = jit::compileKernel(
        K, Dev.WarpWidth, simDeviceJitHelpers(), WantDump ? &Dump : nullptr);

    StatsRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    JitKernelStats &S = R.ByKernel[K.Name];
    if (S.Kernel.empty())
      S.Kernel = K.Name;
    S.DeoptReason = Art.DeoptReason;
    S.CompileMs = Art.CompileMs;
    S.CodeBytes = Art.CodeBytes;
    if (WantDump) {
      if (!Art.DeoptReason.empty())
        Dump += "jit-deopt kernel '" + K.Name + "': " + Art.DeoptReason + "\n";
      R.DumpText += Dump;
    }
    K.Jit = std::make_shared<const jitabi::JitArtifact>(std::move(Art));
  }
}
