//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side JIT management: the process-wide enable/dump switches
/// (fed by the driver's --no-jit / --jit-dump flags), per-kernel
/// dispatch statistics for `limec --run`, and the hook that attaches
/// native artifacts to a freshly built BcProgram.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_JIT_H
#define LIMECC_OCL_JIT_H

#include "ocl/Bytecode.h"
#include "ocl/JitABI.h"

#include <string>
#include <vector>

namespace lime::ocl {

struct DeviceModel;

/// Process-wide JIT switch. Defaults to on; the LIMECC_NO_JIT
/// environment variable or --no-jit turns it off.
bool jitEnabled();
void setJitEnabled(bool On);

/// When on, kernel builds append their JIT IR and code stats to the
/// dump buffer (drained with takeJitDump()).
bool jitDumpEnabled();
void setJitDump(bool On);

/// Process-wide switch for the bytecode proof tier's JIT fast path
/// (dispatch-time bounds proofs licensing open-coded memory ops).
/// Defaults to on; LIMECC_NO_BC_PROOFS or --no-bc-proofs turns it
/// off, leaving every memory op on the checked VM helper.
bool bcProofsEnabled();
void setBcProofsEnabled(bool On);

/// Per-kernel accounting shown by `limec --run`: whether a kernel's
/// dispatches went native or stayed on the interpreter, and why.
struct JitKernelStats {
  std::string Kernel;
  std::string DeoptReason; // empty when native code was attached
  double CompileMs = 0.0;
  size_t CodeBytes = 0;
  uint64_t JitDispatches = 0;
  uint64_t InterpDispatches = 0;
  // Bytecode proof-tier coverage, accumulated per jitted dispatch:
  // scalar global/constant memory ops proven in bounds (and so
  // open-coded) vs. the total such ops in the kernel.
  uint64_t BcMemOpsProven = 0;
  uint64_t BcMemOpsTotal = 0;
};

/// Snapshot of all kernels seen since the last reset, kernel-name
/// sorted.
std::vector<JitKernelStats> jitStatsSnapshot();
void resetJitStats();

/// Records one dispatch of \p Kernel (called by SimDevice::run).
void jitNoteDispatch(const std::string &Kernel, bool Jitted);

/// Records the bytecode proof-tier coverage of one jitted dispatch.
void jitNoteBcProofs(const std::string &Kernel, uint64_t Proven,
                     uint64_t Total);

/// Drains the accumulated --jit-dump text.
std::string takeJitDump();

/// Compiles every kernel of \p P for \p Dev and attaches artifacts
/// (or deopt reasons). No-op when the JIT is disabled.
void attachJitArtifacts(BcProgram &P, const DeviceModel &Dev);

/// The SimDevice-backed helper table the emitted code calls into
/// (defined in VM.cpp).
const jitabi::HelperTable &simDeviceJitHelpers();

} // namespace lime::ocl

#endif // LIMECC_OCL_JIT_H
