//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/MemoryModel.h"

#include <algorithm>
#include <map>
#include <set>

using namespace lime;
using namespace lime::ocl;

CacheSim::CacheSim(unsigned TotalBytes, unsigned LineBytes, unsigned Ways)
    : LineBytes(LineBytes), Ways(Ways) {
  if (TotalBytes == 0 || LineBytes == 0) {
    NumSets = 0;
    return;
  }
  unsigned Lines = TotalBytes / LineBytes;
  NumSets = std::max(1u, Lines / std::max(1u, Ways));
  Sets.resize(NumSets);
}

bool CacheSim::access(uint64_t ByteAddr) {
  if (!enabled())
    return false;
  uint64_t Line = ByteAddr / LineBytes;
  auto &Set = Sets[Line % NumSets];
  for (size_t I = 0, E = Set.size(); I != E; ++I) {
    if (Set[I] == Line) {
      // Move to front (MRU).
      Set.erase(Set.begin() + static_cast<long>(I));
      Set.insert(Set.begin(), Line);
      return true;
    }
  }
  Set.insert(Set.begin(), Line);
  if (Set.size() > Ways)
    Set.pop_back();
  return false;
}

void CacheSim::reset() {
  for (auto &Set : Sets)
    Set.clear();
}

MemoryModel::MemoryModel(const DeviceModel &Dev)
    : Dev(Dev), L1(Dev.L1Bytes, Dev.CacheLineBytes, 4),
      L2(Dev.L2Bytes, Dev.CacheLineBytes, 8),
      Texture(Dev.TextureCacheBytes, Dev.CacheLineBytes, 4) {}

void MemoryModel::beginWorkGroup() {
  // L1 and the texture cache are per-SM; a new group lands on an SM
  // whose cache holds another group's lines.
  L1.reset();
  Texture.reset();
}

void MemoryModel::resetAll() {
  L1.reset();
  L2.reset();
  Texture.reset();
  Counters.reset();
}

void MemoryModel::accessGlobal(const std::vector<uint64_t> &Addrs,
                               unsigned BytesPerLane, bool IsStore) {
  if (Addrs.empty())
    return;
  if (IsStore)
    ++Counters.StoresExecuted;
  else
    ++Counters.LoadsExecuted;

  // Coalesce the warp's lanes into DRAM segments.
  std::set<uint64_t> Segments;
  for (uint64_t A : Addrs) {
    uint64_t First = A / Dev.DramSegmentBytes;
    uint64_t Last = (A + BytesPerLane - 1) / Dev.DramSegmentBytes;
    for (uint64_t S = First; S <= Last; ++S)
      Segments.insert(S);
  }

  for (uint64_t Seg : Segments) {
    uint64_t Addr = Seg * Dev.DramSegmentBytes;
    if (L1.enabled() && !IsStore) {
      if (L1.access(Addr)) {
        ++Counters.L1Hits;
        continue;
      }
      if (L2.enabled() && L2.access(Addr)) {
        ++Counters.L2Hits;
        continue;
      }
    } else if (L2.enabled()) {
      // Stores on Fermi write through L1 to L2.
      if (L2.access(Addr)) {
        ++Counters.L2Hits;
        continue;
      }
    }
    ++Counters.GlobalTransactions;
    Counters.GlobalBytes += Dev.DramSegmentBytes;
  }
}

void MemoryModel::accessLocal(const std::vector<uint64_t> &Addrs,
                              unsigned BytesPerLane, bool IsStore) {
  if (Addrs.empty())
    return;
  if (IsStore)
    ++Counters.StoresExecuted;
  else
    ++Counters.LoadsExecuted;

  // Banks interleave 4-byte words. An access serializes by the
  // maximum number of distinct words wanted from one bank; lanes
  // hitting the same word broadcast. Wide (vector) lane accesses
  // touch BytesPerLane/4 consecutive words.
  std::map<uint64_t, std::set<uint64_t>> BankWords;
  for (uint64_t A : Addrs) {
    for (unsigned Off = 0; Off < std::max(4u, BytesPerLane); Off += 4) {
      uint64_t Word = (A + Off) / 4;
      BankWords[Word % Dev.LocalBanks].insert(Word);
    }
  }
  uint64_t Serial = 0;
  for (const auto &[Bank, Words] : BankWords)
    Serial = std::max<uint64_t>(Serial, Words.size());
  Counters.LocalCycles += Serial;
}

void MemoryModel::accessConstant(const std::vector<uint64_t> &Addrs,
                                 unsigned BytesPerLane) {
  if (Addrs.empty())
    return;
  ++Counters.LoadsExecuted;
  // The constant port broadcasts one address per cycle.
  std::set<uint64_t> Distinct(Addrs.begin(), Addrs.end());
  Counters.ConstCycles += Distinct.size();
}

void MemoryModel::accessImage(const std::vector<uint64_t> &Addrs,
                              unsigned BytesPerLane) {
  if (Addrs.empty())
    return;
  ++Counters.LoadsExecuted;
  std::set<uint64_t> Lines;
  for (uint64_t A : Addrs)
    Lines.insert(A / Dev.CacheLineBytes);
  for (uint64_t Line : Lines) {
    uint64_t Addr = Line * Dev.CacheLineBytes;
    if (Texture.enabled() && Texture.access(Addr)) {
      ++Counters.TextureHits;
      continue;
    }
    ++Counters.TextureMisses;
    ++Counters.GlobalTransactions;
    Counters.GlobalBytes += Dev.CacheLineBytes;
  }
}
