//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/MemoryModel.h"

#include <algorithm>

using namespace lime;
using namespace lime::ocl;

namespace {

/// Sorts \p V and drops duplicates, leaving the distinct values in
/// ascending order (the same order a std::set would iterate, which
/// matters because cache lookups mutate LRU state). Warp access
/// patterns are usually monotone, so the already-sorted fast path is
/// the common one.
void sortUnique(std::vector<uint64_t> &V) {
  if (!std::is_sorted(V.begin(), V.end()))
    std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

/// Appends \p X unless it repeats the previous element — coalesced
/// warps emit long runs of the same segment/word, and skipping them
/// here keeps the scratch vector (and its sort) tiny.
void pushRun(std::vector<uint64_t> &V, uint64_t X) {
  if (V.empty() || V.back() != X)
    V.push_back(X);
}

} // namespace

CacheSim::CacheSim(unsigned TotalBytes, unsigned LineBytes, unsigned Ways)
    : LineBytes(LineBytes), Ways(Ways) {
  if (TotalBytes == 0 || LineBytes == 0) {
    NumSets = 0;
    return;
  }
  unsigned Lines = TotalBytes / LineBytes;
  NumSets = std::max(1u, Lines / std::max(1u, Ways));
  Sets.resize(NumSets);
  if (std::has_single_bit(LineBytes))
    LineShift = static_cast<unsigned>(std::countr_zero(LineBytes));
  SetsPow2 = std::has_single_bit(NumSets);
}

bool CacheSim::access(uint64_t ByteAddr) {
  if (!enabled())
    return false;
  uint64_t Line = lineOf(ByteAddr);
  auto &Set = Sets[setOf(Line)];
  for (size_t I = 0, E = Set.size(); I != E; ++I) {
    if (Set[I] == Line) {
      // Move to front (MRU) — one rotation, no reallocation.
      std::rotate(Set.begin(), Set.begin() + static_cast<long>(I),
                  Set.begin() + static_cast<long>(I) + 1);
      return true;
    }
  }
  if (Set.size() == Ways) {
    // Evict LRU by recycling the back slot as the new front.
    std::rotate(Set.begin(), Set.end() - 1, Set.end());
    Set.front() = Line;
  } else {
    Set.insert(Set.begin(), Line);
  }
  return false;
}

void CacheSim::reset() {
  for (auto &Set : Sets)
    Set.clear();
}

MemoryModel::MemoryModel(const DeviceModel &Dev)
    : Dev(Dev), L1(Dev.L1Bytes, Dev.CacheLineBytes, 4),
      L2(Dev.L2Bytes, Dev.CacheLineBytes, 8),
      Texture(Dev.TextureCacheBytes, Dev.CacheLineBytes, 4) {
  SegPow2 = Dev.DramSegmentBytes != 0 && std::has_single_bit(Dev.DramSegmentBytes);
  if (SegPow2)
    SegShift = static_cast<unsigned>(std::countr_zero(Dev.DramSegmentBytes));
}

void MemoryModel::beginWorkGroup() {
  // L1 and the texture cache are per-SM; a new group lands on an SM
  // whose cache holds another group's lines.
  L1.reset();
  Texture.reset();
}

void MemoryModel::resetAll() {
  L1.reset();
  L2.reset();
  Texture.reset();
  Counters.reset();
}

void MemoryModel::accessGlobal(const std::vector<uint64_t> &Addrs,
                               unsigned BytesPerLane, bool IsStore) {
  if (Addrs.empty())
    return;
  if (IsStore)
    ++Counters.StoresExecuted;
  else
    ++Counters.LoadsExecuted;

  // Coalesce the warp's lanes into DRAM segments.
  std::vector<uint64_t> &Segments = UnitScratch;
  Segments.clear();
  if (SegPow2) {
    const unsigned Sh = SegShift;
    for (uint64_t A : Addrs) {
      uint64_t First = A >> Sh;
      uint64_t Last = (A + BytesPerLane - 1) >> Sh;
      for (uint64_t S = First; S <= Last; ++S)
        pushRun(Segments, S);
    }
  } else {
    for (uint64_t A : Addrs) {
      uint64_t First = A / Dev.DramSegmentBytes;
      uint64_t Last = (A + BytesPerLane - 1) / Dev.DramSegmentBytes;
      for (uint64_t S = First; S <= Last; ++S)
        pushRun(Segments, S);
    }
  }
  sortUnique(Segments);

  for (uint64_t Seg : Segments) {
    uint64_t Addr = Seg * Dev.DramSegmentBytes;
    if (L1.enabled() && !IsStore) {
      if (L1.access(Addr)) {
        ++Counters.L1Hits;
        continue;
      }
      if (L2.enabled() && L2.access(Addr)) {
        ++Counters.L2Hits;
        continue;
      }
    } else if (L2.enabled()) {
      // Stores on Fermi write through L1 to L2.
      if (L2.access(Addr)) {
        ++Counters.L2Hits;
        continue;
      }
    }
    ++Counters.GlobalTransactions;
    Counters.GlobalBytes += Dev.DramSegmentBytes;
  }
}

void MemoryModel::accessLocal(const std::vector<uint64_t> &Addrs,
                              unsigned BytesPerLane, bool IsStore) {
  if (Addrs.empty())
    return;
  if (IsStore)
    ++Counters.StoresExecuted;
  else
    ++Counters.LoadsExecuted;

  // Banks interleave 4-byte words. An access serializes by the
  // maximum number of distinct words wanted from one bank; lanes
  // hitting the same word broadcast. Wide (vector) lane accesses
  // touch BytesPerLane/4 consecutive words.
  std::vector<uint64_t> &Words = UnitScratch;
  Words.clear();
  for (uint64_t A : Addrs)
    for (unsigned Off = 0; Off < std::max(4u, BytesPerLane); Off += 4)
      pushRun(Words, (A + Off) / 4);
  sortUnique(Words);
  if (BankCount.size() < Dev.LocalBanks)
    BankCount.resize(Dev.LocalBanks);
  std::fill(BankCount.begin(), BankCount.end(), 0u);
  uint32_t Serial = 0;
  for (uint64_t W : Words)
    Serial = std::max(Serial, ++BankCount[W % Dev.LocalBanks]);
  Counters.LocalCycles += Serial;
}

void MemoryModel::accessConstant(const std::vector<uint64_t> &Addrs,
                                 unsigned BytesPerLane) {
  if (Addrs.empty())
    return;
  ++Counters.LoadsExecuted;
  // The constant port broadcasts one address per cycle.
  std::vector<uint64_t> &Distinct = UnitScratch;
  Distinct.clear();
  for (uint64_t A : Addrs)
    pushRun(Distinct, A); // broadcasts collapse to one entry
  sortUnique(Distinct);
  Counters.ConstCycles += Distinct.size();
}

void MemoryModel::accessImage(const std::vector<uint64_t> &Addrs,
                              unsigned BytesPerLane) {
  if (Addrs.empty())
    return;
  ++Counters.LoadsExecuted;
  std::vector<uint64_t> &Lines = UnitScratch;
  Lines.clear();
  for (uint64_t A : Addrs)
    pushRun(Lines, A / Dev.CacheLineBytes);
  sortUnique(Lines);
  for (uint64_t Line : Lines) {
    uint64_t Addr = Line * Dev.CacheLineBytes;
    if (Texture.enabled() && Texture.access(Addr)) {
      ++Counters.TextureHits;
      continue;
    }
    ++Counters.TextureMisses;
    ++Counters.GlobalTransactions;
    Counters.GlobalBytes += Dev.CacheLineBytes;
  }
}
