//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary contract between the SIMT VM and the native code the
/// JIT emits (src/jit/). Everything here is plain data: the JIT
/// library depends only on this header (plus Bytecode.h and
/// DeviceModel.h) and never on ocl symbols, so limecc_ocl can link
/// limecc_jit without a cycle.
///
/// Division of labor: compiled code runs the compute segments of a
/// warp natively (a lane loop over the active mask), while memory,
/// image and structured-control instructions call back into the VM
/// through the HelperTable so that bounds checks, fault messages,
/// mask-stack semantics and the §5 timing-model pricing stay
/// byte-identical to the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_JITABI_H
#define LIMECC_OCL_JITABI_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lime::ocl::jitabi {

/// Mirror of SimDevice's divergence-stack frame. Fixed capacity so
/// native code and helpers share a flat layout; kernels whose static
/// nesting exceeds it deopt to the interpreter at compile time.
inline constexpr uint32_t MaxFrames = 64;

enum FrameKind : uint8_t { FrameIf = 0, FrameLoop = 1 };

struct JitFrame {
  uint64_t SavedMask = 0;
  uint64_t ThenMask = 0;
  uint8_t Kind = FrameIf;
};

/// Live per-warp execution state shared between native code and the
/// control/memory helpers. The register file itself stays in the
/// VM's WarpState; Regs aliases it as flat 8-byte slots laid out
/// reg-major (slot = Regs[Reg * WarpWidth + Lane]).
struct JitWarp {
  uint64_t Mask = 0;   // active lanes
  uint64_t Exited = 0; // lanes retired by Ret
  uint64_t Pc = 0;     // bytecode pc (always a block leader)
  uint64_t Depth = 0;  // live frames
  int64_t *Regs = nullptr;
  uint64_t FirstLinear = 0; // group-linear work-item id of lane 0
  // Launch-invariant geometry, hoisted out of the lane loop: per-lane
  // tables (indexed by lane) for the divergent geometry ops.
  const int64_t *GlobalId0 = nullptr;
  const int64_t *GlobalId1 = nullptr;
  const int64_t *LocalId0 = nullptr;
  const int64_t *LocalId1 = nullptr;
  JitFrame Frames[MaxFrames];
};

/// Indices into JitExecContext::Scalars for the uniform geometry ops.
enum GeoScalar : uint32_t {
  GeoGroupId0 = 0,
  GeoGroupId1,
  GeoGlobalSize0,
  GeoGlobalSize1,
  GeoLocalSize0,
  GeoLocalSize1,
  GeoNumGroups0,
  GeoNumGroups1,
  GeoScalarCount
};

/// One warp-step's view of the dispatch. Field offsets are baked
/// into emitted code; keep this struct standard-layout and append
/// only.
struct JitExecContext {
  JitWarp *Warp = nullptr;
  void *Device = nullptr;   // SimDevice*
  void *Dispatch = nullptr; // SimDevice::Dispatch*
  const void *Kernel = nullptr; // const BcKernel*
  uint64_t *Budget = nullptr;   // &Dispatch.InstructionBudget
  void *Counters = nullptr;     // KernelCounters*
  const uint64_t *PcTable = nullptr; // bytecode pc -> native address
  int64_t Scalars[GeoScalarCount] = {};
  // Helper-only state (never touched by emitted code; appended so
  // the baked offsets above stay put).
  void *HostWarp = nullptr; // SimDevice::WarpState*, for helper reuse
  // Bytecode-proof fast path (PR 7). Arena base pointers let proven
  // scalar loads/stores be open-coded without the Mem helper; the
  // MemPrice helper still runs per access so issue charges and §5
  // memory-model pricing stay bit-identical to the interpreter.
  uint8_t *GlobalBase = nullptr;
  uint8_t *ConstBase = nullptr;
  uint8_t *ParamBase = nullptr;
  // Private arena slice of this warp's lane 0; lane L's slice is at
  // PrivWarpBase + L * PrivBytesPerLane.
  uint8_t *PrivWarpBase = nullptr;
  uint64_t PrivBytesPerLane = 0;
  // Per-bytecode-pc safety verdicts for this dispatch (values of
  // analysis::bc::Verdict), or null when proofs are disabled; the
  // emitted guard re-checks Proven at run time so one artifact
  // serves both proof states.
  const uint8_t *BcProven = nullptr;
};

/// The one BcProven value the emitted guard tests for. Mirrors
/// analysis::bc::Verdict::Proven; the VM static_asserts the two stay
/// in sync (the jit library sees only this header).
inline constexpr uint8_t BcVerdictProven = 1;

/// Status codes the native entry returns to SimDevice::run.
enum JitStatus : uint32_t {
  StatusDone = 0,    // warp retired
  StatusBarrier = 1, // warp parked at a barrier; Warp->Pc is the resume pc
  StatusFault = 2    // Dispatch.Fault was set; abort the launch
};

/// Control-helper return convention (int64): >= 0 branch to that
/// bytecode pc, or one of these.
enum HelperResult : int64_t {
  HelperFallthrough = -1,
  HelperBarrier = -2,
  HelperDone = -3,
  HelperFault = -4
};

/// Trap codes native code passes to the trap helper; the helper owns
/// the message text so it matches the interpreter exactly.
enum TrapCode : uint32_t {
  TrapDivZero = 0,
  TrapRemZero = 1,
  TrapBudget = 2,
  TrapBadPc = 3
};

using JitEntryFn = uint32_t (*)(JitExecContext *);

/// VM callbacks the emitted code uses. All follow the SysV ABI;
/// instruction-level helpers take (ctx, instruction index).
struct HelperTable {
  int64_t (*Mem)(JitExecContext *, uint32_t) = nullptr;
  int64_t (*Image)(JitExecContext *, uint32_t) = nullptr;
  int64_t (*Control)(JitExecContext *, uint32_t) = nullptr;
  void (*Trap)(JitExecContext *, uint32_t) = nullptr;
  /// Issue charge + §5 memory-model pricing for a proven-safe memory
  /// op whose data movement is open-coded natively: collects the
  /// per-lane addresses and prices them exactly like the Mem helper,
  /// but moves no data and can never fault.
  void (*MemPrice)(JitExecContext *, uint32_t) = nullptr;
};

/// A compiled kernel: either a callable entry (with the code buffer
/// kept alive by Owner) or a deopt reason explaining why this kernel
/// runs on the interpreter.
struct JitArtifact {
  JitEntryFn Entry = nullptr;
  std::shared_ptr<void> Owner;        // executable buffer lifetime
  std::shared_ptr<std::vector<uint64_t>> PcTable; // pc -> native addr
  std::string DeoptReason;            // non-empty => interpreter
  unsigned WarpWidth = 0; // lane count the code was specialized for
  double CompileMs = 0.0;
  size_t CodeBytes = 0;

  bool usable() const { return Entry != nullptr; }
};

} // namespace lime::ocl::jitabi

#endif // LIMECC_OCL_JITABI_H
