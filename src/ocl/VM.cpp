//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/VM.h"

#include "analysis/bc/BcAnalysis.h"
#include "ocl/Jit.h"
#include "support/Casting.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

// The jit library sees only the ABI header; keep its mirrored verdict
// constant in lock-step with the analyzer's enum.
static_assert(lime::ocl::jitabi::BcVerdictProven ==
                  static_cast<uint8_t>(lime::analysis::bc::Verdict::Proven),
              "BcProven encoding drifted between JitABI and BcAnalysis");

using namespace lime;
using namespace lime::ocl;

SimDevice::SimDevice(const DeviceModel &Model)
    : FaultDomain(Model.Name), Model(Model), Mem(Model) {
  assert(Model.WarpWidth <= 64 && "mask is a 64-bit word");
}

uint64_t SimDevice::allocBuffer(uint64_t Bytes, AddrSpace Space) {
  auto &Arena = Space == AddrSpace::Constant ? ConstArena : GlobalArena;
  // 256-byte align buffer bases (matches real allocator granularity
  // and keeps coalescing segments clean).
  uint64_t Base = (Arena.size() + 255) & ~uint64_t(255);
  Arena.resize(Base + Bytes, 0);
  return Base;
}

void SimDevice::writeBuffer(uint64_t Offset, AddrSpace Space, const void *Src,
                            uint64_t Bytes) {
  auto &Arena = Space == AddrSpace::Constant ? ConstArena : GlobalArena;
  assert(Offset + Bytes <= Arena.size() && "writeBuffer out of range");
  std::memcpy(Arena.data() + Offset, Src, Bytes);
}

void SimDevice::readBuffer(uint64_t Offset, AddrSpace Space, void *Dst,
                           uint64_t Bytes) const {
  const auto &Arena = Space == AddrSpace::Constant ? ConstArena : GlobalArena;
  assert(Offset + Bytes <= Arena.size() && "readBuffer out of range");
  std::memcpy(Dst, Arena.data() + Offset, Bytes);
}

int SimDevice::addImage(SimImage Img) {
  Images.push_back(std::move(Img));
  return static_cast<int>(Images.size()) - 1;
}

void SimDevice::updateImage(int Index, SimImage Img) {
  assert(Index >= 0 && Index < static_cast<int>(Images.size()) &&
         "updateImage on unknown image");
  Images[static_cast<size_t>(Index)] = std::move(Img);
}

void SimDevice::resetMemory() {
  GlobalArena.clear();
  ConstArena.clear();
  Images.clear();
}

void SimDevice::fault(Dispatch &D, const std::string &Msg) {
  if (D.Fault.empty())
    D.Fault = Msg;
}

uint8_t *SimDevice::spaceBase(Dispatch &D, AddrSpace Space, unsigned Lane,
                              uint64_t &Limit) {
  switch (Space) {
  case AddrSpace::Global:
    Limit = GlobalArena.size();
    return GlobalArena.data();
  case AddrSpace::Constant:
    Limit = ConstArena.size();
    return ConstArena.data();
  case AddrSpace::Local:
    Limit = D.LocalArena.size();
    return D.LocalArena.data();
  case AddrSpace::Private:
    Limit = D.PrivateBytesPerLane;
    return D.PrivateArena.data() + Lane * D.PrivateBytesPerLane;
  case AddrSpace::Param:
    Limit = D.ParamBlock.size();
    return D.ParamBlock.data();
  case AddrSpace::Image:
    Limit = 0;
    return nullptr;
  }
  lime_unreachable("bad address space");
}

//===----------------------------------------------------------------------===//
// Scalar operation helpers
//===----------------------------------------------------------------------===//

namespace {

/// Integer wraparound semantics per type.
int64_t wrapInt(int64_t V, ValType T) {
  switch (T) {
  case ValType::I8:
    return static_cast<int8_t>(V);
  case ValType::U8:
    return static_cast<uint8_t>(V);
  case ValType::I32:
    return static_cast<int32_t>(V);
  case ValType::U32:
    return static_cast<uint32_t>(V);
  case ValType::I64:
  case ValType::U64:
    return V;
  default:
    return V;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Dispatch-time bytecode proofs
//===----------------------------------------------------------------------===//

namespace {

void hashMix(uint64_t &H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
}

/// Semantic fingerprint of a kernel's code, so a proof-cache entry
/// can never survive a program rebuild that reuses a kernel name (or
/// a heap address) with different bytecode.
uint64_t fingerprintKernel(const BcKernel &K) {
  uint64_t H = 0xcbf29ce484222325ULL;
  hashMix(H, K.Code.size());
  hashMix(H, K.NumRegs);
  for (const BcInstr &In : K.Code) {
    hashMix(H, (static_cast<uint64_t>(static_cast<uint8_t>(In.Op)) << 32) |
                   (static_cast<uint64_t>(static_cast<uint8_t>(In.Ty)) << 24) |
                   (static_cast<uint64_t>(static_cast<uint8_t>(In.SrcTy))
                    << 16) |
                   (static_cast<uint64_t>(static_cast<uint8_t>(In.Space))
                    << 8) |
                   In.Width);
    hashMix(H, (static_cast<uint64_t>(static_cast<uint32_t>(In.Dst)) << 32) |
                   static_cast<uint32_t>(In.A));
    hashMix(H, (static_cast<uint64_t>(static_cast<uint32_t>(In.B)) << 32) |
                   static_cast<uint32_t>(In.C));
    hashMix(H, static_cast<uint64_t>(In.Target));
    hashMix(H, static_cast<uint64_t>(In.ImmI));
    uint64_t FB;
    std::memcpy(&FB, &In.ImmF, 8);
    hashMix(H, FB);
  }
  return H;
}

} // namespace

const uint8_t *SimDevice::bcProofTable(const BcKernel &K, const Dispatch &D,
                                       const std::vector<int64_t> &ParamRegI,
                                       const std::vector<double> &ParamRegF,
                                       uint64_t LocalBytesTotal) {
  // Launch signature: everything the exact-mode prover is seeded
  // with. A value outside this key cannot affect a verdict.
  std::string Key = K.Name;
  char Buf[32];
  auto addU = [&](uint64_t V) {
    std::snprintf(Buf, sizeof(Buf), ":%llx",
                  static_cast<unsigned long long>(V));
    Key += Buf;
  };
  addU(fingerprintKernel(K));
  addU(D.GlobalSize[0]);
  addU(D.GlobalSize[1]);
  addU(D.LocalSize[0]);
  addU(D.LocalSize[1]);
  addU(GlobalArena.size());
  addU(ConstArena.size());
  addU(LocalBytesTotal);
  addU(D.PrivateBytesPerLane);
  for (int64_t V : ParamRegI)
    addU(static_cast<uint64_t>(V));
  for (double V : ParamRegF) {
    uint64_t B;
    std::memcpy(&B, &V, 8);
    addU(B);
  }
  uint64_t PBH = 0xcbf29ce484222325ULL;
  hashMix(PBH, D.ParamBlock.size());
  for (uint8_t Byte : D.ParamBlock)
    hashMix(PBH, Byte);
  addU(PBH);

  auto It = BcProofCache.find(Key);
  if (It == BcProofCache.end()) {
    // Distinct signatures are few in practice (a handful per kernel);
    // bound the cache anyway so a pathological argument sweep cannot
    // grow it without limit.
    if (BcProofCache.size() >= 1024)
      BcProofCache.clear();

    namespace abc = lime::analysis::bc;
    abc::Analyzer A(K, /*IdealInts=*/false);
    using G = abc::Analyzer;
    A.pin(A.geo(G::GLsz0), D.LocalSize[0]);
    A.pin(A.geo(G::GLsz1), D.LocalSize[1]);
    A.pin(A.geo(G::GGsz0), D.GlobalSize[0]);
    A.pin(A.geo(G::GGsz1), D.GlobalSize[1]);
    A.pin(A.geo(G::GNgrp0), D.GlobalSize[0] / D.LocalSize[0]);
    A.pin(A.geo(G::GNgrp1), D.GlobalSize[1] / D.LocalSize[1]);
    A.pin(A.geo(G::GLimGlobal), static_cast<int64_t>(GlobalArena.size()));
    A.pin(A.geo(G::GLimConst), static_cast<int64_t>(ConstArena.size()));
    A.pin(A.geo(G::GLimLocal), static_cast<int64_t>(LocalBytesTotal));
    A.pin(A.geo(G::GLimPriv), static_cast<int64_t>(D.PrivateBytesPerLane));
    A.pin(A.geo(G::GLimParam), static_cast<int64_t>(D.ParamBlock.size()));
    A.seedGeometry();
    for (size_t PI = 0; PI != K.Params.size(); ++PI) {
      switch (K.Params[PI].TheKind) {
      case BcParam::Kind::ScalarF32:
      case BcParam::Kind::ScalarF64:
        A.bindParamF(static_cast<unsigned>(PI), ParamRegF[PI]);
        break;
      case BcParam::Kind::Image:
        A.bindParamI(static_cast<unsigned>(PI), D.ImageSlots[PI]);
        break;
      default:
        A.bindParamI(static_cast<unsigned>(PI), ParamRegI[PI]);
        break;
      }
    }
    A.setParamBlock(D.ParamBlock);
    abc::Result R = A.run();
    BcProofEntry E;
    E.Verdicts = std::move(R.Verdicts);
    E.Proven = R.ScalarGlobalProven;
    E.Total = R.ScalarGlobalOps;
    It = BcProofCache.emplace(std::move(Key), std::move(E)).first;
  }
  const BcProofEntry &E = It->second;
  jitNoteBcProofs(K.Name, E.Proven, E.Total);
  // An all-Unknown table buys nothing; skip the per-op guard loads.
  return E.Proven != 0 ? E.Verdicts.data() : nullptr;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

LaunchResult SimDevice::run(const BcKernel &K,
                            const std::vector<LaunchArg> &Args,
                            std::array<uint32_t, 2> GlobalSize,
                            std::array<uint32_t, 2> LocalSize) {
  LaunchResult R;
  Mem.counters().reset();

  // Fault-injection hook: a dispatch-level device fault, as if the
  // driver returned CL_OUT_OF_RESOURCES mid-launch.
  if (support::FaultInjector::instance().shouldFire(
          FaultDomain, support::FaultKind::LaunchFail)) {
    R.Error = "injected fault: kernel launch failed on " + FaultDomain;
    return R;
  }

  if (Args.size() != K.Params.size()) {
    R.Error = formatString("kernel %s: %zu args bound, %zu expected",
                           K.Name.c_str(), Args.size(), K.Params.size());
    return R;
  }
  if (LocalSize[0] == 0 || LocalSize[1] == 0 || GlobalSize[0] == 0 ||
      GlobalSize[1] == 0) {
    R.Error = "zero NDRange dimension";
    return R;
  }
  if (GlobalSize[0] % LocalSize[0] != 0 || GlobalSize[1] % LocalSize[1] != 0) {
    R.Error = "global size must be a multiple of the work-group size";
    return R;
  }

  Dispatch D;
  D.K = &K;
  D.GlobalSize = GlobalSize;
  D.LocalSize = LocalSize;
  D.PrivateBytesPerLane = K.PrivateBytes;
  // Budget scales with the dispatch: ~4M warp-instructions per warp
  // is orders of magnitude beyond any real kernel here, so runaway
  // loops fault quickly instead of hanging the simulator.
  {
    uint64_t TotalItems =
        static_cast<uint64_t>(GlobalSize[0]) * GlobalSize[1];
    uint64_t TotalWarps =
        (TotalItems + Model.WarpWidth - 1) / Model.WarpWidth;
    D.InstructionBudget = (1ULL << 24) + TotalWarps * (4ULL << 20);
  }

  // Lay out the by-value records and dynamic local sizes.
  uint64_t DynamicLocal = 0;
  std::vector<uint64_t> DynamicLocalBase(Args.size(), 0);
  D.ImageSlots.assign(Args.size(), -1);
  std::vector<int64_t> ParamRegI(Args.size(), 0);
  std::vector<double> ParamRegF(Args.size(), 0.0);
  for (size_t I = 0; I != Args.size(); ++I) {
    const BcParam &P = K.Params[I];
    const LaunchArg &A = Args[I];
    switch (P.TheKind) {
    case BcParam::Kind::GlobalPtr:
      if (A.TheKind != LaunchArg::Kind::Buffer ||
          A.BufferSpace != AddrSpace::Global) {
        R.Error = "arg " + std::to_string(I) + ": expected a global buffer";
        return R;
      }
      ParamRegI[I] = static_cast<int64_t>(A.BufferOffset);
      break;
    case BcParam::Kind::ConstantPtr:
      if (A.TheKind != LaunchArg::Kind::Buffer ||
          A.BufferSpace != AddrSpace::Constant) {
        R.Error = "arg " + std::to_string(I) + ": expected a constant buffer";
        return R;
      }
      ParamRegI[I] = static_cast<int64_t>(A.BufferOffset);
      break;
    case BcParam::Kind::LocalPtr: {
      if (A.TheKind != LaunchArg::Kind::LocalBytes) {
        R.Error = "arg " + std::to_string(I) + ": expected a local size";
        return R;
      }
      uint64_t Aligned = (K.StaticLocalBytes + DynamicLocal + 15) & ~15ULL;
      DynamicLocalBase[I] = Aligned;
      DynamicLocal = Aligned + A.LocalBytes - K.StaticLocalBytes;
      ParamRegI[I] = static_cast<int64_t>(Aligned);
      break;
    }
    case BcParam::Kind::Image:
      if (A.TheKind != LaunchArg::Kind::Image || A.ImageIndex < 0 ||
          A.ImageIndex >= static_cast<int>(Images.size())) {
        R.Error = "arg " + std::to_string(I) + ": expected an image";
        return R;
      }
      D.ImageSlots[I] = A.ImageIndex;
      break;
    case BcParam::Kind::Struct: {
      if (A.TheKind != LaunchArg::Kind::Struct ||
          A.StructBytes.size() != P.StructBytes) {
        R.Error = formatString("arg %zu: expected a %u-byte record", I,
                               P.StructBytes);
        return R;
      }
      uint64_t Base = (D.ParamBlock.size() + 15) & ~15ULL;
      D.ParamBlock.resize(Base + A.StructBytes.size());
      std::memcpy(D.ParamBlock.data() + Base, A.StructBytes.data(),
                  A.StructBytes.size());
      ParamRegI[I] = static_cast<int64_t>(Base);
      break;
    }
    case BcParam::Kind::ScalarI32:
    case BcParam::Kind::ScalarI64:
      if (A.TheKind != LaunchArg::Kind::ScalarI32 &&
          A.TheKind != LaunchArg::Kind::ScalarI64) {
        R.Error = "arg " + std::to_string(I) + ": expected an integer";
        return R;
      }
      ParamRegI[I] = A.ScalarI;
      break;
    case BcParam::Kind::ScalarF32:
    case BcParam::Kind::ScalarF64:
      if (A.TheKind != LaunchArg::Kind::ScalarF32 &&
          A.TheKind != LaunchArg::Kind::ScalarF64) {
        R.Error = "arg " + std::to_string(I) + ": expected a float";
        return R;
      }
      ParamRegF[I] = A.ScalarF;
      break;
    }
  }

  const uint64_t LocalBytesTotal = K.StaticLocalBytes + DynamicLocal;
  if (LocalBytesTotal > Model.LocalBytesPerSM) {
    R.Error = formatString("work-group needs %llu local bytes but the "
                           "device has %u",
                           static_cast<unsigned long long>(LocalBytesTotal),
                           Model.LocalBytesPerSM);
    return R;
  }

  const unsigned W = Model.WarpWidth;
  const uint32_t GroupsX = GlobalSize[0] / LocalSize[0];
  const uint32_t GroupsY = GlobalSize[1] / LocalSize[1];
  const uint32_t GroupLinear = LocalSize[0] * LocalSize[1];
  const unsigned WarpsPerGroup = (GroupLinear + W - 1) / W;

  // Hoist the launch-invariant geometry out of the per-lane loops:
  // local ids depend only on the lane's group-linear index, so the
  // tables are filled once per dispatch (the per-group global-id
  // tables and uniform scalars are refreshed in the group loop).
  const unsigned TableLanes = WarpsPerGroup * W;
  D.GeoLx.assign(TableLanes, 0);
  D.GeoLy.assign(TableLanes, 0);
  for (unsigned L = 0; L != TableLanes; ++L) {
    D.GeoLx[L] = L % D.LocalSize[0];
    D.GeoLy[L] = L / D.LocalSize[0];
  }
  D.GeoGx.assign(TableLanes, 0);
  D.GeoGy.assign(TableLanes, 0);
  D.GeoScalars[jitabi::GeoGlobalSize0] = D.GlobalSize[0];
  D.GeoScalars[jitabi::GeoGlobalSize1] = D.GlobalSize[1];
  D.GeoScalars[jitabi::GeoLocalSize0] = D.LocalSize[0];
  D.GeoScalars[jitabi::GeoLocalSize1] = D.LocalSize[1];
  D.GeoScalars[jitabi::GeoNumGroups0] = GroupsX;
  D.GeoScalars[jitabi::GeoNumGroups1] = GroupsY;
  D.AddrScratch.reserve(W);

  // Dispatch through the kernel's native artifact when the JIT is on
  // and compilation succeeded (and the code matches this device's
  // warp width); otherwise the kernel stays on the interpreter.
  const jitabi::JitArtifact *Jit = nullptr;
  if (jitEnabled() && K.Jit && K.Jit->usable() &&
      K.Jit->WarpWidth == Model.WarpWidth)
    Jit = K.Jit.get();
  jitNoteDispatch(K.Name, Jit != nullptr);
  // Run the exact-mode bytecode prover for this launch signature;
  // Proven pcs license the artifact's open-coded memory fast path.
  if (Jit && bcProofsEnabled())
    D.BcProven = bcProofTable(K, D, ParamRegI, ParamRegF, LocalBytesTotal);

  for (uint32_t GY = 0; GY != GroupsY && D.Fault.empty(); ++GY) {
    for (uint32_t GX = 0; GX != GroupsX && D.Fault.empty(); ++GX) {
      D.GroupId = {GX, GY};
      D.GeoScalars[jitabi::GeoGroupId0] = GX;
      D.GeoScalars[jitabi::GeoGroupId1] = GY;
      for (unsigned L = 0; L != TableLanes; ++L) {
        D.GeoGx[L] = static_cast<int64_t>(GX) * D.LocalSize[0] + D.GeoLx[L];
        D.GeoGy[L] = static_cast<int64_t>(GY) * D.LocalSize[1] + D.GeoLy[L];
      }
      D.LocalArena.assign(LocalBytesTotal, 0);
      D.PrivateArena.assign(static_cast<size_t>(W) * K.PrivateBytes *
                                WarpsPerGroup,
                            0);
      Mem.beginWorkGroup();

      std::vector<WarpState> Warps(WarpsPerGroup);
      for (unsigned WI = 0; WI != WarpsPerGroup; ++WI) {
        WarpState &Warp = Warps[WI];
        Warp.FirstLinear = WI * W;
        Warp.Regs.assign(static_cast<size_t>(K.NumRegs) * W, Slot());
        uint64_t Mask = 0;
        for (unsigned L = 0; L != W; ++L)
          if (Warp.FirstLinear + L < GroupLinear)
            Mask |= 1ULL << L;
        Warp.Mask = Mask;
        // Bind parameter registers for every lane.
        for (size_t PI = 0; PI != K.Params.size(); ++PI) {
          const BcParam &P = K.Params[PI];
          for (unsigned L = 0; L != W; ++L) {
            Slot &S = reg(Warp, P.Reg, L);
            switch (P.TheKind) {
            case BcParam::Kind::ScalarF32:
            case BcParam::Kind::ScalarF64:
              S.D = ParamRegF[PI];
              break;
            case BcParam::Kind::Image:
              S.I = D.ImageSlots[PI];
              break;
            default:
              S.I = ParamRegI[PI];
              break;
            }
          }
        }
      }

      // Note: the private arena is indexed by lane *within the
      // group* so warps do not alias; adjust each warp's base lane.
      // Warp execution with barrier rendezvous.
      while (D.Fault.empty()) {
        bool AllDone = true;
        bool AnyProgress = false;
        for (unsigned WI = 0; WI != WarpsPerGroup; ++WI) {
          WarpState &Warp = Warps[WI];
          if (Warp.Done)
            continue;
          AllDone = false;
          if (Warp.AtBarrier)
            continue;
          if (Jit)
            runWarpJit(Warp, D, *Jit);
          else
            runWarp(Warp, D);
          AnyProgress = true;
        }
        if (AllDone || !D.Fault.empty())
          break;
        // Everyone left is at a barrier: release them.
        bool AllWaiting = true;
        for (const WarpState &Warp : Warps)
          if (!Warp.Done && !Warp.AtBarrier)
            AllWaiting = false;
        if (AllWaiting) {
          for (WarpState &Warp : Warps)
            Warp.AtBarrier = false;
          continue;
        }
        if (!AnyProgress) {
          fault(D, "scheduler deadlock (barrier mismatch?)");
          break;
        }
      }
    }
  }

  R.Error = D.Fault;
  R.Counters = Mem.counters();
  R.KernelTimeNs = kernelTimeNs(Model, R.Counters);
  return R;
}

//===----------------------------------------------------------------------===//
// Warp interpreter
//===----------------------------------------------------------------------===//

void SimDevice::runWarp(WarpState &W, Dispatch &D) {
  const BcKernel &K = *D.K;
  const unsigned Width = Model.WarpWidth;
  KernelCounters &C = Mem.counters();

  auto ActiveMask = [&]() { return W.Mask & ~W.Exited; };

  while (D.Fault.empty()) {
    if (W.Pc >= K.Code.size()) {
      W.Done = true;
      return;
    }
    if (D.InstructionBudget-- == 0) {
      fault(D, "kernel instruction budget exhausted (runaway loop?)");
      return;
    }
    const BcInstr &In = K.Code[W.Pc];
    uint64_t Active = ActiveMask();

    // Charge the issue slot.
    switch (In.Op) {
    case BcOp::Sqrt:
    case BcOp::RSqrt:
      // Hardware sqrt/rsqrt is nearly free on the SFU; the precise
      // variant adds a Newton step.
      if (Active) {
        uint64_t Cost = In.Native ? 1 : 2;
        if (In.Ty == ValType::F64)
          Cost *= 4; // software DP sqrt
        C.SfuWarpOps += Cost;
      }
      break;
    case BcOp::Sin:
    case BcOp::Cos:
    case BcOp::Tan:
    case BcOp::Exp:
    case BcOp::Log:
    case BcOp::Pow:
      if (Active) {
        uint64_t Cost = In.Native ? 1 : 4;
        if (In.Ty == ValType::F64)
          Cost *= 4; // DP transcendentals run in software
        C.SfuWarpOps += Cost;
      }
      break;
    case BcOp::IfBegin:
    case BcOp::IfElse:
    case BcOp::IfEnd:
    case BcOp::LoopBegin:
    case BcOp::LoopTest:
    case BcOp::LoopEnd:
    case BcOp::Jump:
    case BcOp::Barrier:
    case BcOp::Ret:
    case BcOp::Halt:
      break; // control is effectively free on the issue side
    case BcOp::ConstI:
    case BcOp::ConstF:
    case BcOp::Mov:
    case BcOp::Cvt:
      // Immediates, register moves and conversions fold into
      // addressing modes / modifiers on real ISAs; charging them
      // would tax the bytecode's RISC-ness, not the program.
      break;
    case BcOp::Div:
    case BcOp::Rem:
      // Division has no single-cycle hardware path on either CPUs or
      // GPUs; charge several issue slots.
      if (Active) {
        if (In.Ty == ValType::F64)
          C.DpWarpOps += 8;
        else
          C.AluWarpOps += 8;
      }
      break;
    default:
      if (Active) {
        if (In.Ty == ValType::F64)
          ++C.DpWarpOps;
        else
          ++C.AluWarpOps;
      }
      break;
    }

    switch (In.Op) {
    case BcOp::ConstI:
      for (unsigned L = 0; L != Width; ++L)
        if (Active & (1ULL << L))
          reg(W, In.Dst, L).I = In.ImmI;
      break;
    case BcOp::ConstF:
      for (unsigned L = 0; L != Width; ++L)
        if (Active & (1ULL << L))
          reg(W, In.Dst, L).D = In.ImmF;
      break;
    case BcOp::Mov:
      for (unsigned L = 0; L != Width; ++L)
        if (Active & (1ULL << L))
          reg(W, In.Dst, L) = reg(W, In.A, L);
      break;

    case BcOp::Cvt:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        Slot &Src = reg(W, In.A, L);
        Slot &Dst = reg(W, In.Dst, L);
        double FV;
        int64_t IV;
        if (isFloatVal(In.SrcTy)) {
          FV = Src.D;
          IV = static_cast<int64_t>(Src.D);
        } else {
          IV = Src.I;
          FV = In.SrcTy == ValType::U64
                   ? static_cast<double>(static_cast<uint64_t>(Src.I))
                   : static_cast<double>(Src.I);
        }
        switch (In.Ty) {
        case ValType::F32:
          Dst.D = static_cast<float>(FV);
          break;
        case ValType::F64:
          Dst.D = FV;
          break;
        default:
          Dst.I = wrapInt(IV, In.Ty);
          break;
        }
      }
      break;

    case BcOp::Add:
    case BcOp::Sub:
    case BcOp::Mul:
    case BcOp::Div:
    case BcOp::Rem:
    case BcOp::Shl:
    case BcOp::Shr:
    case BcOp::And:
    case BcOp::Or:
    case BcOp::Xor:
    case BcOp::MinOp:
    case BcOp::MaxOp:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        Slot &A = reg(W, In.A, L);
        Slot &B = reg(W, In.B, L);
        Slot &Dst = reg(W, In.Dst, L);
        if (isFloatVal(In.Ty)) {
          double X = A.D;
          double Y = B.D;
          double Res;
          switch (In.Op) {
          case BcOp::Add:
            Res = X + Y;
            break;
          case BcOp::Sub:
            Res = X - Y;
            break;
          case BcOp::Mul:
            Res = X * Y;
            break;
          case BcOp::Div:
            Res = X / Y;
            break;
          case BcOp::Rem:
            Res = std::fmod(X, Y);
            break;
          case BcOp::MinOp:
            Res = std::fmin(X, Y);
            break;
          case BcOp::MaxOp:
            Res = std::fmax(X, Y);
            break;
          default:
            Res = 0;
            break;
          }
          if (In.Ty == ValType::F32) {
            float FX = static_cast<float>(X);
            float FY = static_cast<float>(Y);
            float FR;
            switch (In.Op) {
            case BcOp::Add:
              FR = FX + FY;
              break;
            case BcOp::Sub:
              FR = FX - FY;
              break;
            case BcOp::Mul:
              FR = FX * FY;
              break;
            case BcOp::Div:
              FR = FX / FY;
              break;
            case BcOp::Rem:
              FR = std::fmod(FX, FY);
              break;
            case BcOp::MinOp:
              FR = std::fmin(FX, FY);
              break;
            case BcOp::MaxOp:
              FR = std::fmax(FX, FY);
              break;
            default:
              FR = 0;
              break;
            }
            Dst.D = FR;
          } else {
            Dst.D = Res;
          }
          continue;
        }
        int64_t X = A.I;
        int64_t Y = B.I;
        int64_t Res = 0;
        bool Unsigned = In.Ty == ValType::U32 || In.Ty == ValType::U64 ||
                        In.Ty == ValType::U8;
        switch (In.Op) {
        case BcOp::Add:
          Res = X + Y;
          break;
        case BcOp::Sub:
          Res = X - Y;
          break;
        case BcOp::Mul:
          Res = X * Y;
          break;
        case BcOp::Div:
          if (Y == 0) {
            fault(D, "kernel fault: integer division by zero");
            return;
          }
          Res = Unsigned ? static_cast<int64_t>(
                               static_cast<uint64_t>(X) /
                               static_cast<uint64_t>(Y))
                         : X / Y;
          break;
        case BcOp::Rem:
          if (Y == 0) {
            fault(D, "kernel fault: integer remainder by zero");
            return;
          }
          Res = Unsigned ? static_cast<int64_t>(
                               static_cast<uint64_t>(X) %
                               static_cast<uint64_t>(Y))
                         : X % Y;
          break;
        case BcOp::Shl:
          Res = static_cast<int64_t>(static_cast<uint64_t>(X)
                                     << (Y & 63));
          break;
        case BcOp::Shr:
          Res = Unsigned ? static_cast<int64_t>(static_cast<uint64_t>(X) >>
                                                (Y & 63))
                         : (X >> (Y & 63));
          break;
        case BcOp::And:
          Res = X & Y;
          break;
        case BcOp::Or:
          Res = X | Y;
          break;
        case BcOp::Xor:
          Res = X ^ Y;
          break;
        case BcOp::MinOp:
          Res = std::min(X, Y);
          break;
        case BcOp::MaxOp:
          Res = std::max(X, Y);
          break;
        default:
          break;
        }
        Dst.I = wrapInt(Res, In.Ty);
      }
      break;

    case BcOp::Neg:
    case BcOp::Not:
    case BcOp::LNot:
    case BcOp::AbsOp:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        Slot &A = reg(W, In.A, L);
        Slot &Dst = reg(W, In.Dst, L);
        if (isFloatVal(In.Ty)) {
          switch (In.Op) {
          case BcOp::Neg:
            Dst.D = In.Ty == ValType::F32
                        ? -static_cast<float>(A.D)
                        : -A.D;
            break;
          case BcOp::AbsOp:
            Dst.D = std::fabs(A.D);
            break;
          case BcOp::LNot:
            Dst.I = A.D == 0.0;
            break;
          default:
            Dst.D = A.D;
            break;
          }
        } else {
          switch (In.Op) {
          case BcOp::Neg:
            Dst.I = wrapInt(-A.I, In.Ty);
            break;
          case BcOp::Not:
            Dst.I = wrapInt(~A.I, In.Ty);
            break;
          case BcOp::LNot:
            Dst.I = A.I == 0;
            break;
          case BcOp::AbsOp:
            Dst.I = wrapInt(std::abs(A.I), In.Ty);
            break;
          default:
            break;
          }
        }
      }
      break;

    case BcOp::CmpLt:
    case BcOp::CmpLe:
    case BcOp::CmpGt:
    case BcOp::CmpGe:
    case BcOp::CmpEq:
    case BcOp::CmpNe:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        Slot &A = reg(W, In.A, L);
        Slot &B = reg(W, In.B, L);
        bool Res;
        if (isFloatVal(In.Ty)) {
          double X = A.D;
          double Y = B.D;
          switch (In.Op) {
          case BcOp::CmpLt:
            Res = X < Y;
            break;
          case BcOp::CmpLe:
            Res = X <= Y;
            break;
          case BcOp::CmpGt:
            Res = X > Y;
            break;
          case BcOp::CmpGe:
            Res = X >= Y;
            break;
          case BcOp::CmpEq:
            Res = X == Y;
            break;
          default:
            Res = X != Y;
            break;
          }
        } else {
          bool Unsigned = In.Ty == ValType::U32 || In.Ty == ValType::U64 ||
                          In.Ty == ValType::U8;
          int64_t X = A.I;
          int64_t Y = B.I;
          if (Unsigned) {
            uint64_t UX = static_cast<uint64_t>(X);
            uint64_t UY = static_cast<uint64_t>(Y);
            switch (In.Op) {
            case BcOp::CmpLt:
              Res = UX < UY;
              break;
            case BcOp::CmpLe:
              Res = UX <= UY;
              break;
            case BcOp::CmpGt:
              Res = UX > UY;
              break;
            case BcOp::CmpGe:
              Res = UX >= UY;
              break;
            case BcOp::CmpEq:
              Res = UX == UY;
              break;
            default:
              Res = UX != UY;
              break;
            }
          } else {
            switch (In.Op) {
            case BcOp::CmpLt:
              Res = X < Y;
              break;
            case BcOp::CmpLe:
              Res = X <= Y;
              break;
            case BcOp::CmpGt:
              Res = X > Y;
              break;
            case BcOp::CmpGe:
              Res = X >= Y;
              break;
            case BcOp::CmpEq:
              Res = X == Y;
              break;
            default:
              Res = X != Y;
              break;
            }
          }
        }
        reg(W, In.Dst, L).I = Res ? 1 : 0;
      }
      break;

    case BcOp::Select:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        bool Cond = reg(W, In.A, L).I != 0;
        reg(W, In.Dst, L) = Cond ? reg(W, In.B, L) : reg(W, In.C, L);
      }
      break;

    case BcOp::Sqrt:
    case BcOp::RSqrt:
    case BcOp::Sin:
    case BcOp::Cos:
    case BcOp::Tan:
    case BcOp::Exp:
    case BcOp::Log:
    case BcOp::Pow:
    case BcOp::Floor:
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        double X = reg(W, In.A, L).D;
        double Y = In.B >= 0 ? reg(W, In.B, L).D : 0.0;
        double Res;
        switch (In.Op) {
        case BcOp::Sqrt:
          Res = std::sqrt(X);
          break;
        case BcOp::RSqrt:
          Res = 1.0 / std::sqrt(X);
          break;
        case BcOp::Sin:
          Res = std::sin(X);
          break;
        case BcOp::Cos:
          Res = std::cos(X);
          break;
        case BcOp::Tan:
          Res = std::tan(X);
          break;
        case BcOp::Exp:
          Res = std::exp(X);
          break;
        case BcOp::Log:
          Res = std::log(X);
          break;
        case BcOp::Pow:
          Res = std::pow(X, Y);
          break;
        case BcOp::Floor:
          Res = std::floor(X);
          break;
        default:
          Res = 0;
          break;
        }
        reg(W, In.Dst, L).D =
            In.Ty == ValType::F32 ? static_cast<float>(Res) : Res;
      }
      break;

    case BcOp::Load:
    case BcOp::Store:
      execMemory(W, D, In);
      if (!D.Fault.empty())
        return;
      break;

    case BcOp::GlobalId:
    case BcOp::LocalId: {
      // Per-lane geometry reads the tables hoisted at dispatch
      // setup; nothing launch-invariant is recomputed in the loop.
      const int64_t *Tab;
      switch (In.Op) {
      case BcOp::GlobalId:
        Tab = In.Dim == 0 ? D.GeoGx.data() : D.GeoGy.data();
        break;
      default:
        Tab = In.Dim == 0 ? D.GeoLx.data() : D.GeoLy.data();
        break;
      }
      Tab += W.FirstLinear;
      for (unsigned L = 0; L != Width; ++L)
        if (Active & (1ULL << L))
          reg(W, In.Dst, L).I = Tab[L];
      break;
    }
    case BcOp::GroupId:
    case BcOp::GlobalSize:
    case BcOp::LocalSize:
    case BcOp::NumGroups: {
      unsigned Base;
      switch (In.Op) {
      case BcOp::GroupId:
        Base = jitabi::GeoGroupId0;
        break;
      case BcOp::GlobalSize:
        Base = jitabi::GeoGlobalSize0;
        break;
      case BcOp::LocalSize:
        Base = jitabi::GeoLocalSize0;
        break;
      default:
        Base = jitabi::GeoNumGroups0;
        break;
      }
      const int64_t V = D.GeoScalars[Base + (In.Dim & 1)];
      for (unsigned L = 0; L != Width; ++L)
        if (Active & (1ULL << L))
          reg(W, In.Dst, L).I = V;
      break;
    }

    case BcOp::ReadImage:
      execReadImage(W, D, In);
      if (!D.Fault.empty())
        return;
      break;

    case BcOp::Jump:
      W.Pc = static_cast<size_t>(In.Target);
      continue;

    case BcOp::IfBegin: {
      uint64_t Cond = 0;
      for (unsigned L = 0; L != Width; ++L)
        if ((Active & (1ULL << L)) && reg(W, In.A, L).I != 0)
          Cond |= 1ULL << L;
      Frame F;
      F.TheKind = Frame::Kind::If;
      F.SavedMask = W.Mask;
      F.ThenMask = Cond;
      W.Stack.push_back(F);
      W.Mask = Cond;
      if ((W.Mask & ~W.Exited) == 0) {
        W.Pc = static_cast<size_t>(In.Target);
        continue;
      }
      break;
    }
    case BcOp::IfElse: {
      Frame &F = W.Stack.back();
      W.Mask = F.SavedMask & ~F.ThenMask;
      if ((W.Mask & ~W.Exited) == 0) {
        W.Pc = static_cast<size_t>(In.Target);
        continue;
      }
      break;
    }
    case BcOp::IfEnd: {
      Frame F = W.Stack.back();
      W.Stack.pop_back();
      W.Mask = F.SavedMask;
      break;
    }

    case BcOp::LoopBegin: {
      Frame F;
      F.TheKind = Frame::Kind::Loop;
      F.SavedMask = W.Mask;
      W.Stack.push_back(F);
      break;
    }
    case BcOp::LoopTest: {
      uint64_t Cond = 0;
      for (unsigned L = 0; L != Width; ++L)
        if ((Active & (1ULL << L)) && reg(W, In.A, L).I != 0)
          Cond |= 1ULL << L;
      W.Mask &= Cond;
      if ((W.Mask & ~W.Exited) == 0) {
        Frame F = W.Stack.back();
        W.Stack.pop_back();
        W.Mask = F.SavedMask;
        W.Pc = static_cast<size_t>(In.Target);
        continue;
      }
      break;
    }
    case BcOp::LoopEnd:
      W.Pc = static_cast<size_t>(In.Target);
      continue;

    case BcOp::Barrier:
      ++C.BarriersExecuted;
      ++W.Pc;
      W.AtBarrier = true;
      return;

    case BcOp::Ret:
      W.Exited |= Active;
      if ((W.Mask & ~W.Exited) == 0 && W.Stack.empty()) {
        W.Done = true;
        return;
      }
      break;

    case BcOp::Halt:
      W.Done = true;
      return;
    }

    ++W.Pc;
  }
}

void SimDevice::execMemory(WarpState &W, Dispatch &D, const BcInstr &In) {
  const unsigned Width = Model.WarpWidth;
  uint64_t Active = W.Mask & ~W.Exited;
  unsigned ElemBytes = valTypeBytes(In.Ty);
  unsigned AccessBytes = ElemBytes * In.Width;
  bool IsStore = In.Op == BcOp::Store;

  std::vector<uint64_t> &Addrs = D.AddrScratch;
  Addrs.clear();

  // The arena base and limit are lane-invariant for every space but
  // private; resolve them once instead of per lane.
  const bool PerLaneBase = In.Space == AddrSpace::Private;
  uint64_t SharedLimit = 0;
  uint8_t *SharedBase =
      PerLaneBase ? nullptr : spaceBase(D, In.Space, 0, SharedLimit);

  // The register file is lane-major per register, so each operand's
  // row base is loop-invariant; resolve it once (reg() would multiply
  // per lane).
  Slot *RegFile = W.Regs.data();
  const size_t AddrRow = static_cast<size_t>(In.B) * Width;
  const size_t DataRow =
      static_cast<size_t>(IsStore ? In.A : In.Dst) * Width;

  // Scalar accesses dominate every workload; dispatch on the element
  // type once and run a tight per-lane loop. The general vector path
  // below keeps the per-component switch.
  if (In.Width == 1) {
    bool Faulted = false;
    auto scalarLanes = [&](auto Tag, auto FloatTag, auto StoreTag) {
      using T = decltype(Tag);
      constexpr bool IsF = decltype(FloatTag)::value;
      constexpr bool St = decltype(StoreTag)::value;
      for (unsigned L = 0; L != Width; ++L) {
        if (!(Active & (1ULL << L)))
          continue;
        uint64_t Addr = static_cast<uint64_t>(RegFile[AddrRow + L].I);
        uint64_t Limit = SharedLimit;
        uint8_t *Base = SharedBase;
        if (PerLaneBase)
          Base = spaceBase(D, In.Space, W.FirstLinear + L, Limit);
        if (!Base || Addr + sizeof(T) > Limit) {
          fault(D, formatString(
                       "kernel fault: %s access out of bounds "
                       "(space=%s addr=%llu size=%u limit=%llu, kernel %s "
                       "at %s)",
                       IsStore ? "store" : "load", addrSpaceName(In.Space),
                       static_cast<unsigned long long>(Addr), AccessBytes,
                       static_cast<unsigned long long>(Limit),
                       D.K->Name.c_str(), In.Loc.str().c_str()));
          Faulted = true;
          return;
        }
        uint8_t *P = Base + Addr;
        Slot &S = RegFile[DataRow + L];
        if constexpr (St) {
          T V = IsF ? static_cast<T>(S.D) : static_cast<T>(S.I);
          std::memcpy(P, &V, sizeof(T));
        } else {
          T V;
          std::memcpy(&V, P, sizeof(T));
          if constexpr (IsF)
            S.D = static_cast<double>(V);
          else
            S.I = static_cast<int64_t>(V);
        }
        Addrs.push_back(Addr);
      }
    };
    auto dispatch = [&](auto Tag, auto FloatTag) {
      if (IsStore)
        scalarLanes(Tag, FloatTag, std::true_type{});
      else
        scalarLanes(Tag, FloatTag, std::false_type{});
    };
    switch (In.Ty) {
    case ValType::I8:
      dispatch(int8_t{}, std::false_type{});
      break;
    case ValType::U8:
      dispatch(uint8_t{}, std::false_type{});
      break;
    case ValType::I32:
      dispatch(int32_t{}, std::false_type{});
      break;
    case ValType::U32:
      dispatch(uint32_t{}, std::false_type{});
      break;
    case ValType::I64:
    case ValType::U64:
      dispatch(int64_t{}, std::false_type{});
      break;
    case ValType::F32:
      dispatch(float{}, std::true_type{});
      break;
    case ValType::F64:
      dispatch(double{}, std::true_type{});
      break;
    }
    if (Faulted)
      return;
  } else {
  for (unsigned L = 0; L != Width; ++L) {
    if (!(Active & (1ULL << L)))
      continue;
    uint64_t Addr = static_cast<uint64_t>(reg(W, In.B, L).I);
    uint64_t Limit = SharedLimit;
    uint8_t *Base = SharedBase;
    if (PerLaneBase) {
      // Private space is per-lane: the group-linear work-item index
      // selects the lane's slice of the private arena.
      unsigned GroupLane = W.FirstLinear + L;
      Base = spaceBase(D, In.Space, GroupLane, Limit);
    }
    if (!Base || Addr + AccessBytes > Limit) {
      fault(D, formatString(
                   "kernel fault: %s access out of bounds "
                   "(space=%s addr=%llu size=%u limit=%llu, kernel %s "
                   "at %s)",
                   IsStore ? "store" : "load", addrSpaceName(In.Space),
                   static_cast<unsigned long long>(Addr), AccessBytes,
                   static_cast<unsigned long long>(Limit),
                   D.K->Name.c_str(), In.Loc.str().c_str()));
      return;
    }
    // Move data between registers and memory, component by component.
    for (unsigned Comp = 0; Comp != In.Width; ++Comp) {
      uint8_t *P = Base + Addr + static_cast<uint64_t>(Comp) * ElemBytes;
      if (IsStore) {
        Slot &S = reg(W, In.A + static_cast<int32_t>(Comp), L);
        switch (In.Ty) {
        case ValType::I8:
        case ValType::U8: {
          uint8_t V = static_cast<uint8_t>(S.I);
          std::memcpy(P, &V, 1);
          break;
        }
        case ValType::I32:
        case ValType::U32: {
          uint32_t V = static_cast<uint32_t>(S.I);
          std::memcpy(P, &V, 4);
          break;
        }
        case ValType::I64:
        case ValType::U64:
          std::memcpy(P, &S.I, 8);
          break;
        case ValType::F32: {
          float V = static_cast<float>(S.D);
          std::memcpy(P, &V, 4);
          break;
        }
        case ValType::F64:
          std::memcpy(P, &S.D, 8);
          break;
        }
      } else {
        Slot &S = reg(W, In.Dst + static_cast<int32_t>(Comp), L);
        switch (In.Ty) {
        case ValType::I8: {
          int8_t V;
          std::memcpy(&V, P, 1);
          S.I = V;
          break;
        }
        case ValType::U8: {
          uint8_t V;
          std::memcpy(&V, P, 1);
          S.I = V;
          break;
        }
        case ValType::I32: {
          int32_t V;
          std::memcpy(&V, P, 4);
          S.I = V;
          break;
        }
        case ValType::U32: {
          uint32_t V;
          std::memcpy(&V, P, 4);
          S.I = V;
          break;
        }
        case ValType::I64:
        case ValType::U64:
          std::memcpy(&S.I, P, 8);
          break;
        case ValType::F32: {
          float V;
          std::memcpy(&V, P, 4);
          S.D = V;
          break;
        }
        case ValType::F64:
          std::memcpy(&S.D, P, 8);
          break;
        }
      }
    }
    Addrs.push_back(Addr);
  }
  }

  switch (In.Space) {
  case AddrSpace::Global:
    Mem.accessGlobal(Addrs, AccessBytes, IsStore);
    break;
  case AddrSpace::Local:
    Mem.accessLocal(Addrs, AccessBytes, IsStore);
    break;
  case AddrSpace::Constant:
  case AddrSpace::Param:
    Mem.accessConstant(Addrs, AccessBytes);
    break;
  case AddrSpace::Private:
    // Private memory maps to registers/L1; the issue cost charged by
    // the main loop suffices.
    break;
  case AddrSpace::Image:
    break;
  }
}

void SimDevice::execReadImage(WarpState &W, Dispatch &D, const BcInstr &In) {
  const unsigned Width = Model.WarpWidth;
  uint64_t Active = W.Mask & ~W.Exited;
  std::vector<uint64_t> &Addrs = D.AddrScratch;
  Addrs.clear();
  int Slot = -1;
  for (unsigned L = 0; L != Width; ++L) {
    if (!(Active & (1ULL << L)))
      continue;
    if (Slot < 0)
      Slot = static_cast<int>(reg(W, In.C, L).I);
    if (Slot < 0 || Slot >= static_cast<int>(Images.size())) {
      fault(D, "kernel fault: read_imagef on an unbound image");
      return;
    }
    const SimImage &Img = Images[static_cast<size_t>(Slot)];
    int64_t X = reg(W, In.A, L).I;
    int64_t Y = reg(W, In.B, L).I;
    // CLK_ADDRESS_CLAMP_TO_EDGE semantics.
    X = std::clamp<int64_t>(X, 0, static_cast<int64_t>(Img.Width) - 1);
    Y = std::clamp<int64_t>(Y, 0, static_cast<int64_t>(Img.Height) - 1);
    size_t Texel =
        (static_cast<size_t>(Y) * Img.Width + static_cast<size_t>(X)) * 4;
    for (unsigned Comp = 0; Comp != 4; ++Comp)
      reg(W, In.Dst + static_cast<int32_t>(Comp), L).D =
          Img.Texels[Texel + Comp];
    Addrs.push_back(static_cast<uint64_t>(Texel) * 4);
  }
  Mem.accessImage(Addrs, 16);
}

//===----------------------------------------------------------------------===//
// JIT dispatch
//===----------------------------------------------------------------------===//
//
// A warp under JIT runs the kernel's native artifact. The live warp
// state (masks, pc, divergence frames) is mirrored into a JitWarp for
// the duration of the native call; the register file is shared by
// pointer, so compute results land directly in WarpState.Regs. The
// memory/image helpers below delegate to the interpreter's own
// execMemory/execReadImage so bounds checks, fault text and the
// timing-model pricing cannot drift from the reference semantics.

void SimDevice::runWarpJit(WarpState &W, Dispatch &D,
                           const jitabi::JitArtifact &Art) {
  using namespace jitabi;

  JitWarp JW;
  JW.Mask = W.Mask;
  JW.Exited = W.Exited;
  JW.Pc = std::min(W.Pc, D.K->Code.size());
  JW.Depth = W.Stack.size();
  for (size_t I = 0; I != W.Stack.size(); ++I) {
    const Frame &F = W.Stack[I];
    JW.Frames[I].SavedMask = F.SavedMask;
    JW.Frames[I].ThenMask = F.ThenMask;
    JW.Frames[I].Kind = F.TheKind == Frame::Kind::If ? FrameIf : FrameLoop;
  }
  JW.Regs = reinterpret_cast<int64_t *>(W.Regs.data());
  JW.FirstLinear = W.FirstLinear;
  JW.GlobalId0 = D.GeoGx.data() + W.FirstLinear;
  JW.GlobalId1 = D.GeoGy.data() + W.FirstLinear;
  JW.LocalId0 = D.GeoLx.data() + W.FirstLinear;
  JW.LocalId1 = D.GeoLy.data() + W.FirstLinear;

  JitExecContext Ctx;
  Ctx.Warp = &JW;
  Ctx.Device = this;
  Ctx.Dispatch = &D;
  Ctx.Kernel = D.K;
  Ctx.Budget = &D.InstructionBudget;
  Ctx.Counters = &Mem.counters();
  Ctx.PcTable = Art.PcTable->data();
  for (unsigned I = 0; I != GeoScalarCount; ++I)
    Ctx.Scalars[I] = D.GeoScalars[I];
  Ctx.HostWarp = &W;
  Ctx.GlobalBase = GlobalArena.data();
  Ctx.ConstBase = ConstArena.data();
  Ctx.ParamBase = D.ParamBlock.data();
  Ctx.PrivWarpBase =
      D.PrivateArena.data() + W.FirstLinear * D.PrivateBytesPerLane;
  Ctx.PrivBytesPerLane = D.PrivateBytesPerLane;
  Ctx.BcProven = D.BcProven;

  const uint32_t Status = Art.Entry(&Ctx);

  W.Mask = JW.Mask;
  W.Exited = JW.Exited;
  W.Pc = JW.Pc;
  W.Stack.resize(JW.Depth);
  for (size_t I = 0; I != JW.Depth; ++I) {
    Frame &F = W.Stack[I];
    F.SavedMask = JW.Frames[I].SavedMask;
    F.ThenMask = JW.Frames[I].ThenMask;
    F.TheKind =
        JW.Frames[I].Kind == FrameIf ? Frame::Kind::If : Frame::Kind::Loop;
  }

  switch (Status) {
  case StatusDone:
    W.Done = true;
    break;
  case StatusBarrier:
    W.AtBarrier = true;
    break;
  default:
    if (D.Fault.empty())
      fault(D, "kernel fault: jit signalled a fault without a message");
    break;
  }
}

int64_t SimDevice::jitHelpMem(jitabi::JitExecContext *Ctx, uint32_t Idx) {
  jitabi::JitWarp &JW = *Ctx->Warp;
  SimDevice &Dev = *static_cast<SimDevice *>(Ctx->Device);
  Dispatch &D = *static_cast<Dispatch *>(Ctx->Dispatch);
  WarpState &W = *static_cast<WarpState *>(Ctx->HostWarp);
  const BcInstr &In = D.K->Code[Idx];

  const uint64_t Active = JW.Mask & ~JW.Exited;
  // The interpreter's issue charge for Load/Store (its default arm).
  if (Active) {
    KernelCounters &C = Dev.Mem.counters();
    if (In.Ty == ValType::F64)
      ++C.DpWarpOps;
    else
      ++C.AluWarpOps;
  }
  // Masks are authoritative in JW while native code runs; sync them
  // so the shared interpreter path sees the same active lanes.
  W.Mask = JW.Mask;
  W.Exited = JW.Exited;
  Dev.execMemory(W, D, In);
  return D.Fault.empty() ? jitabi::HelperFallthrough : jitabi::HelperFault;
}

int64_t SimDevice::jitHelpImage(jitabi::JitExecContext *Ctx, uint32_t Idx) {
  jitabi::JitWarp &JW = *Ctx->Warp;
  SimDevice &Dev = *static_cast<SimDevice *>(Ctx->Device);
  Dispatch &D = *static_cast<Dispatch *>(Ctx->Dispatch);
  WarpState &W = *static_cast<WarpState *>(Ctx->HostWarp);
  const BcInstr &In = D.K->Code[Idx];

  const uint64_t Active = JW.Mask & ~JW.Exited;
  if (Active) {
    KernelCounters &C = Dev.Mem.counters();
    if (In.Ty == ValType::F64)
      ++C.DpWarpOps;
    else
      ++C.AluWarpOps;
  }
  W.Mask = JW.Mask;
  W.Exited = JW.Exited;
  Dev.execReadImage(W, D, In);
  return D.Fault.empty() ? jitabi::HelperFallthrough : jitabi::HelperFault;
}

int64_t SimDevice::jitHelpControl(jitabi::JitExecContext *Ctx, uint32_t Idx) {
  using namespace jitabi;
  JitWarp &JW = *Ctx->Warp;
  SimDevice &Dev = *static_cast<SimDevice *>(Ctx->Device);
  Dispatch &D = *static_cast<Dispatch *>(Ctx->Dispatch);
  const BcInstr &In = D.K->Code[Idx];
  const unsigned Width = Dev.Model.WarpWidth;
  Slot *Regs = reinterpret_cast<Slot *>(JW.Regs);
  const uint64_t Active = JW.Mask & ~JW.Exited;

  // Lanes whose condition register is non-zero, among the active.
  // Branchless over the register row so the lane loop pipelines: this
  // runs on every structured-control edge (loop tests especially).
  auto laneCond = [&](int32_t Reg) {
    const Slot *Row = Regs + static_cast<size_t>(Reg) * Width;
    uint64_t Cond = 0;
    for (unsigned L = 0; L != Width; ++L)
      Cond |= static_cast<uint64_t>(Row[L].I != 0) << L;
    return Cond & Active;
  };

  switch (In.Op) {
  case BcOp::IfBegin: {
    if (JW.Depth >= MaxFrames) {
      Dev.fault(D, "kernel fault: divergence stack overflow in jit code");
      return HelperFault;
    }
    uint64_t Cond = laneCond(In.A);
    JitFrame &F = JW.Frames[JW.Depth++];
    F.SavedMask = JW.Mask;
    F.ThenMask = Cond;
    F.Kind = FrameIf;
    JW.Mask = Cond;
    if ((JW.Mask & ~JW.Exited) == 0)
      return In.Target;
    return HelperFallthrough;
  }
  case BcOp::IfElse: {
    JitFrame &F = JW.Frames[JW.Depth - 1];
    JW.Mask = F.SavedMask & ~F.ThenMask;
    if ((JW.Mask & ~JW.Exited) == 0)
      return In.Target;
    return HelperFallthrough;
  }
  case BcOp::IfEnd: { // normally lowered inline; kept complete
    JitFrame &F = JW.Frames[--JW.Depth];
    JW.Mask = F.SavedMask;
    return HelperFallthrough;
  }
  case BcOp::LoopBegin: {
    if (JW.Depth >= MaxFrames) {
      Dev.fault(D, "kernel fault: divergence stack overflow in jit code");
      return HelperFault;
    }
    JitFrame &F = JW.Frames[JW.Depth++];
    F.SavedMask = JW.Mask;
    F.ThenMask = 0;
    F.Kind = FrameLoop;
    return HelperFallthrough;
  }
  case BcOp::LoopTest: {
    JW.Mask &= laneCond(In.A);
    if ((JW.Mask & ~JW.Exited) == 0) {
      JitFrame &F = JW.Frames[--JW.Depth];
      JW.Mask = F.SavedMask;
      return In.Target;
    }
    return HelperFallthrough;
  }
  case BcOp::Barrier:
    ++Dev.Mem.counters().BarriersExecuted;
    JW.Pc = Idx + 1; // resume point once the group rendezvous releases
    return HelperBarrier;
  case BcOp::Ret:
    JW.Exited |= Active;
    if ((JW.Mask & ~JW.Exited) == 0 && JW.Depth == 0)
      return HelperDone;
    return HelperFallthrough;
  case BcOp::Jump:
  case BcOp::LoopEnd:
    return In.Target;
  default: // Halt
    return HelperDone;
  }
}

void SimDevice::jitHelpMemPrice(jitabi::JitExecContext *Ctx, uint32_t Idx) {
  jitabi::JitWarp &JW = *Ctx->Warp;
  SimDevice &Dev = *static_cast<SimDevice *>(Ctx->Device);
  Dispatch &D = *static_cast<Dispatch *>(Ctx->Dispatch);
  const BcInstr &In = D.K->Code[Idx];

  const uint64_t Active = JW.Mask & ~JW.Exited;
  // Issue charge, exactly as the Mem helper / interpreter default arm.
  if (Active) {
    KernelCounters &C = Dev.Mem.counters();
    if (In.Ty == ValType::F64)
      ++C.DpWarpOps;
    else
      ++C.AluWarpOps;
  }
  // Collect the active lanes' addresses in ascending lane order: the
  // MemoryModel's pricing is stateful and order-dependent, so the
  // list must match execMemory's exactly (it does — the proof rules
  // out the only divergence point, a mid-loop bounds fault).
  const unsigned Width = Dev.Model.WarpWidth;
  const unsigned AccessBytes = valTypeBytes(In.Ty) * In.Width;
  const Slot *Regs = reinterpret_cast<const Slot *>(JW.Regs);
  const size_t AddrRow = static_cast<size_t>(In.B) * Width;
  std::vector<uint64_t> &Addrs = D.AddrScratch;
  Addrs.clear();
  for (unsigned L = 0; L != Width; ++L)
    if (Active & (1ULL << L))
      Addrs.push_back(static_cast<uint64_t>(Regs[AddrRow + L].I));
  switch (In.Space) {
  case AddrSpace::Global:
    Dev.Mem.accessGlobal(Addrs, AccessBytes, In.Op == BcOp::Store);
    break;
  case AddrSpace::Constant:
  case AddrSpace::Param:
    Dev.Mem.accessConstant(Addrs, AccessBytes);
    break;
  default:
    // Local/Private are never open-coded; nothing beyond the issue
    // charge would be priced for them anyway.
    break;
  }
}

void SimDevice::jitHelpTrap(jitabi::JitExecContext *Ctx, uint32_t Code) {
  SimDevice &Dev = *static_cast<SimDevice *>(Ctx->Device);
  Dispatch &D = *static_cast<Dispatch *>(Ctx->Dispatch);
  switch (Code) {
  case jitabi::TrapDivZero:
    Dev.fault(D, "kernel fault: integer division by zero");
    break;
  case jitabi::TrapRemZero:
    Dev.fault(D, "kernel fault: integer remainder by zero");
    break;
  case jitabi::TrapBudget:
    Dev.fault(D, "kernel instruction budget exhausted (runaway loop?)");
    break;
  default:
    Dev.fault(D, formatString("kernel fault: jit dispatched to an unmapped "
                              "pc in kernel %s",
                              D.K->Name.c_str()));
    break;
  }
}

const jitabi::HelperTable &lime::ocl::simDeviceJitHelpers() {
  static const jitabi::HelperTable Table{
      &SimDevice::jitHelpMem, &SimDevice::jitHelpImage,
      &SimDevice::jitHelpControl, &SimDevice::jitHelpTrap,
      &SimDevice::jitHelpMemPrice};
  return Table;
}
