//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the OpenCL-C subset. Token kinds are coarse — keywords
/// stay identifiers and all operators are Punct tokens carrying their
/// spelling — which keeps the C-subset parser compact while remaining
/// precise about locations and literal payloads.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_OCLLEXER_H
#define LIMECC_OCL_OCLLEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <string>
#include <string_view>

namespace lime::ocl {

struct OclToken {
  enum class Kind : uint8_t { Eof, Ident, IntLit, FloatLit, Punct };

  Kind K = Kind::Eof;
  SourceLocation Loc;
  std::string Text;
  long long IntValue = 0;
  double FloatValue = 0.0;
  bool FloatIsSingle = false;

  bool isIdent(std::string_view S) const {
    return K == Kind::Ident && Text == S;
  }
  bool isPunct(std::string_view S) const {
    return K == Kind::Punct && Text == S;
  }
};

class OclLexer {
public:
  OclLexer(std::string_view Source, DiagnosticEngine &Diags);
  OclToken next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  void skipTrivia();

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_OCLLEXER_H
