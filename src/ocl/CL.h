//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature OpenCL host API over the simulated device, mirroring
/// the host-side steps the paper's §2 enumerates: build the program,
/// create buffers, enqueue writes, launch kernels, enqueue reads. The
/// queue keeps a simulated profile: kernel time (from the device
/// model), transfer time (PCIe bandwidth + per-call latency; zero-copy
/// on the CPU device), and fixed API overhead per enqueue — the
/// components Figure 9 decomposes.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_CL_H
#define LIMECC_OCL_CL_H

#include "ocl/Bytecode.h"
#include "ocl/VM.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace lime::ocl {

/// A device buffer handle.
struct ClBuffer {
  uint64_t Offset = 0;
  uint64_t Bytes = 0;
  AddrSpace Space = AddrSpace::Global;
};

/// Simulated time profile of a command queue.
struct ClProfile {
  double KernelNs = 0.0;
  double TransferNs = 0.0; // PCIe/DMA payload time
  double ApiNs = 0.0;      // per-call driver overhead
  /// Host wall-clock spent inside SimDevice::run — the simulator's
  /// own execution cost, not simulated time. This is what the
  /// jit-vs-interpreter microbenchmark compares.
  double WallDispatchMs = 0.0;
  uint64_t BytesToDevice = 0;
  uint64_t BytesFromDevice = 0;
  KernelCounters LastKernelCounters;

  double totalNs() const { return KernelNs + TransferNs + ApiNs; }
  void reset() { *this = ClProfile(); }
};

/// One built translation unit (AST context, bytecode, and the native
/// JIT artifacts attached at build time). Opaque outside CL.cpp;
/// shareable across contexts targeting the same device model, which
/// is how the offload service's KernelCache hands one compiled
/// program (bytecode + JIT code) to every worker context.
struct ProgramBundle;

/// One OpenCL context + command queue on a simulated device.
class ClContext {
public:
  explicit ClContext(const std::string &DeviceName);
  ~ClContext();
  ClContext(const ClContext &) = delete;
  ClContext &operator=(const ClContext &) = delete;

  SimDevice &device() { return Dev; }
  const DeviceModel &model() const { return Dev.model(); }

  /// Tags this context (and its device) for fault injection; the
  /// offload service uses "w<id>:<model>" so faults can target one
  /// worker of a multi-queue device. Defaults to the model name.
  void setFaultDomain(std::string Domain);
  const std::string &faultDomain() const { return Dev.FaultDomain; }

  /// Parses and compiles OpenCL source; returns "" on success or the
  /// diagnostics text. Kernels accumulate across build calls.
  std::string buildProgram(const std::string &Source);

  /// Shared-bundle form: when \p Shared already holds a bundle built
  /// from the same source for the same device model it is adopted
  /// as-is — bytecode and JIT artifacts reused, nothing recompiled.
  /// Otherwise the source is built and \p Shared is (re)filled, so
  /// the first worker to build populates the cache slot for the rest.
  std::string buildProgram(const std::string &Source,
                           std::shared_ptr<const ProgramBundle> *Shared);

  const BcKernel *findKernel(const std::string &Name) const;

  ClBuffer createBuffer(uint64_t Bytes, AddrSpace Space = AddrSpace::Global);
  int createImage(SimImage Img);
  void updateImage(int Index, SimImage Img);

  /// Accounts a host->device transfer that bypasses enqueueWrite
  /// (image uploads).
  void chargeHostToDevice(uint64_t Bytes);

  /// Host -> device transfer (prices PCIe unless the device is the
  /// CPU, where the OpenCL runtime shares memory — Fig. 9(a)).
  void enqueueWrite(const ClBuffer &Buf, const void *Src, uint64_t Bytes);
  void enqueueRead(const ClBuffer &Buf, void *Dst, uint64_t Bytes);

  /// Launches a kernel; returns "" or an error message.
  std::string enqueueKernel(const std::string &Name,
                            const std::vector<LaunchArg> &Args,
                            std::array<uint32_t, 2> GlobalSize,
                            std::array<uint32_t, 2> LocalSize);

  ClProfile &profile() { return Profile; }
  const ClProfile &profile() const { return Profile; }

  /// PCIe model parameters (overridable for ablations).
  double PciBandwidthGBs = 6.0; // PCIe 2.0 x16 effective
  double PciLatencyNs = 4000.0;
  double ApiCallOverheadNs = 2500.0;

private:
  SimDevice Dev;
  ClProfile Profile;
  std::vector<std::shared_ptr<const ProgramBundle>> Units;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_CL_H
