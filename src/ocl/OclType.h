//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type system for the executable OpenCL-C subset. This is the target
/// language of the Lime GPU compiler (paper §4) and the language of
/// the hand-tuned comparator kernels (§5.2). It models exactly the
/// features the paper's code generator uses: scalar and vector types
/// (float2/4/8/16 — OpenCL 1.0 vector widths, §2 "Vectorization"),
/// pointers qualified by the five OpenCL address spaces (§2 "Address
/// Space Qualifiers"), 2-D images, and flat structs for the kernel's
/// runtime-bookkeeping record (§4.2, Fig. 4b).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_OCLTYPE_H
#define LIMECC_OCL_OCLTYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lime::ocl {

/// The OpenCL disjoint address spaces (paper §2). Param is our
/// internal space for by-value kernel arguments (the bookkeeping
/// struct of Fig. 4b lives there).
enum class AddrSpace : uint8_t {
  Private,
  Local,
  Global,
  Constant,
  Image,
  Param
};

const char *addrSpaceName(AddrSpace S);
/// The OpenCL source spelling ("__global ", "" for private).
const char *addrSpaceQualifier(AddrSpace S);

/// Scalar element kinds of the subset.
enum class ScalarKind : uint8_t {
  Void,
  Bool,
  Char,
  UChar,
  Int,
  UInt,
  Long,
  ULong,
  Float,
  Double
};

unsigned scalarSizeInBytes(ScalarKind K);
bool isFloatingScalar(ScalarKind K);
bool isIntegerScalar(ScalarKind K);
bool isUnsignedScalar(ScalarKind K);
const char *scalarName(ScalarKind K);

class OclType {
public:
  enum class Kind : uint8_t { Scalar, Vector, Pointer, Array, Struct, Image };

  Kind kind() const { return TheKind; }
  virtual ~OclType() = default;
  virtual std::string str() const = 0;

  /// Size in bytes when stored in device memory.
  virtual unsigned sizeInBytes() const = 0;

protected:
  explicit OclType(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

class ScalarType : public OclType {
public:
  ScalarKind scalar() const { return TheScalar; }
  std::string str() const override { return scalarName(TheScalar); }
  unsigned sizeInBytes() const override {
    return scalarSizeInBytes(TheScalar);
  }

  bool isFloating() const { return isFloatingScalar(TheScalar); }
  bool isInteger() const { return isIntegerScalar(TheScalar); }
  bool isVoid() const { return TheScalar == ScalarKind::Void; }

  static bool classof(const OclType *T) { return T->kind() == Kind::Scalar; }

private:
  friend class OclTypeContext;
  explicit ScalarType(ScalarKind K) : OclType(Kind::Scalar), TheScalar(K) {}
  ScalarKind TheScalar;
};

/// floatN / intN — OpenCL 1.0 widths 2, 4, 8, 16.
class VectorType : public OclType {
public:
  ScalarKind element() const { return Elem; }
  unsigned lanes() const { return Lanes; }
  std::string str() const override {
    return std::string(scalarName(Elem)) + std::to_string(Lanes);
  }
  unsigned sizeInBytes() const override {
    return scalarSizeInBytes(Elem) * Lanes;
  }

  static bool classof(const OclType *T) { return T->kind() == Kind::Vector; }

private:
  friend class OclTypeContext;
  VectorType(ScalarKind Elem, unsigned Lanes)
      : OclType(Kind::Vector), Elem(Elem), Lanes(Lanes) {}
  ScalarKind Elem;
  unsigned Lanes;
};

class PointerType : public OclType {
public:
  const OclType *pointee() const { return Pointee; }
  AddrSpace space() const { return Space; }
  std::string str() const override {
    return std::string(addrSpaceQualifier(Space)) + Pointee->str() + "*";
  }
  unsigned sizeInBytes() const override { return 8; }

  static bool classof(const OclType *T) { return T->kind() == Kind::Pointer; }

private:
  friend class OclTypeContext;
  PointerType(const OclType *Pointee, AddrSpace Space)
      : OclType(Kind::Pointer), Pointee(Pointee), Space(Space) {}
  const OclType *Pointee;
  AddrSpace Space;
};

/// Fixed-size in-kernel arrays (`__local float tile[257]`, private
/// scratch arrays).
class OclArrayType : public OclType {
public:
  const OclType *element() const { return Elem; }
  unsigned count() const { return Count; }
  std::string str() const override {
    return Elem->str() + "[" + std::to_string(Count) + "]";
  }
  unsigned sizeInBytes() const override {
    return Elem->sizeInBytes() * Count;
  }

  static bool classof(const OclType *T) { return T->kind() == Kind::Array; }

private:
  friend class OclTypeContext;
  OclArrayType(const OclType *Elem, unsigned Count)
      : OclType(Kind::Array), Elem(Elem), Count(Count) {}
  const OclType *Elem;
  unsigned Count;
};

/// Flat structs; used for the kernel bookkeeping record (Fig. 4b).
class StructType : public OclType {
public:
  struct Field {
    std::string Name;
    const OclType *Ty;
    unsigned Offset;
  };

  const std::string &name() const { return Name; }
  const std::vector<Field> &fields() const { return Fields; }
  const Field *findField(const std::string &FieldName) const {
    for (const Field &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }
  std::string str() const override { return "struct " + Name; }
  unsigned sizeInBytes() const override { return Size; }

  static bool classof(const OclType *T) { return T->kind() == Kind::Struct; }

private:
  friend class OclTypeContext;
  StructType(std::string Name, std::vector<Field> Fields, unsigned Size)
      : OclType(Kind::Struct), Name(std::move(Name)),
        Fields(std::move(Fields)), Size(Size) {}
  std::string Name;
  std::vector<Field> Fields;
  unsigned Size;
};

/// read_only image2d_t.
class ImageType : public OclType {
public:
  std::string str() const override { return "image2d_t"; }
  unsigned sizeInBytes() const override { return 8; }

  static bool classof(const OclType *T) { return T->kind() == Kind::Image; }

private:
  friend class OclTypeContext;
  ImageType() : OclType(Kind::Image) {}
};

/// Canonicalizing owner of OpenCL types.
class OclTypeContext {
public:
  OclTypeContext();
  ~OclTypeContext();
  OclTypeContext(const OclTypeContext &) = delete;
  OclTypeContext &operator=(const OclTypeContext &) = delete;

  const ScalarType *getScalar(ScalarKind K);
  const VectorType *getVector(ScalarKind Elem, unsigned Lanes);
  const PointerType *getPointer(const OclType *Pointee, AddrSpace Space);
  const OclArrayType *getArray(const OclType *Elem, unsigned Count);
  const ImageType *getImage();

  /// Builds a struct with natural (size-aligned) field layout.
  const StructType *makeStruct(const std::string &Name,
                               const std::vector<std::pair<std::string,
                                                           const OclType *>>
                                   &Fields);
  const StructType *findStruct(const std::string &Name) const;

  // Shorthands.
  const ScalarType *voidTy() { return getScalar(ScalarKind::Void); }
  const ScalarType *boolTy() { return getScalar(ScalarKind::Bool); }
  const ScalarType *intTy() { return getScalar(ScalarKind::Int); }
  const ScalarType *uintTy() { return getScalar(ScalarKind::UInt); }
  const ScalarType *longTy() { return getScalar(ScalarKind::Long); }
  const ScalarType *floatTy() { return getScalar(ScalarKind::Float); }
  const ScalarType *doubleTy() { return getScalar(ScalarKind::Double); }
  const ScalarType *charTy() { return getScalar(ScalarKind::Char); }
  const ScalarType *ucharTy() { return getScalar(ScalarKind::UChar); }

private:
  struct Impl;
  std::unique_ptr<Impl> TheImpl;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_OCLTYPE_H
