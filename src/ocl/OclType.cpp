//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/OclType.h"

#include <map>
#include <tuple>

using namespace lime;
using namespace lime::ocl;

const char *lime::ocl::addrSpaceName(AddrSpace S) {
  switch (S) {
  case AddrSpace::Private:
    return "private";
  case AddrSpace::Local:
    return "local";
  case AddrSpace::Global:
    return "global";
  case AddrSpace::Constant:
    return "constant";
  case AddrSpace::Image:
    return "image";
  case AddrSpace::Param:
    return "param";
  }
  lime_unreachable("bad address space");
}

const char *lime::ocl::addrSpaceQualifier(AddrSpace S) {
  switch (S) {
  case AddrSpace::Private:
    return "";
  case AddrSpace::Local:
    return "__local ";
  case AddrSpace::Global:
    return "__global ";
  case AddrSpace::Constant:
    return "__constant ";
  case AddrSpace::Image:
    return "__read_only ";
  case AddrSpace::Param:
    return "";
  }
  lime_unreachable("bad address space");
}

unsigned lime::ocl::scalarSizeInBytes(ScalarKind K) {
  switch (K) {
  case ScalarKind::Void:
    return 0;
  case ScalarKind::Bool:
  case ScalarKind::Char:
  case ScalarKind::UChar:
    return 1;
  case ScalarKind::Int:
  case ScalarKind::UInt:
  case ScalarKind::Float:
    return 4;
  case ScalarKind::Long:
  case ScalarKind::ULong:
  case ScalarKind::Double:
    return 8;
  }
  lime_unreachable("bad scalar kind");
}

bool lime::ocl::isFloatingScalar(ScalarKind K) {
  return K == ScalarKind::Float || K == ScalarKind::Double;
}

bool lime::ocl::isIntegerScalar(ScalarKind K) {
  switch (K) {
  case ScalarKind::Char:
  case ScalarKind::UChar:
  case ScalarKind::Int:
  case ScalarKind::UInt:
  case ScalarKind::Long:
  case ScalarKind::ULong:
    return true;
  default:
    return false;
  }
}

bool lime::ocl::isUnsignedScalar(ScalarKind K) {
  return K == ScalarKind::UChar || K == ScalarKind::UInt ||
         K == ScalarKind::ULong;
}

const char *lime::ocl::scalarName(ScalarKind K) {
  switch (K) {
  case ScalarKind::Void:
    return "void";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Char:
    return "char";
  case ScalarKind::UChar:
    return "uchar";
  case ScalarKind::Int:
    return "int";
  case ScalarKind::UInt:
    return "uint";
  case ScalarKind::Long:
    return "long";
  case ScalarKind::ULong:
    return "ulong";
  case ScalarKind::Float:
    return "float";
  case ScalarKind::Double:
    return "double";
  }
  lime_unreachable("bad scalar kind");
}

struct OclTypeContext::Impl {
  std::map<ScalarKind, std::unique_ptr<ScalarType>> Scalars;
  std::map<std::pair<ScalarKind, unsigned>, std::unique_ptr<VectorType>>
      Vectors;
  std::map<std::pair<const OclType *, AddrSpace>,
           std::unique_ptr<PointerType>>
      Pointers;
  std::map<std::pair<const OclType *, unsigned>,
           std::unique_ptr<OclArrayType>>
      Arrays;
  std::map<std::string, std::unique_ptr<StructType>> Structs;
  std::unique_ptr<ImageType> Image;
};

OclTypeContext::OclTypeContext() : TheImpl(std::make_unique<Impl>()) {}
OclTypeContext::~OclTypeContext() = default;

const ScalarType *OclTypeContext::getScalar(ScalarKind K) {
  auto &Slot = TheImpl->Scalars[K];
  if (!Slot)
    Slot.reset(new ScalarType(K));
  return Slot.get();
}

const VectorType *OclTypeContext::getVector(ScalarKind Elem, unsigned Lanes) {
  assert((Lanes == 2 || Lanes == 4 || Lanes == 8 || Lanes == 16) &&
         "OpenCL 1.0 supports vector widths 2, 4, 8 and 16 only");
  auto &Slot = TheImpl->Vectors[{Elem, Lanes}];
  if (!Slot)
    Slot.reset(new VectorType(Elem, Lanes));
  return Slot.get();
}

const PointerType *OclTypeContext::getPointer(const OclType *Pointee,
                                              AddrSpace Space) {
  auto &Slot = TheImpl->Pointers[{Pointee, Space}];
  if (!Slot)
    Slot.reset(new PointerType(Pointee, Space));
  return Slot.get();
}

const OclArrayType *OclTypeContext::getArray(const OclType *Elem,
                                             unsigned Count) {
  auto &Slot = TheImpl->Arrays[{Elem, Count}];
  if (!Slot)
    Slot.reset(new OclArrayType(Elem, Count));
  return Slot.get();
}

const ImageType *OclTypeContext::getImage() {
  if (!TheImpl->Image)
    TheImpl->Image.reset(new ImageType());
  return TheImpl->Image.get();
}

const StructType *OclTypeContext::makeStruct(
    const std::string &Name,
    const std::vector<std::pair<std::string, const OclType *>> &Fields) {
  std::vector<StructType::Field> Laid;
  unsigned Offset = 0;
  unsigned MaxAlign = 1;
  for (const auto &[FName, FTy] : Fields) {
    unsigned Size = FTy->sizeInBytes();
    unsigned Align = std::min(Size ? Size : 1u, 16u);
    MaxAlign = std::max(MaxAlign, Align);
    Offset = (Offset + Align - 1) / Align * Align;
    Laid.push_back({FName, FTy, Offset});
    Offset += Size;
  }
  unsigned Total = (Offset + MaxAlign - 1) / MaxAlign * MaxAlign;
  auto &Slot = TheImpl->Structs[Name];
  Slot.reset(new StructType(Name, std::move(Laid), Total));
  return Slot.get();
}

const StructType *OclTypeContext::findStruct(const std::string &Name) const {
  auto It = TheImpl->Structs.find(Name);
  return It == TheImpl->Structs.end() ? nullptr : It->second.get();
}
