//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/CL.h"

#include "ocl/BytecodeCompiler.h"
#include "ocl/Jit.h"
#include "ocl/OclParser.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <thread>

using namespace lime;
using namespace lime::ocl;

/// Owns one built translation unit (AST context + bytecode). Device
/// and Source tag what the bundle was built for so shared-bundle
/// adoption can verify it fits (JIT artifacts are specialized to one
/// warp width, and the constant-capacity fallback can rewrite the
/// source between builds of the same filter).
struct lime::ocl::ProgramBundle {
  OclContext Ctx;
  BcProgram Program;
  std::string Device;
  std::string Source;
};

ClContext::ClContext(const std::string &DeviceName)
    : Dev(deviceByName(DeviceName)) {
  if (Dev.model().Kind == DeviceKind::Cpu) {
    // Shared memory: no PCIe; "transfers" are cache-speed copies and
    // the driver path is shorter.
    PciBandwidthGBs = 12.0;
    PciLatencyNs = 300.0;
    ApiCallOverheadNs = 1500.0;
  }
}

ClContext::~ClContext() = default;

void ClContext::setFaultDomain(std::string Domain) {
  Dev.FaultDomain = std::move(Domain);
}

std::string ClContext::buildProgram(const std::string &Source) {
  return buildProgram(Source, nullptr);
}

std::string
ClContext::buildProgram(const std::string &Source,
                        std::shared_ptr<const ProgramBundle> *Shared) {
  // Fault-injection hook: the per-device program build fails, as a
  // real clBuildProgram can (driver bugs, resource exhaustion).
  if (support::FaultInjector::instance().shouldFire(
          Dev.FaultDomain, support::FaultKind::CompileFail))
    return "injected fault: program build failed on " + Dev.FaultDomain;

  if (Shared && *Shared && (*Shared)->Device == model().Name &&
      (*Shared)->Source == Source) {
    Units.push_back(*Shared);
    return "";
  }

  auto Unit = std::make_shared<ProgramBundle>();
  DiagnosticEngine Diags;
  OclParser Parser(Source, Unit->Ctx, Diags);
  OclProgramAST *AST = Parser.parseProgram();
  if (Diags.hasErrors())
    return Diags.dump();
  BytecodeCompiler BC(Unit->Ctx, Diags);
  Unit->Program = BC.compile(AST);
  if (Diags.hasErrors())
    return Diags.dump();
  // Kernel-build-time JIT: lower each kernel to native code now so
  // dispatches hit the compiled entry (deopt'd kernels keep a reason
  // and run on the interpreter).
  attachJitArtifacts(Unit->Program, Dev.model());
  Unit->Device = model().Name;
  Unit->Source = Source;
  std::shared_ptr<const ProgramBundle> Built = std::move(Unit);
  if (Shared)
    *Shared = Built;
  Units.push_back(std::move(Built));
  return "";
}

const BcKernel *ClContext::findKernel(const std::string &Name) const {
  for (const auto &U : Units)
    if (const BcKernel *K = U->Program.findKernel(Name))
      return K;
  return nullptr;
}

ClBuffer ClContext::createBuffer(uint64_t Bytes, AddrSpace Space) {
  ClBuffer B;
  B.Bytes = Bytes;
  B.Space = Space;
  B.Offset = Dev.allocBuffer(Bytes, Space);
  Profile.ApiNs += ApiCallOverheadNs;
  return B;
}

int ClContext::createImage(SimImage Img) {
  Profile.ApiNs += ApiCallOverheadNs;
  return Dev.addImage(std::move(Img));
}

void ClContext::updateImage(int Index, SimImage Img) {
  Profile.ApiNs += ApiCallOverheadNs;
  Dev.updateImage(Index, std::move(Img));
}

void ClContext::chargeHostToDevice(uint64_t Bytes) {
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesToDevice += Bytes;
}

void ClContext::enqueueWrite(const ClBuffer &Buf, const void *Src,
                             uint64_t Bytes) {
  Dev.writeBuffer(Buf.Offset, Buf.Space, Src, Bytes);
  Profile.ApiNs += ApiCallOverheadNs;
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesToDevice += Bytes;
}

void ClContext::enqueueRead(const ClBuffer &Buf, void *Dst, uint64_t Bytes) {
  Dev.readBuffer(Buf.Offset, Buf.Space, Dst, Bytes);
  Profile.ApiNs += ApiCallOverheadNs;
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesFromDevice += Bytes;
}

std::string ClContext::enqueueKernel(const std::string &Name,
                                     const std::vector<LaunchArg> &Args,
                                     std::array<uint32_t, 2> GlobalSize,
                                     std::array<uint32_t, 2> LocalSize) {
  const BcKernel *K = findKernel(Name);
  if (!K)
    return "no kernel named '" + Name + "' in the built programs";
  // Fault-injection hook: the launch stalls (wall-clock) before the
  // device runs it, so deadline enforcement in the offload service's
  // worker loop sees a hung dispatch that eventually completes.
  {
    support::FaultInjector &FI = support::FaultInjector::instance();
    if (FI.shouldFire(Dev.FaultDomain, support::FaultKind::Hang))
      std::this_thread::sleep_for(std::chrono::milliseconds(FI.hangMillis()));
  }
  Profile.ApiNs += ApiCallOverheadNs;
  const auto WallStart = std::chrono::steady_clock::now();
  LaunchResult R = Dev.run(*K, Args, GlobalSize, LocalSize);
  Profile.WallDispatchMs +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - WallStart)
          .count();
  if (!R.ok())
    return R.Error;
  Profile.KernelNs += R.KernelTimeNs;
  Profile.LastKernelCounters = R.Counters;
  return "";
}
