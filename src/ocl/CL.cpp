//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/CL.h"

#include "ocl/BytecodeCompiler.h"
#include "ocl/OclParser.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <thread>

using namespace lime;
using namespace lime::ocl;

/// Owns one built translation unit (AST context + bytecode).
struct ClContext::BuiltUnit {
  OclContext Ctx;
  BcProgram Program;
};

ClContext::ClContext(const std::string &DeviceName)
    : Dev(deviceByName(DeviceName)) {
  if (Dev.model().Kind == DeviceKind::Cpu) {
    // Shared memory: no PCIe; "transfers" are cache-speed copies and
    // the driver path is shorter.
    PciBandwidthGBs = 12.0;
    PciLatencyNs = 300.0;
    ApiCallOverheadNs = 1500.0;
  }
}

ClContext::~ClContext() = default;

void ClContext::setFaultDomain(std::string Domain) {
  Dev.FaultDomain = std::move(Domain);
}

std::string ClContext::buildProgram(const std::string &Source) {
  // Fault-injection hook: the per-device program build fails, as a
  // real clBuildProgram can (driver bugs, resource exhaustion).
  if (support::FaultInjector::instance().shouldFire(
          Dev.FaultDomain, support::FaultKind::CompileFail))
    return "injected fault: program build failed on " + Dev.FaultDomain;

  auto Unit = std::make_unique<BuiltUnit>();
  DiagnosticEngine Diags;
  OclParser Parser(Source, Unit->Ctx, Diags);
  OclProgramAST *AST = Parser.parseProgram();
  if (Diags.hasErrors())
    return Diags.dump();
  BytecodeCompiler BC(Unit->Ctx, Diags);
  Unit->Program = BC.compile(AST);
  if (Diags.hasErrors())
    return Diags.dump();
  Units.push_back(std::move(Unit));
  return "";
}

const BcKernel *ClContext::findKernel(const std::string &Name) const {
  for (const auto &U : Units)
    if (const BcKernel *K = U->Program.findKernel(Name))
      return K;
  return nullptr;
}

ClBuffer ClContext::createBuffer(uint64_t Bytes, AddrSpace Space) {
  ClBuffer B;
  B.Bytes = Bytes;
  B.Space = Space;
  B.Offset = Dev.allocBuffer(Bytes, Space);
  Profile.ApiNs += ApiCallOverheadNs;
  return B;
}

int ClContext::createImage(SimImage Img) {
  Profile.ApiNs += ApiCallOverheadNs;
  return Dev.addImage(std::move(Img));
}

void ClContext::updateImage(int Index, SimImage Img) {
  Profile.ApiNs += ApiCallOverheadNs;
  Dev.updateImage(Index, std::move(Img));
}

void ClContext::chargeHostToDevice(uint64_t Bytes) {
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesToDevice += Bytes;
}

void ClContext::enqueueWrite(const ClBuffer &Buf, const void *Src,
                             uint64_t Bytes) {
  Dev.writeBuffer(Buf.Offset, Buf.Space, Src, Bytes);
  Profile.ApiNs += ApiCallOverheadNs;
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesToDevice += Bytes;
}

void ClContext::enqueueRead(const ClBuffer &Buf, void *Dst, uint64_t Bytes) {
  Dev.readBuffer(Buf.Offset, Buf.Space, Dst, Bytes);
  Profile.ApiNs += ApiCallOverheadNs;
  Profile.TransferNs +=
      PciLatencyNs + static_cast<double>(Bytes) / PciBandwidthGBs;
  Profile.BytesFromDevice += Bytes;
}

std::string ClContext::enqueueKernel(const std::string &Name,
                                     const std::vector<LaunchArg> &Args,
                                     std::array<uint32_t, 2> GlobalSize,
                                     std::array<uint32_t, 2> LocalSize) {
  const BcKernel *K = findKernel(Name);
  if (!K)
    return "no kernel named '" + Name + "' in the built programs";
  // Fault-injection hook: the launch stalls (wall-clock) before the
  // device runs it, so deadline enforcement in the offload service's
  // worker loop sees a hung dispatch that eventually completes.
  {
    support::FaultInjector &FI = support::FaultInjector::instance();
    if (FI.shouldFire(Dev.FaultDomain, support::FaultKind::Hang))
      std::this_thread::sleep_for(std::chrono::milliseconds(FI.hangMillis()));
  }
  Profile.ApiNs += ApiCallOverheadNs;
  LaunchResult R = Dev.run(*K, Args, GlobalSize, LocalSize);
  if (!R.ok())
    return R.Error;
  Profile.KernelNs += R.KernelTimeNs;
  Profile.LastKernelCounters = R.Counters;
  return "";
}
