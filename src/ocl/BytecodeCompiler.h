//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the type-checked OpenCL AST into SIMT bytecode (see
/// Bytecode.h for the execution model). Non-kernel functions are
/// inlined at their call sites (OpenCL C forbids recursion); vector
/// values are scalarized into consecutive registers except at memory
/// accesses, which stay wide so the memory model prices them as the
/// paper's vectorization optimization intends (§4.2.2).
///
/// Storage assignment: statically-sized `__local` arrays get offsets
/// in the work-group's local arena; private arrays get offsets in the
/// per-lane private arena — mirroring the paper's private/local
/// placement (§4.2.1).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_BYTECODECOMPILER_H
#define LIMECC_OCL_BYTECODECOMPILER_H

#include "ocl/Bytecode.h"
#include "ocl/OclAST.h"
#include "support/Diagnostics.h"

#include <map>

namespace lime::ocl {

class BytecodeCompiler {
public:
  BytecodeCompiler(OclContext &Ctx, DiagnosticEngine &Diags);

  /// Compiles every kernel in \p P; check Diags for errors.
  BcProgram compile(OclProgramAST *P);

private:
  /// A value held in registers: Width consecutive registers starting
  /// at Reg, each of element type Ty.
  struct CVal {
    int32_t Reg = -1;
    unsigned Width = 1;
    ValType Ty = ValType::I32;
  };

  /// An assignable location.
  struct LVal {
    enum class Kind : uint8_t { Reg, Mem } TheKind = Kind::Reg;
    // Reg form.
    int32_t Reg = -1;
    // Mem form.
    int32_t AddrReg = -1;
    AddrSpace Space = AddrSpace::Global;
    unsigned Width = 1;
    ValType Ty = ValType::I32;
  };

  void compileKernel(OclFunction *F, BcProgram &Out);

  // Storage.
  int32_t allocRegs(unsigned N);
  unsigned typeRegCount(const OclType *T);
  ValType regTypeFor(const OclType *T);

  // Statements.
  void compileStmt(OclStmt *S);
  void compileDecl(OclDeclStmt *D);

  // Expressions.
  CVal compileExpr(OclExpr *E);
  LVal compileLValue(OclExpr *E);
  CVal loadLValue(const LVal &L, SourceLocation Loc);
  void storeLValue(const LVal &L, CVal V, SourceLocation Loc);
  CVal compileBinary(OclBinary *B);
  CVal compileCall(OclCall *C);
  CVal compileInlineCall(OclCall *C);

  /// Converts (per component) to \p To; no-op when already there.
  CVal convert(CVal V, ValType To);
  /// Broadcast a scalar CVal to width W (for vector-scalar ops).
  CVal widen(CVal V, unsigned W);

  /// Computes the byte address of base pointer/array + index.
  struct Addr {
    int32_t Reg;
    AddrSpace Space;
    const OclType *ElemTy;
  };
  Addr compileAddress(OclExpr *Base, OclExpr *Index);
  /// Value of a pointer-typed expression as (addressReg, space,
  /// pointee type).
  Addr compilePointer(OclExpr *E);

  // Emission helpers.
  BcInstr &emit(BcOp Op);
  int emitConstI(int64_t V);
  size_t here() const { return K->Code.size(); }
  void patchTarget(size_t InstrIndex, size_t Target);

  void errorAt(SourceLocation Loc, const std::string &Msg);

  OclContext &Ctx;
  OclTypeContext &Types;
  DiagnosticEngine &Diags;

  BcKernel *K = nullptr;
  OclProgramAST *Program = nullptr;

  /// Register (first of a run) for scalar/vector/pointer variables.
  std::map<const OclVarDecl *, int32_t> VarRegs;
  /// Arrays placed in memory: their fixed byte offset and space.
  struct ArrayHome {
    AddrSpace Space;
    int64_t Offset;
  };
  std::map<const OclVarDecl *, ArrayHome> ArrayHomes;
  /// Inline expansion: current return-value register and flag.
  int32_t InlineRetReg = -1;
  bool InInline = false;
  bool SawInlineReturn = false;
  unsigned InlineDepth = 0;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_BYTECODECOMPILER_H
