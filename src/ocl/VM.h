//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated OpenCL device: memory arenas for the global /
/// constant / local / private / image address spaces, and a lockstep
/// SIMT warp interpreter for the bytecode of Bytecode.h.
///
/// Execution model: work-groups run one at a time; the work-items of
/// a group are partitioned into warps of DeviceModel::WarpWidth lanes
/// executing in lockstep under a divergence mask stack. `barrier()`
/// suspends a warp until every live warp of the group arrives. Every
/// memory instruction hands the active lanes' addresses to the
/// MemoryModel, which prices coalescing, bank conflicts, broadcasts
/// and caches into KernelCounters; every executed instruction is
/// charged to the matching compute pipe. All accesses are bounds
/// checked — a fault aborts the dispatch with a message (and fails
/// the calling test).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_VM_H
#define LIMECC_OCL_VM_H

#include "ocl/Bytecode.h"
#include "ocl/DeviceModel.h"
#include "ocl/MemoryModel.h"

#include <array>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace lime::ocl {

/// A 2-D RGBA-float image (the subset's image2d_t).
struct SimImage {
  unsigned Width = 0;
  unsigned Height = 0;
  std::vector<float> Texels; // 4 floats per texel, row-major
};

/// One kernel-launch argument.
struct LaunchArg {
  enum class Kind : uint8_t {
    Buffer,     // global or constant buffer (by arena offset)
    LocalBytes, // dynamically-sized __local pointer (paper §4.2.1)
    Image,
    Struct, // by-value record bytes (Fig. 4b)
    ScalarI32,
    ScalarI64,
    ScalarF32,
    ScalarF64
  };
  Kind TheKind = Kind::ScalarI32;
  uint64_t BufferOffset = 0;
  AddrSpace BufferSpace = AddrSpace::Global;
  uint64_t LocalBytes = 0;
  int ImageIndex = -1;
  std::vector<uint8_t> StructBytes;
  int64_t ScalarI = 0;
  double ScalarF = 0.0;

  static LaunchArg buffer(uint64_t Offset, AddrSpace Space) {
    LaunchArg A;
    A.TheKind = Kind::Buffer;
    A.BufferOffset = Offset;
    A.BufferSpace = Space;
    return A;
  }
  static LaunchArg localBytes(uint64_t Bytes) {
    LaunchArg A;
    A.TheKind = Kind::LocalBytes;
    A.LocalBytes = Bytes;
    return A;
  }
  static LaunchArg image(int Index) {
    LaunchArg A;
    A.TheKind = Kind::Image;
    A.ImageIndex = Index;
    return A;
  }
  static LaunchArg structBytes(std::vector<uint8_t> Bytes) {
    LaunchArg A;
    A.TheKind = Kind::Struct;
    A.StructBytes = std::move(Bytes);
    return A;
  }
  static LaunchArg i32(int32_t V) {
    LaunchArg A;
    A.TheKind = Kind::ScalarI32;
    A.ScalarI = V;
    return A;
  }
  static LaunchArg i64(int64_t V) {
    LaunchArg A;
    A.TheKind = Kind::ScalarI64;
    A.ScalarI = V;
    return A;
  }
  static LaunchArg f32(float V) {
    LaunchArg A;
    A.TheKind = Kind::ScalarF32;
    A.ScalarF = V;
    return A;
  }
  static LaunchArg f64(double V) {
    LaunchArg A;
    A.TheKind = Kind::ScalarF64;
    A.ScalarF = V;
    return A;
  }
};

/// Result of one dispatch.
struct LaunchResult {
  std::string Error; // empty on success
  KernelCounters Counters;
  double KernelTimeNs = 0.0;

  bool ok() const { return Error.empty(); }
};

class SimDevice {
public:
  explicit SimDevice(const DeviceModel &Model);

  const DeviceModel &model() const { return Model; }

  /// Fault-injection domain this device's hooks report under
  /// (defaults to the model name; the offload service pins it to a
  /// per-worker tag so one worker of a multi-queue device can fail
  /// independently).
  std::string FaultDomain;

  /// Allocates \p Bytes in the given arena (Global or Constant);
  /// returns the base offset used as the device address.
  uint64_t allocBuffer(uint64_t Bytes, AddrSpace Space);

  /// Host <-> device copies (the API layer prices the PCIe transfer).
  void writeBuffer(uint64_t Offset, AddrSpace Space, const void *Src,
                   uint64_t Bytes);
  void readBuffer(uint64_t Offset, AddrSpace Space, void *Dst,
                  uint64_t Bytes) const;

  /// Registers an image; returns its index for LaunchArg::image.
  int addImage(SimImage Img);

  /// Replaces the texels of an existing image (hosts re-upload
  /// textures between launches).
  void updateImage(int Index, SimImage Img);

  /// Runs one NDRange dispatch to completion.
  LaunchResult run(const BcKernel &K, const std::vector<LaunchArg> &Args,
                   std::array<uint32_t, 2> GlobalSize,
                   std::array<uint32_t, 2> LocalSize);

  /// Clears allocations and images (buffers from prior launches).
  void resetMemory();

private:
  struct Slot {
    union {
      int64_t I;
      double D;
    };
    Slot() : I(0) {}
  };

  struct Frame {
    enum class Kind : uint8_t { If, Loop } TheKind = Kind::If;
    uint64_t SavedMask = 0;
    uint64_t ThenMask = 0;
  };

  struct WarpState {
    size_t Pc = 0;
    uint64_t Mask = 0;    // active lanes
    uint64_t Exited = 0;  // lanes retired by Ret
    std::vector<Frame> Stack;
    std::vector<Slot> Regs; // NumRegs x WarpWidth, lane-major runs
    bool AtBarrier = false;
    bool Done = false;
    uint32_t FirstLinear = 0; // linear work-item id of lane 0
  };

  /// Per-dispatch state bundled for the interpreter.
  struct Dispatch {
    const BcKernel *K = nullptr;
    std::array<uint32_t, 2> GlobalSize{1, 1};
    std::array<uint32_t, 2> LocalSize{1, 1};
    std::array<uint32_t, 2> GroupId{0, 0};
    std::vector<uint8_t> ParamBlock;
    std::vector<uint8_t> LocalArena;
    std::vector<uint8_t> PrivateArena; // lanes x PrivateBytes
    uint64_t PrivateBytesPerLane = 0;
    std::vector<int> ImageSlots; // param index -> image index
    std::string Fault;
    uint64_t InstructionBudget = 0;
    // Launch-invariant geometry, hoisted out of the per-lane loops:
    // local-id tables (indexed by group-linear lane) are filled once
    // per dispatch, global-id tables and the uniform scalars once per
    // work-group.
    std::vector<int64_t> GeoLx, GeoLy;
    std::vector<int64_t> GeoGx, GeoGy;
    int64_t GeoScalars[jitabi::GeoScalarCount] = {};
    // Reused scratch for memory-access address lists (one allocation
    // per dispatch instead of one per memory instruction).
    std::vector<uint64_t> AddrScratch;
    // Per-pc bounds verdicts from the bytecode proof tier (values of
    // analysis::bc::Verdict), or null when proofs are off / the
    // dispatch is interpreted. Points into BcProofCache.
    const uint8_t *BcProven = nullptr;
  };

  Slot &reg(WarpState &W, int32_t Reg, unsigned Lane) {
    return W.Regs[static_cast<size_t>(Reg) * Model.WarpWidth + Lane];
  }

  /// Executes \p W until barrier, completion, or fault.
  void runWarp(WarpState &W, Dispatch &D);
  /// Same contract, but through the kernel's native JIT artifact.
  void runWarpJit(WarpState &W, Dispatch &D,
                  const jitabi::JitArtifact &Art);
  void execMemory(WarpState &W, Dispatch &D, const BcInstr &In);
  void execReadImage(WarpState &W, Dispatch &D, const BcInstr &In);
  void fault(Dispatch &D, const std::string &Msg);

  // VM callbacks for JIT-compiled code (the HelperTable of
  // simDeviceJitHelpers). Exact transcriptions of the interpreter's
  // memory / image / structured-control semantics, operating on the
  // JitWarp mirror of the warp state.
  static int64_t jitHelpMem(jitabi::JitExecContext *Ctx, uint32_t Idx);
  static int64_t jitHelpImage(jitabi::JitExecContext *Ctx, uint32_t Idx);
  static int64_t jitHelpControl(jitabi::JitExecContext *Ctx, uint32_t Idx);
  static void jitHelpTrap(jitabi::JitExecContext *Ctx, uint32_t Code);
  static void jitHelpMemPrice(jitabi::JitExecContext *Ctx, uint32_t Idx);

  /// Runs the exact-mode bytecode prover for this dispatch (or
  /// returns a cached table) and notes coverage stats. Null when the
  /// launch signature was seen before and proved nothing.
  const uint8_t *bcProofTable(const BcKernel &K, const Dispatch &D,
                              const std::vector<int64_t> &ParamRegI,
                              const std::vector<double> &ParamRegF,
                              uint64_t LocalBytesTotal);

  uint8_t *spaceBase(Dispatch &D, AddrSpace Space, unsigned Lane,
                     uint64_t &Limit);

  // Builds the HelperTable from the private jitHelp* statics.
  friend const jitabi::HelperTable &simDeviceJitHelpers();

  const DeviceModel &Model;
  MemoryModel Mem;
  std::vector<uint8_t> GlobalArena;
  std::vector<uint8_t> ConstArena;
  std::vector<SimImage> Images;

  /// Dispatch-time proof cache: launch signature (kernel fingerprint,
  /// geometry, arena limits, argument values) -> per-pc verdicts.
  /// Workloads relaunch the same kernel with the same signature
  /// thousands of times; the prover runs once per distinct signature.
  struct BcProofEntry {
    std::vector<uint8_t> Verdicts;
    unsigned Proven = 0;
    unsigned Total = 0;
  };
  std::map<std::string, BcProofEntry> BcProofCache;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_VM_H
