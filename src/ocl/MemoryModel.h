//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transaction-level model of the OpenCL memory hierarchy (paper §2
/// and §4.2.1). For every warp memory access the VM hands the active
/// lanes' byte addresses to this model, which accounts:
///
///  - Global: coalescing into DRAM segments; on cached devices
///    (Fermi) each segment is first looked up in an L1 then an L2
///    set-associative LRU cache.
///  - Local: bank decomposition; the access serializes by the maximum
///    number of *distinct* addresses mapping to one bank (same-address
///    lanes broadcast) — exactly the conflict the compiler's padding
///    optimization removes.
///  - Constant: single-cycle when all lanes read one address
///    (broadcast port), else serialized per distinct address.
///  - Image/texture: read-only 2-D accesses through a small texture
///    cache (the GTX 8800's only cache, hence Fig. 8(a)'s RPES win).
///
/// The model never stores data — the VM owns the bytes — it only
/// prices access patterns into KernelCounters.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_MEMORYMODEL_H
#define LIMECC_OCL_MEMORYMODEL_H

#include "ocl/DeviceModel.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace lime::ocl {

/// A small set-associative LRU cache simulator (lines only, no data).
class CacheSim {
public:
  CacheSim() = default;
  CacheSim(unsigned TotalBytes, unsigned LineBytes, unsigned Ways);

  bool enabled() const { return NumSets != 0; }

  /// Returns true on hit; inserts the line either way.
  bool access(uint64_t ByteAddr);

  void reset();

private:
  unsigned LineBytes = 0;
  unsigned NumSets = 0;
  unsigned Ways = 0;
  // Strength-reduced line/set math: line sizes are powers of two on
  // every modeled device, and set counts usually are; 64-bit division
  // on the access path costs more than the rest of the lookup.
  unsigned LineShift = 0;
  bool SetsPow2 = false;
  // Per set: tags in LRU order (front = most recent).
  std::vector<std::vector<uint64_t>> Sets;

  uint64_t lineOf(uint64_t ByteAddr) const {
    return LineShift ? ByteAddr >> LineShift : ByteAddr / LineBytes;
  }
  uint64_t setOf(uint64_t Line) const {
    return SetsPow2 ? Line & (NumSets - 1) : Line % NumSets;
  }
};

class MemoryModel {
public:
  explicit MemoryModel(const DeviceModel &Dev);

  KernelCounters &counters() { return Counters; }
  const DeviceModel &device() const { return Dev; }

  /// Called at each work-group boundary; per-SM caches (L1, texture)
  /// reset since another group's working set evicts them.
  void beginWorkGroup();

  /// One warp global access: \p Addrs are active lanes' byte
  /// addresses, each moving \p BytesPerLane bytes.
  void accessGlobal(const std::vector<uint64_t> &Addrs, unsigned BytesPerLane,
                    bool IsStore);

  /// One warp local (shared/scratchpad) access.
  void accessLocal(const std::vector<uint64_t> &Addrs, unsigned BytesPerLane,
                   bool IsStore);

  /// One warp constant access.
  void accessConstant(const std::vector<uint64_t> &Addrs,
                      unsigned BytesPerLane);

  /// One warp texture read at 2-D coordinates (already linearized to
  /// byte addresses by the VM).
  void accessImage(const std::vector<uint64_t> &Addrs, unsigned BytesPerLane);

  void resetAll();

private:
  const DeviceModel &Dev;
  KernelCounters Counters;
  CacheSim L1;
  CacheSim L2;
  CacheSim Texture;
  // Reused per-access scratch. Pricing runs one warp access at a time
  // per context, so a single set of buffers suffices; keeping them
  // here avoids a heap allocation on every memory instruction.
  std::vector<uint64_t> UnitScratch;
  std::vector<uint32_t> BankCount;
  // Strength-reduced DRAM segment math (see CacheSim): two divisions
  // per lane dominate accessGlobal when left as real divides.
  unsigned SegShift = 0;
  bool SegPow2 = false;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_MEMORYMODEL_H
