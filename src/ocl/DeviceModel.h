//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric models of the paper's four evaluation platforms
/// (Table 2). A DeviceModel carries the architectural parameters the
/// memory system and the roofline timing formula need; the registry
/// instantiates the GeForce GTX 8800, GeForce GTX 580 (Fermi), Radeon
/// HD 5970, and the Core i7-990X multicore-OpenCL device.
///
/// The differences that drive the paper's Figure 8 are represented
/// directly:
///  - GTX 8800: no general-purpose cache in front of DRAM, 16 local
///    banks, a texture cache (hence the big texture-memory wins for
///    Parboil-RPES), 8 FP units per SM.
///  - GTX 580: adds L1/L2 caches — "the performance is less sensitive
///    to memory optimizations" (§5.2) — 32 banks, 32 units/SM, and
///    half-rate-ish double precision (end-to-end DP 2–3x slower).
///  - HD 5970: wide VLIW SIMD (wavefront 64), no R/W cache, DP ~1.5x
///    slower end-to-end.
///  - Core i7: cores×SMT as compute, all address spaces flow through
///    the cache hierarchy (local memory buys nothing), fast native
///    transcendentals (the OpenCL-vs-Java gain of §5.1).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_DEVICEMODEL_H
#define LIMECC_OCL_DEVICEMODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace lime::ocl {

enum class DeviceKind : uint8_t { Gpu, Cpu };

struct DeviceModel {
  std::string Name;
  DeviceKind Kind = DeviceKind::Gpu;

  // Compute geometry (Table 2).
  unsigned NumSMs = 16;          // streaming multiprocessors / cores
  unsigned FpUnitsPerSM = 32;    // single-precision lanes per SM
  unsigned SfuUnitsPerSM = 4;    // special function units per SM
  unsigned WarpWidth = 32;       // lockstep lanes (wavefront on AMD)
  double ClockGHz = 1.5;
  /// Double-precision throughput divisor (DP op costs this many SP
  /// slots). 0 = no DP support.
  double DpRatio = 8.0;

  // Memory system.
  unsigned LocalBanks = 16;
  unsigned LocalBytesPerSM = 16 * 1024;
  /// Register-file bytes per SM, the budget behind per-work-item
  /// private arrays (0 = not register-limited: CPUs spill to stack).
  /// GPU values follow the hardware generations of Table 2:
  /// 8K 32-bit regs (G80), 32K (Fermi), 256KB GPRs (Evergreen).
  unsigned RegBytesPerSM = 0;
  unsigned ConstBytes = 64 * 1024;
  double DramBandwidthGBs = 150.0;
  unsigned DramSegmentBytes = 128; // coalescing granule
  /// Extra cycles per DRAM transaction beyond raw bandwidth (command
  /// overhead; punishes many small transactions).
  double DramTransactionOverheadCycles = 12.0;

  // Caches (0 = absent).
  unsigned L1Bytes = 0;
  unsigned L2Bytes = 0;
  unsigned TextureCacheBytes = 0;
  unsigned CacheLineBytes = 128;

  /// CPU-only: SMT speedup factor beyond physical cores (the paper's
  /// superlinear 6-core results lean on hyperthreading, §5.1).
  double SmtFactor = 1.0;

  /// Transcendental cost in SFU "slots" per warp op (native_* on GPUs
  /// is cheap; the CPU model uses its own scalar cost).
  double SfuCyclesPerOp = 1.0;

  /// Documentation fields mirrored from Table 2 for bench_table2.
  std::string Table2FpUnits;
  std::string Table2ConstMem;
  std::string Table2LocalMem;
  std::string Table2Caches;
};

/// Returns the registry of the paper's platforms, in Table 2 order:
/// {Core i7-990X, GTX 8800, GTX 580, HD 5970}.
const std::vector<DeviceModel> &deviceRegistry();

/// Looks a device up by name ("gtx580", "gtx8800", "hd5970",
/// "corei7"); aborts on unknown names (programmer error).
const DeviceModel &deviceByName(const std::string &Name);

/// Resource-usage counters accumulated by one kernel dispatch.
struct KernelCounters {
  // Compute, in warp-instructions.
  uint64_t AluWarpOps = 0;
  uint64_t DpWarpOps = 0;
  uint64_t SfuWarpOps = 0;

  // Memory, in transactions / cycles.
  uint64_t GlobalTransactions = 0; // DRAM segment transfers
  uint64_t GlobalBytes = 0;        // payload moved to/from DRAM
  uint64_t L1Hits = 0;
  uint64_t L2Hits = 0;
  uint64_t TextureHits = 0;
  uint64_t TextureMisses = 0;
  uint64_t LocalCycles = 0; // bank-conflict-serialized warp accesses
  uint64_t ConstCycles = 0; // broadcast-or-serialized warp accesses

  // Census for reports.
  uint64_t LoadsExecuted = 0;
  uint64_t StoresExecuted = 0;
  uint64_t BarriersExecuted = 0;

  void reset() { *this = KernelCounters(); }
};

/// Converts counters to simulated kernel wall time via a roofline:
/// the kernel is as slow as its most-contended resource.
double kernelTimeNs(const DeviceModel &Dev, const KernelCounters &C);

/// Renders Table 2 (used by bench_table2 and the docs).
std::string renderTable2();

} // namespace lime::ocl

#endif // LIMECC_OCL_DEVICEMODEL_H
