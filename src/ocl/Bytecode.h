//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register bytecode for the SIMT virtual machine. The OpenCL AST is
/// compiled (with full inlining of non-kernel functions — OpenCL C
/// forbids recursion) into this linear form, which a warp executes in
/// lockstep with a divergence mask stack:
///
///  - `if` compiles to IfBegin/IfElse/IfEnd mask operations; both
///    arms execute under complementary masks (real SIMT divergence
///    cost), with an all-lanes-inactive fast path that jumps.
///  - loops compile to LoopBegin/LoopTest/LoopEnd; lanes that fail
///    the test go inactive until every lane is done.
///  - `barrier()` suspends the warp; the VM resumes it when all warps
///    of the work-group arrive.
///
/// Vector values (float4 etc.) occupy consecutive registers; vector
/// memory accesses stay as single wide Load/Store instructions so the
/// memory model sees the access width the paper's vectorization
/// optimization (§4.2.2) manipulates.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_BYTECODE_H
#define LIMECC_OCL_BYTECODE_H

#include "ocl/JitABI.h"
#include "ocl/OclType.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lime::ocl {

/// Runtime value types of bytecode operations.
enum class ValType : uint8_t { I8, U8, I32, U32, I64, U64, F32, F64 };

bool isFloatVal(ValType T);
unsigned valTypeBytes(ValType T);
ValType valTypeForScalar(ScalarKind K);

enum class BcOp : uint8_t {
  // Immediates / moves / conversions.
  ConstI,
  ConstF,
  Mov,
  Cvt, // dst = convert(a) to .Ty

  // Arithmetic; .Ty selects the domain.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  Neg,
  Not,    // bitwise not
  LNot,   // logical not → 0/1
  MinOp,
  MaxOp,
  AbsOp,

  // Comparisons (result 0/1 in dst as I32).
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,

  // dst = A ? B : C (per lane, no divergence).
  Select,

  // Transcendental / special function unit ops; .Native marks the
  // native_* fast variants.
  Sqrt,
  RSqrt,
  Sin,
  Cos,
  Tan,
  Exp,
  Log,
  Pow,
  Floor,

  // Memory. .Space and .Ty describe the access; .Width lanes of .Ty
  // elements are moved between consecutive registers [Dst..Dst+W)
  // (or [A..A+W) for stores) and consecutive memory.
  Load,  // Dst..Dst+W-1 <- [B = byte address reg]
  Store, // [B] <- A..A+W-1

  // Work-item geometry; .Dim selects the dimension.
  GlobalId,
  LocalId,
  GroupId,
  GlobalSize,
  LocalSize,
  NumGroups,

  // read_imagef: Dst..Dst+3 <- image .Dim(arg index) at (A, B).
  ReadImage,

  // Structured SIMT control flow.
  Jump,      // unconditional, to .Target
  IfBegin,   // cond in A; if no lane passes, jump .Target (else/end)
  IfElse,    // flip to else mask; if empty, jump .Target (end)
  IfEnd,
  LoopBegin,
  LoopTest,  // cond in A; lanes failing go dormant; all-out → .Target
  LoopEnd,   // jump back to .Target (the loop test)

  Barrier,
  Ret, // retire active lanes
  Halt
};

/// One instruction. A fat POD keeps decoding trivial.
struct BcInstr {
  BcOp Op = BcOp::Halt;
  ValType Ty = ValType::I32;
  ValType SrcTy = ValType::I32; // Cvt source interpretation
  AddrSpace Space = AddrSpace::Global;
  uint8_t Width = 1; // vector element count for Load/Store
  uint8_t Dim = 0;   // work-item dimension / image arg index
  bool Native = false;

  int32_t Dst = -1;
  int32_t A = -1;
  int32_t B = -1;
  int32_t C = -1;
  int32_t Target = -1;

  int64_t ImmI = 0;
  double ImmF = 0.0;

  // Position of the originating OpenCL access, carried through so VM
  // memory faults can point back into the kernel source.
  SourceLocation Loc;
};

/// Kernel parameter classification, used by the host API to marshal
/// arguments.
struct BcParam {
  enum class Kind : uint8_t {
    GlobalPtr,
    ConstantPtr,
    LocalPtr, // size set at dispatch (dynamic local memory, §4.2.1)
    Image,
    Struct, // by-value record in Param space (Fig. 4b)
    ScalarI32,
    ScalarI64,
    ScalarF32,
    ScalarF64
  };
  Kind TheKind = Kind::ScalarI32;
  std::string Name;
  unsigned StructBytes = 0; // for Struct params
  /// First register bound to this parameter at kernel entry.
  int32_t Reg = -1;
};

/// A compiled kernel.
struct BcKernel {
  std::string Name;
  unsigned NumRegs = 0;
  std::vector<BcParam> Params;
  std::vector<BcInstr> Code;
  /// Statically-declared __local bytes per work-group.
  unsigned StaticLocalBytes = 0;
  /// Private array bytes per work-item.
  unsigned PrivateBytes = 0;
  /// Native code attached after the build when the JIT is enabled.
  /// Null (or deopt'd, Entry == nullptr) kernels run on the
  /// interpreter; the artifact records why.
  std::shared_ptr<const jitabi::JitArtifact> Jit;
};

/// All kernels of one compiled program.
struct BcProgram {
  std::vector<BcKernel> Kernels;

  const BcKernel *findKernel(const std::string &Name) const {
    for (const BcKernel &K : Kernels)
      if (K.Name == Name)
        return &K;
    return nullptr;
  }
};

/// Disassembles for debugging and golden tests.
std::string disassemble(const BcKernel &K);

} // namespace lime::ocl

#endif // LIMECC_OCL_BYTECODE_H
