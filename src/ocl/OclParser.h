//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser (with integrated type checking) for the OpenCL-C subset.
/// This is a real, if reduced, C front end: declarations before use,
/// usual arithmetic conversions, pointers with address spaces, arrays,
/// vector types with (floatN)(...) literals and .x/.sN component
/// access, structs, and the OpenCL builtin library. Everything the
/// Lime compiler's code generator emits — and everything our
/// hand-tuned comparator kernels use — parses through here before
/// running on the simulated device, so generated code is exercised as
/// *text*, exactly like the paper's system feeding its output to a
/// vendor OpenCL compiler.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_OCL_OCLPARSER_H
#define LIMECC_OCL_OCLPARSER_H

#include "ocl/OclAST.h"
#include "ocl/OclLexer.h"

#include <map>
#include <vector>

namespace lime::ocl {

class OclParser {
public:
  OclParser(std::string_view Source, OclContext &Ctx,
            DiagnosticEngine &Diags);

  /// Parses a translation unit; check Diags for errors.
  OclProgramAST *parseProgram();

private:
  // Token stream with lookahead.
  const OclToken &peek(unsigned Ahead = 0);
  OclToken consume();
  bool acceptPunct(std::string_view S);
  bool expectPunct(std::string_view S, const char *Context);
  bool acceptIdent(std::string_view S);

  // Types.
  bool atTypeStart(unsigned Ahead = 0);
  const OclType *parseTypeSpecifier(AddrSpace &Space, bool &SawSpace);
  const OclType *applyDeclaratorSuffix(const OclType *Base);
  AddrSpace parseAddrSpaceQualifiers(bool &Saw);

  // Declarations.
  void parseTopLevel(OclProgramAST *P);
  void parseStructDef();
  OclFunction *parseFunctionRest(const OclType *RetTy, bool IsKernel,
                                 std::string Name, SourceLocation Loc);

  // Statements.
  OclStmt *parseStatement();
  OclCompoundStmt *parseCompound();
  OclStmt *parseDeclStatement();

  // Expressions.
  OclExpr *parseExpr();
  OclExpr *parseAssignment();
  OclExpr *parseConditional();
  OclExpr *parseBinary(int MinPrec);
  OclExpr *parseUnary();
  OclExpr *parsePostfix();
  OclExpr *parsePrimary();
  OclExpr *parseCallRest(std::string Name, SourceLocation Loc);

  // Typing helpers.
  const OclType *usualArith(SourceLocation Loc, const OclType *L,
                            const OclType *R);
  const OclType *indexResult(SourceLocation Loc, OclExpr *Base);
  void requireLValue(OclExpr *E);

  // Scopes.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  OclVarDecl *lookupVar(const std::string &Name);
  void declareVar(OclVarDecl *D);

  void errorAt(SourceLocation Loc, const std::string &Msg);
  void synchronize();

  OclLexer Lex;
  OclContext &Ctx;
  OclTypeContext &Types;
  DiagnosticEngine &Diags;
  OclProgramAST *Program = nullptr;
  OclFunction *CurrentFunction = nullptr;

  OclToken Lookahead[4];
  unsigned NumLookahead = 0;

  std::vector<std::map<std::string, OclVarDecl *>> Scopes;
  std::map<std::string, const OclType *> Typedefs;
};

} // namespace lime::ocl

#endif // LIMECC_OCL_OCLPARSER_H
