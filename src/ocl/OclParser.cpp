//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "ocl/OclParser.h"

#include "support/StringUtils.h"

using namespace lime;
using namespace lime::ocl;

OclBuiltin lime::ocl::lookupOclBuiltin(const std::string &Name) {
  static const std::map<std::string, OclBuiltin> Table = {
      {"get_global_id", OclBuiltin::GetGlobalId},
      {"get_local_id", OclBuiltin::GetLocalId},
      {"get_group_id", OclBuiltin::GetGroupId},
      {"get_global_size", OclBuiltin::GetGlobalSize},
      {"get_local_size", OclBuiltin::GetLocalSize},
      {"get_num_groups", OclBuiltin::GetNumGroups},
      {"barrier", OclBuiltin::Barrier},
      {"sqrt", OclBuiltin::Sqrt},
      {"rsqrt", OclBuiltin::RSqrt},
      {"sin", OclBuiltin::Sin},
      {"cos", OclBuiltin::Cos},
      {"tan", OclBuiltin::Tan},
      {"exp", OclBuiltin::Exp},
      {"log", OclBuiltin::Log},
      {"pow", OclBuiltin::Pow},
      {"fabs", OclBuiltin::Fabs},
      {"fmin", OclBuiltin::Fmin},
      {"fmax", OclBuiltin::Fmax},
      {"floor", OclBuiltin::Floor},
      {"min", OclBuiltin::Min},
      {"max", OclBuiltin::Max},
      {"abs", OclBuiltin::Abs},
      {"native_sqrt", OclBuiltin::NativeSqrt},
      {"native_rsqrt", OclBuiltin::NativeRsqrt},
      {"native_sin", OclBuiltin::NativeSin},
      {"native_cos", OclBuiltin::NativeCos},
      {"native_exp", OclBuiltin::NativeExp},
      {"native_log", OclBuiltin::NativeLog},
      {"read_imagef", OclBuiltin::ReadImageF},
      {"vload2", OclBuiltin::VLoad2},
      {"vload4", OclBuiltin::VLoad4},
      {"vstore2", OclBuiltin::VStore2},
      {"vstore4", OclBuiltin::VStore4}};
  auto It = Table.find(Name);
  return It == Table.end() ? OclBuiltin::None : It->second;
}

OclParser::OclParser(std::string_view Source, OclContext &Ctx,
                     DiagnosticEngine &Diags)
    : Lex(Source, Diags), Ctx(Ctx), Types(Ctx.types()), Diags(Diags) {}

const OclToken &OclParser::peek(unsigned Ahead) {
  assert(Ahead < 4 && "lookahead too deep");
  while (NumLookahead <= Ahead)
    Lookahead[NumLookahead++] = Lex.next();
  return Lookahead[Ahead];
}

OclToken OclParser::consume() {
  peek();
  OclToken T = std::move(Lookahead[0]);
  for (unsigned I = 1; I < NumLookahead; ++I)
    Lookahead[I - 1] = std::move(Lookahead[I]);
  --NumLookahead;
  return T;
}

bool OclParser::acceptPunct(std::string_view S) {
  if (!peek().isPunct(S))
    return false;
  consume();
  return true;
}

bool OclParser::expectPunct(std::string_view S, const char *Context) {
  if (acceptPunct(S))
    return true;
  errorAt(peek().Loc, formatString("expected '%.*s' %s, found '%s'",
                                   static_cast<int>(S.size()), S.data(),
                                   Context, peek().Text.c_str()));
  return false;
}

bool OclParser::acceptIdent(std::string_view S) {
  if (!peek().isIdent(S))
    return false;
  consume();
  return true;
}

void OclParser::errorAt(SourceLocation Loc, const std::string &Msg) {
  Diags.error(Loc, "[opencl] " + Msg);
}

void OclParser::synchronize() {
  while (peek().K != OclToken::Kind::Eof) {
    OclToken T = consume();
    if (T.isPunct(";") || T.isPunct("}"))
      return;
  }
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

OclVarDecl *OclParser::lookupVar(const std::string &Name) {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
    auto F = It->find(Name);
    if (F != It->end())
      return F->second;
  }
  return nullptr;
}

void OclParser::declareVar(OclVarDecl *D) {
  assert(!Scopes.empty());
  auto [It, Inserted] = Scopes.back().emplace(D->Name, D);
  if (!Inserted)
    errorAt(D->Loc, "redeclaration of '" + D->Name + "'");
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

namespace {
/// Maps a base type name to (scalar kind, vector width); width 1 for
/// scalars. Returns false for non-type identifiers.
bool scalarOrVectorName(const std::string &Name, ScalarKind &K,
                        unsigned &Width) {
  static const std::map<std::string, ScalarKind> Scalars = {
      {"void", ScalarKind::Void},   {"bool", ScalarKind::Bool},
      {"char", ScalarKind::Char},   {"uchar", ScalarKind::UChar},
      {"int", ScalarKind::Int},     {"uint", ScalarKind::UInt},
      {"long", ScalarKind::Long},   {"ulong", ScalarKind::ULong},
      {"float", ScalarKind::Float}, {"double", ScalarKind::Double},
      {"size_t", ScalarKind::ULong}};
  auto It = Scalars.find(Name);
  if (It != Scalars.end()) {
    K = It->second;
    Width = 1;
    return true;
  }
  // Vector names: base + width suffix.
  for (const auto &[Base, Kind] : Scalars) {
    if (Base == "void" || Base == "bool" || Base == "size_t")
      continue;
    if (Name.size() > Base.size() && startsWith(Name, Base)) {
      std::string Suffix = Name.substr(Base.size());
      if (Suffix == "2" || Suffix == "4" || Suffix == "8" || Suffix == "16") {
        K = Kind;
        Width = static_cast<unsigned>(std::stoul(Suffix));
        return true;
      }
    }
  }
  return false;
}

bool isAddrSpaceWord(const std::string &S) {
  return S == "__global" || S == "global" || S == "__local" || S == "local" ||
         S == "__constant" || S == "constant" || S == "__private" ||
         S == "private" || S == "__read_only" || S == "read_only";
}
} // namespace

bool OclParser::atTypeStart(unsigned Ahead) {
  const OclToken &T = peek(Ahead);
  if (T.K != OclToken::Kind::Ident)
    return false;
  if (isAddrSpaceWord(T.Text) || T.Text == "const" || T.Text == "struct" ||
      T.Text == "unsigned" || T.Text == "signed" ||
      T.Text == "image2d_t" || T.Text == "sampler_t")
    return true;
  ScalarKind K;
  unsigned W;
  if (scalarOrVectorName(T.Text, K, W))
    return true;
  return Typedefs.count(T.Text) != 0;
}

AddrSpace OclParser::parseAddrSpaceQualifiers(bool &Saw) {
  Saw = false;
  AddrSpace Space = AddrSpace::Private;
  while (peek().K == OclToken::Kind::Ident) {
    const std::string &S = peek().Text;
    if (S == "__global" || S == "global")
      Space = AddrSpace::Global;
    else if (S == "__local" || S == "local")
      Space = AddrSpace::Local;
    else if (S == "__constant" || S == "constant")
      Space = AddrSpace::Constant;
    else if (S == "__private" || S == "private")
      Space = AddrSpace::Private;
    else if (S == "__read_only" || S == "read_only")
      Space = AddrSpace::Image;
    else if (S == "const") {
      consume();
      continue;
    } else
      break;
    Saw = true;
    consume();
  }
  return Space;
}

const OclType *OclParser::parseTypeSpecifier(AddrSpace &Space,
                                             bool &SawSpace) {
  Space = parseAddrSpaceQualifiers(SawSpace);

  const OclType *Base = nullptr;
  if (peek().isIdent("struct")) {
    consume();
    if (peek().K != OclToken::Kind::Ident) {
      errorAt(peek().Loc, "expected struct name");
      return Types.intTy();
    }
    std::string Name = consume().Text;
    const StructType *S = Types.findStruct(Name);
    if (!S) {
      errorAt(peek().Loc, "unknown struct '" + Name + "'");
      return Types.intTy();
    }
    Base = S;
  } else if (peek().isIdent("image2d_t")) {
    consume();
    Base = Types.getImage();
  } else if (peek().isIdent("sampler_t")) {
    consume();
    Base = Types.intTy(); // samplers are opaque ints in the subset
  } else if (peek().isIdent("unsigned")) {
    consume();
    if (acceptIdent("int") || acceptIdent("long")) {
      Base = Types.uintTy();
    } else {
      Base = Types.uintTy();
    }
  } else if (peek().K == OclToken::Kind::Ident) {
    ScalarKind K;
    unsigned W;
    if (scalarOrVectorName(peek().Text, K, W)) {
      consume();
      Base = W == 1 ? static_cast<const OclType *>(Types.getScalar(K))
                    : Types.getVector(K, W);
    } else if (auto It = Typedefs.find(peek().Text); It != Typedefs.end()) {
      consume();
      Base = It->second;
    }
  }
  if (!Base) {
    errorAt(peek().Loc, "expected a type, found '" + peek().Text + "'");
    return Types.intTy();
  }

  // More const after the base type.
  while (acceptIdent("const")) {
  }

  // Pointers.
  while (acceptPunct("*")) {
    AddrSpace PtrSpace = Space;
    if (!SawSpace)
      PtrSpace = AddrSpace::Private;
    Base = Types.getPointer(Base, PtrSpace);
    while (acceptIdent("const")) {
    }
  }
  return Base;
}

const OclType *OclParser::applyDeclaratorSuffix(const OclType *Base) {
  // Array suffixes [N][M]... — sizes are integer-constant products
  // (e.g. `tile[32 * 64]`).
  std::vector<unsigned> Dims;
  while (peek().isPunct("[")) {
    consume();
    if (peek().K != OclToken::Kind::IntLit) {
      errorAt(peek().Loc, "array size must be an integer constant");
      synchronize();
      return Base;
    }
    unsigned Size = static_cast<unsigned>(consume().IntValue);
    while (acceptPunct("*")) {
      if (peek().K != OclToken::Kind::IntLit) {
        errorAt(peek().Loc, "array size must be an integer constant");
        break;
      }
      Size *= static_cast<unsigned>(consume().IntValue);
    }
    Dims.push_back(Size);
    expectPunct("]", "to close the array size");
  }
  for (auto It = Dims.rbegin(), E = Dims.rend(); It != E; ++It)
    Base = Types.getArray(Base, *It);
  return Base;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

OclProgramAST *OclParser::parseProgram() {
  Program = Ctx.make<OclProgramAST>();
  pushScope();
  while (peek().K != OclToken::Kind::Eof)
    parseTopLevel(Program);
  popScope();
  return Program;
}

void OclParser::parseTopLevel(OclProgramAST *P) {
  if (peek().isIdent("typedef") ||
      (peek().isIdent("struct") && peek(2).isPunct("{"))) {
    parseStructDef();
    return;
  }

  bool IsKernel = false;
  while (peek().K == OclToken::Kind::Ident) {
    if (peek().isIdent("__kernel") || peek().isIdent("kernel")) {
      IsKernel = true;
      consume();
      continue;
    }
    if (peek().isIdent("static") || peek().isIdent("inline")) {
      consume();
      continue;
    }
    break;
  }

  AddrSpace Space;
  bool SawSpace;
  const OclType *RetTy = parseTypeSpecifier(Space, SawSpace);
  if (peek().K != OclToken::Kind::Ident) {
    errorAt(peek().Loc, "expected a function name");
    synchronize();
    return;
  }
  SourceLocation Loc = peek().Loc;
  std::string Name = consume().Text;

  if (peek().isPunct("(")) {
    OclFunction *F = parseFunctionRest(RetTy, IsKernel, std::move(Name), Loc);
    if (F)
      P->addFunction(F);
    return;
  }
  errorAt(peek().Loc, "only struct and function definitions are supported "
                      "at top level");
  synchronize();
}

void OclParser::parseStructDef() {
  bool IsTypedef = acceptIdent("typedef");
  if (!acceptIdent("struct")) {
    errorAt(peek().Loc, "expected 'struct'");
    synchronize();
    return;
  }
  std::string Tag;
  if (peek().K == OclToken::Kind::Ident)
    Tag = consume().Text;
  expectPunct("{", "to open the struct body");
  std::vector<std::pair<std::string, const OclType *>> Fields;
  while (!peek().isPunct("}") && peek().K != OclToken::Kind::Eof) {
    AddrSpace Space;
    bool SawSpace;
    const OclType *FTy = parseTypeSpecifier(Space, SawSpace);
    if (peek().K != OclToken::Kind::Ident) {
      errorAt(peek().Loc, "expected field name");
      synchronize();
      return;
    }
    do {
      std::string FName = consume().Text;
      const OclType *Full = applyDeclaratorSuffix(FTy);
      Fields.emplace_back(std::move(FName), Full);
      if (!acceptPunct(","))
        break;
    } while (peek().K == OclToken::Kind::Ident);
    expectPunct(";", "after struct field");
  }
  expectPunct("}", "to close the struct body");
  std::string Name = Tag;
  if (IsTypedef || peek().K == OclToken::Kind::Ident) {
    if (peek().K == OclToken::Kind::Ident)
      Name = consume().Text;
  }
  expectPunct(";", "after struct definition");
  if (Name.empty()) {
    errorAt(peek().Loc, "anonymous structs are not supported");
    return;
  }
  const StructType *S = Types.makeStruct(Name, Fields);
  Typedefs[Name] = S;
}

OclFunction *OclParser::parseFunctionRest(const OclType *RetTy, bool IsKernel,
                                          std::string Name,
                                          SourceLocation Loc) {
  auto *F = Ctx.make<OclFunction>(Loc, std::move(Name), RetTy, IsKernel);
  CurrentFunction = F;
  expectPunct("(", "to open the parameter list");
  pushScope();
  unsigned Index = 0;
  if (!peek().isPunct(")")) {
    do {
      if (peek().isIdent("void") && peek(1).isPunct(")")) {
        consume();
        break;
      }
      AddrSpace Space;
      bool SawSpace;
      const OclType *PTy = parseTypeSpecifier(Space, SawSpace);
      if (peek().K != OclToken::Kind::Ident) {
        errorAt(peek().Loc, "expected parameter name");
        break;
      }
      auto *P = Ctx.make<OclVarDecl>();
      P->Loc = peek().Loc;
      P->Name = consume().Text;
      P->Ty = PTy;
      P->Space = isa<PointerType>(PTy) ? cast<PointerType>(PTy)->space()
                                       : AddrSpace::Private;
      if (isa<ImageType>(PTy))
        P->Space = AddrSpace::Image;
      P->IsParam = true;
      P->ParamIndex = Index++;
      F->addParam(P);
      declareVar(P);
    } while (acceptPunct(","));
  }
  expectPunct(")", "to close the parameter list");
  F->setBody(parseCompound());
  popScope();
  CurrentFunction = nullptr;
  return F;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

OclCompoundStmt *OclParser::parseCompound() {
  SourceLocation Loc = peek().Loc;
  expectPunct("{", "to open a block");
  pushScope();
  std::vector<OclStmt *> Stmts;
  while (!peek().isPunct("}") && peek().K != OclToken::Kind::Eof) {
    if (OclStmt *S = parseStatement())
      Stmts.push_back(S);
  }
  popScope();
  expectPunct("}", "to close the block");
  return Ctx.make<OclCompoundStmt>(Loc, std::move(Stmts));
}

OclStmt *OclParser::parseDeclStatement() {
  SourceLocation Loc = peek().Loc;
  AddrSpace Space;
  bool SawSpace;
  const OclType *Base = parseTypeSpecifier(Space, SawSpace);

  std::vector<OclStmt *> Decls;
  do {
    if (peek().K != OclToken::Kind::Ident) {
      errorAt(peek().Loc, "expected variable name");
      synchronize();
      return nullptr;
    }
    auto *D = Ctx.make<OclVarDecl>();
    D->Loc = peek().Loc;
    D->Name = consume().Text;
    D->Ty = applyDeclaratorSuffix(Base);
    // The address-space qualifier on a declaration places the storage
    // (e.g. `__local float tile[64]`); pointer variables themselves
    // always live privately — their *pointee* space is in the type.
    D->Space = SawSpace && !isa<PointerType>(D->Ty) ? Space
                                                    : AddrSpace::Private;
    OclExpr *Init = nullptr;
    if (acceptPunct("="))
      Init = parseAssignment();
    declareVar(D);
    Decls.push_back(Ctx.make<OclDeclStmt>(Loc, D, Init));
  } while (acceptPunct(","));
  expectPunct(";", "after declaration");

  if (Decls.size() == 1)
    return Decls[0];
  return Ctx.make<OclCompoundStmt>(Loc, std::move(Decls));
}

OclStmt *OclParser::parseStatement() {
  SourceLocation Loc = peek().Loc;

  if (peek().isPunct("{"))
    return parseCompound();
  if (acceptPunct(";"))
    return Ctx.make<OclCompoundStmt>(Loc, std::vector<OclStmt *>{});

  if (peek().isIdent("if")) {
    consume();
    expectPunct("(", "after 'if'");
    OclExpr *Cond = parseExpr();
    expectPunct(")", "after if condition");
    OclStmt *Then = parseStatement();
    OclStmt *Else = nullptr;
    if (acceptIdent("else"))
      Else = parseStatement();
    return Ctx.make<OclIfStmt>(Loc, Cond, Then, Else);
  }

  if (peek().isIdent("for")) {
    consume();
    expectPunct("(", "after 'for'");
    pushScope();
    OclStmt *Init = nullptr;
    if (!acceptPunct(";")) {
      if (atTypeStart()) {
        Init = parseDeclStatement();
      } else {
        OclExpr *E = parseExpr();
        expectPunct(";", "after for-init");
        Init = Ctx.make<OclExprStmt>(Loc, E);
      }
    }
    OclExpr *Cond = nullptr;
    if (!peek().isPunct(";"))
      Cond = parseExpr();
    expectPunct(";", "after for-condition");
    OclExpr *Step = nullptr;
    if (!peek().isPunct(")"))
      Step = parseExpr();
    expectPunct(")", "after for-step");
    OclStmt *Body = parseStatement();
    popScope();
    return Ctx.make<OclForStmt>(Loc, Init, Cond, Step, Body);
  }

  if (peek().isIdent("while")) {
    consume();
    expectPunct("(", "after 'while'");
    OclExpr *Cond = parseExpr();
    expectPunct(")", "after while condition");
    OclStmt *Body = parseStatement();
    return Ctx.make<OclWhileStmt>(Loc, Cond, Body);
  }

  if (peek().isIdent("return")) {
    consume();
    OclExpr *V = nullptr;
    if (!peek().isPunct(";"))
      V = parseExpr();
    expectPunct(";", "after return");
    return Ctx.make<OclReturnStmt>(Loc, V);
  }

  if (peek().isIdent("break") || peek().isIdent("continue")) {
    errorAt(Loc, "'break'/'continue' are outside the supported subset "
                 "(structured SIMT control flow only)");
    consume();
    acceptPunct(";");
    return nullptr;
  }

  if (atTypeStart())
    return parseDeclStatement();

  OclExpr *E = parseExpr();
  expectPunct(";", "after expression statement");
  return Ctx.make<OclExprStmt>(Loc, E);
}

//===----------------------------------------------------------------------===//
// Typing helpers
//===----------------------------------------------------------------------===//

static int scalarRank(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return 0;
  case ScalarKind::Char:
  case ScalarKind::UChar:
    return 1;
  case ScalarKind::Int:
  case ScalarKind::UInt:
    return 2;
  case ScalarKind::Long:
  case ScalarKind::ULong:
    return 3;
  case ScalarKind::Float:
    return 4;
  case ScalarKind::Double:
    return 5;
  case ScalarKind::Void:
    return -1;
  }
  return -1;
}

const OclType *OclParser::usualArith(SourceLocation Loc, const OclType *L,
                                     const OclType *R) {
  // Pointer arithmetic: ptr +/- integer keeps the pointer type.
  if (isa<PointerType>(L))
    return L;
  if (isa<PointerType>(R))
    return R;

  const auto *VL = dyn_cast<VectorType>(L);
  const auto *VR = dyn_cast<VectorType>(R);
  if (VL && VR) {
    if (VL->lanes() != VR->lanes())
      errorAt(Loc, "vector width mismatch: " + L->str() + " vs " + R->str());
    return scalarRank(VL->element()) >= scalarRank(VR->element()) ? L : R;
  }
  if (VL)
    return L; // vector op scalar broadcasts
  if (VR)
    return R;

  const auto *SL = dyn_cast<ScalarType>(L);
  const auto *SR = dyn_cast<ScalarType>(R);
  if (!SL || !SR) {
    errorAt(Loc, "invalid operands: " + L->str() + " and " + R->str());
    return Types.intTy();
  }
  int RankL = scalarRank(SL->scalar());
  int RankR = scalarRank(SR->scalar());
  // Sub-int types promote to int, C style.
  if (RankL < 2 && RankR < 2)
    return Types.intTy();
  return RankL >= RankR ? L : R;
}

const OclType *OclParser::indexResult(SourceLocation Loc, OclExpr *Base) {
  const OclType *T = Base->type();
  if (const auto *PT = dyn_cast<PointerType>(T))
    return PT->pointee();
  if (const auto *AT = dyn_cast<OclArrayType>(T))
    return AT->element();
  errorAt(Loc, "subscript on non-pointer type " + T->str());
  return Types.intTy();
}

void OclParser::requireLValue(OclExpr *E) {
  if (isa<OclVarRef, OclIndex, OclMember>(E))
    return;
  errorAt(E->loc(), "expression is not assignable");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

OclExpr *OclParser::parseExpr() { return parseAssignment(); }

OclExpr *OclParser::parseAssignment() {
  OclExpr *LHS = parseConditional();
  static const std::map<std::string, OclBinOp> Compound = {
      {"+=", OclBinOp::Add},  {"-=", OclBinOp::Sub}, {"*=", OclBinOp::Mul},
      {"/=", OclBinOp::Div},  {"%=", OclBinOp::Rem}, {"&=", OclBinOp::And},
      {"|=", OclBinOp::Or},   {"^=", OclBinOp::Xor}, {">>=", OclBinOp::Shr},
      {"<<=", OclBinOp::Shl}};
  if (peek().isPunct("=")) {
    SourceLocation Loc = consume().Loc;
    requireLValue(LHS);
    OclExpr *RHS = parseAssignment();
    auto *A = Ctx.make<OclAssign>(Loc, LHS, RHS, false, OclBinOp::Add);
    A->setType(LHS->type());
    return A;
  }
  if (peek().K == OclToken::Kind::Punct) {
    auto It = Compound.find(peek().Text);
    if (It != Compound.end()) {
      SourceLocation Loc = consume().Loc;
      requireLValue(LHS);
      OclExpr *RHS = parseAssignment();
      auto *A = Ctx.make<OclAssign>(Loc, LHS, RHS, true, It->second);
      A->setType(LHS->type());
      return A;
    }
  }
  return LHS;
}

OclExpr *OclParser::parseConditional() {
  OclExpr *Cond = parseBinary(0);
  if (!acceptPunct("?"))
    return Cond;
  SourceLocation Loc = peek().Loc;
  OclExpr *Then = parseAssignment();
  expectPunct(":", "in conditional expression");
  OclExpr *Else = parseConditional();
  auto *C = Ctx.make<OclConditional>(Loc, Cond, Then, Else);
  C->setType(usualArith(Loc, Then->type(), Else->type()));
  return C;
}

namespace {
struct COpInfo {
  OclBinOp Op;
  int Prec;
  bool Compare;
  bool Logical;
};
} // namespace

static bool cBinaryOp(const std::string &S, COpInfo &Info) {
  static const std::map<std::string, COpInfo> Table = {
      {"||", {OclBinOp::LOr, 1, false, true}},
      {"&&", {OclBinOp::LAnd, 2, false, true}},
      {"|", {OclBinOp::Or, 3, false, false}},
      {"^", {OclBinOp::Xor, 4, false, false}},
      {"&", {OclBinOp::And, 5, false, false}},
      {"==", {OclBinOp::Eq, 6, true, false}},
      {"!=", {OclBinOp::Ne, 6, true, false}},
      {"<", {OclBinOp::Lt, 7, true, false}},
      {"<=", {OclBinOp::Le, 7, true, false}},
      {">", {OclBinOp::Gt, 7, true, false}},
      {">=", {OclBinOp::Ge, 7, true, false}},
      {"<<", {OclBinOp::Shl, 8, false, false}},
      {">>", {OclBinOp::Shr, 8, false, false}},
      {"+", {OclBinOp::Add, 9, false, false}},
      {"-", {OclBinOp::Sub, 9, false, false}},
      {"*", {OclBinOp::Mul, 10, false, false}},
      {"/", {OclBinOp::Div, 10, false, false}},
      {"%", {OclBinOp::Rem, 10, false, false}}};
  auto It = Table.find(S);
  if (It == Table.end())
    return false;
  Info = It->second;
  return true;
}

OclExpr *OclParser::parseBinary(int MinPrec) {
  OclExpr *LHS = parseUnary();
  while (true) {
    if (peek().K != OclToken::Kind::Punct)
      return LHS;
    COpInfo Info;
    if (!cBinaryOp(peek().Text, Info) || Info.Prec < MinPrec)
      return LHS;
    SourceLocation Loc = consume().Loc;
    OclExpr *RHS = parseBinary(Info.Prec + 1);
    auto *B = Ctx.make<OclBinary>(Loc, Info.Op, LHS, RHS);
    if (Info.Compare || Info.Logical)
      B->setType(Types.intTy());
    else
      B->setType(usualArith(Loc, LHS->type(), RHS->type()));
    LHS = B;
  }
}

OclExpr *OclParser::parseUnary() {
  SourceLocation Loc = peek().Loc;

  if (acceptPunct("-")) {
    OclExpr *Sub = parseUnary();
    auto *U = Ctx.make<OclUnary>(Loc, OclUnaryOp::Neg, Sub);
    U->setType(Sub->type());
    return U;
  }
  if (acceptPunct("+"))
    return parseUnary();
  if (acceptPunct("!")) {
    OclExpr *Sub = parseUnary();
    auto *U = Ctx.make<OclUnary>(Loc, OclUnaryOp::Not, Sub);
    U->setType(Types.intTy());
    return U;
  }
  if (acceptPunct("~")) {
    OclExpr *Sub = parseUnary();
    auto *U = Ctx.make<OclUnary>(Loc, OclUnaryOp::BitNot, Sub);
    U->setType(Sub->type());
    return U;
  }
  if (peek().isPunct("++") || peek().isPunct("--")) {
    bool IsInc = consume().Text == "++";
    OclExpr *Sub = parseUnary();
    requireLValue(Sub);
    auto *U = Ctx.make<OclUnary>(Loc, IsInc ? OclUnaryOp::PreInc
                                            : OclUnaryOp::PreDec,
                                 Sub);
    U->setType(Sub->type());
    return U;
  }

  // Casts and vector literals: '(' type ')' ...
  if (peek().isPunct("(") && atTypeStart(1)) {
    consume();
    AddrSpace Space;
    bool SawSpace;
    const OclType *To = parseTypeSpecifier(Space, SawSpace);
    expectPunct(")", "to close the cast");
    if (const auto *VT = dyn_cast<VectorType>(To)) {
      if (peek().isPunct("(")) {
        consume();
        std::vector<OclExpr *> Elems;
        if (!peek().isPunct(")")) {
          do
            Elems.push_back(parseAssignment());
          while (acceptPunct(","));
        }
        expectPunct(")", "to close the vector literal");
        if (Elems.size() != VT->lanes() && Elems.size() != 1)
          errorAt(Loc, formatString("vector literal needs %u or 1 elements, "
                                    "got %zu",
                                    VT->lanes(), Elems.size()));
        return Ctx.make<OclVectorLit>(Loc, VT, std::move(Elems));
      }
    }
    OclExpr *Sub = parseUnary();
    return Ctx.make<OclCast>(Loc, To, Sub);
  }

  return parsePostfix();
}

OclExpr *OclParser::parsePostfix() {
  OclExpr *E = parsePrimary();
  while (true) {
    SourceLocation Loc = peek().Loc;
    if (peek().isPunct("[")) {
      consume();
      OclExpr *Idx = parseExpr();
      expectPunct("]", "to close the subscript");
      auto *I = Ctx.make<OclIndex>(Loc, E, Idx);
      I->setType(indexResult(Loc, E));
      E = I;
      continue;
    }
    if (peek().isPunct(".")) {
      consume();
      if (peek().K != OclToken::Kind::Ident) {
        errorAt(peek().Loc, "expected member name");
        return E;
      }
      std::string Name = consume().Text;
      if (const auto *VT = dyn_cast<VectorType>(E->type())) {
        int Lane = -1;
        if (Name == "x")
          Lane = 0;
        else if (Name == "y")
          Lane = 1;
        else if (Name == "z")
          Lane = 2;
        else if (Name == "w")
          Lane = 3;
        else if (Name.size() >= 2 && Name[0] == 's') {
          char C = Name[1];
          if (C >= '0' && C <= '9')
            Lane = C - '0';
          else if (C >= 'a' && C <= 'f')
            Lane = C - 'a' + 10;
        }
        if (Lane < 0 || Lane >= static_cast<int>(VT->lanes())) {
          errorAt(Loc, "bad vector component '." + Name + "' on " +
                           E->type()->str());
          Lane = 0;
        }
        auto *M = Ctx.make<OclMember>(Loc, E, Name, Lane, nullptr);
        M->setType(Types.getScalar(VT->element()));
        E = M;
        continue;
      }
      if (const auto *ST = dyn_cast<StructType>(E->type())) {
        const StructType::Field *F = ST->findField(Name);
        if (!F) {
          errorAt(Loc, "no field '" + Name + "' in " + ST->str());
          return E;
        }
        auto *M = Ctx.make<OclMember>(Loc, E, Name, -1, F);
        M->setType(F->Ty);
        E = M;
        continue;
      }
      errorAt(Loc, "member access on non-aggregate type " +
                       E->type()->str());
      return E;
    }
    if (peek().isPunct("++") || peek().isPunct("--")) {
      bool IsInc = consume().Text == "++";
      requireLValue(E);
      auto *U = Ctx.make<OclUnary>(Loc,
                                   IsInc ? OclUnaryOp::PostInc
                                         : OclUnaryOp::PostDec,
                                   E);
      U->setType(E->type());
      E = U;
      continue;
    }
    return E;
  }
}

OclExpr *OclParser::parseCallRest(std::string Name, SourceLocation Loc) {
  std::vector<OclExpr *> Args;
  expectPunct("(", "to open the argument list");
  if (!peek().isPunct(")")) {
    do
      Args.push_back(parseAssignment());
    while (acceptPunct(","));
  }
  expectPunct(")", "to close the argument list");

  OclBuiltin B = lookupOclBuiltin(Name);
  OclFunction *Fn = nullptr;
  const OclType *Ty = Types.intTy();
  if (B != OclBuiltin::None) {
    switch (B) {
    case OclBuiltin::GetGlobalId:
    case OclBuiltin::GetLocalId:
    case OclBuiltin::GetGroupId:
    case OclBuiltin::GetGlobalSize:
    case OclBuiltin::GetLocalSize:
    case OclBuiltin::GetNumGroups:
      Ty = Types.intTy();
      if (Args.size() != 1)
        errorAt(Loc, Name + " takes one dimension argument");
      break;
    case OclBuiltin::Barrier:
      Ty = Types.voidTy();
      break;
    case OclBuiltin::ReadImageF:
      Ty = Types.getVector(ScalarKind::Float, 4);
      if (Args.size() != 3)
        errorAt(Loc, "read_imagef(image, sampler, coord) takes 3 arguments");
      break;
    case OclBuiltin::VLoad2:
    case OclBuiltin::VLoad4: {
      unsigned W = B == OclBuiltin::VLoad2 ? 2 : 4;
      ScalarKind EK = ScalarKind::Float;
      if (Args.size() == 2) {
        if (const auto *PT = dyn_cast<PointerType>(Args[1]->type()))
          if (const auto *ST = dyn_cast<ScalarType>(PT->pointee()))
            EK = ST->scalar();
      } else {
        errorAt(Loc, "vloadN(offset, ptr) takes 2 arguments");
      }
      Ty = Types.getVector(EK, W);
      break;
    }
    case OclBuiltin::VStore2:
    case OclBuiltin::VStore4:
      Ty = Types.voidTy();
      if (Args.size() != 3)
        errorAt(Loc, "vstoreN(vec, offset, ptr) takes 3 arguments");
      break;
    default: {
      // Math builtins: result follows the (promoted) first argument;
      // integer args promote to float.
      if (Args.empty()) {
        errorAt(Loc, Name + " needs arguments");
        break;
      }
      const OclType *A = Args[0]->type();
      if (B == OclBuiltin::Min || B == OclBuiltin::Max ||
          B == OclBuiltin::Abs) {
        Ty = A;
        break;
      }
      if (const auto *SA = dyn_cast<ScalarType>(A))
        Ty = SA->isFloating() ? A
                              : static_cast<const OclType *>(Types.floatTy());
      else
        Ty = A; // vector math is elementwise
      break;
    }
    }
  } else if ((Fn = Program->findFunction(Name))) {
    Ty = Fn->returnType();
    if (Args.size() != Fn->params().size())
      errorAt(Loc, formatString("'%s' expects %zu arguments, got %zu",
                                Name.c_str(), Fn->params().size(),
                                Args.size()));
  } else {
    errorAt(Loc, "call to unknown function '" + Name + "'");
  }

  auto *C = Ctx.make<OclCall>(Loc, std::move(Name), B, Fn, std::move(Args));
  C->setType(Ty);
  return C;
}

OclExpr *OclParser::parsePrimary() {
  SourceLocation Loc = peek().Loc;

  switch (peek().K) {
  case OclToken::Kind::IntLit: {
    OclToken T = consume();
    auto *L = Ctx.make<OclIntLit>(Loc, T.IntValue);
    L->setType(Types.intTy());
    return L;
  }
  case OclToken::Kind::FloatLit: {
    OclToken T = consume();
    auto *L = Ctx.make<OclFloatLit>(Loc, T.FloatValue, T.FloatIsSingle);
    L->setType(T.FloatIsSingle
                   ? static_cast<const OclType *>(Types.floatTy())
                   : Types.doubleTy());
    return L;
  }
  case OclToken::Kind::Ident: {
    // OpenCL named constants (sampler flags, fence flags).
    const std::string &S = peek().Text;
    if (startsWith(S, "CLK_")) {
      consume();
      long long V = 0;
      if (S == "CLK_LOCAL_MEM_FENCE")
        V = 1;
      else if (S == "CLK_GLOBAL_MEM_FENCE")
        V = 2;
      auto *L = Ctx.make<OclIntLit>(Loc, V);
      L->setType(Types.intTy());
      return L;
    }
    std::string Name = consume().Text;
    if (peek().isPunct("("))
      return parseCallRest(std::move(Name), Loc);
    if (OclVarDecl *D = lookupVar(Name)) {
      auto *R = Ctx.make<OclVarRef>(Loc, D);
      R->setType(D->Ty);
      return R;
    }
    errorAt(Loc, "use of undeclared identifier '" + Name + "'");
    auto *L = Ctx.make<OclIntLit>(Loc, 0);
    L->setType(Types.intTy());
    return L;
  }
  case OclToken::Kind::Punct:
    if (acceptPunct("(")) {
      OclExpr *E = parseExpr();
      expectPunct(")", "to close the parenthesized expression");
      return E;
    }
    break;
  case OclToken::Kind::Eof:
    break;
  }
  errorAt(Loc, "expected an expression, found '" + peek().Text + "'");
  consume();
  auto *L = Ctx.make<OclIntLit>(Loc, 0);
  L->setType(Types.intTy());
  return L;
}
