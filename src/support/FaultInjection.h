//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded fault injection for the simulated OpenCL
/// stack. The offload service's fault-tolerance machinery (retry,
/// cross-device requeue, circuit breaker, interpreter fallback) is
/// only testable if every failure mode a real heterogeneous runtime
/// sees can be provoked on demand:
///
///  - LaunchFail   a kernel dispatch fails (SimDevice::run);
///  - Hang         a launch stalls past its deadline (ClContext
///                 sleeps before dispatching);
///  - CompileFail  the per-device program build fails
///                 (ClContext::buildProgram);
///  - CorruptWire  a wire buffer arrives truncated
///                 (WireFormat deserialization);
///  - QueueFull    admission control reports the target worker queue
///                 as saturated (OffloadService::submit) so overload
///                 shedding is testable without racing real queues.
///
/// Faults are keyed by *domain*: a device model name ("gtx580"), a
/// per-worker tag the service installs ("w0:gtx580" — the colon
/// splits labels, so a plan keyed "gtx580" matches every worker of
/// that model while "w0:gtx580" pins one worker), or "*" for
/// everything. Each plan is either a probability (deterministic
/// SplitMix64 stream derived from the global seed and the plan key),
/// a one-shot trigger (fire on the Nth matching opportunity, once),
/// or permanent. All state lives behind one mutex; the `enabled()`
/// fast path is a relaxed atomic so production runs pay one load.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_FAULTINJECTION_H
#define LIMECC_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace lime::support {

enum class FaultKind : uint8_t {
  LaunchFail,
  Hang,
  CompileFail,
  CorruptWire,
  QueueFull,
};

const char *faultKindName(FaultKind K);

class FaultInjector {
public:
  /// The process-wide injector the hooks consult.
  static FaultInjector &instance();

  /// Removes every plan and counter and re-arms the seed; tests call
  /// this first so runs are independent.
  void reset(uint64_t Seed = 0x5EED);

  /// Fires each matching opportunity with probability \p Rate
  /// (deterministic per-plan stream). Rate 0 removes the plan.
  void setRate(const std::string &Domain, FaultKind K, double Rate);

  /// Fires exactly once, on the \p Nth matching opportunity from now
  /// (0 = the next one).
  void armOneShot(const std::string &Domain, FaultKind K, uint64_t Nth = 0);

  /// Fires on every matching opportunity until cleared.
  void setPermanent(const std::string &Domain, FaultKind K, bool On);

  /// Wall-clock stall for an injected Hang (the hook sleeps this
  /// long before dispatching).
  void setHangMillis(unsigned Ms);
  unsigned hangMillis() const;

  /// Consults every plan matching \p Domain for \p K, advancing
  /// their counters; true when any fires. Domains are ':'-separated
  /// label lists; a plan keyed by any label, the full domain, or "*"
  /// matches.
  bool shouldFire(const std::string &Domain, FaultKind K);

  /// Total faults fired for \p K across all domains (test
  /// assertions).
  uint64_t firedCount(FaultKind K) const;

  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

private:
  FaultInjector() = default;

  struct Plan {
    double Rate = 0.0;
    bool Permanent = false;
    bool OneShotArmed = false;
    uint64_t OneShotAt = 0;  // opportunity index that fires
    uint64_t Opportunities = 0;
    uint64_t Fired = 0;
    uint64_t RngState = 0; // private SplitMix64 stream
  };

  Plan &planFor(const std::string &Domain, FaultKind K);
  void rearm();

  mutable std::mutex Mu;
  std::atomic<bool> Armed{false};
  uint64_t Seed = 0x5EED;
  unsigned HangMs = 20;
  std::map<std::pair<std::string, uint8_t>, Plan> Plans;
  uint64_t FiredByKind[5] = {0, 0, 0, 0, 0};
};

} // namespace lime::support

#endif // LIMECC_SUPPORT_FAULTINJECTION_H
