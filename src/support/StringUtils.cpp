//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace lime;

std::vector<std::string> lime::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view lime::trimString(std::string_view Text) {
  const char *WS = " \t\r\n";
  size_t Begin = Text.find_first_not_of(WS);
  if (Begin == std::string_view::npos)
    return {};
  size_t End = Text.find_last_not_of(WS);
  return Text.substr(Begin, End - Begin + 1);
}

bool lime::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string lime::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Out;
}

std::string lime::joinStrings(const std::vector<std::string> &Pieces,
                              std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Pieces[I];
  }
  return Out;
}

std::string lime::formatByteSize(unsigned long long Bytes) {
  if (Bytes >= 1024ULL * 1024 && Bytes % (1024ULL * 1024) < 64 * 1024)
    return formatString("%lluMB", Bytes / (1024ULL * 1024));
  if (Bytes >= 1024)
    return formatString("%lluKB", Bytes / 1024);
  return formatString("%llu B", Bytes);
}
