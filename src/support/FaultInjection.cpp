//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Random.h"

using namespace lime;
using namespace lime::support;

const char *lime::support::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::LaunchFail:
    return "launch-fail";
  case FaultKind::Hang:
    return "hang";
  case FaultKind::CompileFail:
    return "compile-fail";
  case FaultKind::CorruptWire:
    return "corrupt-wire";
  case FaultKind::QueueFull:
    return "queue-full";
  }
  return "?";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

void FaultInjector::reset(uint64_t NewSeed) {
  std::lock_guard<std::mutex> Lock(Mu);
  Plans.clear();
  Seed = NewSeed;
  HangMs = 20;
  for (uint64_t &N : FiredByKind)
    N = 0;
  Armed.store(false, std::memory_order_relaxed);
}

FaultInjector::Plan &FaultInjector::planFor(const std::string &Domain,
                                            FaultKind K) {
  auto Key = std::make_pair(Domain, static_cast<uint8_t>(K));
  auto It = Plans.find(Key);
  if (It != Plans.end())
    return It->second;
  Plan P;
  // Per-plan deterministic stream: the same seed and plan key always
  // produce the same fire pattern, independent of other plans.
  uint64_t H = Seed ^ 0xcbf29ce484222325ULL;
  for (char C : Domain)
    H = (H ^ static_cast<uint8_t>(C)) * 0x100000001b3ULL;
  P.RngState = H ^ (static_cast<uint64_t>(K) << 32);
  return Plans.emplace(std::move(Key), P).first->second;
}

void FaultInjector::rearm() {
  Armed.store(!Plans.empty(), std::memory_order_relaxed);
}

void FaultInjector::setRate(const std::string &Domain, FaultKind K,
                            double Rate) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Rate <= 0.0) {
    Plan &P = planFor(Domain, K);
    P.Rate = 0.0;
    if (!P.Permanent && !P.OneShotArmed)
      Plans.erase(std::make_pair(Domain, static_cast<uint8_t>(K)));
  } else {
    planFor(Domain, K).Rate = Rate < 1.0 ? Rate : 1.0;
  }
  rearm();
}

void FaultInjector::armOneShot(const std::string &Domain, FaultKind K,
                               uint64_t Nth) {
  std::lock_guard<std::mutex> Lock(Mu);
  Plan &P = planFor(Domain, K);
  P.OneShotArmed = true;
  P.OneShotAt = P.Opportunities + Nth;
  rearm();
}

void FaultInjector::setPermanent(const std::string &Domain, FaultKind K,
                                 bool On) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (On) {
    planFor(Domain, K).Permanent = true;
  } else {
    Plan &P = planFor(Domain, K);
    P.Permanent = false;
    if (P.Rate == 0.0 && !P.OneShotArmed)
      Plans.erase(std::make_pair(Domain, static_cast<uint8_t>(K)));
  }
  rearm();
}

void FaultInjector::setHangMillis(unsigned Ms) {
  std::lock_guard<std::mutex> Lock(Mu);
  HangMs = Ms;
}

unsigned FaultInjector::hangMillis() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return HangMs;
}

bool FaultInjector::shouldFire(const std::string &Domain, FaultKind K) {
  if (!enabled())
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  bool Fire = false;
  auto Consult = [&](const std::string &Key) {
    auto It = Plans.find(std::make_pair(Key, static_cast<uint8_t>(K)));
    if (It == Plans.end())
      return;
    Plan &P = It->second;
    uint64_t Index = P.Opportunities++;
    bool ThisFires = P.Permanent;
    if (P.OneShotArmed && Index >= P.OneShotAt) {
      ThisFires = true;
      P.OneShotArmed = false;
    }
    if (!ThisFires && P.Rate > 0.0) {
      SplitMix64 Rng(P.RngState);
      double U = Rng.nextDouble();
      P.RngState = Rng.next(); // advance the stream
      ThisFires = U < P.Rate;
    }
    if (ThisFires) {
      ++P.Fired;
      Fire = true;
    }
  };

  // The full domain, each ':'-separated label, and the wildcard all
  // get their opportunity counted, so one-shots pinned to any of
  // them stay deterministic.
  Consult(Domain);
  size_t Start = 0;
  bool HasLabels = Domain.find(':') != std::string::npos;
  while (HasLabels && Start <= Domain.size()) {
    size_t Colon = Domain.find(':', Start);
    std::string Label = Domain.substr(
        Start, Colon == std::string::npos ? std::string::npos : Colon - Start);
    if (!Label.empty() && Label != Domain)
      Consult(Label);
    if (Colon == std::string::npos)
      break;
    Start = Colon + 1;
  }
  Consult("*");

  if (Fire)
    ++FiredByKind[static_cast<size_t>(K)];
  return Fire;
}

uint64_t FaultInjector::firedCount(FaultKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return FiredByKind[static_cast<size_t>(K)];
}
