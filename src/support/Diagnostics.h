//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the frontends and compiler passes. limecc
/// builds without exceptions: fallible phases report through a
/// DiagnosticEngine and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_DIAGNOSTICS_H
#define LIMECC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace lime {

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem: severity, location and message text.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "file-less" one-line text, e.g. "3:7: error: bad type".
  std::string str() const;
};

/// Accumulates diagnostics for one compilation. Cheap to pass by
/// reference through every phase; never throws.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines (for test assertions and CLI
  /// error output).
  std::string dump() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace lime

#endif // LIMECC_SUPPORT_DIAGNOSTICS_H
