//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Casting.h"

#include <cstdio>
#include <cstdlib>

using namespace lime;

void lime::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "FATAL: unreachable executed at %s:%u: %s\n", File,
               Line, Msg);
  std::abort();
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  lime_unreachable("bad severity");
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + severityName(Severity) + ": " + Message;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::dump() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
