//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI: isa<>, cast<> and dyn_cast<> built on a
/// static classof() predicate provided by each class hierarchy. limecc
/// compiles without C++ RTTI, so every polymorphic hierarchy (Lime AST,
/// OpenCL AST, Kernel IR) uses these templates for type dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_CASTING_H
#define LIMECC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace lime {

/// Returns true if \p Val dynamically is an instance of To (or a
/// subclass). \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is any of the listed classes.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variants.
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return isa_and_present<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Marks a point in code that must never be reached; aborts with a
/// message in all build modes.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace lime

#define lime_unreachable(MSG)                                                  \
  ::lime::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // LIMECC_SUPPORT_CASTING_H
