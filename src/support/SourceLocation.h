//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates shared by the Lime and OpenCL-C
/// frontends. A SourceLocation is a (line, column) pair; line 0 denotes
/// an invalid/synthesized location.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_SOURCELOCATION_H
#define LIMECC_SUPPORT_SOURCELOCATION_H

#include <string>

namespace lime {

/// A position within a source buffer (1-based line and column).
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  SourceLocation() = default;
  SourceLocation(unsigned Line, unsigned Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLocation &RHS) const {
    return Line == RHS.Line && Column == RHS.Column;
  }

  /// Renders as "line:col", or "<unknown>" when invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace lime

#endif // LIMECC_SUPPORT_SOURCELOCATION_H
