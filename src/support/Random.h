//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic SplitMix64 PRNG used by the workload generators so
/// that every run of the benchmarks and tests sees identical inputs
/// (the paper's inputs are fixed files; ours are fixed streams).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_RANDOM_H
#define LIMECC_SUPPORT_RANDOM_H

#include <cstdint>

namespace lime {

/// SplitMix64: tiny, fast, and statistically solid for workload
/// synthesis. Not for cryptographic use.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [Lo, Hi).
  float nextFloat(float Lo, float Hi) {
    return Lo + static_cast<float>(nextDouble()) * (Hi - Lo);
  }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

private:
  uint64_t State;
};

} // namespace lime

#endif // LIMECC_SUPPORT_RANDOM_H
