//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared across the project (the project has no
/// LLVM dependency, so these stand in for the few ADT conveniences the
/// code bases typically lean on).
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_SUPPORT_STRINGUTILS_H
#define LIMECC_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace lime {

/// Splits \p Text on \p Sep; empty pieces are kept.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// True when \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Pieces with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Sep);

/// Renders a byte count the way the paper's Table 3 does ("64KB",
/// "13MB", "432KB"); exact below 1KB ("62 B").
std::string formatByteSize(unsigned long long Bytes);

} // namespace lime

#endif // LIMECC_SUPPORT_STRINGUTILS_H
