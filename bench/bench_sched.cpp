//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-aware scheduler benchmark (DESIGN.md §13). Two gated phases
/// plus a TSAN stress mode, all verified bit-identical against the
/// direct rt::OffloadedFilter path. Speedups are measured in
/// simulated device time — the same currency as the paper-figure
/// regenerators — as the makespan (max per-worker busy time) each
/// configuration needs for an identical request stream; wall-clock
/// throughput is reported alongside but not gated, since host
/// parallelism depends on the build machine's core count.
///
///   placement - a mixed stream of per-client buffers against a
///               2-device pool, run once under LeastLoaded and once
///               under CostModel. The cost model keeps each client's
///               buffers where they are resident and skips their
///               re-transfer; least-loaded bounces them between
///               workers and pays the wire cost every time. The
///               gather-shaped kernel (bound data array + index
///               source) is deliberately not batch-mergeable, so
///               every request's residency is visible. Gate:
///               cost-model makespan 1.2x better than least-loaded.
///   shard     - a map over a large array on a 4-worker pool under
///               SchedulerPolicy::Shard, against the same stream on
///               each 1-worker pool. Gate: 4-way sharding 1.3x
///               better than the best single device.
///
/// `--steal-burst` replaces the gates with a short work-stealing
/// stress burst (several submitter threads, stealing enabled, results
/// still checked) — the CI TSAN job runs it to race the steal hook
/// against the worker loops. Results land in BENCH_sched.json;
/// `--no-gate` reports without failing the exit status.
///
//===----------------------------------------------------------------------===//

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "runtime/Offload.h"
#include "service/OffloadService.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace lime;
using namespace lime::service;

namespace {

/// `gather` reads a bound data array through an index source — the
/// extra input array keeps it out of the pool's batch-merge path (a
/// merged launch concatenates sources into a fresh array, which would
/// hide residency), and both arrays are immutable so a worker that
/// has seen them before re-transfers nothing. `crunch` is a plain
/// compute-heavy map — the shard phase's split currency.
const char *BenchSource = R"(
  class S {
    static local float pick(int i, float[[]] data) {
      return 1.0009765625f * data[i];
    }
    static local float[[]] gather(int[[]] idx, float[[]] data) {
      return pick(data) @ idx;
    }

    static local float crunch1(float x) {
      float y = x;
      y = y * 1.01f + 0.01f; y = y * 1.02f + 0.02f;
      y = y * 1.03f + 0.03f; y = y * 1.04f + 0.04f;
      y = y * 1.05f + 0.05f; y = y * 1.06f + 0.06f;
      y = y * 1.07f + 0.07f; y = y * 1.08f + 0.08f;
      y = y * 1.01f + 0.01f; y = y * 1.02f + 0.02f;
      y = y * 1.03f + 0.03f; y = y * 1.04f + 0.04f;
      y = y * 1.05f + 0.05f; y = y * 1.06f + 0.06f;
      y = y * 1.07f + 0.07f; y = y * 1.08f + 0.08f;
      return y;
    }
    static local float[[]] crunch(float[[]] xs) { return crunch1 @ xs; }
  }
)";

RtValue makeFloatArray(TypeContext &Types, size_t N, float Seed) {
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = Types.floatType();
  Arr->Immutable = true;
  for (size_t I = 0; I != N; ++I)
    Arr->Elems.push_back(
        RtValue::makeFloat(Seed + 0.125f * static_cast<float>(I % 97)));
  return RtValue::makeArray(std::move(Arr));
}

RtValue makeIndexArray(TypeContext &Types, size_t N) {
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = Types.intType();
  Arr->Immutable = true;
  for (size_t I = 0; I != N; ++I)
    Arr->Elems.push_back(RtValue::makeInt(static_cast<int32_t>(I)));
  return RtValue::makeArray(std::move(Arr));
}

struct Setup {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Program *Prog = nullptr;
  MethodDecl *Gather = nullptr;
  MethodDecl *Crunch = nullptr;

  bool build() {
    Parser Parse(BenchSource, Ctx, Diags);
    Prog = Parse.parseProgram();
    if (!Diags.hasErrors()) {
      Sema S(Ctx, Diags);
      S.check(Prog);
    }
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "bench_sched: benchmark program failed to "
                           "compile:\n%s",
                   Diags.dump().c_str());
      return false;
    }
    ClassDecl *C = Prog->findClass("S");
    Gather = C->findMethod("gather");
    Crunch = C->findMethod("crunch");
    return Gather && Crunch;
  }
  TypeContext &types() { return Ctx.types(); }
};

/// Ground truth for bit-identity checks: the single-filter direct
/// path the service is supposed to be indistinguishable from.
ExecResult directResult(Setup &B, MethodDecl *W, std::vector<RtValue> Args) {
  rt::OffloadedFilter Direct(B.Prog, B.types(), W, rt::OffloadConfig());
  if (!Direct.ok()) {
    std::fprintf(stderr, "bench_sched: direct filter failed: %s\n",
                 Direct.error().c_str());
    std::exit(1);
  }
  return Direct.invoke(std::move(Args));
}

/// Max per-worker simulated busy time — the stream's completion time
/// on the simulated devices, assuming the workers run concurrently.
double simMakespan(const OffloadServiceStats &After,
                   const OffloadServiceStats &Before) {
  double Max = 0.0;
  for (const DeviceStatsSnapshot &W : After.Devices) {
    double Prior = 0.0;
    for (const DeviceStatsSnapshot &P : Before.Devices)
      if (P.Id == W.Id)
        Prior = P.SimBusyNs;
    Max = std::max(Max, W.SimBusyNs - Prior);
  }
  return Max;
}

struct StreamResult {
  double Seconds = 0.0;
  double MakespanNs = 0.0;
  uint64_t Requests = 0;
  uint64_t Mismatches = 0;
  uint64_t Failed = 0;
  uint64_t ResidentHits = 0;
  double throughput() const { return Requests / Seconds; }
};

/// Runs the placement phase's mixed stream: \p Clients submitter
/// threads, each cycling over its own private data buffers through
/// the shared index array, pipelined 8 deep. Every response is
/// compared against the precomputed direct result for its buffer.
StreamResult runStream(OffloadService &Svc, Setup &B, const RtValue &Idx,
                       const std::vector<std::vector<RtValue>> &PerClient,
                       const std::vector<std::vector<ExecResult>> &Expected,
                       unsigned Rounds) {
  OffloadServiceStats Before = Svc.stats();
  std::vector<uint64_t> Mismatch(PerClient.size(), 0);
  std::vector<uint64_t> Failures(PerClient.size(), 0);
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (size_t C = 0; C != PerClient.size(); ++C) {
    Threads.emplace_back([&, C] {
      std::deque<std::pair<size_t, std::future<ExecResult>>> Window;
      auto DrainOne = [&] {
        auto [Pick, Fut] = std::move(Window.front());
        Window.pop_front();
        ExecResult E = Fut.get();
        if (!E.ok())
          ++Failures[C];
        else if (!E.Value.equals(Expected[C][Pick].Value))
          ++Mismatch[C];
      };
      for (unsigned R = 0; R != Rounds; ++R)
        for (size_t I = 0; I != PerClient[C].size(); ++I) {
          OffloadRequest Req;
          Req.Worker = B.Gather;
          Req.Args.push_back(Idx);
          Req.Args.push_back(PerClient[C][I]);
          Req.Options.ClientId = "c" + std::to_string(C);
          Window.emplace_back(I, Svc.submit(std::move(Req)));
          if (Window.size() >= 8)
            DrainOne();
        }
      while (!Window.empty())
        DrainOne();
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.waitIdle();

  StreamResult R;
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  for (size_t C = 0; C != PerClient.size(); ++C) {
    R.Requests += Rounds * PerClient[C].size();
    R.Mismatches += Mismatch[C];
    R.Failed += Failures[C];
  }
  OffloadServiceStats After = Svc.stats();
  R.MakespanNs = simMakespan(After, Before);
  R.ResidentHits = After.Device.ResidentHits - Before.Device.ResidentHits;
  return R;
}

struct PlacementPhase {
  StreamResult LeastLoaded;
  StreamResult CostModel;
  double speedup() const {
    return CostModel.MakespanNs > 0
               ? LeastLoaded.MakespanNs / CostModel.MakespanNs
               : 0.0;
  }
};

PlacementPhase runPlacementPhase(Setup &B) {
  // 4 clients x 2 buffers of 16k floats through one shared index
  // array. Eight distinct data buffers fit the per-slot residency
  // cache even if one worker ends up serving every client.
  constexpr size_t Clients = 4, Buffers = 2, Elems = 16 * 1024;
  constexpr unsigned Rounds = 6;
  RtValue Idx = makeIndexArray(B.types(), Elems);
  std::vector<std::vector<RtValue>> Inputs(Clients);
  std::vector<std::vector<ExecResult>> Expected(Clients);
  for (size_t C = 0; C != Clients; ++C)
    for (size_t I = 0; I != Buffers; ++I) {
      Inputs[C].push_back(
          makeFloatArray(B.types(), Elems, 1.0f + 2.0f * C + I));
      Expected[C].push_back(
          directResult(B, B.Gather, {Idx, Inputs[C].back()}));
    }

  PlacementPhase P;
  for (bool Cost : {false, true}) {
    ServiceConfig SC;
    SC.Devices = {"gtx580", "gtx8800"};
    SC.Policy =
        Cost ? SchedulerPolicy::CostModel : SchedulerPolicy::LeastLoaded;
    OffloadService Svc(B.Prog, B.types(), SC);
    if (!Svc.ok()) {
      std::fprintf(stderr, "bench_sched: service config error: %s\n",
                   Svc.configError().c_str());
      std::exit(1);
    }
    // One untimed warm-up round absorbs compiles and first-touch
    // transfers for both policies alike.
    runStream(Svc, B, Idx, Inputs, Expected, 1);
    StreamResult R = runStream(Svc, B, Idx, Inputs, Expected, Rounds);
    (Cost ? P.CostModel : P.LeastLoaded) = R;
  }
  return P;
}

struct ShardPhase {
  StreamResult Sharded;
  StreamResult BestSingle;
  std::string BestSingleDevice;
  double speedup() const {
    return Sharded.MakespanNs > 0
               ? BestSingle.MakespanNs / Sharded.MakespanNs
               : 0.0;
  }
};

/// One synchronous request at a time — sharding's win is
/// intra-request parallelism across the pool's simulated devices, so
/// the stream must not hide a single device's latency by pipelining.
StreamResult runSerial(OffloadService &Svc, Setup &B, MethodDecl *W,
                       const std::vector<RtValue> &Inputs,
                       const std::vector<ExecResult> &Expected,
                       unsigned Rounds) {
  OffloadServiceStats Before = Svc.stats();
  StreamResult R;
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned Round = 0; Round != Rounds; ++Round)
    for (size_t I = 0; I != Inputs.size(); ++I) {
      OffloadRequest Req;
      Req.Worker = W;
      Req.Args.push_back(Inputs[I]);
      ExecResult E = Svc.invoke(std::move(Req));
      ++R.Requests;
      if (!E.ok())
        ++R.Failed;
      else if (!E.Value.equals(Expected[I].Value))
        ++R.Mismatches;
    }
  Svc.waitIdle();
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  R.MakespanNs = simMakespan(Svc.stats(), Before);
  return R;
}

ShardPhase runShardPhase(Setup &B) {
  constexpr size_t Elems = 96 * 1024;
  constexpr unsigned Rounds = 3;
  std::vector<RtValue> Inputs = {makeFloatArray(B.types(), Elems, 0.5f),
                                 makeFloatArray(B.types(), Elems, 2.5f)};
  std::vector<ExecResult> Expected;
  for (const RtValue &X : Inputs)
    Expected.push_back(directResult(B, B.Crunch, {X}));

  ShardPhase P;
  for (const char *Device : {"gtx580", "gtx8800"}) {
    ServiceConfig SC;
    SC.Devices = {Device};
    OffloadService Svc(B.Prog, B.types(), SC);
    runSerial(Svc, B, B.Crunch, Inputs, Expected, 1); // warm
    StreamResult R = runSerial(Svc, B, B.Crunch, Inputs, Expected, Rounds);
    if (P.BestSingleDevice.empty() ||
        R.MakespanNs < P.BestSingle.MakespanNs) {
      P.BestSingle = R;
      P.BestSingleDevice = Device;
    }
  }

  ServiceConfig SC;
  SC.Devices.assign(4, "gtx580");
  SC.Policy = SchedulerPolicy::Shard;
  SC.Shard.MaxShards = 4;
  SC.Shard.MinShardElems = 1024;
  OffloadService Svc(B.Prog, B.types(), SC);
  runSerial(Svc, B, B.Crunch, Inputs, Expected, 1); // warm
  P.Sharded = runSerial(Svc, B, B.Crunch, Inputs, Expected, Rounds);
  return P;
}

/// TSAN stress: several submitters against a stealing-enabled pool
/// whose cold-build charge is zeroed so the verdict actually moves
/// work. Correctness-checked, not timed.
int runStealBurst(Setup &B) {
  ServiceConfig SC;
  SC.Devices = {"gtx580", "gtx580"};
  SC.Policy = SchedulerPolicy::CostModel;
  SC.WorkStealing = true;
  SC.Cost.ColdBuildNs = 0.0;
  OffloadService Svc(B.Prog, B.types(), SC);
  if (!Svc.ok()) {
    std::fprintf(stderr, "bench_sched: service config error: %s\n",
                 Svc.configError().c_str());
    return 1;
  }

  constexpr size_t Threads = 4, PerThread = 64, Kinds = 8;
  RtValue Idx = makeIndexArray(B.types(), 2048);
  std::vector<RtValue> Inputs;
  std::vector<ExecResult> Expected;
  for (size_t I = 0; I != Kinds; ++I) {
    Inputs.push_back(makeFloatArray(B.types(), 2048, 1.0f + I));
    Expected.push_back(directResult(B, B.Gather, {Idx, Inputs.back()}));
  }

  std::vector<uint64_t> Bad(Threads, 0);
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      std::vector<std::pair<size_t, std::future<ExecResult>>> Futs;
      for (size_t I = 0; I != PerThread; ++I) {
        size_t Pick = (T * PerThread + I) % Kinds;
        OffloadRequest Req;
        Req.Worker = B.Gather;
        Req.Args.push_back(Idx);
        Req.Args.push_back(Inputs[Pick]);
        Req.Options.ClientId = "burst" + std::to_string(T);
        Futs.emplace_back(Pick, Svc.submit(std::move(Req)));
      }
      for (auto &[Pick, Fut] : Futs) {
        ExecResult E = Fut.get();
        if (!E.ok() || !E.Value.equals(Expected[Pick].Value))
          ++Bad[T];
      }
    });
  }
  for (std::thread &T : Workers)
    T.join();
  Svc.waitIdle();

  uint64_t BadTotal = 0;
  for (uint64_t N : Bad)
    BadTotal += N;
  OffloadServiceStats S = Svc.stats();
  std::printf("steal burst: %zu requests, %llu steals (%llu refused), "
              "%llu bad results\n",
              Threads * PerThread,
              static_cast<unsigned long long>(S.Sched.Steals),
              static_cast<unsigned long long>(S.Sched.StealRefusals),
              static_cast<unsigned long long>(BadTotal));
  return BadTotal ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Gate = true, StealBurst = false;
  std::string JsonPath = "BENCH_sched.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-gate") == 0) {
      Gate = false;
    } else if (std::strcmp(argv[I], "--steal-burst") == 0) {
      StealBurst = true;
    } else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sched [--steal-burst] [--json PATH] "
                   "[--no-gate]\n");
      return 2;
    }
  }

  Setup B;
  if (!B.build())
    return 1;

  if (StealBurst) {
    int Rc = runStealBurst(B);
    return Gate ? Rc : 0;
  }

  std::printf("data-aware scheduler benchmark (DESIGN.md §13); speedups "
              "in simulated device time\n\n");

  PlacementPhase Place = runPlacementPhase(B);
  std::printf("placement | least-loaded %.2f ms, cost-model %.2f ms "
              "(%llu resident-input hits, wall %0.f vs %0.f req/s) "
              "-> %.2fx\n",
              Place.LeastLoaded.MakespanNs / 1e6,
              Place.CostModel.MakespanNs / 1e6,
              static_cast<unsigned long long>(Place.CostModel.ResidentHits),
              Place.LeastLoaded.throughput(), Place.CostModel.throughput(),
              Place.speedup());

  ShardPhase Shard = runShardPhase(B);
  std::printf("shard     | best single device (%s) %.2f ms, 4-way shard "
              "%.2f ms -> %.2fx\n",
              Shard.BestSingleDevice.c_str(),
              Shard.BestSingle.MakespanNs / 1e6,
              Shard.Sharded.MakespanNs / 1e6, Shard.speedup());

  uint64_t Mismatches = Place.LeastLoaded.Mismatches +
                        Place.CostModel.Mismatches +
                        Shard.BestSingle.Mismatches + Shard.Sharded.Mismatches;
  uint64_t Failed = Place.LeastLoaded.Failed + Place.CostModel.Failed +
                    Shard.BestSingle.Failed + Shard.Sharded.Failed;

  bool PlaceOk = Place.speedup() >= 1.2;
  bool ShardOk = Shard.speedup() >= 1.3;
  bool ExactOk = Mismatches == 0 && Failed == 0;
  std::printf("\ngates: placement %.2fx (need >= 1.20x) %s, shard %.2fx "
              "(need >= 1.30x) %s, bit-identical %s (%llu mismatches, "
              "%llu failed)\n",
              Place.speedup(), PlaceOk ? "PASS" : "FAIL", Shard.speedup(),
              ShardOk ? "PASS" : "FAIL", ExactOk ? "PASS" : "FAIL",
              static_cast<unsigned long long>(Mismatches),
              static_cast<unsigned long long>(Failed));

  std::ofstream Json(JsonPath, std::ios::trunc);
  if (Json) {
    Json << "{\n  \"schema\": \"limec-bench-sched-v1\",\n"
         << "  \"placement\": {\n"
         << "    \"least_loaded_makespan_ns\": " << Place.LeastLoaded.MakespanNs
         << ",\n    \"cost_model_makespan_ns\": " << Place.CostModel.MakespanNs
         << ",\n    \"least_loaded_wall_qps\": "
         << Place.LeastLoaded.throughput()
         << ",\n    \"cost_model_wall_qps\": " << Place.CostModel.throughput()
         << ",\n    \"resident_hits\": " << Place.CostModel.ResidentHits
         << ",\n    \"speedup\": " << Place.speedup() << "\n  },\n"
         << "  \"shard\": {\n"
         << "    \"best_single_device\": \"" << Shard.BestSingleDevice
         << "\",\n    \"best_single_makespan_ns\": "
         << Shard.BestSingle.MakespanNs
         << ",\n    \"sharded_makespan_ns\": " << Shard.Sharded.MakespanNs
         << ",\n    \"speedup\": " << Shard.speedup() << "\n  },\n"
         << "  \"gates\": {\n"
         << "    \"placement_speedup\": {\"value\": " << Place.speedup()
         << ", \"min\": 1.2, \"pass\": " << (PlaceOk ? "true" : "false")
         << "},\n"
         << "    \"shard_speedup\": {\"value\": " << Shard.speedup()
         << ", \"min\": 1.3, \"pass\": " << (ShardOk ? "true" : "false")
         << "},\n"
         << "    \"bit_identical\": {\"mismatches\": " << Mismatches
         << ", \"failed\": " << Failed
         << ", \"pass\": " << (ExactOk ? "true" : "false") << "}\n  }\n}\n";
    std::printf("wrote %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "bench_sched: cannot write %s\n", JsonPath.c_str());
  }

  if (!Gate)
    return 0;
  return PlaceOk && ShardOk && ExactOk ? 0 : 1;
}
