//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 9: the computation vs communication cost
/// breakdown of each offloaded benchmark, as a percentage of total
/// execution time, on (a) the Core i7 OpenCL runtime and (b) the
/// GTX 580.
///
/// Paper shapes: on the CPU, computation dominates (JG-Crypt is the
/// exception — its computation per byte is particularly low); on the
/// GPU, communication is proportionally larger (~40% on average),
/// most of it marshaling (~30%), OpenCL API setup small (~5%), and
/// the raw PCIe transfer a minor component.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

static void report(const char *Title, const char *Device, int Argc,
                   char **Argv) {
  std::printf("\n%s\n", Title);
  hr('=', 96);
  std::printf("%-20s %9s | %7s %9s %8s %6s %6s | %6s\n", "Benchmark",
              "total(ms)", "kernel", "marshalJ", "marshalC", "api", "pcie",
              "comm");
  hr('-', 96);
  double CommSum = 0.0;
  unsigned Count = 0;
  for (const Workload &W : workloadRegistry()) {
    double Scale = benchScale(W.Id, Argc, Argv);
    rt::OffloadConfig OC;
    OC.DeviceName = Device;
    if (std::string(Device) == "corei7")
      OC.LocalSize = 16;
    RunOutcome G = runWorkload(W, RunMode::Offloaded, Scale, OC);
    if (!G.ok()) {
      std::printf("%-20s ERROR %s\n", W.Name.c_str(), G.Error.c_str());
      continue;
    }
    // The host-side evaluator work (source/sink) stays out of the
    // offload ratio, as the paper charts kernel vs communication of
    // the offloaded computation.
    double Total = G.Device.totalNs();
    if (Total <= 0)
      continue;
    double CommPct = 100.0 * G.Device.commNs() / Total;
    CommSum += CommPct;
    ++Count;
    std::printf("%-20s %9.2f | %6.1f%% %8.1f%% %7.1f%% %5.1f%% %5.1f%% |"
                " %5.1f%%\n",
                W.Name.c_str(), Total / 1e6,
                100.0 * G.Device.KernelNs / Total,
                100.0 * G.Device.Marshal.JavaNs / Total,
                100.0 * G.Device.Marshal.NativeNs / Total,
                100.0 * G.Device.ApiNs / Total,
                100.0 * G.Device.PcieNs / Total, CommPct);
  }
  hr('-', 96);
  if (Count)
    std::printf("average communication share: %.0f%%\n", CommSum / Count);
}

int main(int argc, char **argv) {
  std::printf("Figure 9: computation and communication costs\n");
  report("(a) CPU (Core i7) — computation should dominate; JG-Crypt is "
         "the exception",
         "corei7", argc, argv);
  report("(b) GPU (GTX580) — communication ~40%% on average, mostly "
         "marshaling",
         "gtx580", argc, argv);
  return 0;
}
