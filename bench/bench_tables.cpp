//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's three tables:
///  - Table 1: GPU programming in OpenCL vs Lime (the responsibility
///    matrix), annotated with measured line counts of our N-Body
///    sources — Lime code vs the generated OpenCL the programmer
///    never writes.
///  - Table 2: the evaluation platforms (from the device registry).
///  - Table 3: the benchmark suite with generator-measured sizes next
///    to the paper's.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "ocl/DeviceModel.h"
#include "support/StringUtils.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

static unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

static void table1(int argc, char **argv) {
  std::printf("Table 1: GPU programming in OpenCL vs. Lime\n");
  hr('=');
  std::printf("%-18s %-22s %s\n", "", "OpenCL", "Lime");
  hr();
  std::printf("%-18s %-22s %s\n", "offload unit", "kernel", "filter");
  std::printf("%-18s %-22s %s\n", "communication", "API", "=> operator");
  std::printf("%-18s %-22s %s\n", "data parallelism", "manual",
              "map & reduce");
  std::printf("%-18s %-22s %s\n", "memory qualifiers", "manual", "compiler");
  std::printf("%-18s %-22s %s\n", "synchronization", "manual", "compiler");
  std::printf("%-18s %-22s %s\n", "scheduling", "manual", "compiler");
  hr();

  // Measured illustration on N-Body: what the programmer writes in
  // Lime vs what the compiler writes for them.
  const Workload &W = workloadById("nbody_sp");
  RunOutcome G = runWorkload(W, RunMode::Offloaded,
                             benchScale("nbody_sp", argc, argv) * 0.25);
  if (G.ok()) {
    std::printf("measured on N-Body: Lime source %u lines; generated "
                "OpenCL kernel + host glue %u lines\n",
                countLines(W.LimeSource), countLines(G.KernelSource));
    std::printf("(the paper's hand-written OpenCL N-Body needed the kernel, "
                "~36 lines of host\norchestration shown in Fig. 1, plus 182 "
                "lines of device discovery)\n");
  }
}

static void table3(int argc, char **argv) {
  std::printf("\nTable 3: Benchmarks used in the evaluation\n");
  hr('=', 100);
  std::printf("%-18s %-32s %12s %12s %10s\n", "Name", "Description",
              "Input size", "Output size", "Data type");
  hr('-', 100);
  for (const Workload &W : workloadRegistry()) {
    // The single/double variants share one Table 3 row in the paper;
    // print both with their own sizes.
    std::printf("%-18s %-32s %12s %12s %10s\n", W.Name.c_str(),
                W.Description.c_str(),
                formatByteSize(W.PaperInputBytes).c_str(),
                formatByteSize(W.PaperOutputBytes).c_str(),
                W.DataType.c_str());
  }
  hr('-', 100);

  std::printf("generator check at scale=%.3g of paper size:\n",
              benchScale("crypt", argc, argv));
  for (const Workload &W : workloadRegistry()) {
    double Scale = benchScale(W.Id, argc, argv);
    // Compile + prepare, then measure the flattened input bytes.
    auto Ctx = std::make_unique<ASTContext>();
    DiagnosticEngine Diags;
    Parser P(W.LimeSource, *Ctx, Diags);
    Program *Prog = P.parseProgram();
    Sema S(*Ctx, Diags);
    if (!S.check(Prog)) {
      std::printf("  %-12s compile error\n", W.Id.c_str());
      continue;
    }
    Interp I(Prog, Ctx->types());
    W.Prepare(I, Scale);
    // Sum the flattened bytes of every array-typed static input.
    uint64_t Bytes = 0;
    for (FieldDecl *F : Prog->findClass(W.ClassName)->fields()) {
      if (!F->isStatic() || F->name() == W.ResultField || F->isFinal())
        continue;
      RtValue V = I.getStaticField(F);
      if (V.isArray())
        Bytes += flattenValue(V).size();
    }
    std::printf("  %-12s input %10s at scale %.3g (paper %s)\n",
                W.Id.c_str(), formatByteSize(Bytes).c_str(), Scale,
                formatByteSize(W.PaperInputBytes).c_str());
  }
}

int main(int argc, char **argv) {
  table1(argc, argv);
  std::printf("\n%s\n", ocl::renderTable2().c_str());
  table3(argc, argv);
  return 0;
}
