//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out:
///
///  1. Serializer specialization (§4.3): the paper's first, generic
///     marshaler put >90% of offload time into marshaling; the
///     specialized bulk marshalers fix it. We rerun the pipeline with
///     specialization disabled.
///  2. Bank-conflict padding (§4.2.1): local-memory serialization
///     cycles with and without the pad.
///  3. Coalescing/vectorization (§4.2.2): DRAM transactions with and
///     without vector loads.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "runtime/AutoTuner.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

int main(int argc, char **argv) {
  std::printf("Ablation 1: generic vs specialized marshaling (paper §4.3)\n");
  hr('=', 90);
  std::printf("%-14s | %14s %10s | %14s %10s\n", "Benchmark",
              "generic marshal", "share", "specialized", "share");
  hr('-', 90);
  for (const char *Id : {"nbody_sp", "crypt", "mriq"}) {
    const Workload &W = workloadById(Id);
    double Scale = benchScale(Id, argc, argv);
    double MarshalNs[2];
    double Share[2];
    bool OK = true;
    for (int Mode = 0; Mode != 2; ++Mode) {
      rt::OffloadConfig OC;
      OC.DeviceName = "gtx580";
      OC.UseSpecializedMarshal = Mode == 1;
      RunOutcome G = runWorkload(W, RunMode::Offloaded, Scale, OC);
      if (!G.ok()) {
        std::printf("%-14s ERROR %s\n", Id, G.Error.c_str());
        OK = false;
        break;
      }
      double M = G.Device.Marshal.JavaNs + G.Device.Marshal.NativeNs;
      MarshalNs[Mode] = M;
      Share[Mode] = 100.0 * M / G.Device.totalNs();
    }
    if (OK)
      std::printf("%-14s | %12.2fms %9.1f%% | %12.2fms %9.1f%%\n", Id,
                  MarshalNs[0] / 1e6, Share[0], MarshalNs[1] / 1e6,
                  Share[1]);
  }
  std::printf("paper: the generic path put >90%% of time in marshaling\n");

  std::printf("\nAblation 2: bank-conflict padding (paper §4.2.1)\n");
  hr('=', 90);
  std::printf("%-14s | %18s %18s %10s\n", "Benchmark", "local cycles (pad)",
              "local cycles (no)", "saved");
  hr('-', 90);
  for (const char *Id : {"nbody_sp", "mosaic"}) {
    const Workload &W = workloadById(Id);
    double Scale = benchScale(Id, argc, argv);
    GeneratedKernelRun Pad = runGeneratedKernel(
        W, "gtx8800", MemoryConfig::localNoConflict(), Scale, 64);
    GeneratedKernelRun NoPad =
        runGeneratedKernel(W, "gtx8800", MemoryConfig::local(), Scale, 64);
    if (!Pad.ok() || !NoPad.ok()) {
      std::printf("%-14s ERROR %s%s\n", Id, Pad.Error.c_str(),
                  NoPad.Error.c_str());
      continue;
    }
    double Saved =
        NoPad.Counters.LocalCycles
            ? 100.0 *
                  (1.0 - static_cast<double>(Pad.Counters.LocalCycles) /
                             static_cast<double>(NoPad.Counters.LocalCycles))
            : 0.0;
    std::printf("%-14s | %18llu %18llu %9.1f%%\n", Id,
                static_cast<unsigned long long>(Pad.Counters.LocalCycles),
                static_cast<unsigned long long>(NoPad.Counters.LocalCycles),
                Saved);
  }

  std::printf("\nAblation 3: vectorized loads vs scalar (paper §4.2.2)\n");
  hr('=', 90);
  std::printf("%-14s | %16s %16s %10s\n", "Benchmark", "DRAM tx (vector)",
              "DRAM tx (scalar)", "saved");
  hr('-', 90);
  for (const char *Id : {"nbody_sp", "cp", "mriq"}) {
    const Workload &W = workloadById(Id);
    double Scale = benchScale(Id, argc, argv);
    GeneratedKernelRun Vec = runGeneratedKernel(
        W, "gtx8800", MemoryConfig::globalVector(), Scale, 64);
    GeneratedKernelRun Sc =
        runGeneratedKernel(W, "gtx8800", MemoryConfig::global(), Scale, 64);
    if (!Vec.ok() || !Sc.ok()) {
      std::printf("%-14s ERROR %s%s\n", Id, Vec.Error.c_str(),
                  Sc.Error.c_str());
      continue;
    }
    double Saved =
        Sc.Counters.GlobalTransactions
            ? 100.0 * (1.0 -
                       static_cast<double>(Vec.Counters.GlobalTransactions) /
                           static_cast<double>(
                               Sc.Counters.GlobalTransactions))
            : 0.0;
    std::printf(
        "%-14s | %16llu %16llu %9.1f%%\n", Id,
        static_cast<unsigned long long>(Vec.Counters.GlobalTransactions),
        static_cast<unsigned long long>(Sc.Counters.GlobalTransactions),
        Saved);
  }

  std::printf("\nAblation 4: the paper's §5.3 communication optimizations "
              "(implemented as options)\n");
  hr('=', 90);
  std::printf("%-14s | %10s %10s %10s %12s\n", "Benchmark", "plain",
              "direct", "overlap", "direct+ovlp");
  hr('-', 90);
  for (const char *Id : {"nbody_sp", "crypt", "mriq"}) {
    const Workload &W = workloadById(Id);
    double Scale = benchScale(Id, argc, argv);
    rt::OffloadConfig Cfgs[4];
    Cfgs[1].DirectMarshal = true;
    Cfgs[2].OverlapPipelining = true;
    Cfgs[3].DirectMarshal = true;
    Cfgs[3].OverlapPipelining = true;
    double Ns[4];
    bool OK = true;
    for (int M = 0; M != 4; ++M) {
      RunOutcome G = runWorkload(W, RunMode::Offloaded, Scale, Cfgs[M]);
      if (!G.ok()) {
        std::printf("%-14s ERROR %s\n", Id, G.Error.c_str());
        OK = false;
        break;
      }
      Ns[M] = G.EndToEndNs;
    }
    if (OK)
      std::printf("%-14s | %8.0fus %8.0fus %8.0fus %10.0fus\n", Id,
                  Ns[0] / 1e3, Ns[1] / 1e3, Ns[2] / 1e3, Ns[3] / 1e3);
  }
  std::printf("paper §5.3: direct marshaling \"would approximately halve "
              "the marshaling overhead\";\npipelining hides communication "
              "under computation\n");

  std::printf("\nAblation 5: auto-tuner picks (the offline exploration of "
              "§5.2, automated)\n");
  hr('=', 90);
  std::printf("%-14s | %-10s %-34s %12s\n", "Benchmark", "device",
              "chosen configuration", "kernel");
  hr('-', 90);
  for (const char *Id : {"nbody_sp", "cp", "mriq", "rpes"}) {
    const Workload &W = workloadById(Id);
    double Scale = benchScale(Id, argc, argv) * 0.5;
    for (const char *Dev : {"gtx8800", "gtx580"}) {
      // Compile the workload and tune its filter on sample inputs.
      ASTContext Ctx;
      DiagnosticEngine Diags;
      Parser P(W.LimeSource, Ctx, Diags);
      Program *Prog = P.parseProgram();
      Sema S(Ctx, Diags);
      if (!S.check(Prog))
        continue;
      Interp I(Prog, Ctx.types());
      W.Prepare(I, Scale);
      MethodDecl *Filter =
          Prog->findClass(W.ClassName)->findMethod(W.FilterMethod);
      std::vector<RtValue> Args;
      for (ParamDecl *Param : Filter->params())
        Args.push_back(I.getStaticField(
            Prog->findClass(W.ClassName)->findField(Param->name())));
      rt::OffloadConfig Base;
      Base.DeviceName = Dev;
      rt::TuneResult T = rt::autoTune(Prog, Ctx.types(), Filter, Args, Base);
      if (!T.Ok) {
        std::printf("%-14s | %-10s tuner failed: %s\n", Id, Dev,
                    T.Error.c_str());
        continue;
      }
      std::printf("%-14s | %-10s %-24s @%-8u %9.0fns\n", Id, Dev,
                  T.Best.Mem.str().c_str(), T.Best.LocalSize,
                  T.BestKernelNs);
    }
  }
  return 0;
}
