//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure/table regenerators: per-workload
/// simulation scales (large enough for stable shapes, small enough to
/// simulate in seconds; override with LIMECC_SCALE=<multiplier> or
/// --paper for Table 3 sizes), and text-table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef LIMECC_BENCH_BENCHUTIL_H
#define LIMECC_BENCH_BENCHUTIL_H

#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lime::bench {

/// Default simulation scale per workload (fraction of Table 3 size).
/// The n^2 workloads get the smallest factors.
inline double baseScale(const std::string &Id) {
  if (Id == "nbody_sp" || Id == "nbody_dp")
    return 0.2;
  if (Id == "mosaic")
    return 0.30; // library > 64KB: exercises the constant fallback
  if (Id == "cp")
    return 0.04;
  if (Id == "mriq")
    return 0.05;
  if (Id == "rpes")
    return 0.008;
  if (Id == "crypt")
    return 0.02;
  return 0.02; // series
}

/// Applies the LIMECC_SCALE multiplier / --paper override.
inline double benchScale(const std::string &Id, int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--paper")
      return 1.0;
  double Mult = 1.0;
  if (const char *Env = std::getenv("LIMECC_SCALE"))
    Mult = std::atof(Env);
  if (Mult <= 0)
    Mult = 1.0;
  return baseScale(Id) * Mult;
}

inline void hr(char C = '-', unsigned N = 76) {
  for (unsigned I = 0; I < N; ++I)
    std::putchar(C);
  std::putchar('\n');
}

} // namespace lime::bench

#endif // LIMECC_BENCH_BENCHUTIL_H
