//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offload-service throughput/latency benchmark. Sweeps client
/// threads x device workers; for each combination runs the same
/// request mix twice against one service instance:
///
///   cold  - fresh service: every request is a distinct (filter,
///           memory config) key, so each pays a GpuCompiler run +
///           OpenCL program build;
///   warm  - same service again: the kernel cache and prepared filter
///           instances absorb all compilation.
///
/// Reported per phase: wall-clock throughput (requests/s), mean and
/// max client-observed latency, and the cache hit rate for the
/// phase's own requests. The 4-client x 2-device row carries the
/// acceptance check: warm throughput >= 2x cold with a >90% warm hit
/// rate. Exit status reflects the check.
///
/// `--open-loop` switches to the overload-control saturation harness
/// (docs/service-slo.md): Poisson arrivals at a fixed offered rate —
/// independent of completions, the way real traffic arrives — fanned
/// across N client identities against a service running the Deadline
/// shed policy. Two runs, at 1x and 2x the measured saturation
/// throughput, report goodput, shed rate, p50/p95/p99 latency, and a
/// cohort fairness ratio into BENCH_service.json. Gates: goodput at
/// 2x >= 80% of goodput at 1x (overload must degrade gracefully, not
/// collapse), cohort fairness ratio <= 1.5.
///
//===----------------------------------------------------------------------===//

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "service/OffloadService.h"
#include "support/Random.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>

using namespace lime;
using namespace lime::service;

namespace {

/// Four map filters with long unrolled arithmetic bodies: compiling
/// one (GpuCompiler emission, OpenCL parse, bytecode compilation) is
/// substantially more work than running it over a small array, which
/// is the cost structure a kernel cache exists to exploit.
std::string benchSource() {
  std::ostringstream S;
  S << "class B {\n";
  for (int F = 0; F != 4; ++F) {
    S << "  static local float body" << F << "(float x) {\n"
      << "    float y = x;\n";
    for (int I = 0; I != 24; ++I)
      S << "    y = y * 1.0" << (F + 1) << "f + 0.0" << (I % 9 + 1)
        << "f;\n";
    S << "    return y;\n  }\n"
      << "  static local float[[]] k" << F << "(float[[]] xs) { return body"
      << F << " @ xs; }\n";
  }
  S << "}\n";
  return S.str();
}

RtValue makeFloatArray(TypeContext &Types, size_t N, float Seed) {
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = Types.floatType();
  Arr->Immutable = true;
  for (size_t I = 0; I != N; ++I)
    Arr->Elems.push_back(
        RtValue::makeFloat(Seed + 0.125f * static_cast<float>(I % 61)));
  return RtValue::makeArray(std::move(Arr));
}

struct PhaseResult {
  double Seconds = 0.0;
  double MeanLatencyUs = 0.0;
  double MaxLatencyUs = 0.0;
  double HitRate = 0.0; // for this phase's requests only
  uint64_t Requests = 0;
  uint64_t Failed = 0;
  double throughput() const { return Requests / Seconds; }
};

struct BenchSetup {
  Program *Prog = nullptr;
  TypeContext *Types = nullptr;
  std::vector<MethodDecl *> Filters;
  std::vector<MemoryConfig> Mems;
  std::vector<RtValue> Inputs; // reused across phases
};

/// One request mix pass: every client walks the (filter x mem) grid
/// so each phase touches every cache key.
PhaseResult runPhase(OffloadService &Svc, const BenchSetup &B,
                     unsigned Clients, unsigned PerClient) {
  KernelCacheStats CacheBefore = Svc.stats().Cache;

  std::vector<double> SumLatencyUs(Clients, 0.0);
  std::vector<double> MaxLatencyUs(Clients, 0.0);
  std::vector<uint64_t> Failures(Clients, 0);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      // Each client keeps a pipeline of outstanding submissions, the
      // way a streaming producer would, instead of a synchronous
      // request/response ping-pong.
      using Clock = std::chrono::steady_clock;
      std::deque<std::pair<Clock::time_point, std::future<ExecResult>>>
          Window;
      auto DrainOne = [&] {
        auto [S0, Fut] = std::move(Window.front());
        Window.pop_front();
        ExecResult E = Fut.get();
        double Us =
            std::chrono::duration<double, std::micro>(Clock::now() - S0)
                .count();
        SumLatencyUs[C] += Us;
        if (Us > MaxLatencyUs[C])
          MaxLatencyUs[C] = Us;
        if (E.Trapped)
          ++Failures[C];
      };
      for (unsigned I = 0; I != PerClient; ++I) {
        size_t Pick = C * PerClient + I;
        MethodDecl *W = B.Filters[Pick % B.Filters.size()];
        const MemoryConfig &Mem =
            B.Mems[(Pick / B.Filters.size()) % B.Mems.size()];
        OffloadRequest R;
        R.Worker = W;
        R.Config.Mem = Mem;
        // Every (client, iteration) gets its own private-capacity
        // threshold, making it a distinct cache key: the cold phase
        // pays one compile per request, and the warm phase repeats
        // the exact same picks so all of them hit. None of the
        // benchmark filters allocate in-kernel arrays, so the
        // threshold never changes the generated code — it stands in
        // for clients arriving with distinct configurations.
        R.Config.Mem.PrivateBytesLimit =
            512 + 16 * static_cast<unsigned>(Pick);
        R.Args.push_back(B.Inputs[Pick % B.Inputs.size()]);
        Window.emplace_back(Clock::now(), Svc.submit(std::move(R)));
        if (Window.size() >= 8)
          DrainOne();
      }
      while (!Window.empty())
        DrainOne();
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.waitIdle();

  PhaseResult P;
  P.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            T0)
                  .count();
  P.Requests = static_cast<uint64_t>(Clients) * PerClient;
  for (unsigned C = 0; C != Clients; ++C) {
    P.MeanLatencyUs += SumLatencyUs[C];
    P.MaxLatencyUs = std::max(P.MaxLatencyUs, MaxLatencyUs[C]);
    P.Failed += Failures[C];
  }
  P.MeanLatencyUs /= static_cast<double>(P.Requests);

  KernelCacheStats CacheAfter = Svc.stats().Cache;
  uint64_t Hits = CacheAfter.Hits - CacheBefore.Hits;
  uint64_t Misses = CacheAfter.Misses - CacheBefore.Misses;
  P.HitRate = (Hits + Misses)
                  ? static_cast<double>(Hits) /
                        static_cast<double>(Hits + Misses)
                  : 0.0;
  return P;
}

// --- open-loop saturation harness ---------------------------------

struct OpenLoopOptions {
  bool Enabled = false;
  unsigned Clients = 1000; ///< distinct client identities (not threads)
  double Qps = 0.0;        ///< 1x offered rate; 0 = measure saturation
  double Seconds = 2.0;    ///< duration of each open-loop run
  bool Gate = true;
  std::string JsonPath = "BENCH_service.json";
};

/// One open-loop run's outcome.
struct OpenLoopRun {
  double OfferedQps = 0.0;
  double Seconds = 0.0;
  uint64_t Arrivals = 0;
  uint64_t Ok = 0;
  uint64_t QuotaRejected = 0;
  uint64_t QueueFull = 0;
  uint64_t Shed = 0; // deadline-infeasible
  uint64_t TimedOut = 0;
  uint64_t OtherFailed = 0;
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0;
  /// Max/min goodput ratio across 8 client cohorts (clients are
  /// assigned round-robin, so cohort populations are equal; grouping
  /// damps the per-client noise of small counts at 1000 clients).
  double Fairness = 0.0;

  double goodput() const { return Seconds > 0 ? Ok / Seconds : 0.0; }
  double shedRate() const {
    uint64_t Refused = QuotaRejected + QueueFull + Shed;
    return Arrivals ? static_cast<double>(Refused) / Arrivals : 0.0;
  }
};

constexpr unsigned FairnessCohorts = 8;

/// Warm every (filter, input) pick the harness can generate so the
/// measured runs never pay a compile.
void warmService(OffloadService &Svc, const BenchSetup &B) {
  std::vector<std::future<ExecResult>> Futs;
  for (size_t F = 0; F != B.Filters.size(); ++F)
    for (size_t I = 0; I != B.Inputs.size(); ++I) {
      OffloadRequest R;
      R.Worker = B.Filters[F];
      R.Config.Mem = MemoryConfig::best();
      R.Args.push_back(B.Inputs[I]);
      R.ClientId = "warm";
      Futs.push_back(Svc.submit(std::move(R)));
    }
  for (auto &F : Futs)
    F.get();
  Svc.waitIdle();
}

/// Closed-loop saturation probe: pipelined clients push as hard as
/// they can for ~1 s; completions/second is the service's capacity
/// and anchors the open-loop offered rates.
double measureSaturation(OffloadService &Svc, const BenchSetup &B) {
  using Clock = std::chrono::steady_clock;
  std::atomic<uint64_t> Ok{0};
  auto T0 = Clock::now();
  auto End = T0 + std::chrono::milliseconds(1000);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T) {
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0xbadc0ffeeull + T);
      std::deque<std::future<ExecResult>> Window;
      auto DrainOne = [&] {
        if (Window.front().get().ok())
          ++Ok;
        Window.pop_front();
      };
      while (Clock::now() < End) {
        OffloadRequest R;
        R.Worker = B.Filters[Rng.nextBelow(B.Filters.size())];
        R.Config.Mem = MemoryConfig::best();
        R.Args.push_back(B.Inputs[Rng.nextBelow(B.Inputs.size())]);
        R.ClientId = "sat" + std::to_string(T);
        Window.push_back(Svc.submit(std::move(R)));
        if (Window.size() >= 8)
          DrainOne();
      }
      while (!Window.empty())
        DrainOne();
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.waitIdle();
  double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
  return static_cast<double>(Ok.load()) / Sec;
}

/// One open-loop run: Poisson arrivals at \p Qps for Opts.Seconds,
/// each tagged with the next client identity round-robin. Latency is
/// measured from the *scheduled* arrival instant (open-loop: a
/// backlogged submitter is the service's problem, not the clock's).
OpenLoopRun runOpenLoop(OffloadService &Svc, const BenchSetup &B,
                        const OpenLoopOptions &Opts, double Qps) {
  using Clock = std::chrono::steady_clock;
  OpenLoopRun Run;
  Run.OfferedQps = Qps;

  std::mutex InboxMu;
  std::condition_variable InboxCv;
  std::deque<std::tuple<unsigned, Clock::time_point, std::future<ExecResult>>>
      Inbox;
  bool GenDone = false;

  std::mutex ResMu;
  std::vector<double> LatMs;
  std::vector<uint64_t> CohortOk(FairnessCohorts, 0);

  std::vector<std::thread> Drainers;
  for (unsigned D = 0; D != 4; ++D) {
    Drainers.emplace_back([&] {
      for (;;) {
        std::unique_lock<std::mutex> Lock(InboxMu);
        InboxCv.wait(Lock, [&] { return !Inbox.empty() || GenDone; });
        if (Inbox.empty())
          return;
        auto [ClientIdx, At, Fut] = std::move(Inbox.front());
        Inbox.pop_front();
        Lock.unlock();
        ExecResult E = Fut.get();
        double Ms =
            std::chrono::duration<double, std::milli>(Clock::now() - At)
                .count();
        std::lock_guard<std::mutex> RLock(ResMu);
        if (!E.Trapped) {
          ++Run.Ok;
          ++CohortOk[ClientIdx % FairnessCohorts];
          LatMs.push_back(Ms);
          continue;
        }
        switch (classifyServiceError(E)) {
        case ServiceRejectKind::QuotaExceeded:
          ++Run.QuotaRejected;
          break;
        case ServiceRejectKind::QueueFull:
          ++Run.QueueFull;
          break;
        case ServiceRejectKind::DeadlineInfeasible:
          ++Run.Shed;
          break;
        case ServiceRejectKind::TimedOut:
          ++Run.TimedOut;
          break;
        case ServiceRejectKind::None:
          ++Run.OtherFailed;
          break;
        }
      }
    });
  }

  SplitMix64 Rng(42);
  auto T0 = Clock::now();
  auto End = T0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(Opts.Seconds));
  auto NextAt = T0;
  unsigned Idx = 0;
  while (NextAt < End) {
    std::this_thread::sleep_until(NextAt);
    unsigned ClientIdx = Idx % Opts.Clients;
    OffloadRequest R;
    R.Worker = B.Filters[Rng.nextBelow(B.Filters.size())];
    R.Config.Mem = MemoryConfig::best();
    R.Args.push_back(B.Inputs[Rng.nextBelow(B.Inputs.size())]);
    R.ClientId = "c" + std::to_string(ClientIdx);
    R.DeadlineMs = 50.0;
    std::future<ExecResult> Fut = Svc.submit(std::move(R));
    {
      std::lock_guard<std::mutex> Lock(InboxMu);
      Inbox.emplace_back(ClientIdx, NextAt, std::move(Fut));
    }
    InboxCv.notify_one();
    ++Idx;
    ++Run.Arrivals;
    // Poisson arrivals: exponential inter-arrival gaps at rate Qps.
    double Gap = -std::log(1.0 - Rng.nextDouble()) / Qps;
    NextAt += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(Gap));
  }
  {
    std::lock_guard<std::mutex> Lock(InboxMu);
    GenDone = true;
  }
  InboxCv.notify_all();
  for (std::thread &D : Drainers)
    D.join();
  Svc.waitIdle();
  Run.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();

  std::sort(LatMs.begin(), LatMs.end());
  auto Pct = [&](double Q) {
    if (LatMs.empty())
      return 0.0;
    return LatMs[static_cast<size_t>(Q * (LatMs.size() - 1))];
  };
  Run.P50Ms = Pct(0.50);
  Run.P95Ms = Pct(0.95);
  Run.P99Ms = Pct(0.99);

  uint64_t MaxOk = 0, MinOk = ~0ull;
  for (uint64_t N : CohortOk) {
    MaxOk = std::max(MaxOk, N);
    MinOk = std::min(MinOk, N);
  }
  Run.Fairness = MinOk ? static_cast<double>(MaxOk) / MinOk
                       : (MaxOk ? 999.0 : 1.0);
  return Run;
}

void printRun(const char *Tag, const OpenLoopRun &R) {
  std::printf("%-12s | offered %7.0f/s, arrived %6llu, goodput %7.0f/s, "
              "shed %4.1f%% (%llu queue-full, %llu shed, %llu quota), "
              "%llu timed out, %llu failed\n"
              "%-12s | latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
              "cohort fairness %.2f\n",
              Tag, R.OfferedQps,
              static_cast<unsigned long long>(R.Arrivals), R.goodput(),
              100.0 * R.shedRate(),
              static_cast<unsigned long long>(R.QueueFull),
              static_cast<unsigned long long>(R.Shed),
              static_cast<unsigned long long>(R.QuotaRejected),
              static_cast<unsigned long long>(R.TimedOut),
              static_cast<unsigned long long>(R.OtherFailed), "", R.P50Ms,
              R.P95Ms, R.P99Ms, R.Fairness);
}

void jsonRun(std::ostream &O, const OpenLoopRun &R) {
  O << "    {\n"
    << "      \"offered_qps\": " << R.OfferedQps << ",\n"
    << "      \"seconds\": " << R.Seconds << ",\n"
    << "      \"arrivals\": " << R.Arrivals << ",\n"
    << "      \"completed\": " << R.Ok << ",\n"
    << "      \"goodput_qps\": " << R.goodput() << ",\n"
    << "      \"shed_rate\": " << R.shedRate() << ",\n"
    << "      \"queue_full_rejected\": " << R.QueueFull << ",\n"
    << "      \"deadline_shed\": " << R.Shed << ",\n"
    << "      \"quota_rejected\": " << R.QuotaRejected << ",\n"
    << "      \"timed_out\": " << R.TimedOut << ",\n"
    << "      \"other_failed\": " << R.OtherFailed << ",\n"
    << "      \"p50_ms\": " << R.P50Ms << ",\n"
    << "      \"p95_ms\": " << R.P95Ms << ",\n"
    << "      \"p99_ms\": " << R.P99Ms << ",\n"
    << "      \"cohort_fairness\": " << R.Fairness << "\n"
    << "    }";
}

int runOpenLoopBench(const BenchSetup &B, Program *Prog, TypeContext &Types,
                     const OpenLoopOptions &Opts) {
  ServiceConfig SC;
  SC.Devices = {"gtx580", "gtx580"};
  SC.CacheCapacity = 64;
  SC.QueueDepth = 64;
  SC.ShedPolicy = ServiceConfig::Shedding::Deadline;
  SC.CoalesceWindow = 16;
  SC.MaxRetries = 1;
  SC.BackoffBaseMs = 0.0; // retry sleeps would stall a worker thread
  OffloadService Svc(Prog, Types, SC);

  warmService(Svc, B);
  double SatQps = Opts.Qps > 0 ? Opts.Qps : measureSaturation(Svc, B);
  std::printf("open-loop saturation harness: %u clients, %.1f s per run, "
              "saturation %s%.0f req/s\n\n",
              Opts.Clients, Opts.Seconds,
              Opts.Qps > 0 ? "(given) " : "(measured) ", SatQps);

  OpenLoopRun At1x = runOpenLoop(Svc, B, Opts, SatQps);
  printRun("1x load", At1x);
  OpenLoopRun At2x = runOpenLoop(Svc, B, Opts, 2.0 * SatQps);
  printRun("2x overload", At2x);

  double GoodputRatio =
      At1x.goodput() > 0 ? At2x.goodput() / At1x.goodput() : 0.0;
  bool GoodputOk = GoodputRatio >= 0.8;
  bool FairnessOk = At2x.Fairness <= 1.5;
  std::printf("\ngates @ 2x overload: goodput %.0f%% of 1x (need >= 80%%) "
              "%s, cohort fairness %.2f (need <= 1.50) %s\n",
              100.0 * GoodputRatio, GoodputOk ? "PASS" : "FAIL",
              At2x.Fairness, FairnessOk ? "PASS" : "FAIL");

  std::ofstream Json(Opts.JsonPath, std::ios::trunc);
  if (Json) {
    Json << "{\n  \"schema\": \"limec-bench-service-v1\",\n"
         << "  \"clients\": " << Opts.Clients << ",\n"
         << "  \"fairness_cohorts\": " << FairnessCohorts << ",\n"
         << "  \"saturation_qps\": " << SatQps << ",\n"
         << "  \"saturation_measured\": " << (Opts.Qps > 0 ? "false" : "true")
         << ",\n  \"runs\": [\n";
    jsonRun(Json, At1x);
    Json << ",\n";
    jsonRun(Json, At2x);
    Json << "\n  ],\n  \"gates\": {\n"
         << "    \"goodput_ratio\": {\"value\": " << GoodputRatio
         << ", \"min\": 0.8, \"pass\": " << (GoodputOk ? "true" : "false")
         << "},\n"
         << "    \"cohort_fairness\": {\"value\": " << At2x.Fairness
         << ", \"max\": 1.5, \"pass\": " << (FairnessOk ? "true" : "false")
         << "}\n  }\n}\n";
    std::printf("wrote %s\n", Opts.JsonPath.c_str());
  } else {
    std::fprintf(stderr, "bench_service: cannot write %s\n",
                 Opts.JsonPath.c_str());
  }

  if (!Opts.Gate)
    return 0;
  return GoodputOk && FairnessOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  OpenLoopOptions Opts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--open-loop") == 0) {
      Opts.Enabled = true;
    } else if (std::strcmp(argv[I], "--clients") == 0 && I + 1 < argc) {
      Opts.Clients = std::max(1, std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--qps") == 0 && I + 1 < argc) {
      Opts.Qps = std::atof(argv[++I]);
    } else if (std::strcmp(argv[I], "--seconds") == 0 && I + 1 < argc) {
      Opts.Seconds = std::atof(argv[++I]);
    } else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      Opts.JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--no-gate") == 0) {
      Opts.Gate = false;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--open-loop] [--clients N] "
                   "[--qps Q] [--seconds S] [--json PATH] [--no-gate]\n");
      return 2;
    }
  }

  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::string Source = benchSource();
  Parser Parse(Source.c_str(), Ctx, Diags);
  Program *Prog = Parse.parseProgram();
  if (!Diags.hasErrors()) {
    Sema S(Ctx, Diags);
    S.check(Prog);
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "bench_service: benchmark program failed to "
                         "compile:\n%s",
                 Diags.dump().c_str());
    return 1;
  }

  BenchSetup B;
  B.Prog = Prog;
  B.Types = &Ctx.types();
  ClassDecl *C = Prog->findClass("B");
  for (const char *Name : {"k0", "k1", "k2", "k3"})
    B.Filters.push_back(C->findMethod(Name));
  B.Mems = {MemoryConfig::global(), MemoryConfig::globalVector(),
            MemoryConfig::constant(), MemoryConfig::best()};
  // Small arrays keep invoke cost low relative to compilation, which
  // is what a cache benchmark should contrast.
  for (int I = 0; I != 8; ++I)
    B.Inputs.push_back(
        makeFloatArray(*B.Types, 24 + 8 * I, 0.5f * (I + 1)));

  if (Opts.Enabled)
    return runOpenLoopBench(B, Prog, Ctx.types(), Opts);

  std::printf("offload service benchmark: %zu filters x %zu memory "
              "configs per client (every client's grid is key-distinct; "
              "cold = one compile per request)\n\n",
              B.Filters.size(), B.Mems.size());
  std::printf("%-8s %-8s | %12s %12s %9s | %12s %12s %9s | %8s\n", "clients",
              "devices", "cold req/s", "cold lat us", "cold hit",
              "warm req/s", "warm lat us", "warm hit", "speedup");

  bool AcceptancePass = true;
  for (unsigned Devices : {1u, 2u}) {
    for (unsigned Clients : {1u, 2u, 4u}) {
      ServiceConfig SC;
      SC.Devices.assign(Devices, "gtx580");
      SC.CacheCapacity = 512; // hold every key: no warm evictions
      OffloadService Svc(Prog, Ctx.types(), SC);

      // Three passes over the (filter x mem) grid per client; every
      // pick still carries a distinct private-capacity threshold, so
      // the cold phase compiles once per request. Longer phases damp
      // scheduler noise on small machines.
      unsigned PerClient =
          3 * static_cast<unsigned>(B.Filters.size() * B.Mems.size());
      PhaseResult Cold = runPhase(Svc, B, Clients, PerClient);
      PhaseResult Warm = runPhase(Svc, B, Clients, PerClient);

      double Speedup = Warm.throughput() / Cold.throughput();
      std::printf("%-8u %-8u | %12.0f %12.1f %8.0f%% | %12.0f %12.1f "
                  "%8.0f%% | %7.2fx\n",
                  Clients, Devices, Cold.throughput(), Cold.MeanLatencyUs,
                  100.0 * Cold.HitRate, Warm.throughput(),
                  Warm.MeanLatencyUs, 100.0 * Warm.HitRate, Speedup);
      if (Cold.Failed || Warm.Failed) {
        std::fprintf(stderr, "bench_service: %llu requests trapped\n",
                     static_cast<unsigned long long>(Cold.Failed +
                                                     Warm.Failed));
        AcceptancePass = false;
      }

      if (Clients == 4 && Devices == 2) {
        bool SpeedOk = Speedup >= 2.0;
        bool HitOk = Warm.HitRate > 0.90;
        std::printf("\nacceptance @ 4 clients x 2 devices: warm/cold "
                    "throughput %.2fx (need >= 2.00x) %s, warm hit rate "
                    "%.0f%% (need > 90%%) %s\n",
                    Speedup, SpeedOk ? "PASS" : "FAIL",
                    100.0 * Warm.HitRate, HitOk ? "PASS" : "FAIL");
        AcceptancePass = AcceptancePass && SpeedOk && HitOk;
      }
    }
  }

  return AcceptancePass ? 0 : 1;
}
