//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offload-service throughput/latency benchmark. Sweeps client
/// threads x device workers; for each combination runs the same
/// request mix twice against one service instance:
///
///   cold  - fresh service: every request is a distinct (filter,
///           memory config) key, so each pays a GpuCompiler run +
///           OpenCL program build;
///   warm  - same service again: the kernel cache and prepared filter
///           instances absorb all compilation.
///
/// Reported per phase: wall-clock throughput (requests/s), mean and
/// max client-observed latency, and the cache hit rate for the
/// phase's own requests. The 4-client x 2-device row carries the
/// acceptance check: warm throughput >= 2x cold with a >90% warm hit
/// rate. Exit status reflects the check.
///
//===----------------------------------------------------------------------===//

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "service/OffloadService.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

using namespace lime;
using namespace lime::service;

namespace {

/// Four map filters with long unrolled arithmetic bodies: compiling
/// one (GpuCompiler emission, OpenCL parse, bytecode compilation) is
/// substantially more work than running it over a small array, which
/// is the cost structure a kernel cache exists to exploit.
std::string benchSource() {
  std::ostringstream S;
  S << "class B {\n";
  for (int F = 0; F != 4; ++F) {
    S << "  static local float body" << F << "(float x) {\n"
      << "    float y = x;\n";
    for (int I = 0; I != 24; ++I)
      S << "    y = y * 1.0" << (F + 1) << "f + 0.0" << (I % 9 + 1)
        << "f;\n";
    S << "    return y;\n  }\n"
      << "  static local float[[]] k" << F << "(float[[]] xs) { return body"
      << F << " @ xs; }\n";
  }
  S << "}\n";
  return S.str();
}

RtValue makeFloatArray(TypeContext &Types, size_t N, float Seed) {
  auto Arr = std::make_shared<RtArray>();
  Arr->ElementType = Types.floatType();
  Arr->Immutable = true;
  for (size_t I = 0; I != N; ++I)
    Arr->Elems.push_back(
        RtValue::makeFloat(Seed + 0.125f * static_cast<float>(I % 61)));
  return RtValue::makeArray(std::move(Arr));
}

struct PhaseResult {
  double Seconds = 0.0;
  double MeanLatencyUs = 0.0;
  double MaxLatencyUs = 0.0;
  double HitRate = 0.0; // for this phase's requests only
  uint64_t Requests = 0;
  uint64_t Failed = 0;
  double throughput() const { return Requests / Seconds; }
};

struct BenchSetup {
  Program *Prog = nullptr;
  TypeContext *Types = nullptr;
  std::vector<MethodDecl *> Filters;
  std::vector<MemoryConfig> Mems;
  std::vector<RtValue> Inputs; // reused across phases
};

/// One request mix pass: every client walks the (filter x mem) grid
/// so each phase touches every cache key.
PhaseResult runPhase(OffloadService &Svc, const BenchSetup &B,
                     unsigned Clients, unsigned PerClient) {
  KernelCacheStats CacheBefore = Svc.stats().Cache;

  std::vector<double> SumLatencyUs(Clients, 0.0);
  std::vector<double> MaxLatencyUs(Clients, 0.0);
  std::vector<uint64_t> Failures(Clients, 0);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      // Each client keeps a pipeline of outstanding submissions, the
      // way a streaming producer would, instead of a synchronous
      // request/response ping-pong.
      using Clock = std::chrono::steady_clock;
      std::deque<std::pair<Clock::time_point, std::future<ExecResult>>>
          Window;
      auto DrainOne = [&] {
        auto [S0, Fut] = std::move(Window.front());
        Window.pop_front();
        ExecResult E = Fut.get();
        double Us =
            std::chrono::duration<double, std::micro>(Clock::now() - S0)
                .count();
        SumLatencyUs[C] += Us;
        if (Us > MaxLatencyUs[C])
          MaxLatencyUs[C] = Us;
        if (E.Trapped)
          ++Failures[C];
      };
      for (unsigned I = 0; I != PerClient; ++I) {
        size_t Pick = C * PerClient + I;
        MethodDecl *W = B.Filters[Pick % B.Filters.size()];
        const MemoryConfig &Mem =
            B.Mems[(Pick / B.Filters.size()) % B.Mems.size()];
        OffloadRequest R;
        R.Worker = W;
        R.Config.Mem = Mem;
        // Every (client, iteration) gets its own private-capacity
        // threshold, making it a distinct cache key: the cold phase
        // pays one compile per request, and the warm phase repeats
        // the exact same picks so all of them hit. None of the
        // benchmark filters allocate in-kernel arrays, so the
        // threshold never changes the generated code — it stands in
        // for clients arriving with distinct configurations.
        R.Config.Mem.PrivateBytesLimit =
            512 + 16 * static_cast<unsigned>(Pick);
        R.Args.push_back(B.Inputs[Pick % B.Inputs.size()]);
        Window.emplace_back(Clock::now(), Svc.submit(std::move(R)));
        if (Window.size() >= 8)
          DrainOne();
      }
      while (!Window.empty())
        DrainOne();
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.waitIdle();

  PhaseResult P;
  P.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            T0)
                  .count();
  P.Requests = static_cast<uint64_t>(Clients) * PerClient;
  for (unsigned C = 0; C != Clients; ++C) {
    P.MeanLatencyUs += SumLatencyUs[C];
    P.MaxLatencyUs = std::max(P.MaxLatencyUs, MaxLatencyUs[C]);
    P.Failed += Failures[C];
  }
  P.MeanLatencyUs /= static_cast<double>(P.Requests);

  KernelCacheStats CacheAfter = Svc.stats().Cache;
  uint64_t Hits = CacheAfter.Hits - CacheBefore.Hits;
  uint64_t Misses = CacheAfter.Misses - CacheBefore.Misses;
  P.HitRate = (Hits + Misses)
                  ? static_cast<double>(Hits) /
                        static_cast<double>(Hits + Misses)
                  : 0.0;
  return P;
}

} // namespace

int main() {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::string Source = benchSource();
  Parser Parse(Source.c_str(), Ctx, Diags);
  Program *Prog = Parse.parseProgram();
  if (!Diags.hasErrors()) {
    Sema S(Ctx, Diags);
    S.check(Prog);
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "bench_service: benchmark program failed to "
                         "compile:\n%s",
                 Diags.dump().c_str());
    return 1;
  }

  BenchSetup B;
  B.Prog = Prog;
  B.Types = &Ctx.types();
  ClassDecl *C = Prog->findClass("B");
  for (const char *Name : {"k0", "k1", "k2", "k3"})
    B.Filters.push_back(C->findMethod(Name));
  B.Mems = {MemoryConfig::global(), MemoryConfig::globalVector(),
            MemoryConfig::constant(), MemoryConfig::best()};
  // Small arrays keep invoke cost low relative to compilation, which
  // is what a cache benchmark should contrast.
  for (int I = 0; I != 8; ++I)
    B.Inputs.push_back(
        makeFloatArray(*B.Types, 24 + 8 * I, 0.5f * (I + 1)));

  std::printf("offload service benchmark: %zu filters x %zu memory "
              "configs per client (every client's grid is key-distinct; "
              "cold = one compile per request)\n\n",
              B.Filters.size(), B.Mems.size());
  std::printf("%-8s %-8s | %12s %12s %9s | %12s %12s %9s | %8s\n", "clients",
              "devices", "cold req/s", "cold lat us", "cold hit",
              "warm req/s", "warm lat us", "warm hit", "speedup");

  bool AcceptancePass = true;
  for (unsigned Devices : {1u, 2u}) {
    for (unsigned Clients : {1u, 2u, 4u}) {
      ServiceConfig SC;
      SC.Devices.assign(Devices, "gtx580");
      SC.CacheCapacity = 512; // hold every key: no warm evictions
      OffloadService Svc(Prog, Ctx.types(), SC);

      // Three passes over the (filter x mem) grid per client; every
      // pick still carries a distinct private-capacity threshold, so
      // the cold phase compiles once per request. Longer phases damp
      // scheduler noise on small machines.
      unsigned PerClient =
          3 * static_cast<unsigned>(B.Filters.size() * B.Mems.size());
      PhaseResult Cold = runPhase(Svc, B, Clients, PerClient);
      PhaseResult Warm = runPhase(Svc, B, Clients, PerClient);

      double Speedup = Warm.throughput() / Cold.throughput();
      std::printf("%-8u %-8u | %12.0f %12.1f %8.0f%% | %12.0f %12.1f "
                  "%8.0f%% | %7.2fx\n",
                  Clients, Devices, Cold.throughput(), Cold.MeanLatencyUs,
                  100.0 * Cold.HitRate, Warm.throughput(),
                  Warm.MeanLatencyUs, 100.0 * Warm.HitRate, Speedup);
      if (Cold.Failed || Warm.Failed) {
        std::fprintf(stderr, "bench_service: %llu requests trapped\n",
                     static_cast<unsigned long long>(Cold.Failed +
                                                     Warm.Failed));
        AcceptancePass = false;
      }

      if (Clients == 4 && Devices == 2) {
        bool SpeedOk = Speedup >= 2.0;
        bool HitOk = Warm.HitRate > 0.90;
        std::printf("\nacceptance @ 4 clients x 2 devices: warm/cold "
                    "throughput %.2fx (need >= 2.00x) %s, warm hit rate "
                    "%.0f%% (need > 90%%) %s\n",
                    Speedup, SpeedOk ? "PASS" : "FAIL",
                    100.0 * Warm.HitRate, HitOk ? "PASS" : "FAIL");
        AcceptancePass = AcceptancePass && SpeedOk && HitOk;
      }
    }
  }

  return AcceptancePass ? 0 : 1;
}
