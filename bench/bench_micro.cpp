//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the toolchain itself (real
/// wall-clock, not simulated time): Lime frontend, GPU compilation,
/// OpenCL build, VM dispatch throughput, and the wire format.
///
//===----------------------------------------------------------------------===//

#include "compiler/GpuCompiler.h"
#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "ocl/CL.h"
#include "runtime/Serializer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace lime;

namespace {

const std::string &nbodySource() {
  static const std::string Src = wl::makeNBody(false).LimeSource;
  return Src;
}

void BM_LimeParse(benchmark::State &State) {
  for (auto _ : State) {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    Parser P(nbodySource(), Ctx, Diags);
    benchmark::DoNotOptimize(P.parseProgram());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(nbodySource().size()));
}
BENCHMARK(BM_LimeParse);

void BM_LimeParseAndCheck(benchmark::State &State) {
  for (auto _ : State) {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    Parser P(nbodySource(), Ctx, Diags);
    Program *Prog = P.parseProgram();
    Sema S(Ctx, Diags);
    benchmark::DoNotOptimize(S.check(Prog));
  }
}
BENCHMARK(BM_LimeParseAndCheck);

void BM_GpuCompile(benchmark::State &State) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(nbodySource(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  S.check(Prog);
  MethodDecl *W = Prog->findClass("NBody")->findMethod("computeForces");
  for (auto _ : State) {
    GpuCompiler GC(Prog, Ctx.types());
    benchmark::DoNotOptimize(
        GC.compile(W, MemoryConfig::localNoConflictVector()));
  }
}
BENCHMARK(BM_GpuCompile);

void BM_OclBuild(benchmark::State &State) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(nbodySource(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  S.check(Prog);
  MethodDecl *W = Prog->findClass("NBody")->findMethod("computeForces");
  GpuCompiler GC(Prog, Ctx.types());
  CompiledKernel K = GC.compile(W, MemoryConfig::best());
  for (auto _ : State) {
    ocl::ClContext Cl("gtx580");
    std::string Err = Cl.buildProgram(K.Source);
    if (!Err.empty())
      State.SkipWithError("build failed");
  }
}
BENCHMARK(BM_OclBuild);

void BM_VmDispatch(benchmark::State &State) {
  ocl::ClContext Cl("gtx580");
  std::string Err = Cl.buildProgram(R"(
    __kernel void k(__global float* out, __global const float* in, int n) {
      int i = get_global_id(0);
      if (i < n) out[i] = in[i] * 2.0f + 1.0f;
    }
  )");
  if (!Err.empty()) {
    State.SkipWithError("build failed");
    return;
  }
  const unsigned N = 4096;
  std::vector<float> In(N, 1.5f);
  ocl::ClBuffer BIn = Cl.createBuffer(N * 4);
  ocl::ClBuffer BOut = Cl.createBuffer(N * 4);
  Cl.enqueueWrite(BIn, In.data(), N * 4);
  for (auto _ : State) {
    Err = Cl.enqueueKernel("k",
                           {ocl::LaunchArg::buffer(BOut.Offset, BOut.Space),
                            ocl::LaunchArg::buffer(BIn.Offset, BIn.Space),
                            ocl::LaunchArg::i32(N)},
                           {N, 1}, {128, 1});
    if (!Err.empty())
      State.SkipWithError("launch failed");
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_VmDispatch);

void BM_WireSerialize(benchmark::State &State) {
  TypeContext Types;
  std::vector<float> Data(1 << State.range(0), 0.5f);
  RtValue V = wl::makeFloatMatrix(Types, Data, 4);
  rt::WireFormat Wire(true);
  for (auto _ : State) {
    rt::MarshalCost Cost;
    benchmark::DoNotOptimize(Wire.serialize(V, Cost));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Data.size() * 4));
}
BENCHMARK(BM_WireSerialize)->Arg(10)->Arg(14)->Arg(18);

void BM_WireDeserialize(benchmark::State &State) {
  TypeContext Types;
  std::vector<float> Data(1 << 14, 0.5f);
  RtValue V = wl::makeFloatMatrix(Types, Data, 4);
  rt::WireFormat Wire(true);
  rt::MarshalCost C0;
  std::vector<uint8_t> Bytes = Wire.serialize(V, C0);
  const ArrayType *RowTy = Types.getArrayType(Types.floatType(), true, 4);
  const ArrayType *MatTy = Types.getArrayType(RowTy, true, 0);
  for (auto _ : State) {
    rt::MarshalCost Cost;
    benchmark::DoNotOptimize(Wire.deserialize(Bytes, MatTy, Cost));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Bytes.size()));
}
BENCHMARK(BM_WireDeserialize);

} // namespace

BENCHMARK_MAIN();
