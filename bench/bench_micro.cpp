//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the toolchain itself (real
/// wall-clock, not simulated time): Lime frontend, GPU compilation,
/// OpenCL build, VM dispatch throughput, and the wire format.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "compiler/GpuCompiler.h"
#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "ocl/CL.h"
#include "ocl/Jit.h"
#include "runtime/Serializer.h"
#include "workloads/Driver.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

using namespace lime;

namespace {

const std::string &nbodySource() {
  static const std::string Src = wl::makeNBody(false).LimeSource;
  return Src;
}

void BM_LimeParse(benchmark::State &State) {
  for (auto _ : State) {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    Parser P(nbodySource(), Ctx, Diags);
    benchmark::DoNotOptimize(P.parseProgram());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(nbodySource().size()));
}
BENCHMARK(BM_LimeParse);

void BM_LimeParseAndCheck(benchmark::State &State) {
  for (auto _ : State) {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    Parser P(nbodySource(), Ctx, Diags);
    Program *Prog = P.parseProgram();
    Sema S(Ctx, Diags);
    benchmark::DoNotOptimize(S.check(Prog));
  }
}
BENCHMARK(BM_LimeParseAndCheck);

void BM_GpuCompile(benchmark::State &State) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(nbodySource(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  S.check(Prog);
  MethodDecl *W = Prog->findClass("NBody")->findMethod("computeForces");
  for (auto _ : State) {
    GpuCompiler GC(Prog, Ctx.types());
    benchmark::DoNotOptimize(
        GC.compile(W, MemoryConfig::localNoConflictVector()));
  }
}
BENCHMARK(BM_GpuCompile);

void BM_OclBuild(benchmark::State &State) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(nbodySource(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  S.check(Prog);
  MethodDecl *W = Prog->findClass("NBody")->findMethod("computeForces");
  GpuCompiler GC(Prog, Ctx.types());
  CompiledKernel K = GC.compile(W, MemoryConfig::best());
  for (auto _ : State) {
    ocl::ClContext Cl("gtx580");
    std::string Err = Cl.buildProgram(K.Source);
    if (!Err.empty())
      State.SkipWithError("build failed");
  }
}
BENCHMARK(BM_OclBuild);

void BM_VmDispatch(benchmark::State &State) {
  ocl::ClContext Cl("gtx580");
  std::string Err = Cl.buildProgram(R"(
    __kernel void k(__global float* out, __global const float* in, int n) {
      int i = get_global_id(0);
      if (i < n) out[i] = in[i] * 2.0f + 1.0f;
    }
  )");
  if (!Err.empty()) {
    State.SkipWithError("build failed");
    return;
  }
  const unsigned N = 4096;
  std::vector<float> In(N, 1.5f);
  ocl::ClBuffer BIn = Cl.createBuffer(N * 4);
  ocl::ClBuffer BOut = Cl.createBuffer(N * 4);
  Cl.enqueueWrite(BIn, In.data(), N * 4);
  for (auto _ : State) {
    Err = Cl.enqueueKernel("k",
                           {ocl::LaunchArg::buffer(BOut.Offset, BOut.Space),
                            ocl::LaunchArg::buffer(BIn.Offset, BIn.Space),
                            ocl::LaunchArg::i32(N)},
                           {N, 1}, {128, 1});
    if (!Err.empty())
      State.SkipWithError("launch failed");
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_VmDispatch);

void BM_WireSerialize(benchmark::State &State) {
  TypeContext Types;
  std::vector<float> Data(1 << State.range(0), 0.5f);
  RtValue V = wl::makeFloatMatrix(Types, Data, 4);
  rt::WireFormat Wire(true);
  for (auto _ : State) {
    rt::MarshalCost Cost;
    benchmark::DoNotOptimize(Wire.serialize(V, Cost));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Data.size() * 4));
}
BENCHMARK(BM_WireSerialize)->Arg(10)->Arg(14)->Arg(18);

void BM_WireDeserialize(benchmark::State &State) {
  TypeContext Types;
  std::vector<float> Data(1 << 14, 0.5f);
  RtValue V = wl::makeFloatMatrix(Types, Data, 4);
  rt::WireFormat Wire(true);
  rt::MarshalCost C0;
  std::vector<uint8_t> Bytes = Wire.serialize(V, C0);
  const ArrayType *RowTy = Types.getArrayType(Types.floatType(), true, 4);
  const ArrayType *MatTy = Types.getArrayType(RowTy, true, 0);
  for (auto _ : State) {
    rt::MarshalCost Cost;
    benchmark::DoNotOptimize(Wire.deserialize(Bytes, MatTy, Cost));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Bytes.size()));
}
BENCHMARK(BM_WireDeserialize);

//===----------------------------------------------------------------------===//
// jit_vs_interp: per-workload native-JIT speedup over the interpreter
// (host wall-clock inside the simulator's dispatch loop; simulated
// time is engine-invariant). Also reports per-kernel compile cost
// against the 150 ms budget and writes BENCH_jit.json.
//===----------------------------------------------------------------------===//

struct JitBenchRow {
  std::string Id;
  bool LibmSaturated = false; // reported but excluded from the gate
  double JitMs = 0.0;
  double InterpMs = 0.0;
  double CompileMs = 0.0;    // worst kernel of the workload
  size_t CodeBytes = 0;      // summed over the workload's kernels
  uint64_t BcProven = 0;     // dispatch-time proven scalar memory ops
  uint64_t BcTotal = 0;      // ... out of this many JIT-visible ones
  double speedup() const { return JitMs > 0 ? InterpMs / JitMs : 0.0; }
};

/// One engine measurement: best-of-\p Reps wall dispatch time.
double measureWall(const wl::Workload &W, double Scale, bool Jit,
                   unsigned Reps, std::string &Err) {
  ocl::setJitEnabled(Jit);
  double Best = 0.0;
  for (unsigned R = 0; R < Reps; ++R) {
    wl::GeneratedKernelRun Run =
        wl::runGeneratedKernel(W, "gtx580", MemoryConfig::global(), Scale);
    if (!Run.ok()) {
      Err = Run.Error;
      return 0.0;
    }
    if (R == 0 || Run.WallDispatchMs < Best)
      Best = Run.WallDispatchMs;
  }
  return Best;
}

int runJitVsInterp(int Argc, char **Argv) {
  const char *Ids[] = {"nbody_sp", "nbody_dp", "mosaic",    "cp",       "mriq",
                       "rpes",     "crypt",    "series_sp", "series_dp"};
  // Both engines must produce bit-identical results, so transcendentals
  // go through the very same libm calls in native and interpreted code.
  // The Series kernels are one sin/cos evaluation per element with
  // trivial surrounding arithmetic: as the problem scales up, both
  // engines converge to the same wall time (measured 1.06x at 3x
  // scale), i.e. the row measures libm, not engine dispatch. They are
  // reported below but excluded from the map/reduce speedup gate.
  const char *LibmSaturatedIds[] = {"series_sp", "series_dp"};
  const unsigned Reps = 3;
  const bool SavedJit = ocl::jitEnabled();
  std::vector<JitBenchRow> Rows;
  std::printf("%-12s %12s %12s %9s %12s %10s %9s\n", "workload",
              "interp ms", "jit ms", "speedup", "compile ms", "code B",
              "proven");
  lime::bench::hr();
  for (const char *Id : Ids) {
    const wl::Workload &W = wl::workloadById(Id);
    double Scale = lime::bench::benchScale(Id, Argc, Argv);
    JitBenchRow Row;
    Row.Id = Id;
    for (const char *L : LibmSaturatedIds)
      Row.LibmSaturated |= Row.Id == L;
    std::string Err;
    ocl::resetJitStats();
    Row.JitMs = measureWall(W, Scale, true, Reps, Err);
    for (const ocl::JitKernelStats &S : ocl::jitStatsSnapshot()) {
      if (!S.DeoptReason.empty()) {
        std::fprintf(stderr, "%s: kernel '%s' deopted: %s\n", Id,
                     S.Kernel.c_str(), S.DeoptReason.c_str());
        Err = "kernel deopted";
      }
      Row.CompileMs = std::max(Row.CompileMs, S.CompileMs);
      Row.CodeBytes += S.CodeBytes;
      Row.BcProven += S.BcMemOpsProven;
      Row.BcTotal += S.BcMemOpsTotal;
    }
    if (Err.empty())
      Row.InterpMs = measureWall(W, Scale, false, Reps, Err);
    ocl::setJitEnabled(SavedJit);
    if (!Err.empty()) {
      std::fprintf(stderr, "%s: %s\n", Id, Err.c_str());
      return 1;
    }
    std::printf("%-12s %12.3f %12.3f %8.2fx%s %11.3f %10zu %4llu/%-4llu\n",
                Id, Row.InterpMs, Row.JitMs, Row.speedup(),
                Row.LibmSaturated ? "*" : " ", Row.CompileMs, Row.CodeBytes,
                static_cast<unsigned long long>(Row.BcProven),
                static_cast<unsigned long long>(Row.BcTotal));
    Rows.push_back(Row);
  }

  double GatedLogSum = 0.0, AllLogSum = 0.0;
  unsigned GatedCount = 0;
  double WorstCompile = 0.0;
  for (const JitBenchRow &R : Rows) {
    AllLogSum += std::log(R.speedup());
    if (!R.LibmSaturated) {
      GatedLogSum += std::log(R.speedup());
      ++GatedCount;
    }
    WorstCompile = std::max(WorstCompile, R.CompileMs);
  }
  double Geomean = std::exp(GatedLogSum / static_cast<double>(GatedCount));
  double AllGeomean = std::exp(AllLogSum / static_cast<double>(Rows.size()));
  uint64_t ProvenSum = 0, TotalSum = 0;
  for (const JitBenchRow &R : Rows) {
    ProvenSum += R.BcProven;
    TotalSum += R.BcTotal;
  }
  double Coverage =
      TotalSum ? static_cast<double>(ProvenSum) / static_cast<double>(TotalSum)
               : 0.0;
  lime::bench::hr();
  std::printf("geomean speedup (map/reduce workloads): %.2fx   "
              "(all, incl. libm-saturated*): %.2fx\n",
              Geomean, AllGeomean);
  std::printf("worst kernel compile: %.3f ms (budget 150 ms)\n", WorstCompile);
  std::printf("dispatch-time proof coverage: %llu of %llu scalar memory ops "
              "(%.1f%%) run as native loads/stores\n",
              static_cast<unsigned long long>(ProvenSum),
              static_cast<unsigned long long>(TotalSum), 100.0 * Coverage);
  std::printf("* libm-saturated: both engines spend ~all wall time inside "
              "identical libm calls\n  (bit-exact parity); reported but not "
              "gated.\n");

  std::ofstream Json("BENCH_jit.json");
  Json << "{\n  \"benchmark\": \"jit_vs_interp\",\n  \"device\": "
          "\"gtx580\",\n  \"workloads\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const JitBenchRow &R = Rows[I];
    Json << "    {\"id\": \"" << R.Id << "\", \"interp_ms\": " << R.InterpMs
         << ", \"jit_ms\": " << R.JitMs << ", \"speedup\": " << R.speedup()
         << ", \"compile_ms\": " << R.CompileMs
         << ", \"code_bytes\": " << R.CodeBytes
         << ", \"bc_ops_proven\": " << R.BcProven
         << ", \"bc_ops_total\": " << R.BcTotal << ", \"libm_saturated\": "
         << (R.LibmSaturated ? "true" : "false") << "}"
         << (I + 1 < Rows.size() ? "," : "") << "\n";
  }
  Json << "  ],\n  \"geomean_speedup\": " << Geomean
       << ",\n  \"geomean_speedup_all\": " << AllGeomean
       << ",\n  \"worst_compile_ms\": " << WorstCompile
       << ",\n  \"compile_budget_ms\": 150"
       << ",\n  \"bc_proof_coverage\": " << Coverage << "\n}\n";
  std::printf("wrote BENCH_jit.json\n");

  // Regression gates: every kernel compiles within budget, and the
  // native engine actually pays off on the map/reduce workloads.
  if (WorstCompile >= 150.0) {
    std::fprintf(stderr, "FAIL: kernel compile time %.3f ms exceeds the "
                 "150 ms budget\n", WorstCompile);
    return 1;
  }
  if (Geomean < 3.0) {
    std::fprintf(stderr, "FAIL: map/reduce geomean speedup %.2fx below the "
                 "3x bar\n", Geomean);
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "jit_vs_interp") == 0)
    return runJitVsInterp(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
