//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7(b): end-to-end speedup of each benchmark on
/// the GTX 580 and HD 5970 (all communication and runtime overhead
/// included), normalized to the Lime-on-bytecode baseline. The paper
/// reports 12x-431x, with the smallest gains for the non-floating-
/// point / simple-float benchmarks (JG-Crypt, Mosaic, N-Body) and the
/// largest for the transcendental-heavy ones, and double precision
/// 2-3x slower than single on the GTX 580 (~1.5x on the HD 5970).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

int main(int argc, char **argv) {
  std::printf("Figure 7(b): end-to-end GPU speedup vs Lime bytecode "
              "(includes overhead)\n");
  hr('=');
  std::printf("%-20s %14s | %12s %12s\n", "Benchmark", "baseline(ms)",
              "GTX580", "HD5970");
  hr();

  double MinSp = 1e30;
  double MaxSp = 0.0;
  for (const Workload &W : workloadRegistry()) {
    double Scale = benchScale(W.Id, argc, argv);
    RunOutcome Base = runWorkload(W, RunMode::LimeBytecode, Scale);
    if (!Base.ok()) {
      std::printf("%-20s ERROR %s\n", W.Name.c_str(), Base.Error.c_str());
      return 1;
    }
    std::printf("%-20s %14.2f |", W.Name.c_str(), Base.EndToEndNs / 1e6);
    for (const char *Dev : {"gtx580", "hd5970"}) {
      rt::OffloadConfig OC;
      OC.DeviceName = Dev;
      RunOutcome G = runWorkload(W, RunMode::Offloaded, Scale, OC);
      if (!G.ok()) {
        std::printf(" ERROR(%s: %s)", Dev, G.Error.c_str());
        continue;
      }
      double Sp = Base.EndToEndNs / G.EndToEndNs;
      MinSp = std::min(MinSp, Sp);
      MaxSp = std::max(MaxSp, Sp);
      std::printf(" %11.1fx", Sp);
    }
    std::printf("\n");
  }
  hr();
  std::printf("speedup range: %.0fx - %.0fx   (paper: 12x - 431x)\n", MinSp,
              MaxSp);
  std::printf("note: double-precision rows should land 2-3x below their\n"
              "single-precision siblings on the GTX 580, ~1.5-2x on the "
              "HD 5970 (paper §5.1)\n");
  return 0;
}
