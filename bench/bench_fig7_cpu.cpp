//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7(a): end-to-end speedup on the Core i7 with
/// the OpenCL multicore runtime at 1 and 6 cores, normalized to Lime
/// bytecode — plus the §5.1 Lime-bytecode-vs-pure-Java column (the
/// baseline quality statement: 95-98%, ~50% for JG-Crypt).
///
/// Paper shapes: 1-core roughly matches the baseline (within ~10%);
/// 6 cores gives 4.8-5.7x for five benchmarks and superlinear
/// 13.6-32.5x for the transcendental-heavy four (hyperthreading plus
/// OpenCL's faster math).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

int main(int argc, char **argv) {
  std::printf("Figure 7(a): end-to-end CPU speedup vs Lime bytecode "
              "(OpenCL multicore runtime)\n");
  hr('=');
  std::printf("%-20s %11s | %9s %9s | %11s\n", "Benchmark", "base(ms)",
              "1-core", "6-core", "lime/java");
  hr();

  for (const Workload &W : workloadRegistry()) {
    double Scale = benchScale(W.Id, argc, argv);
    RunOutcome Base = runWorkload(W, RunMode::LimeBytecode, Scale);
    RunOutcome Java = runWorkload(W, RunMode::PureJava, Scale);
    if (!Base.ok() || !Java.ok()) {
      std::printf("%-20s ERROR %s%s\n", W.Name.c_str(), Base.Error.c_str(),
                  Java.Error.c_str());
      return 1;
    }
    std::printf("%-20s %11.2f |", W.Name.c_str(), Base.EndToEndNs / 1e6);
    for (const char *Dev : {"corei7x1", "corei7"}) {
      rt::OffloadConfig OC;
      OC.DeviceName = Dev;
      OC.LocalSize = 16; // CPU runtimes favor small work-groups
      RunOutcome C = runWorkload(W, RunMode::Offloaded, Scale, OC);
      if (!C.ok()) {
        std::printf(" ERR(%s)", C.Error.c_str());
        continue;
      }
      std::printf(" %8.2fx", Base.EndToEndNs / C.EndToEndNs);
    }
    // §5.1 baseline quality: Lime bytecode as a fraction of pure Java.
    std::printf(" | %10.0f%%\n", 100.0 * Java.EndToEndNs / Base.EndToEndNs);
  }
  hr();
  std::printf("paper: 1-core ~= baseline; 6-core 4.8-5.7x, superlinear\n"
              "13.6-32.5x for the transcendental benchmarks; Lime bytecode\n"
              "is 95-98%% of pure Java (~50%% for JG-Crypt)\n");
  return 0;
}
