//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 8: kernel-only performance of the compiled Lime
/// code relative to hand-tuned OpenCL, for the five comparator
/// benchmarks under the eight memory configurations, on the GTX 8800,
/// GTX 580 (Fermi) and HD 5970. Values above 1.0 mean the generated
/// code beat the human (the paper's Mosaic case); the paper's best
/// configurations land between 0.75 and 1.40.
///
/// Expected shapes (§5.2): global-only is worst everywhere (up to
/// ~10x worse on the GTX 8800, ~60% on the HD 5970, ~20% on the
/// Fermi, whose caches flatten the whole figure); Parboil-RPES only
/// responds to texture memory on the GTX 8800; Parboil-MRIQ slightly
/// exceeds the hand-tuned kernel with constant memory.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace lime;
using namespace lime::wl;
using namespace lime::bench;

int main(int argc, char **argv) {
  struct Config {
    const char *Label;
    MemoryConfig C;
  };
  const Config Configs[] = {
      {"Global", MemoryConfig::global()},
      {"Global+Vector", MemoryConfig::globalVector()},
      {"Local", MemoryConfig::local()},
      {"Local+Conf.rm", MemoryConfig::localNoConflict()},
      {"Local+CR+Vec", MemoryConfig::localNoConflictVector()},
      {"Constant", MemoryConfig::constant()},
      {"Constant+Vec", MemoryConfig::constantVector()},
      {"Texture", MemoryConfig::texture()},
  };
  const char *Benchmarks[] = {"nbody_sp", "mosaic", "cp", "mriq", "rpes"};
  const char *Devices[] = {"gtx8800", "gtx580", "hd5970"};
  const char *DeviceNames[] = {"NVidia GTX8800", "NVidia GTX580 (Fermi)",
                               "AMD Radeon HD5970"};

  std::printf("Figure 8: Lime vs hand-tuned OpenCL kernel times "
              "(speedup relative to hand-tuned; >1 beats the human)\n");

  for (int D = 0; D != 3; ++D) {
    std::printf("\n(%c) %s\n", 'a' + D, DeviceNames[D]);
    hr('=', 130);
    std::printf("%-16s", "Benchmark");
    for (const Config &C : Configs)
      std::printf(" %14s", C.Label);
    std::printf("\n");
    hr('-', 130);
    for (const char *B : Benchmarks) {
      const Workload &W = workloadById(B);
      double Scale = benchScale(W.Id, argc, argv);
      HandTunedResult Hand =
          runHandTunedKernel(W, Devices[D], Scale, /*LocalSize=*/64);
      if (!Hand.ok()) {
        std::printf("%-16s hand-tuned ERROR: %s\n", W.Id.c_str(),
                    Hand.Error.c_str());
        return 1;
      }
      std::printf("%-16s", W.Name.c_str());
      for (const Config &C : Configs) {
        GeneratedKernelRun Gen =
            runGeneratedKernel(W, Devices[D], C.C, Scale, 64);
        if (!Gen.ok()) {
          std::printf(" %14s", "ERROR");
          continue;
        }
        std::printf(" %13.2fx", Hand.KernelNs / Gen.KernelNs);
      }
      std::printf("\n");
    }
    hr('-', 130);
  }
  std::printf("\npaper: best configurations reach 75%%-140%% of hand-tuned;"
              " Fermi is the least sensitive to the memory configuration\n");
  return 0;
}
