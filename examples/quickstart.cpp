//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a ten-line Lime program, run it on the
/// evaluator, offload its filter to a simulated GTX 580, and compare.
///
///   $ ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "runtime/Offload.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lime;

int main() {
  // 1. A Lime program: `scale` is an isolated filter whose body is a
  //    data-parallel map (the '@' operator).
  const std::string Source = R"(
    class Quick {
      static local float times2plus1(float x) { return x * 2f + 1f; }
      static local float[[]] scale(float[[]] xs) {
        return times2plus1 @ xs;
      }
    }
  )";

  // 2. Front end: parse and type-check.
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(Source, Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  if (!S.check(Prog)) {
    std::printf("compile error:\n%s", Diags.dump().c_str());
    return 1;
  }

  // 3. Build an input value (float[[8]]) and run on the evaluator —
  //    the "JVM" baseline.
  std::vector<float> Data = {1, 2, 3, 4, 5, 6, 7, 8};
  RtValue Xs = wl::makeFloatArray(Ctx.types(), Data);
  Interp I(Prog, Ctx.types());
  MethodDecl *Filter = Prog->findClass("Quick")->findMethod("scale");
  ExecResult Base = I.callMethod(Filter, nullptr, {Xs});
  if (!Base.ok()) {
    std::printf("evaluator trapped: %s\n", Base.TrapMessage.c_str());
    return 1;
  }
  std::printf("evaluator : %s\n", Base.Value.str().c_str());
  std::printf("simulated JVM time: %.0f ns\n\n", I.simTimeNs());

  // 4. Offload the same filter to a simulated GTX 580: the GPU
  //    compiler identifies the kernel, optimizes the memory mapping,
  //    emits OpenCL, and the runtime orchestrates the round trip.
  rt::OffloadConfig Config;
  Config.DeviceName = "gtx580";
  rt::OffloadedFilter Dev(Prog, Ctx.types(), Filter, Config);
  if (!Dev.ok()) {
    std::printf("not offloadable: %s\n", Dev.error().c_str());
    return 1;
  }
  ExecResult Gpu = Dev.invoke({Xs});
  if (!Gpu.ok()) {
    std::printf("device failed: %s\n", Gpu.TrapMessage.c_str());
    return 1;
  }
  std::printf("gtx580    : %s\n", Gpu.Value.str().c_str());
  std::printf("kernel %.0f ns, marshal %.0f ns, transfers %.0f ns\n\n",
              Dev.stats().KernelNs,
              Dev.stats().Marshal.JavaNs + Dev.stats().Marshal.NativeNs,
              Dev.stats().PcieNs);

  // 5. Show what the compiler wrote for us.
  std::printf("generated OpenCL:\n%s", Dev.kernel().Source.c_str());
  return 0;
}
