//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler explorer for the memory optimizer: compiles a benchmark's
/// filter under each Figure 8 configuration and prints the generated
/// OpenCL side by side with the optimizer's placement decisions —
/// watch the same Lime loop become global loads, a __constant
/// pointer, a padded __local tile with barriers, or read_imagef
/// fetches.
///
///   $ ./examples/kernel_explorer [workload] [config]
///     workload: nbody_sp mosaic cp mriq rpes crypt series_sp (default nbody_sp)
///     config:   global global+v local local+nc local+nc+v constant
///               constant+v texture   (default: print all)
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisOracle.h"
#include "compiler/GpuCompiler.h"
#include "lime/parser/Parser.h"
#include "lime/sema/Sema.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>
#include <string>

using namespace lime;
using namespace lime::wl;

int main(int argc, char **argv) {
  std::string Id = argc > 1 ? argv[1] : "nbody_sp";
  std::string Only = argc > 2 ? argv[2] : "";

  const Workload &W = workloadById(Id);
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Parser P(W.LimeSource, Ctx, Diags);
  Program *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  if (!S.check(Prog)) {
    std::printf("compile error:\n%s", Diags.dump().c_str());
    return 1;
  }
  MethodDecl *Filter =
      Prog->findClass(W.ClassName)->findMethod(W.FilterMethod);

  const std::map<std::string, MemoryConfig> Configs = {
      {"global", MemoryConfig::global()},
      {"global+v", MemoryConfig::globalVector()},
      {"local", MemoryConfig::local()},
      {"local+nc", MemoryConfig::localNoConflict()},
      {"local+nc+v", MemoryConfig::localNoConflictVector()},
      {"constant", MemoryConfig::constant()},
      {"constant+v", MemoryConfig::constantVector()},
      {"texture", MemoryConfig::texture()}};

  for (const auto &[Name, Config] : Configs) {
    if (!Only.empty() && Name != Only)
      continue;
    CompiledKernel K =
        analysis::oracleCompile(Prog, Ctx.types(), Filter, Config);
    std::printf("//======================= %s: %s =======================\n",
                Id.c_str(), Name.c_str());
    if (!K.Ok) {
      std::printf("// not compiled: %s\n\n", K.Error.c_str());
      continue;
    }
    std::printf("// optimizer decisions:\n");
    for (const KernelArray &A : K.Plan.Arrays) {
      std::printf("//   %-6s -> %-8s%s", A.CName.c_str(),
                  memSpaceName(A.Space), A.Vectorized ? " +vector" : "");
      if (A.Space == MemSpace::LocalTiled)
        std::printf(" (tiled, %u rows, stride %u words)", A.TileRows,
                    A.RowStride);
      if (!A.IsOutput)
        std::printf(" [%s]", placementReasonName(A.ConstReason));
      std::printf("\n");
    }
    std::printf("%s\n", K.Source.c_str());
  }
  return 0;
}
