//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mosaic demo: match reference-image tiles against a tile library on
/// the device, then verify against the evaluator and report match
/// quality — the workload where the compiled code famously beats the
/// hand-tuned kernel (§5.2).
///
///   $ ./examples/mosaic_demo
///
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include <cstdio>

using namespace lime;
using namespace lime::wl;

int main() {
  const Workload &W = workloadById("mosaic");
  const double Scale = 0.15;

  // Evaluator oracle and device run.
  RunOutcome Base = runWorkload(W, RunMode::LimeBytecode, Scale);
  rt::OffloadConfig OC;
  OC.DeviceName = "gtx580";
  RunOutcome Gpu = runWorkload(W, RunMode::Offloaded, Scale, OC);
  if (!Base.ok() || !Gpu.ok()) {
    std::printf("failed: %s%s\n", Base.Error.c_str(), Gpu.Error.c_str());
    return 1;
  }

  const auto &A = Base.Result.array()->Elems;
  const auto &B = Gpu.Result.array()->Elems;
  size_t Agree = 0;
  for (size_t I = 0; I != A.size() && I != B.size(); ++I)
    if (A[I].asIntegral() == B[I].asIntegral())
      ++Agree;
  std::printf("matched %zu tiles; evaluator and device agree on %zu "
              "(%.1f%%)\n",
              A.size(), Agree, 100.0 * Agree / A.size());
  std::printf("first matches: ");
  for (size_t I = 0; I != 10 && I != B.size(); ++I)
    std::printf("%lld ", static_cast<long long>(B[I].asIntegral()));
  std::printf("\n\n");

  std::printf("end-to-end: baseline %.2f ms, device %.2f ms (%.1fx)\n",
              Base.EndToEndNs / 1e6, Gpu.EndToEndNs / 1e6,
              Base.EndToEndNs / Gpu.EndToEndNs);

  // The §5.2 comparison: generated (best config) vs hand-tuned.
  GeneratedKernelRun Gen =
      runGeneratedKernel(W, "gtx580", MemoryConfig::best(), Scale, 64);
  HandTunedResult Hand = runHandTunedKernel(W, "gtx580", Scale, 64);
  if (Gen.ok() && Hand.ok())
    std::printf("kernel-only: generated %.0f ns vs hand-tuned %.0f ns — "
                "the compiler %s the human (%.2fx)\n",
                Gen.KernelNs, Hand.KernelNs,
                Gen.KernelNs < Hand.KernelNs ? "beats" : "trails",
                Hand.KernelNs / Gen.KernelNs);
  return 0;
}
