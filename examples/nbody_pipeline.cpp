//===----------------------------------------------------------------------===//
//
// Part of limecc, a C++ reproduction of the Lime GPU compiler (PLDI 2012).
// Distributed under the MIT license; see LICENSE for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's flagship example, end to end: the N-Body task graph
/// (`finish source => computeForces => sink`, Fig. 2) running with
/// the filter offloaded to each simulated device, reporting the
/// per-node cost decomposition the runtime gathers.
///
///   $ ./examples/nbody_pipeline [device]      (default: gtx580)
///
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include <cstdio>
#include <string>

using namespace lime;
using namespace lime::wl;

int main(int argc, char **argv) {
  std::string Device = argc > 1 ? argv[1] : "gtx580";
  const Workload &W = workloadById("nbody_sp");
  const double Scale = 0.1; // ~400 particles

  std::printf("N-Body pipeline (%s), Lime source:\n%s\n", Device.c_str(),
              W.LimeSource.c_str());

  // Baseline: everything in the evaluator ("bytecode").
  RunOutcome Base = runWorkload(W, RunMode::LimeBytecode, Scale);
  if (!Base.ok()) {
    std::printf("baseline failed: %s\n", Base.Error.c_str());
    return 1;
  }
  std::printf("baseline (bytecode): %.3f ms simulated\n",
              Base.EndToEndNs / 1e6);

  // Offloaded: the filter runs on the device.
  rt::OffloadConfig OC;
  OC.DeviceName = Device;
  RunOutcome Gpu = runWorkload(W, RunMode::Offloaded, Scale, OC);
  if (!Gpu.ok()) {
    std::printf("offload failed: %s\n", Gpu.Error.c_str());
    return 1;
  }
  std::printf("offloaded (%s): %.3f ms simulated -> %.1fx speedup\n\n",
              Device.c_str(), Gpu.EndToEndNs / 1e6,
              Base.EndToEndNs / Gpu.EndToEndNs);

  std::printf("per-node accounting:\n");
  for (const rt::NodeStats &N : Gpu.Nodes) {
    if (N.Offloaded) {
      std::printf(
          "  %-24s device: kernel %.0f ns, marshal %.0f ns, api %.0f ns, "
          "pcie %.0f ns (%llu invocations)\n",
          N.Name.c_str(), N.Device.KernelNs,
          N.Device.Marshal.JavaNs + N.Device.Marshal.NativeNs,
          N.Device.ApiNs, N.Device.PcieNs,
          static_cast<unsigned long long>(N.Device.Invocations));
    } else {
      std::printf("  %-24s host:   %.0f ns (%llu invocations)\n",
                  N.Name.c_str(), N.HostNs,
                  static_cast<unsigned long long>(N.Invocations));
    }
  }

  std::printf("\nforces on the first three bodies: ");
  const auto &Rows = Gpu.Result.array()->Elems;
  for (size_t I = 0; I != 3 && I != Rows.size(); ++I)
    std::printf("%s ", Rows[I].str().c_str());
  std::printf("\n");
  return 0;
}
