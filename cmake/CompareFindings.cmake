# Run `limec --analyze-workloads --findings-format=json` and diff the
# output against the checked-in golden sweep. Any drift in placements,
# findings, or the summary counts fails the test; refresh the golden
# with:
#
#   limec --analyze-workloads --findings-format=json \
#     > tests/golden/findings-gtx580.json
#
# Invoked as:
#   cmake -DLIMEC=<path> -DGOLDEN=<path> -P cmake/CompareFindings.cmake

if(NOT DEFINED LIMEC OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "CompareFindings.cmake needs -DLIMEC=... and -DGOLDEN=...")
endif()

execute_process(
  COMMAND "${LIMEC}" --analyze-workloads --findings-format=json
  OUTPUT_VARIABLE ACTUAL
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "limec --analyze-workloads exited with ${RC}")
endif()

file(READ "${GOLDEN}" EXPECTED)

if(NOT ACTUAL STREQUAL EXPECTED)
  # Write the fresh document next to the build so the two can be
  # diffed by hand (or copied over the golden if the drift is wanted).
  file(WRITE "${CMAKE_BINARY_DIR}/findings-actual.json" "${ACTUAL}")
  message(FATAL_ERROR
    "findings JSON drifted from ${GOLDEN}\n"
    "actual output saved to findings-actual.json; if the change is "
    "intentional, regenerate the golden with limec --analyze-workloads "
    "--findings-format=json")
endif()
