# Golden-diff for the limec-service-stats-v1 JSON schema: run a
# service-mode limec with --stats-format json and compare the *set of
# keys* in the emitted document against the checked-in list. Values
# (counts, timings) vary run to run and are not compared; the contract
# under test is the schema — within v1, keys are only ever added, and
# an addition must update the golden deliberately.
#
# Refresh after an intentional schema change:
#
#   limec examples/lime/dotproduct.lime --run Dot.main --offload \
#     --service-threads 2 --sched-policy cost --stats-format json \
#     | grep -o '"[a-z_0-9]*":' | sort -u \
#     > tests/golden/service-stats-keys.txt
#
# Invoked as:
#   cmake -DLIMEC=<path> -DSRC=<repo root> -DGOLDEN=<path> \
#     -P cmake/CompareStatsSchema.cmake

if(NOT DEFINED LIMEC OR NOT DEFINED SRC OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR
    "CompareStatsSchema.cmake needs -DLIMEC=..., -DSRC=..., -DGOLDEN=...")
endif()

execute_process(
  COMMAND "${LIMEC}" "${SRC}/examples/lime/dotproduct.lime"
          --run Dot.main --offload --service-threads 2
          --sched-policy cost --stats-format json
  OUTPUT_VARIABLE ACTUAL
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "limec service stats run exited with ${RC}")
endif()

# The run prints the program's own output before the stats document;
# keys are unambiguous because only the JSON section contains them.
string(REGEX MATCHALL "\"[a-z_0-9]+\":" RAW_KEYS "${ACTUAL}")
list(REMOVE_DUPLICATES RAW_KEYS)
list(SORT RAW_KEYS)
string(JOIN "\n" ACTUAL_KEYS ${RAW_KEYS})
set(ACTUAL_KEYS "${ACTUAL_KEYS}\n")

file(READ "${GOLDEN}" EXPECTED_KEYS)

if(NOT ACTUAL_KEYS STREQUAL EXPECTED_KEYS)
  file(WRITE "${CMAKE_BINARY_DIR}/service-stats-keys-actual.txt"
       "${ACTUAL_KEYS}")
  message(FATAL_ERROR
    "limec-service-stats-v1 keys drifted from ${GOLDEN}\n"
    "actual keys saved to service-stats-keys-actual.txt; if the schema "
    "change is intentional, regenerate the golden (see the header of "
    "cmake/CompareStatsSchema.cmake)")
endif()
