
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compiler/AnalysisNegativeTest.cpp" "tests/CMakeFiles/limecc_tests.dir/compiler/AnalysisNegativeTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/compiler/AnalysisNegativeTest.cpp.o.d"
  "/root/repo/tests/compiler/EmitterGoldenTest.cpp" "tests/CMakeFiles/limecc_tests.dir/compiler/EmitterGoldenTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/compiler/EmitterGoldenTest.cpp.o.d"
  "/root/repo/tests/compiler/GpuCompilerTest.cpp" "tests/CMakeFiles/limecc_tests.dir/compiler/GpuCompilerTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/compiler/GpuCompilerTest.cpp.o.d"
  "/root/repo/tests/integration/OffloadTest.cpp" "tests/CMakeFiles/limecc_tests.dir/integration/OffloadTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/integration/OffloadTest.cpp.o.d"
  "/root/repo/tests/integration/PropertySweepTest.cpp" "tests/CMakeFiles/limecc_tests.dir/integration/PropertySweepTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/integration/PropertySweepTest.cpp.o.d"
  "/root/repo/tests/integration/ReduceFusionTest.cpp" "tests/CMakeFiles/limecc_tests.dir/integration/ReduceFusionTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/integration/ReduceFusionTest.cpp.o.d"
  "/root/repo/tests/integration/WorkloadTest.cpp" "tests/CMakeFiles/limecc_tests.dir/integration/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/integration/WorkloadTest.cpp.o.d"
  "/root/repo/tests/lime/ASTPrinterTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/ASTPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/ASTPrinterTest.cpp.o.d"
  "/root/repo/tests/lime/FrontendEdgeTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/FrontendEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/FrontendEdgeTest.cpp.o.d"
  "/root/repo/tests/lime/InterpTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/InterpTest.cpp.o.d"
  "/root/repo/tests/lime/LexerTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/LexerTest.cpp.o.d"
  "/root/repo/tests/lime/ParserSemaTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/ParserSemaTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/ParserSemaTest.cpp.o.d"
  "/root/repo/tests/lime/TypeSystemTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/TypeSystemTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/TypeSystemTest.cpp.o.d"
  "/root/repo/tests/lime/ValueTest.cpp" "tests/CMakeFiles/limecc_tests.dir/lime/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/lime/ValueTest.cpp.o.d"
  "/root/repo/tests/ocl/DeviceModelTest.cpp" "tests/CMakeFiles/limecc_tests.dir/ocl/DeviceModelTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/ocl/DeviceModelTest.cpp.o.d"
  "/root/repo/tests/ocl/MemoryModelTest.cpp" "tests/CMakeFiles/limecc_tests.dir/ocl/MemoryModelTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/ocl/MemoryModelTest.cpp.o.d"
  "/root/repo/tests/ocl/OclParserErrorTest.cpp" "tests/CMakeFiles/limecc_tests.dir/ocl/OclParserErrorTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/ocl/OclParserErrorTest.cpp.o.d"
  "/root/repo/tests/ocl/OclVmControlFlowTest.cpp" "tests/CMakeFiles/limecc_tests.dir/ocl/OclVmControlFlowTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/ocl/OclVmControlFlowTest.cpp.o.d"
  "/root/repo/tests/ocl/OclVmTest.cpp" "tests/CMakeFiles/limecc_tests.dir/ocl/OclVmTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/ocl/OclVmTest.cpp.o.d"
  "/root/repo/tests/runtime/FutureWorkTest.cpp" "tests/CMakeFiles/limecc_tests.dir/runtime/FutureWorkTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/runtime/FutureWorkTest.cpp.o.d"
  "/root/repo/tests/runtime/SerializerTest.cpp" "tests/CMakeFiles/limecc_tests.dir/runtime/SerializerTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/runtime/SerializerTest.cpp.o.d"
  "/root/repo/tests/runtime/TaskGraphTest.cpp" "tests/CMakeFiles/limecc_tests.dir/runtime/TaskGraphTest.cpp.o" "gcc" "tests/CMakeFiles/limecc_tests.dir/runtime/TaskGraphTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/limecc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/limecc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/limecc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/lime/CMakeFiles/limecc_lime.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/limecc_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
