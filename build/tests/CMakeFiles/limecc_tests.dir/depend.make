# Empty dependencies file for limecc_tests.
# This may be replaced when dependencies are built.
