# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/limecc_tests[1]_include.cmake")
add_test(limec_check "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/saxpy.lime")
set_tests_properties(limec_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_decisions "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/dotproduct.lime" "--decisions")
set_tests_properties(limec_decisions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_emit "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/saxpy.lime" "--emit" "Saxpy.saxpy" "--config" "global+v")
set_tests_properties(limec_emit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_run_offload "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/dotproduct.lime" "--run" "Dot.main" "--offload")
set_tests_properties(limec_run_offload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_dump_ast "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/saxpy.lime" "--dump-ast")
set_tests_properties(limec_dump_ast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_verify "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/saxpy.lime" "--verify" "Saxpy.saxpy" "--device" "gtx8800" "--config" "local+nc+v")
set_tests_properties(limec_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(limec_tune "/root/repo/build/src/tools/limec" "/root/repo/examples/lime/saxpy.lime" "--tune" "Saxpy.saxpy" "--device" "gtx8800")
set_tests_properties(limec_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_nbody_pipeline "/root/repo/build/examples/nbody_pipeline" "gtx580")
set_tests_properties(example_nbody_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_mosaic_demo "/root/repo/build/examples/mosaic_demo")
set_tests_properties(example_mosaic_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_kernel_explorer "/root/repo/build/examples/kernel_explorer" "nbody_sp" "texture")
set_tests_properties(example_kernel_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;57;add_test;/root/repo/tests/CMakeLists.txt;0;")
