file(REMOVE_RECURSE
  "CMakeFiles/limecc_workloads.dir/Common.cpp.o"
  "CMakeFiles/limecc_workloads.dir/Common.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/Driver.cpp.o"
  "CMakeFiles/limecc_workloads.dir/Driver.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/JGCrypt.cpp.o"
  "CMakeFiles/limecc_workloads.dir/JGCrypt.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/JGSeries.cpp.o"
  "CMakeFiles/limecc_workloads.dir/JGSeries.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/Mosaic.cpp.o"
  "CMakeFiles/limecc_workloads.dir/Mosaic.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/NBody.cpp.o"
  "CMakeFiles/limecc_workloads.dir/NBody.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/ParboilCP.cpp.o"
  "CMakeFiles/limecc_workloads.dir/ParboilCP.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/ParboilMRIQ.cpp.o"
  "CMakeFiles/limecc_workloads.dir/ParboilMRIQ.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/ParboilRPES.cpp.o"
  "CMakeFiles/limecc_workloads.dir/ParboilRPES.cpp.o.d"
  "CMakeFiles/limecc_workloads.dir/Registry.cpp.o"
  "CMakeFiles/limecc_workloads.dir/Registry.cpp.o.d"
  "liblimecc_workloads.a"
  "liblimecc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
