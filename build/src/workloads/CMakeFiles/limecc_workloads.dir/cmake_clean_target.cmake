file(REMOVE_RECURSE
  "liblimecc_workloads.a"
)
