# Empty dependencies file for limecc_workloads.
# This may be replaced when dependencies are built.
