
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Common.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/Common.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/Common.cpp.o.d"
  "/root/repo/src/workloads/Driver.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/Driver.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/Driver.cpp.o.d"
  "/root/repo/src/workloads/JGCrypt.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/JGCrypt.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/JGCrypt.cpp.o.d"
  "/root/repo/src/workloads/JGSeries.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/JGSeries.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/JGSeries.cpp.o.d"
  "/root/repo/src/workloads/Mosaic.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/Mosaic.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/Mosaic.cpp.o.d"
  "/root/repo/src/workloads/NBody.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/NBody.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/NBody.cpp.o.d"
  "/root/repo/src/workloads/ParboilCP.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilCP.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilCP.cpp.o.d"
  "/root/repo/src/workloads/ParboilMRIQ.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilMRIQ.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilMRIQ.cpp.o.d"
  "/root/repo/src/workloads/ParboilRPES.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilRPES.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/ParboilRPES.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/limecc_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/limecc_workloads.dir/Registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/limecc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/limecc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/limecc_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/lime/CMakeFiles/limecc_lime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
