# Empty compiler generated dependencies file for limecc_runtime.
# This may be replaced when dependencies are built.
