file(REMOVE_RECURSE
  "liblimecc_runtime.a"
)
