file(REMOVE_RECURSE
  "CMakeFiles/limecc_runtime.dir/AutoTuner.cpp.o"
  "CMakeFiles/limecc_runtime.dir/AutoTuner.cpp.o.d"
  "CMakeFiles/limecc_runtime.dir/Offload.cpp.o"
  "CMakeFiles/limecc_runtime.dir/Offload.cpp.o.d"
  "CMakeFiles/limecc_runtime.dir/Serializer.cpp.o"
  "CMakeFiles/limecc_runtime.dir/Serializer.cpp.o.d"
  "CMakeFiles/limecc_runtime.dir/TaskGraph.cpp.o"
  "CMakeFiles/limecc_runtime.dir/TaskGraph.cpp.o.d"
  "liblimecc_runtime.a"
  "liblimecc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
