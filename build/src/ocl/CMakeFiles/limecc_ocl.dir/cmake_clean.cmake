file(REMOVE_RECURSE
  "CMakeFiles/limecc_ocl.dir/BytecodeCompiler.cpp.o"
  "CMakeFiles/limecc_ocl.dir/BytecodeCompiler.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/CL.cpp.o"
  "CMakeFiles/limecc_ocl.dir/CL.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/DeviceModel.cpp.o"
  "CMakeFiles/limecc_ocl.dir/DeviceModel.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/MemoryModel.cpp.o"
  "CMakeFiles/limecc_ocl.dir/MemoryModel.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/OclLexer.cpp.o"
  "CMakeFiles/limecc_ocl.dir/OclLexer.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/OclParser.cpp.o"
  "CMakeFiles/limecc_ocl.dir/OclParser.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/OclType.cpp.o"
  "CMakeFiles/limecc_ocl.dir/OclType.cpp.o.d"
  "CMakeFiles/limecc_ocl.dir/VM.cpp.o"
  "CMakeFiles/limecc_ocl.dir/VM.cpp.o.d"
  "liblimecc_ocl.a"
  "liblimecc_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
