# Empty dependencies file for limecc_ocl.
# This may be replaced when dependencies are built.
