file(REMOVE_RECURSE
  "liblimecc_ocl.a"
)
