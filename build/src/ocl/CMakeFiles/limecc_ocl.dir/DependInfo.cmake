
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/BytecodeCompiler.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/BytecodeCompiler.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/BytecodeCompiler.cpp.o.d"
  "/root/repo/src/ocl/CL.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/CL.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/CL.cpp.o.d"
  "/root/repo/src/ocl/DeviceModel.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/DeviceModel.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/DeviceModel.cpp.o.d"
  "/root/repo/src/ocl/MemoryModel.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/MemoryModel.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/MemoryModel.cpp.o.d"
  "/root/repo/src/ocl/OclLexer.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/OclLexer.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/OclLexer.cpp.o.d"
  "/root/repo/src/ocl/OclParser.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/OclParser.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/OclParser.cpp.o.d"
  "/root/repo/src/ocl/OclType.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/OclType.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/OclType.cpp.o.d"
  "/root/repo/src/ocl/VM.cpp" "src/ocl/CMakeFiles/limecc_ocl.dir/VM.cpp.o" "gcc" "src/ocl/CMakeFiles/limecc_ocl.dir/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
