file(REMOVE_RECURSE
  "liblimecc_support.a"
)
