# Empty dependencies file for limecc_support.
# This may be replaced when dependencies are built.
