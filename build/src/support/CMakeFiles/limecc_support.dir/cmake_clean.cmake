file(REMOVE_RECURSE
  "CMakeFiles/limecc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/limecc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/limecc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/limecc_support.dir/StringUtils.cpp.o.d"
  "liblimecc_support.a"
  "liblimecc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
