# Empty compiler generated dependencies file for limecc_compiler.
# This may be replaced when dependencies are built.
