file(REMOVE_RECURSE
  "CMakeFiles/limecc_compiler.dir/GpuCompiler.cpp.o"
  "CMakeFiles/limecc_compiler.dir/GpuCompiler.cpp.o.d"
  "CMakeFiles/limecc_compiler.dir/KernelAnalysis.cpp.o"
  "CMakeFiles/limecc_compiler.dir/KernelAnalysis.cpp.o.d"
  "CMakeFiles/limecc_compiler.dir/OpenCLEmitter.cpp.o"
  "CMakeFiles/limecc_compiler.dir/OpenCLEmitter.cpp.o.d"
  "liblimecc_compiler.a"
  "liblimecc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
