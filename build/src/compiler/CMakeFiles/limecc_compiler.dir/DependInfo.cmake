
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/GpuCompiler.cpp" "src/compiler/CMakeFiles/limecc_compiler.dir/GpuCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/limecc_compiler.dir/GpuCompiler.cpp.o.d"
  "/root/repo/src/compiler/KernelAnalysis.cpp" "src/compiler/CMakeFiles/limecc_compiler.dir/KernelAnalysis.cpp.o" "gcc" "src/compiler/CMakeFiles/limecc_compiler.dir/KernelAnalysis.cpp.o.d"
  "/root/repo/src/compiler/OpenCLEmitter.cpp" "src/compiler/CMakeFiles/limecc_compiler.dir/OpenCLEmitter.cpp.o" "gcc" "src/compiler/CMakeFiles/limecc_compiler.dir/OpenCLEmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lime/CMakeFiles/limecc_lime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
