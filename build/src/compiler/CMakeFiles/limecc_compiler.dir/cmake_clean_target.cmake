file(REMOVE_RECURSE
  "liblimecc_compiler.a"
)
