file(REMOVE_RECURSE
  "liblimecc_lime.a"
)
