file(REMOVE_RECURSE
  "CMakeFiles/limecc_lime.dir/ast/AST.cpp.o"
  "CMakeFiles/limecc_lime.dir/ast/AST.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/ast/ASTPrinter.cpp.o"
  "CMakeFiles/limecc_lime.dir/ast/ASTPrinter.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/ast/Type.cpp.o"
  "CMakeFiles/limecc_lime.dir/ast/Type.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/interp/Interp.cpp.o"
  "CMakeFiles/limecc_lime.dir/interp/Interp.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/interp/Value.cpp.o"
  "CMakeFiles/limecc_lime.dir/interp/Value.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/lexer/Lexer.cpp.o"
  "CMakeFiles/limecc_lime.dir/lexer/Lexer.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/parser/Parser.cpp.o"
  "CMakeFiles/limecc_lime.dir/parser/Parser.cpp.o.d"
  "CMakeFiles/limecc_lime.dir/sema/Sema.cpp.o"
  "CMakeFiles/limecc_lime.dir/sema/Sema.cpp.o.d"
  "liblimecc_lime.a"
  "liblimecc_lime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limecc_lime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
