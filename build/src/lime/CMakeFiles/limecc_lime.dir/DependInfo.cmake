
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lime/ast/AST.cpp" "src/lime/CMakeFiles/limecc_lime.dir/ast/AST.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/ast/AST.cpp.o.d"
  "/root/repo/src/lime/ast/ASTPrinter.cpp" "src/lime/CMakeFiles/limecc_lime.dir/ast/ASTPrinter.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/ast/ASTPrinter.cpp.o.d"
  "/root/repo/src/lime/ast/Type.cpp" "src/lime/CMakeFiles/limecc_lime.dir/ast/Type.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/ast/Type.cpp.o.d"
  "/root/repo/src/lime/interp/Interp.cpp" "src/lime/CMakeFiles/limecc_lime.dir/interp/Interp.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/interp/Interp.cpp.o.d"
  "/root/repo/src/lime/interp/Value.cpp" "src/lime/CMakeFiles/limecc_lime.dir/interp/Value.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/interp/Value.cpp.o.d"
  "/root/repo/src/lime/lexer/Lexer.cpp" "src/lime/CMakeFiles/limecc_lime.dir/lexer/Lexer.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/lexer/Lexer.cpp.o.d"
  "/root/repo/src/lime/parser/Parser.cpp" "src/lime/CMakeFiles/limecc_lime.dir/parser/Parser.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/lime/sema/Sema.cpp" "src/lime/CMakeFiles/limecc_lime.dir/sema/Sema.cpp.o" "gcc" "src/lime/CMakeFiles/limecc_lime.dir/sema/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
