# Empty compiler generated dependencies file for limecc_lime.
# This may be replaced when dependencies are built.
