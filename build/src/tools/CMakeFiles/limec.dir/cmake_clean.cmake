file(REMOVE_RECURSE
  "CMakeFiles/limec.dir/limec.cpp.o"
  "CMakeFiles/limec.dir/limec.cpp.o.d"
  "limec"
  "limec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
