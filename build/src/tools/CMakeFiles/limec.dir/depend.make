# Empty dependencies file for limec.
# This may be replaced when dependencies are built.
