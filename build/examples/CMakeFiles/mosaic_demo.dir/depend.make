# Empty dependencies file for mosaic_demo.
# This may be replaced when dependencies are built.
