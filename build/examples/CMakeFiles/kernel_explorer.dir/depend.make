# Empty dependencies file for kernel_explorer.
# This may be replaced when dependencies are built.
