file(REMOVE_RECURSE
  "CMakeFiles/kernel_explorer.dir/kernel_explorer.cpp.o"
  "CMakeFiles/kernel_explorer.dir/kernel_explorer.cpp.o.d"
  "kernel_explorer"
  "kernel_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
