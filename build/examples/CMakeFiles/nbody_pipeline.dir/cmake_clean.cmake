file(REMOVE_RECURSE
  "CMakeFiles/nbody_pipeline.dir/nbody_pipeline.cpp.o"
  "CMakeFiles/nbody_pipeline.dir/nbody_pipeline.cpp.o.d"
  "nbody_pipeline"
  "nbody_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
