# Empty dependencies file for nbody_pipeline.
# This may be replaced when dependencies are built.
