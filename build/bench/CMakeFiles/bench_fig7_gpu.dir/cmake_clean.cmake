file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gpu.dir/bench_fig7_gpu.cpp.o"
  "CMakeFiles/bench_fig7_gpu.dir/bench_fig7_gpu.cpp.o.d"
  "bench_fig7_gpu"
  "bench_fig7_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
