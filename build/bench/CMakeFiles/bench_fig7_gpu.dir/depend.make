# Empty dependencies file for bench_fig7_gpu.
# This may be replaced when dependencies are built.
