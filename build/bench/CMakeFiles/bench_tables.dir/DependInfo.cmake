
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tables.cpp" "bench/CMakeFiles/bench_tables.dir/bench_tables.cpp.o" "gcc" "bench/CMakeFiles/bench_tables.dir/bench_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/limecc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/limecc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/limecc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/limecc_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/lime/CMakeFiles/limecc_lime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/limecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
